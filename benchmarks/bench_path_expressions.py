"""E5 — path-expression style queries with and without query rewrite.

[PHH92] (cited in section 5): declarative relationships let the optimizer
rewrite path-style queries — "such optimization is essential since it may
lead to orders of magnitude improvement in performance, particularly in
handling of path expressions".

We express a 2-hop path (department -> employee -> managed project) as a
layered view query and run it with the rewrite engine enabled (views merge,
predicates push down, the optimizer sees one join space) vs disabled
(nested derived tables planned independently).  Also measures cache-side
path navigation as the third style.  Expected shape: rewrite ≤ no-rewrite;
cache navigation fastest for repeated traversals.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.workloads import company
from repro.xnf.api import XNFSession

PATH_SQL = """
SELECT p.pname
FROM (SELECT * FROM DEPT WHERE budget > 500) AS d,
     (SELECT * FROM EMP WHERE sal > 20) AS e,
     (SELECT * FROM PROJ) AS p
WHERE d.dno = e.edno AND e.eno = p.pmgrno
"""


@pytest.fixture(scope="module")
def setup():
    db = company.scaled_database(departments=40, employees_per_dept=10,
                                 projects_per_dept=4)
    return db


def test_path_query_with_rewrite(benchmark, setup):
    db = setup
    db.enable_rewrite = True
    rows = benchmark(lambda: db.execute(PATH_SQL).rows)
    assert rows


def test_path_query_without_rewrite(benchmark, setup):
    db = setup
    try:
        db.enable_rewrite = False
        rows = benchmark(lambda: db.execute(PATH_SQL).rows)
        assert rows
    finally:
        db.enable_rewrite = True


def test_cache_path_navigation(benchmark, setup):
    db = setup
    session = XNFSession(db)
    co = session.query(
        """
        OUT OF
          Xdept AS (SELECT * FROM DEPT WHERE budget > 500),
          Xemp AS (SELECT * FROM EMP WHERE sal > 20),
          Xproj AS PROJ,
          employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno),
          projmanagement AS (RELATE Xemp, Xproj WHERE Xemp.eno = Xproj.pmgrno)
        TAKE *
        """
    )

    def navigate():
        return len(co.path("Xdept", "employment->projmanagement"))

    assert benchmark(navigate) > 0


def _timed_query(db, reps=3):
    """Best-of-``reps`` wall time after one untimed warm-up execution.

    The warm-up makes the two modes comparable: rewrite-OFF plans are
    plan-cached while merged rewrite-ON plans are rebuilt per call, so a
    single cold shot would compare planning+execution against cached
    execution and flake at the millisecond scale measured here.
    """
    rows = db.execute(PATH_SQL).rows
    best = float("inf")
    for _ in range(reps):
        begin = time.perf_counter()
        db.execute(PATH_SQL)
        best = min(best, time.perf_counter() - begin)
    return best, rows


def _report_body(setup):
    db = setup
    db.enable_rewrite = True
    rewrite_time, with_rewrite = _timed_query(db)
    db.enable_rewrite = False
    plain_time, without_rewrite = _timed_query(db)
    db.enable_rewrite = True
    assert sorted(with_rewrite) == sorted(without_rewrite)

    session = XNFSession(db)
    co = session.query(
        """
        OUT OF
          Xdept AS (SELECT * FROM DEPT WHERE budget > 500),
          Xemp AS (SELECT * FROM EMP WHERE sal > 20),
          Xproj AS PROJ,
          employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno),
          projmanagement AS (RELATE Xemp, Xproj WHERE Xemp.eno = Xproj.pmgrno)
        TAKE *
        """
    )
    begin = time.perf_counter()
    for _ in range(20):
        co.path("Xdept", "employment->projmanagement")
    cache_time = (time.perf_counter() - begin) / 20

    report("E5 path expressions",
           f"SQL path query, rewrite ON : {rewrite_time*1000:7.1f} ms")
    report("E5 path expressions",
           f"SQL path query, rewrite OFF: {plain_time*1000:7.1f} ms "
           f"| rewrite speedup {plain_time/rewrite_time:5.2f}x")
    report("E5 path expressions",
           f"cached path navigation     : {cache_time*1000:7.1f} ms per pass")
    assert rewrite_time <= plain_time * 1.5  # rewrite never clearly worse

def test_path_expression_report(benchmark, setup):
    """Report wrapper: runs once even under --benchmark-only."""
    benchmark.pedantic(lambda: _report_body(setup), rounds=1, iterations=1)
