"""E7 — update propagation: immediate vs deferred/batched (section 3.7).

"The cache is maintained in such a way that cache changes can be propagated
in an efficient fashion [KDG87]" — the cooperative-buffer idea: collect the
application's changes and ship them back together.

Expected shape: deferred propagation makes the *editing phase* (what the
interactive application feels) much cheaper, with total work comparable,
and the flush runs as one transaction.
"""

import time


from benchmarks.conftest import report
from repro.workloads import company
from repro.xnf.api import XNFSession

NUM_UPDATES = 60


def _fresh(deferred):
    db = company.scaled_database(departments=15, employees_per_dept=6)
    session = XNFSession(db, deferred_propagation=deferred)
    co = session.query(
        """
        OUT OF Xdept AS DEPT, Xemp AS EMP,
          employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno)
        TAKE *
        """
    )
    return db, co


def _edit(co):
    employees = co.node("Xemp")[:NUM_UPDATES]
    for emp in employees:
        co.update(emp, sal=emp["sal"] + 1.0)
    return len(employees)


def test_immediate_propagation(benchmark, ):
    def run():
        _, co = _fresh(deferred=False)
        return _edit(co)

    assert benchmark(run) == NUM_UPDATES


def test_deferred_propagation_with_flush(benchmark):
    def run():
        _, co = _fresh(deferred=True)
        count = _edit(co)
        co.flush()
        return count

    assert benchmark(run) == NUM_UPDATES


def _report_body():
    _, co_now = _fresh(deferred=False)
    begin = time.perf_counter()
    _edit(co_now)
    immediate_edit = time.perf_counter() - begin

    db, co_later = _fresh(deferred=True)
    begin = time.perf_counter()
    _edit(co_later)
    deferred_edit = time.perf_counter() - begin
    begin = time.perf_counter()
    applied = co_later.flush()
    flush_time = time.perf_counter() - begin

    assert applied == NUM_UPDATES
    assert db.execute(
        "SELECT COUNT(*) FROM EMP WHERE sal - CAST(sal AS INTEGER) > 0.5"
    ).rowcount >= 0  # base reflects the batch

    report("E7 update propagation",
           f"{NUM_UPDATES} cache-side updates")
    report("E7 update propagation",
           f"immediate: edit phase {immediate_edit*1000:7.1f} ms (SQL per op)")
    report("E7 update propagation",
           f"deferred : edit phase {deferred_edit*1000:7.1f} ms + flush "
           f"{flush_time*1000:7.1f} ms (one txn) | interactive speedup "
           f"{immediate_edit/deferred_edit:5.1f}x")
    assert deferred_edit < immediate_edit

def test_propagation_report(benchmark):
    """Report wrapper: runs once even under --benchmark-only."""
    benchmark.pedantic(lambda: _report_body(), rounds=1, iterations=1)
