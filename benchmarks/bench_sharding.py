"""Sharded vs. unsharded XNF extraction at 10x data (sharding tentpole).

Two databases built from the same OO1 generator seed — one plain, one with
PART range-partitioned on ``x`` into 4 shards and CONN hash-partitioned on
``cfrom`` — and two workloads:

* ``co_extraction`` (**gated**) — the working-set CO of the vectorized
  benchmark at 10x its data: the compound restriction ``x < 10000`` keeps
  only the first range shard's key space, so the scatter stage proves the
  other shards empty from their partition bounds + zone maps and skips
  scanning them entirely.  On one GIL-bound core that work *reduction* —
  not thread parallelism — is what the ``SHARD_SPEEDUP_FLOOR`` (default
  2x) gate enforces.
* ``oo1_setwise_traversal`` (report-only) — the per-level ``cfrom IN``
  traversal; its index probes go through the facade identically either
  way, so this guards against sharding *taxing* the non-scatter path.

Extraction results are canonicalised and compared before any timing is
trusted; the ``equivalent`` flag in ``BENCH_sharding.json`` is gated by
``benchmarks/check_regression.py`` alongside the speedup floor.
"""

import json
import pathlib
import time

import pytest

from benchmarks.conftest import report
from repro.workloads.oo1 import build_parts_database, traverse_setwise_sql
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.semantic_rewrite import XNFCompiler
from repro.xnf.views import XNFViewCatalog, resolve

LEDGER_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_sharding.json"

_RESULTS = {}
_FLAGS = {"equivalent": False}

#: 10x the vectorized benchmark's extraction scale.
PARTS = 200000
BUFFER_PAGES = 65536
SHARDS = 4

TRAVERSAL_DEPTH = 6
TRAVERSAL_STARTS = (17, PARTS // 2, PARTS - 9)

#: The working-set CO of bench_vectorized with a tighter ``y`` bound:
#: ~0.1% of PART survives the compound restriction, the regime partition
#: pruning targets — the candidate scan (data-size-bound, prunable to one
#: range shard) dominates, while the fixpoint's per-row index probes
#: (working-set-bound, identical either way) stay small.  The recursive
#: ``connects`` edge still drives reachability over hash-sharded CONN.
WORKING_SET_CO = """
OUT OF
 Xlib AS DESIGNLIB,
 Xpart AS (SELECT * FROM PART
           WHERE x < 10000 AND y < 2500
             AND ptype IN ('part-type1', 'part-type2',
                           'part-type3', 'part-type4')),
 contains AS (RELATE Xlib, Xpart WHERE Xlib.lid = Xpart.lib),
 connects AS (RELATE Xpart source, Xpart target
              WITH ATTRIBUTES c.ctype AS ctype, c.clength AS clength
              USING CONN c
              WHERE source.pid = c.cfrom AND target.pid = c.cto)
TAKE *
"""


@pytest.fixture(scope="module")
def dbs():
    plain = build_parts_database(PARTS, buffer_capacity=BUFFER_PAGES)
    sharded = build_parts_database(
        PARTS, buffer_capacity=BUFFER_PAGES, shards=SHARDS
    )
    return {"unsharded": plain, "sharded": sharded}


def _best_of(fn, repeats):
    """(best wall seconds, last result) after one untimed warm-up run."""
    fn()
    best = float("inf")
    result = None
    for _ in range(repeats):
        begin = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begin)
    return best, result


def _canonical(instance):
    return (
        instance.total_tuples(),
        instance.total_connections(),
        sorted((name, sorted(rows)) for name, rows in instance.rows.items()),
        sorted(
            (name, sorted(conns))
            for name, conns in instance.connections.items()
        ),
    )


def _record(name, unsharded_s, sharded_s, rows, gated):
    speedup = unsharded_s / sharded_s
    _RESULTS[name] = {
        "unsharded_s": round(unsharded_s, 6),
        "sharded_s": round(sharded_s, 6),
        "speedup": round(speedup, 2),
        "rows": rows,
        "shards": SHARDS,
        "gated": gated,
    }
    report(
        "sharded extraction",
        f"{name}: 1 shard {unsharded_s * 1e3:8.1f} ms | "
        f"{SHARDS} shards {sharded_s * 1e3:8.1f} ms "
        f"| {speedup:5.2f}x ({rows} rows)",
    )
    return speedup


def test_co_extraction_speedup(dbs, benchmark):
    schema = resolve(parse_xnf(WORKING_SET_CO), XNFViewCatalog())
    times = {}
    shapes = {}
    for mode, db in dbs.items():
        times[mode], instance = _best_of(
            lambda d=db: XNFCompiler(d).instantiate(schema), 3
        )
        shapes[mode] = _canonical(instance)
    assert shapes["unsharded"] == shapes["sharded"]
    _FLAGS["equivalent"] = True
    tuples, connections, _, _ = shapes["unsharded"]
    assert tuples > 0 and connections > 0
    pruned = dbs["sharded"].metrics.counter("xnf.scatter.pruned").value
    assert pruned > 0  # the speedup must come from provable shard pruning
    speedup = _record(
        "co_extraction",
        times["unsharded"],
        times["sharded"],
        tuples + connections,
        gated=True,
    )
    assert speedup > 1.0
    benchmark(lambda: XNFCompiler(dbs["sharded"]).instantiate(schema))


def test_setwise_traversal_reported(dbs, benchmark):
    times = {}
    visits = {}

    def traverse(db):
        return sum(
            traverse_setwise_sql(db, start, TRAVERSAL_DEPTH)
            for start in TRAVERSAL_STARTS
        )

    for mode, db in dbs.items():
        times[mode], visits[mode] = _best_of(lambda d=db: traverse(d), 2)
    assert visits["unsharded"] == visits["sharded"]
    # report-only: the traversal never enters the scatter stage, this row
    # documents that sharding does not tax plain index-driven SQL
    _record(
        "oo1_setwise_traversal",
        times["unsharded"],
        times["sharded"],
        visits["unsharded"],
        gated=False,
    )
    benchmark(lambda: traverse(dbs["sharded"]))


@pytest.fixture(scope="module", autouse=True)
def sharding_ledger():
    yield
    if _RESULTS:
        payload = {
            "parts": PARTS,
            "shards": SHARDS,
            "equivalent": _FLAGS["equivalent"],
            "workloads": _RESULTS,
        }
        LEDGER_PATH.write_text(json.dumps(payload, indent=2) + "\n")
