"""E6 — recursive CO evaluation: semi-naive vs naive fixpoint (section 3.4).

A reports-to chain of configurable depth makes the fixpoint run ``depth``
rounds.  Semi-naive joins only the per-round delta; the naive ablation
re-joins the full reachable set every round.  Expected shape: semi-naive
wins, and the gap grows with depth (quadratic vs linear total join work).
"""

import time

import pytest

from benchmarks.conftest import report
from repro.relational.engine import Database
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.semantic_rewrite import XNFCompiler
from repro.xnf.views import XNFViewCatalog, resolve

DEPTHS = [8, 24, 48]
WIDTH = 4  # employees per level

CO_TEXT = """
OUT OF
  Xroot AS (SELECT * FROM STAFF WHERE mgrno IS NULL),
  Xemp AS STAFF,
  heads AS (RELATE Xroot, Xemp WHERE Xroot.eno = Xemp.eno),
  manages AS (RELATE Xemp manager, Xemp report
              WHERE manager.eno = report.mgrno)
TAKE *
"""


def build_chain_db(depth: int) -> Database:
    db = Database()
    db.execute("CREATE TABLE STAFF (eno INTEGER PRIMARY KEY, mgrno INTEGER)")
    table = db.catalog.get_table("STAFF")
    eno = 1
    table.insert((eno, None))
    previous_level = [1]
    for _ in range(depth - 1):
        level = []
        for manager in previous_level[:1]:  # chain with bushy extras
            for _ in range(WIDTH):
                eno += 1
                table.insert((eno, manager))
                level.append(eno)
        previous_level = level
    db.execute("CREATE INDEX im ON STAFF (mgrno); ANALYZE")
    return db


def _run(db, semi_naive):
    compiler = XNFCompiler(db, semi_naive=semi_naive)
    schema = resolve(parse_xnf(CO_TEXT), XNFViewCatalog())
    instance = compiler.instantiate(schema)
    return instance, compiler.stats


@pytest.mark.parametrize("depth", DEPTHS[:2])
def test_semi_naive(benchmark, depth):
    db = build_chain_db(depth)
    total = benchmark(lambda: _run(db, True)[0].total_tuples())
    assert total == 2 + WIDTH * (depth - 1)  # Xroot + Xemp tuples


@pytest.mark.parametrize("depth", DEPTHS[:2])
def test_naive(benchmark, depth):
    db = build_chain_db(depth)
    total = benchmark(lambda: _run(db, False)[0].total_tuples())
    assert total == 2 + WIDTH * (depth - 1)  # Xroot + Xemp tuples


def _report_body():
    report("E6 recursive CO fixpoint",
           f"reports-to chain, {WIDTH} employees per level")
    ratios = []
    for depth in DEPTHS:
        db = build_chain_db(depth)
        # Warm both styles once (plan cache + buffer pool) so the timed
        # runs compare fixpoint join work, not one-time plan compilation.
        _run(db, True)
        _run(db, False)
        begin = time.perf_counter()
        instance_s, stats_s = _run(db, True)
        semi_time = time.perf_counter() - begin
        begin = time.perf_counter()
        instance_n, stats_n = _run(db, False)
        naive_time = time.perf_counter() - begin
        assert instance_s.total_tuples() == instance_n.total_tuples()
        ratio = naive_time / semi_time
        ratios.append(ratio)
        report("E6 recursive CO fixpoint",
               f"depth={depth:3d} ({instance_s.total_tuples():4d} tuples, "
               f"{stats_s.iterations:3d} rounds) | semi-naive "
               f"{semi_time*1000:8.1f} ms | naive {naive_time*1000:8.1f} ms "
               f"| {ratio:4.1f}x")
    # the gap must grow with depth (quadratic vs linear work)
    assert ratios[-1] > ratios[0]

def test_recursive_report(benchmark):
    """Report wrapper: runs once even under --benchmark-only."""
    benchmark.pedantic(lambda: _report_body(), rounds=1, iterations=1)
