"""Wire server benchmark: N concurrent loopback clients (ISSUE 8).

Boots one :class:`~repro.server.XNFServer` over the combined demo
database and hammers it with ``SERVER_BENCH_CLIENTS`` concurrent
connections (default 32, the acceptance floor) running a fixed op mix:

* **E1** — extract the Fig. 1 company CO and navigate one path,
* **E6** — extract the recursive STAFF-chain CO (fixpoint over the wire),
* **OO1** — a parts-graph traversal as per-step SQL frontier queries,
* **point** — a single-row indexed SELECT (the latency floor).

Per-op wall times aggregate into p50/p95/p99 and overall throughput,
written to ``BENCH_server.json``; ``benchmarks/check_regression.py``
gates on zero failed sessions, the ≥32-client floor, the p99 budget and
a throughput floor.
"""

import json
import os
import pathlib
import statistics
import threading
import time

import pytest

from benchmarks.conftest import report
from repro.client.client import WireClient
from repro.errors import ReproError
from repro.server.bootstrap import STAFF_CO, demo_database
from repro.server.server import ServerThread
from repro.workloads.company import FIGURE1_CO

LEDGER_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_server.json"

_RESULTS = {}

#: acceptance floor: the bench must sustain at least this many clients
CLIENTS = int(os.environ.get("SERVER_BENCH_CLIENTS", "32"))
#: ops per client (one op = one full E1/E6/OO1/point interaction)
OPS_PER_CLIENT = int(os.environ.get("SERVER_BENCH_OPS", "12"))
#: OO1 traversal shape (frontier depth per op)
TRAVERSE_DEPTH = 3

OP_NAMES = ("e1_take", "e6_take", "oo1_traverse", "point_select")


def _op_e1_take(client: WireClient) -> None:
    co = client.take(FIGURE1_CO)
    assert co.nodes["Xemp"] == 5
    emps = co.path("Xdept", "employment", dname="d2")
    assert len(emps) == 3
    co.close()


def _op_e6_take(client: WireClient) -> None:
    co = client.take(STAFF_CO)
    assert co.nodes["Xemp"] > 1  # fixpoint closed over the chain
    co.close()


def _op_oo1_traverse(client: WireClient, start_pid: int) -> int:
    """OO1-style traversal: per-step SQL frontier queries over the wire."""
    frontier = [start_pid]
    visited = 0
    for _ in range(TRAVERSE_DEPTH):
        ids = ", ".join(str(pid) for pid in frontier)
        rows = client.execute(
            f"SELECT cto FROM CONN WHERE cfrom IN ({ids})"
        ).rows()
        frontier = sorted({row[0] for row in rows})[:32]
        visited += len(rows)
        if not frontier:
            break
    return visited


def _op_point_select(client: WireClient, pid: int) -> None:
    row = client.execute(f"SELECT ptype, x, y FROM PART WHERE pid = {pid}").first()
    assert row is not None


def _client_worker(port: int, slot: int, latencies, failures) -> None:
    try:
        with WireClient(port=port) as client:
            for op_index in range(OPS_PER_CLIENT):
                op = OP_NAMES[(slot + op_index) % len(OP_NAMES)]
                begin = time.perf_counter()
                if op == "e1_take":
                    _op_e1_take(client)
                elif op == "e6_take":
                    _op_e6_take(client)
                elif op == "oo1_traverse":
                    _op_oo1_traverse(client, 1 + (slot * 7 + op_index) % 150)
                else:
                    _op_point_select(client, 1 + (slot * 11 + op_index) % 150)
                latencies[op].append((time.perf_counter() - begin) * 1000.0)
    except (ReproError, OSError) as exc:
        failures.append((slot, repr(exc)))


def _percentiles(samples):
    ordered = sorted(samples)

    def pct(p: float) -> float:
        index = min(len(ordered) - 1, int(round(p * (len(ordered) - 1))))
        return ordered[index]

    return {
        "p50_ms": round(statistics.median(ordered), 3),
        "p95_ms": round(pct(0.95), 3),
        "p99_ms": round(pct(0.99), 3),
        "max_ms": round(ordered[-1], 3),
        "count": len(ordered),
    }


def test_concurrent_wire_clients(benchmark):
    """The acceptance experiment: ≥32 clients, zero failed sessions."""
    db = demo_database(mvcc=True, num_parts=150)
    latencies = {name: [] for name in OP_NAMES}
    failures = []
    with ServerThread(db, max_connections=CLIENTS + 8) as server:
        # warm the plan cache / scratch pool so percentiles measure the
        # steady state, not first-compile costs
        with WireClient(port=server.port) as warm:
            _op_e1_take(warm)
            _op_e6_take(warm)
            _op_oo1_traverse(warm, 1)
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(server.port, slot, latencies, failures),
            )
            for slot in range(CLIENTS)
        ]
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(600)
            assert not thread.is_alive(), "bench client wedged"
        elapsed = time.perf_counter() - begin
        counters = db.network.snapshot()
    assert not failures, f"failed sessions: {failures}"
    assert len(db.wire_sessions) == 0, "sessions leaked after shutdown"

    total_ops = sum(len(v) for v in latencies.values())
    all_samples = [sample for v in latencies.values() for sample in v]
    _RESULTS["server"] = {
        "clients": CLIENTS,
        "ops_per_client": OPS_PER_CLIENT,
        "total_ops": total_ops,
        "failed_sessions": len(failures),
        "elapsed_s": round(elapsed, 3),
        "throughput_ops_s": round(total_ops / elapsed, 2),
        "overall": _percentiles(all_samples),
        "per_op": {
            name: _percentiles(samples)
            for name, samples in latencies.items()
        },
        "frames_in": counters["frames_in"],
        "frames_out": counters["frames_out"],
        "bytes_in": counters["bytes_in"],
        "bytes_out": counters["bytes_out"],
        "connections_opened": counters["connections_opened"],
        "connections_refused": counters["connections_refused"],
        "retryable_errors_sent": counters["retryable_errors_sent"],
    }
    overall = _RESULTS["server"]["overall"]
    report(
        "wire server",
        f"{CLIENTS} clients x {OPS_PER_CLIENT} ops: "
        f"{_RESULTS['server']['throughput_ops_s']:7.1f} ops/s | "
        f"p50 {overall['p50_ms']:7.1f} ms | p95 {overall['p95_ms']:7.1f} ms "
        f"| p99 {overall['p99_ms']:7.1f} ms",
    )
    for name in OP_NAMES:
        stats = _RESULTS["server"]["per_op"][name]
        report(
            "wire server",
            f"  {name:13s} p50 {stats['p50_ms']:7.1f} ms | "
            f"p95 {stats['p95_ms']:7.1f} ms | p99 {stats['p99_ms']:7.1f} ms "
            f"({stats['count']} ops)",
        )

    # a light single-client run for the pytest-benchmark table
    db2 = demo_database(mvcc=True, num_parts=150)
    with ServerThread(db2) as server:
        with WireClient(port=server.port) as client:
            _op_point_select(client, 1)  # warm
            benchmark(lambda: _op_point_select(client, 42))


@pytest.fixture(scope="module", autouse=True)
def server_ledger():
    yield
    if _RESULTS:
        LEDGER_PATH.write_text(json.dumps(_RESULTS["server"], indent=2) + "\n")
