"""E2 — working-set extraction vs database size (section 1).

"Loading a working set translates into a data extraction where on average
one tuple out of 10000 to 100000 is selected.  This again calls for
set-oriented query facilities for efficient data extraction."

Sweep the design-database size while the working set (one document version)
stays constant, comparing the XNF set-oriented extraction against the
tuple-at-a-time navigational loader.  Expected shape: the navigational
loader issues one query per fetched parent (constant but large query
count), while the set-oriented extraction issues a constant *small* number
of optimizer-planned queries; wall-clock advantage grows with database
size when no index fits the navigation pattern and stays decisively ahead
on query count always.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.workloads import design
from repro.xnf.api import XNFSession

SIZES = [10, 40, 160]
DOC, VERSION = 5, 2


@pytest.fixture(scope="module")
def databases():
    return {size: design.build_design_database(size) for size in SIZES}


@pytest.mark.parametrize("size", SIZES)
def test_setwise_extraction(benchmark, databases, size):
    db = databases[size]
    session = XNFSession(db)
    co = benchmark(lambda: design.extract_working_set(session, DOC, VERSION))
    assert co.cache.total_tuples() == 102  # 1 doc + 1 ver + 20 comp + 80 sub


@pytest.mark.parametrize("size", SIZES)
def test_navigational_extraction(benchmark, databases, size):
    db = databases[size]
    fetched, _ = benchmark(
        lambda: design.extract_working_set_navigational(db, DOC, VERSION)
    )
    assert fetched == 102


def _report_body(databases):
    report("E2 working-set extraction",
           f"fixed working set: document {DOC} version {VERSION} = 102 tuples")
    for size in SIZES:
        db = databases[size]
        total = design.total_tuples(size)
        session = XNFSession(db)
        begin = time.perf_counter()
        design.extract_working_set(session, DOC, VERSION)
        set_time = time.perf_counter() - begin
        set_queries = session.last_stats.queries_issued
        begin = time.perf_counter()
        _, nav_queries = design.extract_working_set_navigational(db, DOC, VERSION)
        nav_time = time.perf_counter() - begin
        report("E2 working-set extraction",
               f"db={total:7d} tuples (selectivity 1/{total // 102:5d}) | "
               f"set-oriented {set_time*1000:7.1f} ms / {set_queries:3d} queries | "
               f"navigational {nav_time*1000:7.1f} ms / {nav_queries:3d} queries")
        assert set_queries < nav_queries

def test_working_set_report(benchmark, databases):
    """Report wrapper: runs once even under --benchmark-only."""
    benchmark.pedantic(lambda: _report_body(databases), rounds=1, iterations=1)
