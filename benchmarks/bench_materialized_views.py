"""E8 (extension) — materialized CO views: snapshot load vs live derivation.

The paper's footnote-1 extension (see repro.xnf.materialize).  Expected
shape: loading a stored snapshot — surrogate-key joins, no view derivation,
no fixpoint — beats re-instantiating the live view, and the gap grows with
the cost of the view's derivation (recursive views gain most).
"""

import time

import pytest

from benchmarks.conftest import report
from repro.workloads import company
from repro.xnf.api import XNFSession


@pytest.fixture(scope="module")
def setup():
    db = company.scaled_database(departments=60, employees_per_dept=12,
                                 projects_per_dept=4)
    session = XNFSession(db)
    session.create_view(
        """
        CREATE VIEW BIG-ORG AS
        OUT OF
          Xdept AS (SELECT * FROM DEPT WHERE budget > 300),
          Xemp AS (SELECT * FROM EMP WHERE sal > 10),
          Xproj AS PROJ,
          employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno),
          ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno),
          projmanagement AS (RELATE Xemp, Xproj WHERE Xemp.eno = Xproj.pmgrno),
          membership AS (RELATE Xproj, Xemp
            WITH ATTRIBUTES ep.percentage USING EMPPROJ ep
            WHERE Xproj.pno = ep.eppno AND Xemp.eno = ep.epeno)
        TAKE *
        """
    )
    session.materialize_view("BIG-ORG", "BIGSNAP")
    return session


def test_live_instantiation(benchmark, setup):
    session = setup
    co = benchmark(lambda: session.query("OUT OF BIG-ORG TAKE *"))
    assert co.cache.total_tuples() > 0


def test_snapshot_load(benchmark, setup):
    session = setup
    co = benchmark(lambda: session.load_snapshot("BIGSNAP"))
    assert co.cache.total_tuples() > 0


def _report_body(setup):
    session = setup
    begin = time.perf_counter()
    live = session.query("OUT OF BIG-ORG TAKE *")
    live_time = time.perf_counter() - begin
    live_queries = session.last_stats.queries_issued
    begin = time.perf_counter()
    snap = session.load_snapshot("BIGSNAP")
    snap_time = time.perf_counter() - begin
    snap_queries = session.last_stats.queries_issued
    assert live.cache.total_tuples() == snap.cache.total_tuples()
    assert live.cache.total_connections() == snap.cache.total_connections()
    report("E8 materialized CO views",
           f"live view   : {live_time*1000:7.1f} ms / {live_queries:3d} queries "
           f"({live.cache.total_tuples()} tuples, "
           f"{live.cache.total_connections()} connections)")
    report("E8 materialized CO views",
           f"snapshot    : {snap_time*1000:7.1f} ms / {snap_queries:3d} queries "
           f"| speedup {live_time/snap_time:5.2f}x")


def test_materialized_report(benchmark, setup):
    """Report wrapper: runs once even under --benchmark-only."""
    benchmark.pedantic(lambda: _report_body(setup), rounds=1, iterations=1)
