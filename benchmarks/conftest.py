"""Shared benchmark fixtures and the report collector.

Every experiment module both (a) registers pytest-benchmark timings and
(b) appends human-readable rows to a session-wide report printed at the end
of the run — the 'same rows/series the paper reports' requirement.

The autouse ``plan_cache_ledger`` fixture additionally snapshots the
engine-wide plan-cache counters around every benchmark test and writes
``BENCH_plan_cache.json`` next to the repo root: per-test wall time plus
plan-cache hits/misses/invalidations and the derived hit rate, with
per-module aggregates.
"""

import json
import pathlib
import time

import pytest

from repro.relational import plancache

_REPORT_SECTIONS = {}
_PLAN_CACHE_LEDGER = {"benchmarks": {}, "modules": {}}
_LEDGER_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_plan_cache.json"


def report(section: str, line: str) -> None:
    _REPORT_SECTIONS.setdefault(section, []).append(line)


@pytest.fixture(autouse=True)
def plan_cache_ledger(request):
    """Per-test plan-cache accounting (wall time + hit/miss deltas)."""
    before = plancache.snapshot_global_stats()
    begin = time.perf_counter()
    yield
    elapsed = time.perf_counter() - begin
    after = plancache.snapshot_global_stats()
    delta = {key: after[key] - before[key] for key in after}
    looked_up = delta["hits"] + delta["misses"]
    entry = {
        "wall_time_s": round(elapsed, 6),
        "plan_cache": delta,
        "hit_rate": round(delta["hits"] / looked_up, 4) if looked_up else None,
    }
    _PLAN_CACHE_LEDGER["benchmarks"][request.node.nodeid] = entry
    module = request.node.nodeid.split("::", 1)[0].rsplit("/", 1)[-1]
    agg = _PLAN_CACHE_LEDGER["modules"].setdefault(
        module,
        {"wall_time_s": 0.0, "hits": 0, "misses": 0, "invalidations": 0},
    )
    agg["wall_time_s"] = round(agg["wall_time_s"] + elapsed, 6)
    agg["hits"] += delta["hits"]
    agg["misses"] += delta["misses"]
    agg["invalidations"] += delta["invalidations"]
    looked_up = agg["hits"] + agg["misses"]
    agg["hit_rate"] = round(agg["hits"] / looked_up, 4) if looked_up else None


@pytest.fixture(scope="session", autouse=True)
def final_report():
    yield
    if _PLAN_CACHE_LEDGER["benchmarks"]:
        _LEDGER_PATH.write_text(json.dumps(_PLAN_CACHE_LEDGER, indent=2) + "\n")
        print(f"\nplan-cache ledger written to {_LEDGER_PATH}")
    if not _REPORT_SECTIONS:
        return
    print("\n")
    print("=" * 72)
    print("EXPERIMENT REPORT (paper-shape summaries)")
    print("=" * 72)
    for section in sorted(_REPORT_SECTIONS):
        print(f"\n--- {section} ---")
        for line in _REPORT_SECTIONS[section]:
            print(line)
