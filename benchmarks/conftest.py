"""Shared benchmark fixtures and the report collector.

Every experiment module both (a) registers pytest-benchmark timings and
(b) appends human-readable rows to a session-wide report printed at the end
of the run — the 'same rows/series the paper reports' requirement.
"""

import pytest

_REPORT_SECTIONS = {}


def report(section: str, line: str) -> None:
    _REPORT_SECTIONS.setdefault(section, []).append(line)


@pytest.fixture(scope="session", autouse=True)
def final_report():
    yield
    if not _REPORT_SECTIONS:
        return
    print("\n")
    print("=" * 72)
    print("EXPERIMENT REPORT (paper-shape summaries)")
    print("=" * 72)
    for section in sorted(_REPORT_SECTIONS):
        print(f"\n--- {section} ---")
        for line in _REPORT_SECTIONS[section]:
            print(line)
