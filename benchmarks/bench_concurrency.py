"""MVCC concurrency benchmarks: reader throughput, conflicts, vacuum (ISSUE 7).

Three experiments, written to ``BENCH_concurrency.json``:

* ``reader_throughput`` — snapshot readers scanning the company database
  while 0 / 1 / 4 writer threads stream budget transfers.  Under MVCC
  readers take no locks, so reader throughput should degrade gracefully
  (GIL contention) rather than collapse behind writer locks; the ledger
  records queries/sec per writer count plus writer conflict/retry totals.
* ``mvcc_overhead`` — the same single-threaded workloads (E1 company CO
  extraction via the row executor, and the vectorized OO1 frontier scan)
  on databases differing only in ``mvcc=``.  The version store is empty
  in both cases, so this measures the pure read-path tax of snapshot
  resolution.  ``benchmarks/check_regression.py`` enforces
  ``MVCC_OVERHEAD_BUDGET`` (default 0.10, i.e. MVCC-on may be at most 10%
  slower than MVCC-off).
* ``vacuum_lag`` — a writer churns versions while vacuum passes run;
  records how many images accumulate between passes and that the final
  pass drains the store (monotonic counters, bounded lag).
"""

import json
import pathlib
import threading
import time

import pytest

from benchmarks.conftest import report
from repro.workloads import company
from repro.workloads.oo1 import build_parts_database, traverse_setwise_sql
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.semantic_rewrite import XNFCompiler
from repro.xnf.views import XNFViewCatalog, resolve

LEDGER_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_concurrency.json"

_RESULTS = {}

#: reader-throughput experiment shape
READER_SECONDS = 1.2
READER_THREADS = 2
WRITER_COUNTS = (0, 1, 4)

#: single-thread overhead experiment
OVERHEAD_REPEATS = 9
TRAVERSAL_PARTS = 1500
TRAVERSAL_DEPTH = 5

#: vacuum experiment
VACUUM_CHURN_TXNS = 120
VACUUM_EVERY = 30


def _interleaved_best(fn_off, fn_on, repeats):
    """Best-of-N for both variants with alternating rounds.

    Interleaving makes the comparison robust against machine-load drift:
    a slow stretch penalises both variants alike instead of whichever one
    happened to run during it.
    """
    fn_off()
    fn_on()  # warm-up: plan cache, buffer pool
    best_off = best_on = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        fn_off()
        best_off = min(best_off, time.perf_counter() - begin)
        begin = time.perf_counter()
        fn_on()
        best_on = min(best_on, time.perf_counter() - begin)
    return best_off, best_on


def test_reader_throughput_under_writers(benchmark):
    """Snapshot readers never block: throughput vs. concurrent writers."""
    results = {}
    for writers in WRITER_COUNTS:
        db = company.figure1_database(mvcc=True)
        stop = threading.Event()
        reads = [0] * READER_THREADS
        writer_stats = {"commits": 0}

        def reader(slot):
            sess = db.connect()
            while not stop.is_set():
                total = sess.execute("SELECT SUM(budget) FROM DEPT").scalar()
                assert total == 3500.0
                reads[slot] += 1

        def writer(wid):
            sess = db.connect()
            src, dst = 1 + (wid % 3), 1 + ((wid + 1) % 3)
            while not stop.is_set():
                def txn():
                    sess.begin()
                    sess.execute(
                        f"UPDATE DEPT SET budget = budget + 1 WHERE dno = {src}"
                    )
                    sess.execute(
                        f"UPDATE DEPT SET budget = budget - 1 WHERE dno = {dst}"
                    )
                    sess.commit()

                sess.run_retryable(
                    txn, retries=200, backoff_s=0.0002, max_backoff_s=0.005
                )
                writer_stats["commits"] += 1

        threads = [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(READER_THREADS)
        ] + [threading.Thread(target=writer, args=(wid,)) for wid in range(writers)]
        for thread in threads:
            thread.start()
        time.sleep(READER_SECONDS)
        stop.set()
        for thread in threads:
            thread.join(60)
            assert not thread.is_alive()

        snapshot = db.metrics_snapshot()
        mvcc_stats = snapshot.get("mvcc", {})
        results[str(writers)] = {
            "reader_qps": round(sum(reads) / READER_SECONDS, 1),
            "writer_commits": writer_stats["commits"],
            "serialization_conflicts": mvcc_stats.get(
                "serialization_conflicts", 0
            ),
            "retries": snapshot.get("txn", {}).get("retries", 0),
        }
        report(
            "mvcc concurrency",
            f"readers vs {writers} writer(s): "
            f"{results[str(writers)]['reader_qps']:8.1f} q/s, "
            f"{writer_stats['commits']} commits, "
            f"{results[str(writers)]['retries']} retries",
        )
    # snapshot readers must keep making progress under write load
    assert results["4"]["reader_qps"] > 0
    _RESULTS["reader_throughput"] = results
    db = company.figure1_database(mvcc=True)
    sess = db.connect()
    benchmark(lambda: sess.execute("SELECT SUM(budget) FROM DEPT").scalar())


def test_mvcc_read_overhead(benchmark):
    """MVCC-on vs MVCC-off on identical single-threaded workloads."""
    overhead = {}

    # E1: company CO extraction through the row executor
    dbs = {m: company.figure1_database(mvcc=m, executor="row") for m in (False, True)}
    schema = resolve(parse_xnf(company.FIGURE1_CO), XNFViewCatalog())
    off_s, on_s = _interleaved_best(
        lambda: XNFCompiler(dbs[False]).instantiate(schema),
        lambda: XNFCompiler(dbs[True]).instantiate(schema),
        OVERHEAD_REPEATS,
    )
    overhead["e1_extraction_row"] = {
        "off_s": round(off_s, 6),
        "on_s": round(on_s, 6),
        "overhead": round(on_s / off_s - 1.0, 4),
    }

    # OO1 frontier traversal through the vectorized executor
    dbs = {
        m: build_parts_database(TRAVERSAL_PARTS, mvcc=m, executor="batch")
        for m in (False, True)
    }
    off_s, on_s = _interleaved_best(
        lambda: traverse_setwise_sql(dbs[False], 17, TRAVERSAL_DEPTH),
        lambda: traverse_setwise_sql(dbs[True], 17, TRAVERSAL_DEPTH),
        OVERHEAD_REPEATS,
    )
    overhead["oo1_traversal_batch"] = {
        "off_s": round(off_s, 6),
        "on_s": round(on_s, 6),
        "overhead": round(on_s / off_s - 1.0, 4),
    }

    for name, stats in overhead.items():
        report(
            "mvcc concurrency",
            f"{name}: off {stats['off_s'] * 1e3:7.1f} ms | "
            f"on {stats['on_s'] * 1e3:7.1f} ms | "
            f"overhead {stats['overhead']:+.1%}",
        )
    _RESULTS["mvcc_overhead"] = overhead
    db = company.figure1_database(mvcc=True, executor="row")
    schema = resolve(parse_xnf(company.FIGURE1_CO), XNFViewCatalog())
    benchmark(lambda: XNFCompiler(db).instantiate(schema))


def test_vacuum_lag(benchmark):
    """Version churn vs. vacuum: lag stays bounded, counters monotonic."""
    db = company.figure1_database(mvcc=True)
    db.mvcc.autovacuum_threshold = 0  # manual vacuum only for this experiment
    sess = db.connect()
    lags = []
    pruned_series = []
    for i in range(VACUUM_CHURN_TXNS):
        sess.begin()
        sess.execute(
            f"UPDATE DEPT SET budget = budget + {1 if i % 2 == 0 else -1} "
            f"WHERE dno = {1 + i % 3}"
        )
        sess.commit()
        if (i + 1) % VACUUM_EVERY == 0:
            before = db.mvcc.store.metrics()
            lags.append(before["version_images"])
            db.vacuum()
            after = db.mvcc.store.metrics()
            assert after["versions_pruned"] >= before["versions_pruned"]
            pruned_series.append(after["versions_pruned"])
    final = db.vacuum()
    stats = db.mvcc.store.metrics()
    # no snapshots open: everything reclaimable must be gone
    assert stats["version_images"] == 0
    assert pruned_series == sorted(pruned_series)
    _RESULTS["vacuum_lag"] = {
        "churn_txns": VACUUM_CHURN_TXNS,
        "vacuum_every": VACUUM_EVERY,
        "max_image_lag": max(lags),
        "versions_pruned": stats["versions_pruned"],
        "entries_dropped": stats["entries_dropped"],
        "final_horizon": final["horizon"],
    }
    report(
        "mvcc concurrency",
        f"vacuum lag: max {max(lags)} images between passes, "
        f"{stats['versions_pruned']} pruned total",
    )
    benchmark(db.vacuum)


@pytest.fixture(scope="module", autouse=True)
def concurrency_ledger():
    yield
    if _RESULTS:
        payload = dict(_RESULTS)
        overhead = payload.get("mvcc_overhead", {})
        if overhead:
            payload["max_overhead"] = max(
                stats["overhead"] for stats in overhead.values()
            )
        LEDGER_PATH.write_text(json.dumps(payload, indent=2) + "\n")
