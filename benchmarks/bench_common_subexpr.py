"""E3 — common-subexpression reuse in the XNF semantic rewrite (4.3).

"These queries typically use common subqueries to avoid unnecessary
redundant computations.  For instance, when we generate the tuples of a
parent node, we output them, and also use them again to find the tuples of
the associated children."

Ablation: ``reuse_common=False`` re-derives each node's defining query at
every use.  Expected shape: reuse wins, and the gap widens with the number
of relationships touching a node (each extra edge re-runs the defining
query in the ablation).
"""

import time

import pytest

from benchmarks.conftest import report
from repro.workloads import company
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.semantic_rewrite import XNFCompiler
from repro.xnf.views import XNFViewCatalog, resolve


@pytest.fixture(scope="module")
def setup():
    db = company.scaled_database(departments=80, employees_per_dept=25, projects_per_dept=5)
    # Node queries are deliberately expensive (correlated aggregating
    # subqueries - 'employees above their department average'),
    # so sharing their results is worth something; Xemp and Xproj are each
    # used by several relationships (the paper's shared-subquery case).
    schema_text = """
    OUT OF
      Xdept AS (SELECT * FROM DEPT WHERE budget > 500),
      Xemp AS (SELECT * FROM EMP e WHERE e.sal >= (SELECT AVG(e2.sal) FROM EMP e2 WHERE e2.edno = e.edno)),
      Xproj AS (SELECT * FROM PROJ p WHERE p.budget >= (SELECT AVG(p2.budget) FROM PROJ p2 WHERE p2.pdno = p.pdno)),
      employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno),
      ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno),
      projmanagement AS (RELATE Xemp, Xproj WHERE Xemp.eno = Xproj.pmgrno),
      membership AS (RELATE Xproj, Xemp USING EMPPROJ ep
                     WHERE Xproj.pno = ep.eppno AND Xemp.eno = ep.epeno)
    TAKE *
    """
    return db, schema_text


def _schema(text):
    return resolve(parse_xnf(text), XNFViewCatalog())


def test_instantiation_with_reuse(benchmark, setup):
    db, text = setup
    compiler_stats = {}

    def run():
        compiler = XNFCompiler(db, reuse_common=True)
        instance = compiler.instantiate(_schema(text))
        compiler_stats["candidates"] = compiler.stats.candidate_queries_run
        return instance.total_tuples()

    total = benchmark(run)
    assert total > 0
    assert compiler_stats["candidates"] <= 3  # at most one run per node


def test_instantiation_without_reuse(benchmark, setup):
    db, text = setup

    def run():
        compiler = XNFCompiler(db, reuse_common=False)
        return compiler.instantiate(_schema(text)).total_tuples()

    assert benchmark(run) > 0


def _report_body(setup):
    db, text = setup
    results = {}
    for reuse in (True, False):
        compiler = XNFCompiler(db, reuse_common=reuse)
        begin = time.perf_counter()
        instance = compiler.instantiate(_schema(text))
        elapsed = time.perf_counter() - begin
        results[reuse] = (elapsed, compiler.stats.candidate_queries_run,
                          instance.total_tuples())
    assert results[True][2] == results[False][2]  # identical instances
    report("E3 common-subexpression reuse",
           f"with reuse   : {results[True][0]*1000:7.1f} ms, "
           f"{results[True][1]:3d} node-query evaluations")
    report("E3 common-subexpression reuse",
           f"without reuse: {results[False][0]*1000:7.1f} ms, "
           f"{results[False][1]:3d} node-query evaluations "
           f"| reuse speedup {results[False][0]/results[True][0]:5.2f}x")
    assert results[False][1] > results[True][1]

def test_common_subexpr_report(benchmark, setup):
    """Report wrapper: runs once even under --benchmark-only."""
    benchmark.pedantic(lambda: _report_body(setup), rounds=1, iterations=1)
