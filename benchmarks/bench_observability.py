"""Observability cost ledger: SYS-table scan cost and tracing overhead.

Four numbers guard the "observability is near-free" claim (ISSUE 5
satellite f; ISSUE 10 extends it end to end), written to
``BENCH_observability.json`` for ``benchmarks/check_regression.py``:

* ``sys_scan_ms`` — median wall time of the acceptance query
  (``SELECT … FROM SYS_STAT_STATEMENTS ORDER BY mean_ms DESC``) plus a
  two-way SYS join, over a registry warmed with a few hundred statements.
* ``tracing_overhead`` — relative cost of running a cached, pre-parsed
  SELECT with tracing + statement stats ON vs. OFF.  Trials pair the two
  configurations with alternating order (traced-first, then
  untraced-first — ABBA) so CPU-frequency and cache-warmth drift cancels
  instead of systematically favouring whichever side runs second; the
  ledger records the best of three block **medians** of per-pair ratios.
  The CI gate budget is 5% (``TRACING_OVERHEAD_BUDGET``).
* ``server_tracing_overhead`` — the same ABBA ratio across the wire: a
  tracing client (TraceContext injected into every frame) against a real
  loopback server adopting it, opening the ``wire.<op>`` span and
  building the per-statement profile, vs. both tracers off.  Budget 10%
  (``REMOTE_TRACING_OVERHEAD_BUDGET``).
* ``sharded_tracing_overhead`` — the ABBA ratio for a sharded (4-way) CO
  extraction, where every scatter/delta worker adopts the statement's
  TraceContext and opens a per-shard span.  Same 10% budget.

The run also writes ``BENCH_trace_spans.jsonl`` (a short non-timed
stanza): client- and server-side JSONL trace records of the same
statements, stitchable on ``trace_id`` — uploaded as a CI artifact.
"""

import gc
import json
import pathlib
import statistics
import time

import pytest

from benchmarks.conftest import report
from repro.client.client import WireClient
from repro.obs.export import JsonlTraceExporter
from repro.relational.engine import Database
from repro.relational.sql.parser import parse_statements
from repro.server.server import ServerThread
from repro.workloads import oo1
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.semantic_rewrite import XNFCompiler
from repro.xnf.views import XNFViewCatalog, resolve

LEDGER_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_observability.json"
TRACE_SPANS_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_trace_spans.jsonl"
)

_RESULTS = {}

ACCEPTANCE_SQL = (
    "SELECT fingerprint, calls, mean_ms FROM SYS_STAT_STATEMENTS "
    "ORDER BY mean_ms DESC"
)
JOIN_SQL = (
    "SELECT s.fingerprint, sp.name, sp.duration_ms "
    "FROM SYS_STAT_STATEMENTS s "
    "JOIN SYS_TRACE_SPANS sp ON s.fingerprint = sp.fingerprint"
)


def _warmed_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
    db.execute("BEGIN")
    for i in range(300):
        db.execute(f"INSERT INTO t VALUES ({i}, {i % 7})")
    db.execute("COMMIT")
    db.execute("ANALYZE")
    for i in range(200):
        db.execute(f"SELECT * FROM t WHERE b = {i % 7}")
    return db


def test_sys_scan_cost(benchmark):
    db = _warmed_db()

    def scan():
        rows = db.execute(ACCEPTANCE_SQL).rows
        rows += db.execute(JOIN_SQL).rows
        return len(rows)

    assert scan() > 0
    samples = []
    for _ in range(15):
        begin = time.perf_counter()
        scan()
        samples.append((time.perf_counter() - begin) * 1e3)
    sys_scan_ms = round(statistics.median(samples), 3)
    _RESULTS["sys_scan_ms"] = sys_scan_ms
    report("observability", f"SYS scan (acceptance + join): {sys_scan_ms:.3f} ms")
    benchmark(scan)


def test_tracing_overhead(benchmark):
    """Traced/untraced cost ratio over a representative statement mix.

    The mix (point query, aggregate, self-join) weights per-statement
    tracing cost the way a real workload would; every statement is
    pre-parsed and plan-cached so the ratio isolates the per-execution
    tracing + statement-stats work.
    """
    db = _warmed_db()
    mix = [
        parse_statements("SELECT * FROM t WHERE b = 3")[0]
    ] * 6 + [
        parse_statements("SELECT b, count(*), sum(a) FROM t GROUP BY b")[0]
    ] * 2 + [
        parse_statements(
            "SELECT x.a, y.a FROM t x JOIN t y ON x.a = y.a WHERE x.b = 1"
        )[0]
    ]
    for statement in mix:
        db.execute_ast(statement)  # warm the plan cache for both configs

    def batch(n=50):
        for _ in range(n):
            for statement in mix:
                db.execute_ast(statement)

    def configure(enabled: bool):
        db.tracer.enabled = enabled
        db.statement_stats.enabled = enabled

    def timed(enabled: bool) -> float:
        configure(enabled)
        begin = time.perf_counter()
        batch()
        return time.perf_counter() - begin

    # warm-up both configurations before measuring
    for enabled in (True, False):
        configure(enabled)
        batch()

    overhead, block_estimates, all_ratios = _abba_overhead(timed, blocks=5)
    configure(True)
    _RESULTS["tracing_overhead"] = overhead
    _RESULTS["tracing_block_medians"] = [round(b, 4) for b in block_estimates]
    _RESULTS["tracing_pair_ratios"] = [round(r, 4) for r in all_ratios]
    report(
        "observability",
        f"tracing+stats overhead: {overhead:+.2%} "
        f"(best of 5 block medians, 10 paired batches each)",
    )
    benchmark(lambda: batch(2))


def _abba_overhead(timed, blocks: int = 3, pairs: int = 10):
    """Best-of-blocks median of paired ``timed(True)/timed(False)`` ratios.

    The true overhead is a few µs per ~150µs statement; scheduler and
    allocator noise in CI easily exceeds it per batch.  Estimate per
    block as the median of paired (traced/untraced) ratios — pairs
    alternate which configuration runs first, so warm-up drift inside a
    pair cancels over the block instead of biasing the ratio — then take
    the best of the independent blocks: noise only ever inflates a
    block, so the minimum is the tightest *stable* estimate.
    """
    block_estimates = []
    all_ratios = []
    gc.disable()  # a collection landing in one batch would skew its ratio
    try:
        for _ in range(blocks):
            # collect at the block boundary: with the collector disabled,
            # cyclic garbage from earlier blocks' traced batches would
            # otherwise pile up and slow later blocks' allocations —
            # systematically inflating the traced side of the ratio.
            gc.collect()
            ratios = []
            for pair in range(pairs):
                if pair % 2 == 0:
                    traced = timed(True)
                    untraced = timed(False)
                else:
                    untraced = timed(False)
                    traced = timed(True)
                ratios.append(traced / untraced - 1.0)
            block_estimates.append(statistics.median(ratios))
            all_ratios.extend(ratios)
    finally:
        gc.enable()
    return round(min(block_estimates), 4), block_estimates, all_ratios


def test_server_tracing_overhead(benchmark):
    """Distributed-tracing cost across the wire (ISSUE 10 budget: 10%).

    Traced = client injects a TraceContext into every frame AND the
    server adopts it, opens the ``wire.<op>`` span, and builds the
    per-statement profile.  Untraced = both tracers off (the frames then
    carry no trace field at all) — so the ratio prices the whole
    end-to-end tracing path, not just one side.
    """
    db = _warmed_db()
    with ServerThread(db, max_connections=8) as server:
        with WireClient(port=server.port, tracing=True) as client:

            def batch(n=12):
                for _ in range(n):
                    client.execute("SELECT * FROM t WHERE b = 3")
                    client.execute(
                        "SELECT b, count(*), sum(a) FROM t GROUP BY b"
                    )

            def configure(enabled: bool):
                db.tracer.enabled = enabled
                client.tracer.enabled = enabled

            def timed(enabled: bool) -> float:
                configure(enabled)
                begin = time.perf_counter()
                batch()
                return time.perf_counter() - begin

            for enabled in (True, False):
                configure(enabled)
                batch()
            overhead, block_estimates, _ = _abba_overhead(timed, pairs=6)
            configure(True)

            # Non-timed stanza: write the stitched client/server trace
            # JSONL that CI uploads as an artifact.  Both sides append to
            # the same file; records join on trace_id.
            TRACE_SPANS_PATH.unlink(missing_ok=True)
            server_log = JsonlTraceExporter(str(TRACE_SPANS_PATH))
            client_log = JsonlTraceExporter(str(TRACE_SPANS_PATH))
            db.tracer.exporter = server_log
            client.tracer.exporter = client_log
            batch(3)
            db.tracer.exporter = None
            client.tracer.exporter = None
            server_log.close()
            client_log.close()

            benchmark(lambda: batch(2))
    _RESULTS["server_tracing_overhead"] = overhead
    _RESULTS["server_tracing_block_medians"] = [
        round(b, 4) for b in block_estimates
    ]
    report(
        "observability",
        f"server tracing overhead: {overhead:+.2%} "
        f"(best of 3 block medians, 6 paired wire batches each)",
    )


def test_sharded_tracing_overhead(benchmark):
    """Distributed-tracing cost on the sharded extraction path (10%).

    Traced = every scatter/delta worker adopts the statement's
    TraceContext and opens a per-shard span linked into the parent tree;
    untraced = the tracer is off end to end.  The 4-shard OO1 parts CO
    exercises both the candidate scatter and partitioned-delta pools.
    """
    db = oo1.build_parts_database(300, seed=11, shards=4)
    compiler = XNFCompiler(db, scatter=True)
    schema = resolve(parse_xnf(oo1.PARTS_CO), XNFViewCatalog())

    def extract():
        compiler.instantiate(schema)

    def timed(enabled: bool) -> float:
        db.tracer.enabled = enabled
        begin = time.perf_counter()
        extract()
        return time.perf_counter() - begin

    for enabled in (True, False):
        db.tracer.enabled = enabled
        extract()
    overhead, block_estimates, _ = _abba_overhead(timed, pairs=6)
    db.tracer.enabled = True
    _RESULTS["sharded_tracing_overhead"] = overhead
    _RESULTS["sharded_tracing_block_medians"] = [
        round(b, 4) for b in block_estimates
    ]
    report(
        "observability",
        f"sharded tracing overhead: {overhead:+.2%} "
        f"(best of 3 block medians, 6 paired extractions each)",
    )
    benchmark(extract)


@pytest.fixture(scope="module", autouse=True)
def observability_ledger():
    yield
    if _RESULTS:
        LEDGER_PATH.write_text(json.dumps(_RESULTS, indent=2) + "\n")
