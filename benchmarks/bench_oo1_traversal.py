"""E1 — Cattell OO1-style benchmark (section 4.2's performance claim).

Reproduces the table the paper alludes to: lookup / traversal / insert on a
parts database, comparing

* XNF cache navigation (pointer dereferencing, the paper's API),
* per-step SQL through the full engine (the 'regular SQL DBMS interface'),
* level-wise set-oriented SQL (relational best-effort without a cache).

Expected shape: cache beats per-step SQL by **orders of magnitude** on
traversal — "comparable to the performance improvement of OODBMS over
relational DBMSs reported in Cattell's benchmark".
"""

import random
import time

import pytest

from benchmarks.conftest import report
from repro.workloads import oo1
from repro.xnf.api import XNFSession

NUM_PARTS = 800
DEPTH = 5
SEED = 99


@pytest.fixture(scope="module")
def setup():
    db = oo1.build_parts_database(NUM_PARTS, seed=SEED)
    session = XNFSession(db)
    co = oo1.load_parts_co(session)
    rng = random.Random(SEED)
    starts = [rng.randint(1, NUM_PARTS) for _ in range(3)]
    lookup_ids = [rng.randint(1, NUM_PARTS) for _ in range(100)]
    return db, co, starts, lookup_ids


def test_traversal_cache(benchmark, setup):
    db, co, starts, _ = setup
    result = benchmark(
        lambda: sum(oo1.traverse_cache(co, s, DEPTH) for s in starts)
    )
    assert result > 0


def test_traversal_per_step_sql(benchmark, setup):
    db, co, starts, _ = setup
    result = benchmark(
        lambda: sum(oo1.traverse_sql(db, s, DEPTH) for s in starts)
    )
    assert result > 0


def test_traversal_setwise_sql(benchmark, setup):
    db, co, starts, _ = setup
    result = benchmark(
        lambda: sum(oo1.traverse_setwise_sql(db, s, DEPTH) for s in starts)
    )
    assert result > 0


def test_lookup_cache(benchmark, setup):
    _, co, _, lookup_ids = setup
    found = benchmark(lambda: oo1.lookup_cache(co, lookup_ids))
    assert found == len(lookup_ids)


def test_lookup_sql(benchmark, setup):
    db, _, _, lookup_ids = setup
    found = benchmark(lambda: oo1.lookup_sql(db, lookup_ids))
    assert found == len(lookup_ids)


def _report_body(setup):
    """The headline claim, asserted: traversal via cache must beat per-step
    SQL by at least one order of magnitude (the paper claims 'orders')."""
    db, co, starts, lookup_ids = setup

    def timed(fn):
        begin = time.perf_counter()
        fn()
        return time.perf_counter() - begin

    cache_time = timed(
        lambda: [oo1.traverse_cache(co, s, DEPTH) for s in starts]
    )
    sql_time = timed(lambda: [oo1.traverse_sql(db, s, DEPTH) for s in starts])
    setwise_time = timed(
        lambda: [oo1.traverse_setwise_sql(db, s, DEPTH) for s in starts]
    )
    lookup_cache_time = timed(lambda: oo1.lookup_cache(co, lookup_ids))
    lookup_sql_time = timed(lambda: oo1.lookup_sql(db, lookup_ids))

    report("E1 OO1 (Cattell) benchmark",
           f"parts={NUM_PARTS} depth={DEPTH} | visits check equal for both styles")
    report("E1 OO1 (Cattell) benchmark",
           f"traversal: cache {cache_time*1000:9.1f} ms | per-step SQL "
           f"{sql_time*1000:9.1f} ms | setwise SQL {setwise_time*1000:9.1f} ms "
           f"| speedup cache vs SQL = {sql_time/cache_time:7.0f}x")
    report("E1 OO1 (Cattell) benchmark",
           f"lookup   : cache {lookup_cache_time*1000:9.1f} ms | SQL "
           f"{lookup_sql_time*1000:9.1f} ms "
           f"| speedup = {lookup_sql_time/lookup_cache_time:7.0f}x")
    assert sql_time / cache_time >= 10, "orders-of-magnitude claim failed"
    assert lookup_sql_time / lookup_cache_time >= 3

def test_oo1_report_orders_of_magnitude(benchmark, setup):
    """Report wrapper: runs once even under --benchmark-only."""
    benchmark.pedantic(lambda: _report_body(setup), rounds=1, iterations=1)
