"""Row vs. batch executor: the gated vectorization speedups (ISSUE 6).

Two workloads, each run through two databases that differ only in
``executor=`` mode, with result checksums asserted equal before any
timing is trusted:

* ``oo1_setwise_traversal`` — the OO1 set-oriented traversal
  (one ``cfrom IN (<frontier>)`` query per level, section 4.2).  Frontier
  filters over CONN are exactly the scan+filter shape the batch executor
  compiles into selection-vector kernels.
* ``xnf_semantic_rewrite`` — working-set CO extraction: the semantic
  rewrite (E1 OO1 schema, recursive ``connects`` edge exercising the E6
  fixpoint) instantiates a compound-restriction CO that keeps ~0.4% of a
  large PART table — the paper's stated selectivity regime, where every
  generated candidate query scans and filters a large input.

The measured wall times, rows/sec and speedups are written to
``BENCH_vectorized.json``; ``benchmarks/check_regression.py`` enforces the
minimum-speedup floor (``VEC_SPEEDUP_FLOOR``, default 3x) so the headline
number cannot silently regress.
"""

import json
import pathlib
import time

import pytest

from benchmarks.conftest import report
from repro.workloads.oo1 import build_parts_database, traverse_setwise_sql
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.semantic_rewrite import XNFCompiler
from repro.xnf.views import XNFViewCatalog, resolve

LEDGER_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_vectorized.json"

_RESULTS = {}

#: OO1 traversal workload: small database, deep set-oriented traversal.
TRAVERSAL_PARTS = 2000
TRAVERSAL_DEPTH = 6
TRAVERSAL_STARTS = (17, TRAVERSAL_PARTS // 2, TRAVERSAL_PARTS - 9)

#: CO-extraction workload: large database, tiny working set.  The buffer
#: pool is sized to hold the base tables so both modes measure execution,
#: not simulated page eviction.
EXTRACTION_PARTS = 20000
EXTRACTION_BUFFER_PAGES = 8192

#: Compound SUCH-THAT restriction: ~0.4% of PART survives (the paper's
#: 1/10^4-ish working-set selectivity), so the candidate query is a pure
#: scan+filter over a large input — the vectorized executor's home turf —
#: while the recursive ``connects`` edge drives the reachability fixpoint.
WORKING_SET_CO = """
OUT OF
 Xlib AS DESIGNLIB,
 Xpart AS (SELECT * FROM PART
           WHERE x < 10000 AND y < 10000
             AND ptype IN ('part-type1', 'part-type2',
                           'part-type3', 'part-type4')),
 contains AS (RELATE Xlib, Xpart WHERE Xlib.lid = Xpart.lib),
 connects AS (RELATE Xpart source, Xpart target
              WITH ATTRIBUTES c.ctype AS ctype, c.clength AS clength
              USING CONN c
              WHERE source.pid = c.cfrom AND target.pid = c.cto)
TAKE *
"""


def _best_of(fn, repeats):
    """(best wall seconds, last result) after one untimed warm-up run."""
    fn()
    best = float("inf")
    result = None
    for _ in range(repeats):
        begin = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begin)
    return best, result


def _record(name, row_s, batch_s, rows):
    speedup = row_s / batch_s
    _RESULTS[name] = {
        "row_s": round(row_s, 6),
        "batch_s": round(batch_s, 6),
        "speedup": round(speedup, 2),
        "rows": rows,
        "row_rows_per_s": round(rows / row_s, 1),
        "batch_rows_per_s": round(rows / batch_s, 1),
    }
    report(
        "vectorized executor",
        f"{name}: row {row_s * 1e3:8.1f} ms | batch {batch_s * 1e3:8.1f} ms "
        f"| {speedup:5.1f}x ({rows} rows)",
    )
    return speedup


def test_setwise_traversal_speedup(benchmark):
    times = {}
    visits = {}

    def traverse(db):
        return sum(
            traverse_setwise_sql(db, start, TRAVERSAL_DEPTH)
            for start in TRAVERSAL_STARTS
        )

    dbs = {}
    for mode in ("row", "batch"):
        dbs[mode] = build_parts_database(TRAVERSAL_PARTS, executor=mode)
        times[mode], visits[mode] = _best_of(lambda m=mode: traverse(dbs[m]), 2)
    assert visits["row"] == visits["batch"]
    speedup = _record(
        "oo1_setwise_traversal", times["row"], times["batch"], visits["row"]
    )
    assert speedup > 1.0
    benchmark(lambda: traverse(dbs["batch"]))


def test_xnf_semantic_rewrite_speedup(benchmark):
    schema = resolve(parse_xnf(WORKING_SET_CO), XNFViewCatalog())
    times = {}
    shapes = {}
    dbs = {}

    for mode in ("row", "batch"):
        db = build_parts_database(
            EXTRACTION_PARTS,
            executor=mode,
            buffer_capacity=EXTRACTION_BUFFER_PAGES,
        )
        dbs[mode] = db
        times[mode], instance = _best_of(
            lambda d=db: XNFCompiler(d).instantiate(schema), 3
        )
        shapes[mode] = (
            instance.total_tuples(),
            instance.total_connections(),
            sorted(
                (name, sorted(rows)) for name, rows in instance.rows.items()
            ),
        )
    assert shapes["row"] == shapes["batch"]
    tuples, connections, _ = shapes["row"]
    assert tuples > 0 and connections > 0  # the CO is not vacuously empty
    speedup = _record(
        "xnf_semantic_rewrite",
        times["row"],
        times["batch"],
        tuples + connections,
    )
    assert speedup > 1.0
    benchmark(lambda: XNFCompiler(dbs["batch"]).instantiate(schema))


@pytest.fixture(scope="module", autouse=True)
def vectorized_ledger():
    yield
    if _RESULTS:
        payload = {
            "workloads": _RESULTS,
            "min_speedup": min(w["speedup"] for w in _RESULTS.values()),
        }
        LEDGER_PATH.write_text(json.dumps(payload, indent=2) + "\n")
