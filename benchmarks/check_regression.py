#!/usr/bin/env python
"""Perf-regression gate over the benchmark plan-cache ledger.

Compares the per-module aggregates of a fresh ``BENCH_plan_cache.json``
(written by the benchmark smoke run, see ``benchmarks/conftest.py``)
against the committed ``benchmarks/baseline.json``:

* **wall time** — a module may not be slower than ``baseline * (1 + tol)``,
  with ``tol`` = ``PERF_TOLERANCE`` (default 0.30, i.e. ±30%).  Modules
  whose baseline wall time is below ``PERF_WALL_FLOOR_S`` (default 0.1s)
  are exempt: at that scale the signal is all noise.
* **plan-cache hit rate** — deterministic, so the band is tight: a module
  may not lose more than ``PERF_HIT_RATE_BAND`` (default 0.05 absolute)
  against its baseline hit rate.
* a module present in the baseline but missing from the fresh ledger
  fails the gate (a silently-skipped benchmark is a regression too);
  a new module not yet in the baseline is reported but passes.

It additionally gates the observability cost ledger
(``BENCH_observability.json``, written by ``bench_observability.py``):

* **tracing overhead** — the measured tracing + statement-stats cost
  ratio may not exceed ``TRACING_OVERHEAD_BUDGET`` (default 0.05, i.e.
  the ISSUE's 5% budget);
* **distributed tracing overhead** — the end-to-end wire ratio
  (``server_tracing_overhead``: client TraceContext injection + server
  adoption + wire.<op> span + profile build) and the sharded-extraction
  ratio (``sharded_tracing_overhead``: per-shard spans with explicit
  context handoff) may not exceed ``REMOTE_TRACING_OVERHEAD_BUDGET``
  (default 0.10 — tracing must be cheap enough to stay on in
  production even across threads and the wire);
* **SYS scan cost** — the acceptance query + SYS join must stay under
  ``SYS_SCAN_BUDGET_MS`` (default 50 ms — generous; it guards against
  accidentally quadratic snapshot providers, not µs-level drift);
* a missing observability ledger fails the gate.

And the vectorized-executor ledger (``BENCH_vectorized.json``, written by
``bench_vectorized.py``):

* **batch speedup** — every gated workload (setwise OO1 traversal, XNF
  semantic-rewrite extraction) must show the batch executor at least
  ``VEC_SPEEDUP_FLOOR`` (default 3.0) times faster than the row executor;
* a missing vectorized ledger fails the gate.

And the MVCC concurrency ledger (``BENCH_concurrency.json``, written by
``bench_concurrency.py``):

* **MVCC read overhead** — every measured workload must show snapshot
  resolution costing at most ``MVCC_OVERHEAD_BUDGET`` (default 0.10,
  i.e. MVCC-on at most 10% slower than MVCC-off);
* **reader progress** — snapshot readers must keep a positive query rate
  with the maximum writer count attached (readers never block on locks);
* a missing concurrency ledger fails the gate.

And the sharding ledger (``BENCH_sharding.json``, written by
``bench_sharding.py``):

* **sharded speedup** — every gated workload (CO extraction at 10x data)
  must show the 4-shard database at least ``SHARD_SPEEDUP_FLOOR``
  (default 2.0) times faster than the unsharded one — the work reduction
  from partition-bound/zone-map shard pruning, not thread parallelism;
* **equivalence** — the ledger's ``equivalent`` flag must be true: the
  sharded extraction was canonicalised and compared bit-for-bit against
  the unsharded result before any timing was trusted;
* a missing sharding ledger fails the gate.

And the wire-server ledger (``BENCH_server.json``, written by
``bench_server.py``):

* **session survival** — ``failed_sessions`` must be exactly 0 and the
  run must have used at least ``SERVER_CLIENTS_FLOOR`` (default 32)
  concurrent loopback clients;
* **tail latency** — the overall p99 must stay under
  ``SERVER_P99_BUDGET_MS`` (default 5000 ms — a liveness bound for slow
  CI machines, not a µs-level target);
* **throughput** — overall throughput must stay above
  ``SERVER_THROUGHPUT_FLOOR`` (default 10 ops/s);
* a missing server ledger fails the gate.

``--update`` regenerates the baseline from the fresh ledger (run the
benchmark smoke first, then commit the result).

Exit status 0 = gate passed, 1 = regression, 2 = usage/IO problem.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
LEDGER_PATH = HERE.parent / "BENCH_plan_cache.json"
OBSERVABILITY_LEDGER_PATH = HERE.parent / "BENCH_observability.json"
VECTORIZED_LEDGER_PATH = HERE.parent / "BENCH_vectorized.json"
CONCURRENCY_LEDGER_PATH = HERE.parent / "BENCH_concurrency.json"
SERVER_LEDGER_PATH = HERE.parent / "BENCH_server.json"
SHARDING_LEDGER_PATH = HERE.parent / "BENCH_sharding.json"
BASELINE_PATH = HERE / "baseline.json"

TOLERANCE = float(os.environ.get("PERF_TOLERANCE", "0.30"))
WALL_FLOOR_S = float(os.environ.get("PERF_WALL_FLOOR_S", "0.1"))
HIT_RATE_BAND = float(os.environ.get("PERF_HIT_RATE_BAND", "0.05"))
TRACING_OVERHEAD_BUDGET = float(
    os.environ.get("TRACING_OVERHEAD_BUDGET", "0.05")
)
REMOTE_TRACING_OVERHEAD_BUDGET = float(
    os.environ.get("REMOTE_TRACING_OVERHEAD_BUDGET", "0.10")
)
SYS_SCAN_BUDGET_MS = float(os.environ.get("SYS_SCAN_BUDGET_MS", "50.0"))
VEC_SPEEDUP_FLOOR = float(os.environ.get("VEC_SPEEDUP_FLOOR", "3.0"))
MVCC_OVERHEAD_BUDGET = float(os.environ.get("MVCC_OVERHEAD_BUDGET", "0.10"))
SERVER_CLIENTS_FLOOR = int(os.environ.get("SERVER_CLIENTS_FLOOR", "32"))
SERVER_P99_BUDGET_MS = float(os.environ.get("SERVER_P99_BUDGET_MS", "5000.0"))
SERVER_THROUGHPUT_FLOOR = float(
    os.environ.get("SERVER_THROUGHPUT_FLOOR", "10.0")
)
SHARD_SPEEDUP_FLOOR = float(os.environ.get("SHARD_SPEEDUP_FLOOR", "2.0"))

#: Workloads the vectorized ledger must contain — a silently-dropped
#: workload would otherwise pass the floor vacuously.
VEC_REQUIRED_WORKLOADS = ("oo1_setwise_traversal", "xnf_semantic_rewrite")

#: Workloads the concurrency ledger must contain, same rationale.
MVCC_REQUIRED_WORKLOADS = ("e1_extraction_row", "oo1_traversal_batch")

#: Workloads the sharding ledger must contain, same rationale.
SHARD_REQUIRED_WORKLOADS = ("co_extraction", "oo1_setwise_traversal")


def load(path: pathlib.Path) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def update_baseline(ledger: dict) -> None:
    baseline = {
        "note": (
            "Per-module benchmark baseline for check_regression.py. "
            "Regenerate with: run the benchmark smoke modules, then "
            "`python benchmarks/check_regression.py --update`."
        ),
        "modules": {
            module: {
                "wall_time_s": agg["wall_time_s"],
                "hit_rate": agg.get("hit_rate"),
            }
            for module, agg in sorted(ledger["modules"].items())
        },
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"baseline written to {BASELINE_PATH}")
    for module, agg in baseline["modules"].items():
        print(
            f"  {module}: wall={agg['wall_time_s']:.3f}s "
            f"hit_rate={agg['hit_rate']}"
        )


def check(ledger: dict, baseline: dict) -> int:
    failures = []
    current = ledger.get("modules", {})
    for module, base in sorted(baseline.get("modules", {}).items()):
        agg = current.get(module)
        if agg is None:
            failures.append(f"{module}: present in baseline but not run")
            continue
        base_wall = base["wall_time_s"]
        wall = agg["wall_time_s"]
        if base_wall >= WALL_FLOOR_S:
            limit = base_wall * (1.0 + TOLERANCE)
            verdict = "FAIL" if wall > limit else "ok"
            print(
                f"{module}: wall {wall:.3f}s vs baseline {base_wall:.3f}s "
                f"(limit {limit:.3f}s) {verdict}"
            )
            if wall > limit:
                failures.append(
                    f"{module}: wall time {wall:.3f}s exceeds "
                    f"{limit:.3f}s (+{TOLERANCE:.0%} over baseline)"
                )
        else:
            print(
                f"{module}: wall {wall:.3f}s (baseline {base_wall:.3f}s "
                f"below {WALL_FLOOR_S}s floor, not gated)"
            )
        base_rate = base.get("hit_rate")
        rate = agg.get("hit_rate")
        if base_rate is not None:
            if rate is None or rate < base_rate - HIT_RATE_BAND:
                failures.append(
                    f"{module}: plan-cache hit rate {rate} fell below "
                    f"baseline {base_rate} - {HIT_RATE_BAND}"
                )
            else:
                print(
                    f"{module}: hit_rate {rate} vs baseline {base_rate} ok"
                )
    for module in sorted(set(current) - set(baseline.get("modules", {}))):
        print(f"{module}: no baseline yet (run --update to adopt)")
    if failures:
        print("\nperf-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf-regression gate passed")
    return 0


def check_observability(obs: dict) -> int:
    """Gate the observability cost ledger (tracing budget, SYS scan)."""
    failures = []
    overhead = obs.get("tracing_overhead")
    if overhead is None:
        failures.append("observability: ledger lacks tracing_overhead")
    else:
        verdict = "FAIL" if overhead > TRACING_OVERHEAD_BUDGET else "ok"
        print(
            f"observability: tracing overhead {overhead:+.2%} "
            f"(budget {TRACING_OVERHEAD_BUDGET:.0%}) {verdict}"
        )
        if overhead > TRACING_OVERHEAD_BUDGET:
            failures.append(
                f"observability: tracing overhead {overhead:+.2%} exceeds "
                f"the {TRACING_OVERHEAD_BUDGET:.0%} budget"
            )
    for key, label in (
        ("server_tracing_overhead", "server (wire) tracing overhead"),
        ("sharded_tracing_overhead", "sharded extraction tracing overhead"),
    ):
        remote = obs.get(key)
        if remote is None:
            failures.append(f"observability: ledger lacks {key}")
            continue
        verdict = "FAIL" if remote > REMOTE_TRACING_OVERHEAD_BUDGET else "ok"
        print(
            f"observability: {label} {remote:+.2%} "
            f"(budget {REMOTE_TRACING_OVERHEAD_BUDGET:.0%}) {verdict}"
        )
        if remote > REMOTE_TRACING_OVERHEAD_BUDGET:
            failures.append(
                f"observability: {label} {remote:+.2%} exceeds the "
                f"{REMOTE_TRACING_OVERHEAD_BUDGET:.0%} budget"
            )
    scan_ms = obs.get("sys_scan_ms")
    if scan_ms is None:
        failures.append("observability: ledger lacks sys_scan_ms")
    else:
        verdict = "FAIL" if scan_ms > SYS_SCAN_BUDGET_MS else "ok"
        print(
            f"observability: SYS scan {scan_ms:.3f} ms "
            f"(budget {SYS_SCAN_BUDGET_MS:.0f} ms) {verdict}"
        )
        if scan_ms > SYS_SCAN_BUDGET_MS:
            failures.append(
                f"observability: SYS scan {scan_ms:.3f} ms exceeds "
                f"{SYS_SCAN_BUDGET_MS:.0f} ms"
            )
    if failures:
        print("\nobservability gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("observability gate passed")
    return 0


def check_vectorized(ledger: dict) -> int:
    """Gate the vectorized-executor ledger (minimum batch speedup)."""
    failures = []
    workloads = ledger.get("workloads", {})
    for name in VEC_REQUIRED_WORKLOADS:
        if name not in workloads:
            failures.append(f"vectorized: workload {name} missing from ledger")
    for name, stats in sorted(workloads.items()):
        speedup = stats.get("speedup")
        if speedup is None:
            failures.append(f"vectorized: workload {name} lacks a speedup")
            continue
        verdict = "FAIL" if speedup < VEC_SPEEDUP_FLOOR else "ok"
        print(
            f"vectorized: {name} {speedup:.2f}x "
            f"(row {stats.get('row_s', float('nan')):.3f}s, "
            f"batch {stats.get('batch_s', float('nan')):.3f}s; "
            f"floor {VEC_SPEEDUP_FLOOR:.1f}x) {verdict}"
        )
        if speedup < VEC_SPEEDUP_FLOOR:
            failures.append(
                f"vectorized: {name} speedup {speedup:.2f}x below the "
                f"{VEC_SPEEDUP_FLOOR:.1f}x floor"
            )
    if failures:
        print("\nvectorized gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("vectorized gate passed")
    return 0


def check_concurrency(ledger: dict) -> int:
    """Gate the MVCC concurrency ledger (read overhead, reader progress)."""
    failures = []
    overhead = ledger.get("mvcc_overhead", {})
    for name in MVCC_REQUIRED_WORKLOADS:
        if name not in overhead:
            failures.append(f"concurrency: workload {name} missing from ledger")
    for name, stats in sorted(overhead.items()):
        ratio = stats.get("overhead")
        if ratio is None:
            failures.append(f"concurrency: workload {name} lacks an overhead")
            continue
        verdict = "FAIL" if ratio > MVCC_OVERHEAD_BUDGET else "ok"
        print(
            f"concurrency: {name} mvcc overhead {ratio:+.2%} "
            f"(off {stats.get('off_s', float('nan')) * 1e3:.2f} ms, "
            f"on {stats.get('on_s', float('nan')) * 1e3:.2f} ms; "
            f"budget {MVCC_OVERHEAD_BUDGET:.0%}) {verdict}"
        )
        if ratio > MVCC_OVERHEAD_BUDGET:
            failures.append(
                f"concurrency: {name} mvcc overhead {ratio:+.2%} exceeds "
                f"the {MVCC_OVERHEAD_BUDGET:.0%} budget"
            )
    throughput = ledger.get("reader_throughput", {})
    if not throughput:
        failures.append("concurrency: ledger lacks reader_throughput")
    else:
        busiest = max(throughput, key=int)
        qps = throughput[busiest].get("reader_qps", 0)
        verdict = "FAIL" if qps <= 0 else "ok"
        print(
            f"concurrency: reader throughput {qps:.0f} q/s with "
            f"{busiest} writer(s) {verdict}"
        )
        if qps <= 0:
            failures.append(
                f"concurrency: readers starved with {busiest} writer(s)"
            )
    if failures:
        print("\nconcurrency gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("concurrency gate passed")
    return 0


def check_server(ledger: dict) -> int:
    """Gate the wire-server ledger (sessions, tail latency, throughput)."""
    failures = []
    failed = ledger.get("failed_sessions")
    clients = ledger.get("clients", 0)
    if failed is None:
        failures.append("server: ledger lacks failed_sessions")
    else:
        verdict = "FAIL" if failed != 0 else "ok"
        print(f"server: {clients} clients, {failed} failed sessions {verdict}")
        if failed != 0:
            failures.append(f"server: {failed} wire sessions failed")
    if clients < SERVER_CLIENTS_FLOOR:
        failures.append(
            f"server: ran with {clients} clients, below the "
            f"{SERVER_CLIENTS_FLOOR}-client acceptance floor"
        )
    p99 = ledger.get("overall", {}).get("p99_ms")
    if p99 is None:
        failures.append("server: ledger lacks overall p99_ms")
    else:
        verdict = "FAIL" if p99 > SERVER_P99_BUDGET_MS else "ok"
        print(
            f"server: p99 {p99:.1f} ms "
            f"(budget {SERVER_P99_BUDGET_MS:.0f} ms) {verdict}"
        )
        if p99 > SERVER_P99_BUDGET_MS:
            failures.append(
                f"server: p99 {p99:.1f} ms exceeds the "
                f"{SERVER_P99_BUDGET_MS:.0f} ms budget"
            )
    throughput = ledger.get("throughput_ops_s")
    if throughput is None:
        failures.append("server: ledger lacks throughput_ops_s")
    else:
        verdict = "FAIL" if throughput < SERVER_THROUGHPUT_FLOOR else "ok"
        print(
            f"server: throughput {throughput:.1f} ops/s "
            f"(floor {SERVER_THROUGHPUT_FLOOR:.0f} ops/s) {verdict}"
        )
        if throughput < SERVER_THROUGHPUT_FLOOR:
            failures.append(
                f"server: throughput {throughput:.1f} ops/s below the "
                f"{SERVER_THROUGHPUT_FLOOR:.0f} ops/s floor"
            )
    if failures:
        print("\nserver gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("server gate passed")
    return 0


def check_sharding(ledger: dict) -> int:
    """Gate the sharding ledger (sharded speedup floor + equivalence)."""
    failures = []
    if not ledger.get("equivalent", False):
        failures.append(
            "sharding: sharded and unsharded extractions were not verified "
            "equivalent (ledger's 'equivalent' flag is false)"
        )
    workloads = ledger.get("workloads", {})
    for name in SHARD_REQUIRED_WORKLOADS:
        if name not in workloads:
            failures.append(f"sharding: workload {name} missing from ledger")
    for name, stats in sorted(workloads.items()):
        speedup = stats.get("speedup")
        if speedup is None:
            failures.append(f"sharding: workload {name} lacks a speedup")
            continue
        if not stats.get("gated", False):
            print(
                f"sharding: {name} {speedup:.2f}x "
                f"({stats.get('shards', '?')} shards; report-only)"
            )
            continue
        verdict = "FAIL" if speedup < SHARD_SPEEDUP_FLOOR else "ok"
        print(
            f"sharding: {name} {speedup:.2f}x "
            f"(1 shard {stats.get('unsharded_s', float('nan')):.3f}s, "
            f"{stats.get('shards', '?')} shards "
            f"{stats.get('sharded_s', float('nan')):.3f}s; "
            f"floor {SHARD_SPEEDUP_FLOOR:.1f}x) {verdict}"
        )
        if speedup < SHARD_SPEEDUP_FLOOR:
            failures.append(
                f"sharding: {name} speedup {speedup:.2f}x below the "
                f"{SHARD_SPEEDUP_FLOOR:.1f}x floor"
            )
    if failures:
        print("\nsharding gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("sharding gate passed")
    return 0


def main(argv) -> int:
    ledger = load(LEDGER_PATH)
    if "--update" in argv:
        update_baseline(ledger)
        return 0
    status = check(ledger, load(BASELINE_PATH))
    obs_status = check_observability(load(OBSERVABILITY_LEDGER_PATH))
    vec_status = check_vectorized(load(VECTORIZED_LEDGER_PATH))
    conc_status = check_concurrency(load(CONCURRENCY_LEDGER_PATH))
    server_status = check_server(load(SERVER_LEDGER_PATH))
    shard_status = check_sharding(load(SHARDING_LEDGER_PATH))
    return (
        status
        or obs_status
        or vec_status
        or conc_status
        or server_status
        or shard_status
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
