"""F8 — stages of XNF query processing (Fig. 8).

Times each compilation stage of the pipeline — parse, QGM build, query
rewrite, plan optimization, execution — for a representative SQL query and
for a full XNF CO query (whose XNF semantic rewrite sits on top).  Expected
shape: compile-time stages are small next to execution on non-trivial data;
XNF extraction decomposes into a handful of generated SQL queries.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.relational.sql.parser import parse_statements
from repro.workloads import company
from repro.xnf.api import XNFSession

SQL_QUERY = """
SELECT d.dname, COUNT(*) AS n, SUM(e.sal) AS total
FROM DEPT d, EMP e
WHERE d.dno = e.edno AND d.budget > 500
GROUP BY d.dname
ORDER BY total DESC
"""

XNF_QUERY = """
OUT OF
  Xdept AS (SELECT * FROM DEPT WHERE budget > 500),
  Xemp AS EMP,
  Xproj AS PROJ,
  employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno),
  ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno)
TAKE *
"""


@pytest.fixture(scope="module")
def db():
    return company.scaled_database(departments=40, employees_per_dept=10)


def test_sql_parse(benchmark):
    benchmark(lambda: parse_statements(SQL_QUERY))


def test_sql_compile(benchmark, db):
    statement = parse_statements(SQL_QUERY)[0]
    benchmark(lambda: db.compile_query(statement))


def test_sql_execute(benchmark, db):
    assert benchmark(lambda: db.execute(SQL_QUERY).rowcount) > 0


def test_xnf_full_pipeline(benchmark, db):
    session = XNFSession(db)
    assert benchmark(lambda: session.query(XNF_QUERY).cache.total_tuples()) > 0


def _report_body(db):
    # SQL stages
    begin = time.perf_counter()
    statement = parse_statements(SQL_QUERY)[0]
    parse_time = time.perf_counter() - begin
    plan = db.compile_query(statement)
    stage = dict(db.last_timings)
    begin = time.perf_counter()
    rows = list(plan.rows())
    execute_time = time.perf_counter() - begin
    report("F8 pipeline stages (Fig. 8)",
           "SQL query : parse %.2f ms | QGM build %.2f ms | rewrite %.2f ms "
           "| optimize %.2f ms | execute %.2f ms (%d rows)" % (
               parse_time * 1000,
               stage["build_qgm"] * 1000,
               stage["rewrite"] * 1000,
               stage["optimize"] * 1000,
               execute_time * 1000,
               len(rows),
           ))
    # XNF pipeline on top
    session = XNFSession(db)
    begin = time.perf_counter()
    co = session.query(XNF_QUERY)
    total = time.perf_counter() - begin
    stats = session.last_stats
    report("F8 pipeline stages (Fig. 8)",
           "XNF query : total %.2f ms | %d generated SQL queries | "
           "%d fixpoint rounds | %d temp tables | %d tuples + %d connections "
           "into the cache" % (
               total * 1000,
               stats.queries_issued,
               stats.iterations,
               stats.temp_tables_created,
               co.cache.total_tuples(),
               co.cache.total_connections(),
           ))
    assert stats.queries_issued >= len(co.schema.nodes)

def test_pipeline_report(benchmark, db):
    """Report wrapper: runs once even under --benchmark-only."""
    benchmark.pedantic(lambda: _report_body(db), rounds=1, iterations=1)
