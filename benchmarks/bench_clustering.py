"""E4 — composite-object clustering (section 4).

"Relational DBMSs typically allow clustering of data along tables, which is
inappropriate for composite objects, where we need clustering of component
tuples belonging to different tables" — Starburst's parent/child clustering
"to reduce I/O overhead of joins".

We lay out a parent/children workload twice — table-clustered and
CO-clustered — and replay the same per-object read trace against a small
buffer pool, counting buffer misses (physical page fetches).  Expected
shape: the CO-clustered layout misses roughly once per composite object;
the table-clustered layout misses once per component table per object.
"""

import pytest

from benchmarks.conftest import report
from repro.relational.storage import BufferPool, CoCluster, DiskManager, HeapFile

NUM_PARENTS = 150
CHILDREN_PER_PARENT = 6
PAGE_SIZE = 1024
BUFFER_FRAMES = 4


def _rows():
    for parent_id in range(NUM_PARENTS):
        parent_row = (parent_id, f"parent-{parent_id}", parent_id * 10)
        children = [
            (parent_id, child, f"child-{parent_id}-{child}", child * 1.5)
            for child in range(CHILDREN_PER_PARENT)
        ]
        yield parent_row, children


def _build(clustered: bool):
    disk = DiskManager(PAGE_SIZE)
    pool = BufferPool(disk, BUFFER_FRAMES)
    parents = HeapFile("P", pool)
    children = HeapFile("C", pool)
    if clustered:
        with CoCluster(pool) as cluster:
            for parent_row, child_rows in _rows():
                cluster.load_group(
                    [(parents, parent_row)]
                    + [(children, row) for row in child_rows]
                )
    else:
        # Table clustering in arrival order: children of different parents
        # interleave over time, so one object's children scatter across
        # pages — the situation the paper calls "inappropriate for
        # composite objects".
        for parent_row, _ in _rows():
            parents.insert(parent_row)
        for child_index in range(CHILDREN_PER_PARENT):
            for _, child_rows in _rows():
                children.insert(child_rows[child_index])
    pool.clear()
    return pool, parents, children


def _trace(pool, parents, children):
    """Read every composite object: parent then its children."""
    parent_rids = [rid for rid, _ in parents.scan()]
    child_rids = {}
    for rid, row in children.scan():
        child_rids.setdefault(row[0], []).append(rid)
    pool.clear()
    pool.reset_stats()
    for parent_id, rid in enumerate(parent_rids):
        parents.fetch_row(rid)
        for child_rid in child_rids.get(parent_id, []):
            children.fetch_row(child_rid)
    return pool.misses


@pytest.mark.parametrize("clustered", [False, True], ids=["table", "co"])
def test_clustered_read_trace(benchmark, clustered):
    pool, parents, children = _build(clustered)
    misses = benchmark(lambda: _trace(pool, parents, children))
    assert misses > 0


def _report_body():
    pool_t, parents_t, children_t = _build(False)
    misses_table = _trace(pool_t, parents_t, children_t)
    pool_c, parents_c, children_c = _build(True)
    misses_co = _trace(pool_c, parents_c, children_c)
    report("E4 CO clustering",
           f"{NUM_PARENTS} objects x (1 parent + {CHILDREN_PER_PARENT} children), "
           f"page={PAGE_SIZE}B, buffer={BUFFER_FRAMES} frames")
    report("E4 CO clustering",
           f"table-clustered: {misses_table:5d} buffer misses | "
           f"CO-clustered: {misses_co:5d} buffer misses | "
           f"reduction {misses_table/misses_co:4.1f}x")
    assert misses_co < misses_table

def test_clustering_report(benchmark):
    """Report wrapper: runs once even under --benchmark-only."""
    benchmark.pedantic(lambda: _report_body(), rounds=1, iterations=1)
