"""The paper's running example: Figures 1-6, executed.

Walks through the 'Company Organizational Unit' CO (Fig. 1), the two
database representations (Fig. 2), views over views with relationship
attributes (Fig. 3), the recursive CO (Fig. 4), restriction + projection
with reachability recomputation (Fig. 5), and the query classification
(Fig. 6).

Run:  python examples/company_org.py
"""

from repro.workloads import company
from repro.xnf.api import XNFSession


def figure1() -> None:
    print("=" * 64)
    print("Figure 1: CO 'Company Organizational Unit'")
    db = company.figure1_database()
    session = XNFSession(db)
    co = session.query(company.FIGURE1_CO)
    print(session.describe(company.FIGURE1_CO))
    print()
    print(co.summary())
    print("\nInstance level (compare with the right side of Fig. 1):")
    for dept in co.cursor("Xdept"):
        emps = [e["ename"] for e in dept.related("employment")]
        projs = [p["pname"] for p in dept.related("ownership")]
        print(f"  {dept['dname']}: employees={emps} projects={projs}")
    s3 = co.find("Xskill", sname="s3")
    print("  skill s3 shared by employees",
          [e["ename"] for e in s3.related("empproperty")],
          "and projects", [p["pname"] for p in s3.related("projproperty")])
    print("  e3 in CO?", co.find("Xemp", ename="e3") is not None,
          "| s2 in CO?", co.find("Xskill", sname="s2") is not None,
          " (both excluded by reachability)")


def figure2() -> None:
    print("=" * 64)
    print("Figure 2: one abstraction, two representations")
    for label, db, relate in (
        ("CDB1 (implicit FK)", company.figure1_database(),
         "employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno)"),
        ("CDB2 (explicit DEPTEMP table)", company.cdb2_database(),
         "employment AS (RELATE Xdept, Xemp USING DEPTEMP de "
         "WHERE Xdept.dno = de.dedno AND Xemp.eno = de.deeno)"),
    ):
        session = XNFSession(db)
        co = session.query(
            f"OUT OF Xdept AS DEPT, Xemp AS EMP, {relate} TAKE *"
        )
        pairs = sorted(
            (c.parent["dname"], c.child["ename"])
            for c in co.connections("employment")
        )
        print(f"  {label}: EMPLOYMENT = {pairs}")


def figures3_to_5() -> None:
    print("=" * 64)
    print("Figures 3-5: views over views, recursion, restriction")
    db = company.figure4_database()
    session = XNFSession(db)
    company.create_paper_views(session)

    print("\nALL-DEPS-ORG (Fig. 3) — 'membership' carries an attribute:")
    co = session.query("OUT OF ALL-DEPS-ORG TAKE *")
    for conn in co.connections("membership"):
        print(f"  {conn.child['ename']} works {conn['percentage']}% "
              f"on {conn.parent['pname']}")

    print("\nEXT-ALL-DEPS-ORG (Fig. 4) — structurally recursive:")
    ext = session.query("OUT OF EXT-ALL-DEPS-ORG TAKE *")
    print(" ", ext.schema.describe().replace("\n", "\n  "))

    print("\nFig. 5 query: restrict to loc='NY', project away 'ownership':")
    restricted = session.query(
        """
        OUT OF EXT-ALL-DEPS-ORG
        WHERE Xdept SUCH THAT loc = 'NY'
        TAKE Xdept(*), employment, Xemp(*), projmanagement,
             membership, Xproj(*)
        """
    )
    print("  departments:", [t["dname"] for t in restricted.node("Xdept")])
    print("  employees:  ", sorted(t["ename"] for t in restricted.node("Xemp")))
    print("  projects:   ", sorted(t["pname"] for t in restricted.node("Xproj")),
          " (p1 dropped: 'not reachable anymore')")

    print("\nSection 3.5 path-expression query:")
    pq = session.query(
        """
        OUT OF EXT-ALL-DEPS-ORG
        WHERE Xdept d SUCH THAT
          COUNT(d->employment->projmanagement) >= 2 AND d.budget > 500
        TAKE *
        """
    )
    print("  departments whose staff manage >= 2 projects:",
          [t["dname"] for t in pq.node("Xdept")])


def figure6() -> None:
    print("=" * 64)
    print("Figure 6: the four query classes")
    db = company.figure4_database()
    session = XNFSession(db)
    company.create_paper_views(session)
    type1 = ("OUT OF Xd AS DEPT, Xe AS EMP, "
             "r AS (RELATE Xd, Xe WHERE Xd.dno = Xe.edno) TAKE *")
    type2 = "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal > 150 TAKE *"
    type4 = "SELECT COUNT(*) FROM EMP"
    print("  (1) NF->XNF :", session.classify(type1))
    print("  (2) XNF->XNF:", session.classify(type2))
    co = session.query("OUT OF ALL-DEPS TAKE *")
    table = co.to_table("Xemp", "EMP_FROM_CO")
    print("  (3) XNF->NF : node Xemp materialised as", table,
          "->", db.execute(f"SELECT COUNT(*) FROM {table}").scalar(), "rows")
    print("  (4) NF->NF  :", session.classify(type4),
          "->", db.execute(type4).scalar(), "employees")


if __name__ == "__main__":
    figure1()
    figure2()
    figures3_to_5()
    figure6()
