"""Cattell-OO1-style navigation: the orders-of-magnitude claim, live.

"The performance improvement over regular SQL DBMS interface is in orders
of magnitude, and is comparable to the performance improvement of OODBMS
over relational DBMSs reported in Cattell's benchmark."

Run:  python examples/oo1_navigation.py
"""

import random
import time

from repro.workloads import oo1
from repro.xnf.api import XNFSession


def timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def main() -> None:
    num_parts = 1500
    depth = 6
    rng = random.Random(7)

    db = oo1.build_parts_database(num_parts)
    session = XNFSession(db)

    co, load_time = timed(oo1.load_parts_co, session)
    print(f"{num_parts} parts, {num_parts * 3} connections; "
          f"CO extracted + cached in {load_time:.2f}s")

    starts = [rng.randint(1, num_parts) for _ in range(5)]

    print(f"\ntraversal to depth {depth} (OO1 operation 2):")
    total_cache = total_sql = 0.0
    for start in starts:
        visits, cache_time = timed(oo1.traverse_cache, co, start, depth)
        _, sql_time = timed(oo1.traverse_sql, db, start, depth)
        total_cache += cache_time
        total_sql += sql_time
        print(f"  start={start:5d}: {visits:6d} visits | "
              f"cache {cache_time * 1000:8.1f} ms | "
              f"per-step SQL {sql_time * 1000:8.1f} ms | "
              f"{sql_time / cache_time:6.0f}x")
    print(f"  overall speedup: {total_sql / total_cache:.0f}x "
          "(the paper's 'orders of magnitude')")

    print("\nlookup of 200 random parts (OO1 operation 1):")
    ids = [rng.randint(1, num_parts) for _ in range(200)]
    _, cache_time = timed(oo1.lookup_cache, co, ids)
    _, sql_time = timed(oo1.lookup_sql, db, ids)
    print(f"  cache {cache_time * 1000:.1f} ms | SQL {sql_time * 1000:.1f} ms "
          f"| {sql_time / cache_time:.0f}x")

    print("\ninsert of 50 parts + connections (OO1 operation 3):")
    _, sql_time = timed(
        oo1.insert_parts_sql, db, num_parts + 1, 50, random.Random(1)
    )
    _, cache_time = timed(
        oo1.insert_parts_cache, co, num_parts + 1000, 50, random.Random(1)
    )
    print(f"  via CO API {cache_time * 1000:.1f} ms | "
          f"via SQL {sql_time * 1000:.1f} ms "
          "(both write through to the base tables)")


if __name__ == "__main__":
    main()
