"""Fig. 7: traditional SQL applications and XNF applications share the
database — 'no change is required in the traditional applications'.

Run:  python examples/shared_database.py
"""

from repro.workloads import company
from repro.xnf.api import XNFSession


def traditional_payroll_report(db) -> str:
    """A 'second generation' SQL application: knows nothing about XNF."""
    result = db.execute(
        "SELECT d.dname, COUNT(*) AS headcount, SUM(e.sal) AS payroll "
        "FROM DEPT d, EMP e WHERE d.dno = e.edno "
        "GROUP BY d.dname ORDER BY d.dname"
    )
    return result.pretty()


def main() -> None:
    db = company.figure4_database()

    print("SQL application, before any XNF activity:")
    print(traditional_payroll_report(db))

    # The CO application starts on the very same database.
    session = XNFSession(db)
    company.create_paper_views(session)
    co = session.query("OUT OF ALL-DEPS TAKE *")

    # The design tool gives everyone in dNY a raise, via the cache.
    dny = co.find("Xdept", dname="dNY")
    for emp in dny.related("employment"):
        co.update(emp, sal=emp["sal"] + 50.0)
    # ... and moves e4 from dSF to dNY via relationship manipulation.
    e4 = co.find("Xemp", ename="e4")
    old = e4.connections("employment")[0]
    co.disconnect(old)
    co.connect("employment", dny, e4)

    print("\nSQL application, after the XNF application's changes")
    print("(same code, same tables — it just sees the new data):")
    print(traditional_payroll_report(db))

    # And the other direction: a plain SQL insert is visible to XNF.
    db.execute("INSERT INTO EMP VALUES (77, 'hire', 10.0, 2, 'staff')")
    fresh = session.query("OUT OF ALL-DEPS TAKE *")
    print("\nXNF re-extraction sees the SQL application's new hire:",
          fresh.find("Xemp", ename="hire") is not None)


if __name__ == "__main__":
    main()
