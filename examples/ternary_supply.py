"""n-ary relationships: the classic ternary SUPPLY(project, part, supplier).

Section 2 of the paper: "In a general setting we allow for n-ary
relationships, i.e. relationships that relate more than two partner
tables."  This example builds a three-partner relationship with a quantity
attribute, navigates it from every slot, and shows reachability flowing
through all child partners.

Run:  python examples/ternary_supply.py
"""

from repro import Database, XNFSession


def main() -> None:
    db = Database()
    db.execute_script(
        """
        CREATE TABLE PROJECT (pjid INTEGER PRIMARY KEY, pjname VARCHAR,
                              active BOOLEAN);
        CREATE TABLE PART (ptid INTEGER PRIMARY KEY, ptname VARCHAR);
        CREATE TABLE SUPPLIER (sid INTEGER PRIMARY KEY, sname VARCHAR);
        CREATE TABLE SUPPLY (spj INTEGER, spt INTEGER, ssu INTEGER,
                             qty INTEGER);
        INSERT INTO PROJECT VALUES (1, 'alpha', TRUE), (2, 'beta', TRUE),
                                   (3, 'mothballed', FALSE);
        INSERT INTO PART VALUES (10, 'bolt'), (11, 'nut'), (12, 'gear');
        INSERT INTO SUPPLIER VALUES (100, 'acme'), (101, 'globex');
        INSERT INTO SUPPLY VALUES (1, 10, 100, 500), (1, 11, 101, 200),
                                  (2, 10, 101, 50), (3, 12, 100, 10);
        """
    )
    session = XNFSession(db)
    co = session.query(
        """
        OUT OF
          Xproj AS (SELECT * FROM PROJECT WHERE active = TRUE),
          Xpart AS PART,
          Xsupp AS SUPPLIER,
          supply AS (RELATE Xproj, Xpart, Xsupp
                     WITH ATTRIBUTES s.qty
                     USING SUPPLY s
                     WHERE Xproj.pjid = s.spj AND Xpart.ptid = s.spt
                       AND Xsupp.sid = s.ssu)
        TAKE *
        """
    )
    print(co.schema.describe())
    print()
    print(co.summary())

    print("\nternary connection instances:")
    for conn in co.connections("supply"):
        supplier = conn.extra_children[0]
        print(f"  {conn.parent['pjname']} <- {conn['qty']:4d} x "
              f"{conn.child['ptname']} from {supplier['sname']}")

    alpha = co.find("Xproj", pjname="alpha")
    print("\nalpha's suppliers:",
          sorted(t["sname"] for t in co.path(alpha, "supply->Xsupp")))
    bolt = co.find("Xpart", ptname="bolt")
    print("projects using bolts:",
          sorted(t["pjname"] for t in bolt.related("supply")))
    print("gear in the CO?", co.find("Xpart", ptname="gear") is not None,
          "(only supplied to the inactive project)")


if __name__ == "__main__":
    main()
