"""Quickstart: define a composite object over relational data and use it.

Run:  python examples/quickstart.py
"""

from repro import Database, XNFSession


def main() -> None:
    # 1. An ordinary relational database (our Starburst-like engine).
    db = Database()
    db.execute_script(
        """
        CREATE TABLE DEPT (dno INTEGER PRIMARY KEY, dname VARCHAR,
                           loc VARCHAR, budget FLOAT);
        CREATE TABLE EMP (eno INTEGER PRIMARY KEY, ename VARCHAR,
                          sal FLOAT, edno INTEGER REFERENCES DEPT(dno));
        INSERT INTO DEPT VALUES (1, 'toys', 'NY', 1000.0),
                                (2, 'tools', 'SF', 2000.0);
        INSERT INTO EMP VALUES (1, 'ann', 120.0, 1), (2, 'bob', 80.0, 1),
                               (3, 'cat', 150.0, 2), (4, 'dan', 90.0, NULL);
        """
    )
    print("Plain SQL keeps working (shared database):")
    print(db.execute("SELECT dname, COUNT(*) FROM DEPT d, EMP e "
                     "WHERE d.dno = e.edno GROUP BY dname").pretty())

    # 2. An XNF session over the same database.
    session = XNFSession(db)
    co = session.query(
        """
        OUT OF
          Xdept AS (SELECT * FROM DEPT WHERE loc = 'NY'),
          Xemp AS EMP,
          employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno)
        TAKE *
        """
    )
    print("\nComposite object extracted into the cache:")
    print(co.summary())
    # dan (edno NULL) is unreachable -> not part of the CO.

    # 3. Navigate with cursors — pure pointer dereferencing, no SQL.
    print("\nNavigation:")
    dept_cursor = co.cursor("Xdept")
    for dept in dept_cursor:
        emps = co.dependent_cursor(dept_cursor, "employment")
        names = ", ".join(e["ename"] for e in emps)
        print(f"  {dept['dname']} ({dept['loc']}): {names}")

    # 4. Manipulate: updates propagate back to the base tables.
    ann = co.find("Xemp", ename="ann")
    co.update(ann, sal=200.0)
    print("\nAfter co.update(ann, sal=200.0):")
    print(" base table says:",
          db.execute("SELECT sal FROM EMP WHERE ename = 'ann'").scalar())

    # 5. Relationships are manipulated with connect/disconnect.
    new_dan = co.insert("Xemp", eno=5, ename="dan2", sal=90.0)
    toys = co.find("Xdept", dname="toys")
    co.connect("employment", toys, new_dan)
    print(" dan2 now employed by:",
          db.execute("SELECT edno FROM EMP WHERE ename = 'dan2'").scalar())


if __name__ == "__main__":
    main()
