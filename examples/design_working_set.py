"""Design/CAD working-set extraction — the paper's motivating scenario.

"Design applications often work on a well-specified set of data, called
working set, such as a particular version of a document ... Usually working
sets are extracted from the database and loaded into main memory close to
the applications for high performance.  After an application completes its
work on the working set, the DBMS propagates back the changes."

This example extracts one document version from a larger design database,
edits it through the cache (deferred propagation), and flushes the changes
back in one transaction.

Run:  python examples/design_working_set.py
"""

import time

from repro.workloads import design
from repro.xnf.api import XNFSession


def main() -> None:
    num_documents = 40
    db = design.build_design_database(num_documents)
    total = design.total_tuples(num_documents)
    print(f"design database: {total} tuples across 4 tables")

    session = XNFSession(db, deferred_propagation=True)

    # --- extract the working set: one document version -------------------
    start = time.perf_counter()
    ws = design.extract_working_set(session, document_id=7, version_num=2)
    elapsed = time.perf_counter() - start
    print(f"\nworking set extracted in {elapsed * 1000:.1f} ms "
          f"({session.last_stats.queries_issued} set-oriented queries):")
    print(ws.summary())
    selected = ws.cache.total_tuples()
    print(f"selectivity: {selected}/{total} = 1/{total // max(selected, 1)}")

    # --- navigate and edit entirely in the cache --------------------------
    version = ws.node("Xver")[0]
    heavy = [
        comp for comp in version.related("has_component")
        if comp["weight"] > 400
    ]
    print(f"\n{len(heavy)} components heavier than 400 — halving their weight:")
    for comp in heavy:
        ws.update(comp, weight=comp["weight"] * 0.5)
        for sub in comp.related("has_subcomp"):
            if sub["material"] == "steel":
                ws.update(sub, material="alu")
    print(f"{ws.manipulator.pending_count} changes queued (base unchanged)")

    # --- propagate back in one batch --------------------------------------
    applied = ws.flush()
    print(f"flush(): {applied} statements applied transactionally")
    check = db.execute(
        "SELECT COUNT(*) FROM COMPONENT WHERE weight > 400 AND cvid = "
        f"{version['vid']}"
    ).scalar()
    print(f"components over 400 in that version now: {check}")


if __name__ == "__main__":
    main()
