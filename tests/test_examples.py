"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_output_mentions_propagation():
    script = pathlib.Path(__file__).parent.parent / "examples" / "quickstart.py"
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=240
    )
    assert "base table says: 200.0" in result.stdout


def test_company_org_reproduces_figure5():
    script = pathlib.Path(__file__).parent.parent / "examples" / "company_org.py"
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=240
    )
    assert "p1 dropped" in result.stdout
    assert "['p2', 'p3', 'p4']" in result.stdout
