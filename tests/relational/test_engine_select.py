"""SELECT semantics end to end through the engine."""

import pytest

from repro.errors import CatalogError, ExecutionError, TypeCheckError


class TestBasicSelect:
    def test_select_star(self, people_db):
        result = people_db.execute("SELECT * FROM PEOPLE ORDER BY id")
        assert result.columns == ["id", "name", "age", "city", "score"]
        assert len(result.rows) == 5

    def test_projection_and_alias(self, people_db):
        result = people_db.execute("SELECT name AS who, age FROM PEOPLE ORDER BY id")
        assert result.columns == ["who", "age"]
        assert result.rows[0] == ("ann", 30)

    def test_expression_columns(self, people_db):
        result = people_db.execute(
            "SELECT age * 2, name || '!' FROM PEOPLE WHERE id = 1"
        )
        assert result.rows == [(60, "ann!")]

    def test_where_filters(self, people_db):
        result = people_db.execute("SELECT name FROM PEOPLE WHERE city = 'NY'")
        assert sorted(result.rows) == [("ann",), ("cat",)]

    def test_null_in_where_excludes(self, people_db):
        # eve has NULL city: city = 'NY' is unknown, excluded; so is <> 'NY'.
        eq = people_db.execute("SELECT COUNT(*) FROM PEOPLE WHERE city = 'NY'")
        ne = people_db.execute("SELECT COUNT(*) FROM PEOPLE WHERE city <> 'NY'")
        assert eq.scalar() + ne.scalar() == 4  # eve missing from both

    def test_is_null(self, people_db):
        result = people_db.execute("SELECT name FROM PEOPLE WHERE age IS NULL")
        assert result.rows == [("dan",)]
        result = people_db.execute(
            "SELECT COUNT(*) FROM PEOPLE WHERE age IS NOT NULL"
        )
        assert result.scalar() == 4

    def test_between_and_in(self, people_db):
        result = people_db.execute(
            "SELECT name FROM PEOPLE WHERE age BETWEEN 25 AND 30 ORDER BY id"
        )
        assert result.rows == [("ann",), ("bob",), ("eve",)]
        result = people_db.execute(
            "SELECT name FROM PEOPLE WHERE city IN ('NY', 'LA') ORDER BY id"
        )
        assert result.rows == [("ann",), ("cat",), ("dan",)]

    def test_like(self, people_db):
        result = people_db.execute("SELECT name FROM PEOPLE WHERE name LIKE '%a%'")
        assert sorted(result.rows) == [("ann",), ("cat",), ("dan",)]

    def test_case(self, people_db):
        result = people_db.execute(
            "SELECT name, CASE WHEN age >= 30 THEN 'old' WHEN age IS NULL "
            "THEN 'unknown' ELSE 'young' END FROM PEOPLE ORDER BY id"
        )
        assert [row[1] for row in result.rows] == [
            "old", "young", "old", "unknown", "young",
        ]

    def test_scalar_functions(self, people_db):
        result = people_db.execute(
            "SELECT UPPER(name), LENGTH(name), ABS(0 - age), "
            "COALESCE(age, 0) FROM PEOPLE WHERE id = 4"
        )
        assert result.rows == [("DAN", 3, None, 0)]

    def test_select_without_from(self, db):
        assert db.execute("SELECT 1 + 2").scalar() == 3

    def test_distinct(self, people_db):
        result = people_db.execute("SELECT DISTINCT age FROM PEOPLE")
        assert sorted(result.rows, key=lambda r: (r[0] is None, r[0])) == [
            (25,), (30,), (35,), (None,),
        ]

    def test_unknown_column_raises(self, people_db):
        with pytest.raises(CatalogError):
            people_db.execute("SELECT nope FROM PEOPLE")

    def test_unknown_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM MISSING")

    def test_ambiguous_column_raises(self, people_db):
        people_db.execute("CREATE TABLE OTHER (name VARCHAR)")
        with pytest.raises(CatalogError):
            people_db.execute("SELECT name FROM PEOPLE, OTHER")


class TestOrderLimit:
    def test_order_asc_desc(self, people_db):
        result = people_db.execute(
            "SELECT name FROM PEOPLE ORDER BY age DESC, name ASC"
        )
        # NULLs first ascending => last descending
        assert [r[0] for r in result.rows] == ["cat", "ann", "bob", "eve", "dan"]

    def test_order_by_alias(self, people_db):
        result = people_db.execute(
            "SELECT age * 2 AS dbl FROM PEOPLE WHERE age IS NOT NULL ORDER BY dbl"
        )
        assert [r[0] for r in result.rows] == [50, 50, 60, 70]

    def test_order_by_position(self, people_db):
        result = people_db.execute("SELECT name, age FROM PEOPLE ORDER BY 2, 1")
        assert result.rows[0][0] == "dan"  # NULL age sorts first

    def test_order_by_unprojected_column(self, people_db):
        result = people_db.execute("SELECT name FROM PEOPLE ORDER BY age DESC")
        assert result.columns == ["name"]
        assert result.rows[0] == ("cat",)

    def test_limit_offset(self, people_db):
        result = people_db.execute("SELECT id FROM PEOPLE ORDER BY id LIMIT 2 OFFSET 1")
        assert result.rows == [(2,), (3,)]

    def test_order_by_expression(self, people_db):
        result = people_db.execute(
            "SELECT name FROM PEOPLE WHERE score IS NOT NULL ORDER BY score * -1"
        )
        assert [r[0] for r in result.rows] == ["dan", "bob", "ann", "eve"]

    def test_order_with_distinct_requires_projected(self, people_db):
        with pytest.raises(TypeCheckError):
            people_db.execute("SELECT DISTINCT name FROM PEOPLE ORDER BY age")


class TestJoins:
    @pytest.fixture
    def join_db(self, people_db):
        people_db.execute(
            "CREATE TABLE PETS (pid INTEGER PRIMARY KEY, owner INTEGER, "
            "species VARCHAR)"
        )
        people_db.execute(
            "INSERT INTO PETS VALUES (1, 1, 'cat'), (2, 1, 'dog'), "
            "(3, 3, 'fish'), (4, NULL, 'owl')"
        )
        return people_db

    def test_inner_join(self, join_db):
        result = join_db.execute(
            "SELECT p.name, q.species FROM PEOPLE p JOIN PETS q "
            "ON p.id = q.owner ORDER BY q.pid"
        )
        assert result.rows == [("ann", "cat"), ("ann", "dog"), ("cat", "fish")]

    def test_implicit_join(self, join_db):
        result = join_db.execute(
            "SELECT p.name FROM PEOPLE p, PETS q WHERE p.id = q.owner "
            "AND q.species = 'dog'"
        )
        assert result.rows == [("ann",)]

    def test_left_join_pads_nulls(self, join_db):
        result = join_db.execute(
            "SELECT p.name, q.species FROM PEOPLE p LEFT JOIN PETS q "
            "ON p.id = q.owner ORDER BY p.id, q.pid"
        )
        assert ("bob", None) in result.rows
        assert len(result.rows) == 6  # 3 matches + 3 padded

    def test_left_join_where_after_padding(self, join_db):
        result = join_db.execute(
            "SELECT p.name FROM PEOPLE p LEFT JOIN PETS q ON p.id = q.owner "
            "WHERE q.species IS NULL ORDER BY p.id"
        )
        assert result.rows == [("bob",), ("dan",), ("eve",)]

    def test_null_never_joins(self, join_db):
        result = join_db.execute(
            "SELECT COUNT(*) FROM PEOPLE p JOIN PETS q ON p.id = q.owner"
        )
        assert result.scalar() == 3  # the NULL-owner pet matches nobody

    def test_self_join(self, people_db):
        result = people_db.execute(
            "SELECT a.name, b.name FROM PEOPLE a, PEOPLE b "
            "WHERE a.age = b.age AND a.id < b.id"
        )
        assert result.rows == [("bob", "eve")]

    def test_three_way_join(self, join_db):
        join_db.execute("CREATE TABLE CITIES (cname VARCHAR, state VARCHAR)")
        join_db.execute(
            "INSERT INTO CITIES VALUES ('NY', 'New York'), ('SF', 'California')"
        )
        result = join_db.execute(
            "SELECT p.name, q.species, c.state FROM PEOPLE p, PETS q, CITIES c "
            "WHERE p.id = q.owner AND p.city = c.cname ORDER BY q.pid"
        )
        assert result.rows == [
            ("ann", "cat", "New York"),
            ("ann", "dog", "New York"),
            ("cat", "fish", "New York"),
        ]

    def test_join_with_expression_condition(self, join_db):
        result = join_db.execute(
            "SELECT COUNT(*) FROM PEOPLE p JOIN PETS q ON p.id + 0 = q.owner"
        )
        assert result.scalar() == 3


class TestAggregation:
    def test_count_sum_avg_min_max(self, people_db):
        result = people_db.execute(
            "SELECT COUNT(*), COUNT(age), SUM(age), AVG(age), MIN(age), MAX(age) "
            "FROM PEOPLE"
        )
        assert result.rows == [(5, 4, 115, 115 / 4, 25, 35)]

    def test_aggregates_ignore_nulls(self, people_db):
        assert people_db.execute("SELECT SUM(score) FROM PEOPLE").scalar() == 8.5

    def test_empty_aggregate(self, people_db):
        result = people_db.execute(
            "SELECT COUNT(*), SUM(age), MIN(age) FROM PEOPLE WHERE id > 100"
        )
        assert result.rows == [(0, None, None)]

    def test_group_by(self, people_db):
        result = people_db.execute(
            "SELECT age, COUNT(*) FROM PEOPLE GROUP BY age ORDER BY 1"
        )
        assert result.rows == [(None, 1), (25, 2), (30, 1), (35, 1)]

    def test_group_by_with_having(self, people_db):
        result = people_db.execute(
            "SELECT age, COUNT(*) AS n FROM PEOPLE GROUP BY age HAVING COUNT(*) > 1"
        )
        assert result.rows == [(25, 2)]

    def test_group_key_expression_in_head(self, people_db):
        result = people_db.execute(
            "SELECT age + 1, COUNT(*) FROM PEOPLE WHERE age IS NOT NULL "
            "GROUP BY age ORDER BY 1"
        )
        assert result.rows == [(26, 2), (31, 1), (36, 1)]

    def test_count_distinct(self, people_db):
        assert (
            people_db.execute("SELECT COUNT(DISTINCT age) FROM PEOPLE").scalar() == 3
        )

    def test_ungrouped_column_rejected(self, people_db):
        with pytest.raises(TypeCheckError):
            people_db.execute("SELECT name, COUNT(*) FROM PEOPLE GROUP BY age")

    def test_group_by_multiple_keys(self, people_db):
        result = people_db.execute(
            "SELECT city, age, COUNT(*) FROM PEOPLE GROUP BY city, age"
        )
        assert len(result.rows) == 5

    def test_aggregate_of_expression(self, people_db):
        assert (
            people_db.execute("SELECT SUM(age * 2) FROM PEOPLE").scalar() == 230
        )


class TestSubqueries:
    def test_in_subquery(self, people_db):
        people_db.execute("CREATE TABLE VIP (vid INTEGER)")
        people_db.execute("INSERT INTO VIP VALUES (1), (3)")
        result = people_db.execute(
            "SELECT name FROM PEOPLE WHERE id IN (SELECT vid FROM VIP) ORDER BY id"
        )
        assert result.rows == [("ann",), ("cat",)]

    def test_not_in_with_null_is_empty(self, people_db):
        people_db.execute("CREATE TABLE NULLY (v INTEGER)")
        people_db.execute("INSERT INTO NULLY VALUES (1), (NULL)")
        result = people_db.execute(
            "SELECT name FROM PEOPLE WHERE id NOT IN (SELECT v FROM NULLY)"
        )
        assert result.rows == []  # NULL in the list makes NOT IN unknown

    def test_correlated_exists(self, people_db):
        people_db.execute("CREATE TABLE PETS (owner INTEGER)")
        people_db.execute("INSERT INTO PETS VALUES (1), (1), (3)")
        result = people_db.execute(
            "SELECT name FROM PEOPLE p WHERE EXISTS "
            "(SELECT 1 FROM PETS q WHERE q.owner = p.id) ORDER BY id"
        )
        assert result.rows == [("ann",), ("cat",)]

    def test_correlated_scalar_subquery(self, people_db):
        result = people_db.execute(
            "SELECT name FROM PEOPLE p WHERE p.age = "
            "(SELECT MAX(age) FROM PEOPLE q WHERE q.city = p.city)"
        )
        # ann(30) < max NY (35); dan/eve have NULLs -> unknown; bob and cat win.
        assert sorted(result.rows) == [("bob",), ("cat",)]

    def test_scalar_subquery_multiple_rows_raises(self, people_db):
        with pytest.raises(ExecutionError):
            people_db.execute(
                "SELECT name FROM PEOPLE WHERE age = (SELECT age FROM PEOPLE)"
            )

    def test_scalar_subquery_empty_is_null(self, people_db):
        result = people_db.execute(
            "SELECT (SELECT age FROM PEOPLE WHERE id = 99) FROM PEOPLE WHERE id = 1"
        )
        assert result.rows == [(None,)]

    def test_nested_correlation_two_levels(self, people_db):
        people_db.execute("CREATE TABLE PETS (owner INTEGER, species VARCHAR)")
        people_db.execute(
            "INSERT INTO PETS VALUES (1, 'cat'), (2, 'dog'), (3, 'cat')"
        )
        result = people_db.execute(
            "SELECT name FROM PEOPLE p WHERE EXISTS ("
            " SELECT 1 FROM PETS q WHERE q.owner = p.id AND EXISTS ("
            "  SELECT 1 FROM PEOPLE r WHERE r.id <> p.id AND EXISTS ("
            "   SELECT 1 FROM PETS s WHERE s.owner = r.id "
            "   AND s.species = q.species)))"
            " ORDER BY id"
        )
        assert result.rows == [("ann",), ("cat",)]

    def test_subquery_in_select_list(self, people_db):
        result = people_db.execute(
            "SELECT name, (SELECT COUNT(*) FROM PEOPLE q WHERE q.age < p.age) "
            "FROM PEOPLE p WHERE p.id = 3"
        )
        assert result.rows == [("cat", 3)]

    def test_derived_table(self, people_db):
        result = people_db.execute(
            "SELECT big.name FROM (SELECT name, age FROM PEOPLE WHERE age > 26) "
            "AS big ORDER BY big.age"
        )
        assert result.rows == [("ann",), ("cat",)]


class TestSetOperations:
    def test_union_distinct(self, people_db):
        result = people_db.execute(
            "SELECT city FROM PEOPLE UNION SELECT city FROM PEOPLE"
        )
        assert len(result.rows) == 4  # NY, SF, LA, NULL

    def test_union_all(self, people_db):
        result = people_db.execute(
            "SELECT city FROM PEOPLE UNION ALL SELECT city FROM PEOPLE"
        )
        assert len(result.rows) == 10

    def test_intersect(self, people_db):
        result = people_db.execute(
            "SELECT age FROM PEOPLE WHERE id < 3 INTERSECT "
            "SELECT age FROM PEOPLE WHERE id >= 3"
        )
        assert result.rows == [(25,)]  # bob (id 2) and eve (id 5) share 25

    def test_intersect_all_multiplicity(self, db):
        db.execute("CREATE TABLE A (x INTEGER)")
        db.execute("CREATE TABLE B (x INTEGER)")
        db.execute("INSERT INTO A VALUES (1), (1), (1), (2)")
        db.execute("INSERT INTO B VALUES (1), (1), (3)")
        result = db.execute("SELECT x FROM A INTERSECT ALL SELECT x FROM B")
        assert result.rows == [(1,), (1,)]

    def test_except(self, people_db):
        result = people_db.execute(
            "SELECT id FROM PEOPLE EXCEPT SELECT id FROM PEOPLE WHERE age = 25"
        )
        assert sorted(result.rows) == [(1,), (3,), (4,)]

    def test_except_all_multiplicity(self, db):
        db.execute("CREATE TABLE A (x INTEGER)")
        db.execute("CREATE TABLE B (x INTEGER)")
        db.execute("INSERT INTO A VALUES (1), (1), (1)")
        db.execute("INSERT INTO B VALUES (1)")
        result = db.execute("SELECT x FROM A EXCEPT ALL SELECT x FROM B")
        assert result.rows == [(1,), (1,)]

    def test_mismatched_columns_raise(self, people_db):
        with pytest.raises(TypeCheckError):
            people_db.execute("SELECT id, name FROM PEOPLE UNION SELECT id FROM PEOPLE")


class TestViews:
    def test_view_query(self, people_db):
        people_db.execute(
            "CREATE VIEW NYERS AS SELECT id, name FROM PEOPLE WHERE city = 'NY'"
        )
        result = people_db.execute("SELECT name FROM NYERS ORDER BY id")
        assert result.rows == [("ann",), ("cat",)]

    def test_view_over_view(self, people_db):
        people_db.execute("CREATE VIEW V1 AS SELECT id, age FROM PEOPLE")
        people_db.execute("CREATE VIEW V2 AS SELECT id FROM V1 WHERE age > 26")
        assert sorted(people_db.execute("SELECT * FROM V2").rows) == [(1,), (3,)]

    def test_view_sees_new_rows(self, people_db):
        people_db.execute("CREATE VIEW OLD AS SELECT name FROM PEOPLE WHERE age > 31")
        assert len(people_db.execute("SELECT * FROM OLD").rows) == 1
        people_db.execute("INSERT INTO PEOPLE VALUES (9, 'zed', 99, 'NY', 0.0)")
        assert len(people_db.execute("SELECT * FROM OLD").rows) == 2

    def test_duplicate_view_name_raises(self, people_db):
        people_db.execute("CREATE VIEW V AS SELECT 1 FROM PEOPLE")
        with pytest.raises(CatalogError):
            people_db.execute("CREATE VIEW V AS SELECT 2 FROM PEOPLE")

    def test_view_validated_eagerly(self, people_db):
        with pytest.raises(CatalogError):
            people_db.execute("CREATE VIEW BAD AS SELECT * FROM NOPE")

    def test_drop_view(self, people_db):
        people_db.execute("CREATE VIEW V AS SELECT 1 FROM PEOPLE")
        people_db.execute("DROP VIEW V")
        with pytest.raises(CatalogError):
            people_db.execute("SELECT * FROM V")
