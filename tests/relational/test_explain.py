"""EXPLAIN statement and plan rendering."""

import pytest



class TestExplainStatement:
    def test_explain_returns_plan_rows(self, people_db):
        result = people_db.execute("EXPLAIN SELECT * FROM PEOPLE WHERE id = 1")
        assert result.columns == ["plan"]
        text = "\n".join(row[0] for row in result.rows)
        assert "IndexEqScan" in text
        assert "Project" in text

    def test_explain_join_shows_method(self, people_db):
        people_db.execute("CREATE TABLE PETS (owner INTEGER)")
        rows = ", ".join(f"({i % 5 + 1})" for i in range(50))
        people_db.execute(f"INSERT INTO PETS VALUES {rows}")
        people_db.execute("ANALYZE")
        result = people_db.execute(
            "EXPLAIN SELECT p.name FROM PEOPLE p, PETS q WHERE p.id = q.owner"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "Join" in text

    def test_explain_does_not_execute(self, people_db):
        people_db.execute("EXPLAIN SELECT * FROM PEOPLE")
        assert people_db.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 5

    def test_explain_helper_matches_statement(self, people_db):
        via_stmt = "\n".join(
            row[0]
            for row in people_db.execute("EXPLAIN SELECT * FROM PEOPLE").rows
        )
        via_helper = people_db.explain("SELECT * FROM PEOPLE")
        assert via_stmt == via_helper

    def test_explain_requires_query(self, people_db):
        with pytest.raises(Exception):
            people_db.execute("EXPLAIN DELETE FROM PEOPLE")


class TestOrderByAggregate:
    def test_order_by_count_star(self, people_db):
        result = people_db.execute(
            "SELECT city, COUNT(*) FROM PEOPLE GROUP BY city ORDER BY COUNT(*) DESC, city"
        )
        assert result.rows[0][0] == "NY"

    def test_order_by_sum(self, people_db):
        result = people_db.execute(
            "SELECT city, SUM(age) FROM PEOPLE WHERE city IS NOT NULL "
            "GROUP BY city ORDER BY SUM(age)"
        )
        assert [r[0] for r in result.rows] == ["LA", "SF", "NY"]

    def test_order_by_aggregate_alias_still_works(self, people_db):
        result = people_db.execute(
            "SELECT city, COUNT(*) AS n FROM PEOPLE GROUP BY city ORDER BY n DESC"
        )
        assert result.rows[0] == ('NY', 2)
