"""Satellite (d): SYS_STAT_WAL / SYS_STAT_BUFFER stay consistent with
``metrics_snapshot()`` across torn-flush repair and full crash recovery."""

import random

import pytest

from repro.errors import IOFaultError, SimulatedCrash
from repro.relational.engine import Database
from repro.relational.storage import FaultInjector, FaultPlan
from repro.workloads import company


def _sys_row(db, table: str) -> dict:
    result = db.execute(f"SELECT * FROM {table}")
    assert len(result.rows) == 1
    return dict(zip(result.columns, result.rows[0]))


def _assert_sys_matches_snapshot(db):
    """The SQL view of the counters equals the Python snapshot view."""
    snap = db.metrics_snapshot()
    wal_row = _sys_row(db, "SYS_STAT_WAL")
    for key, value in wal_row.items():
        assert snap["wal"][key] == value, f"wal.{key} diverged"
    buf_row = _sys_row(db, "SYS_STAT_BUFFER")
    for key, value in buf_row.items():
        assert snap["buffer"][key] == pytest.approx(value), (
            f"buffer.{key} diverged"
        )


class _TearNextFlush:
    """Single-purpose injector stub: tear exactly one WAL flush."""

    def __init__(self):
        self.remaining = 1

    def on_wal_flush(self, batch_len):
        if self.remaining > 0 and batch_len > 0:
            self.remaining -= 1
            return "torn"
        return "ok"


class TestTornRepairVisibility:
    def test_torn_repair_counted_in_sys_and_snapshot(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.txn_manager.wal.fault_injector = _TearNextFlush()
        db.execute("INSERT INTO t VALUES (1)")  # this flush is torn
        db.execute("INSERT INTO t VALUES (2)")  # next flush repairs it
        db.txn_manager.wal.fault_injector = None
        wal_row = _sys_row(db, "SYS_STAT_WAL")
        assert wal_row["torn_flushes"] == 1
        assert wal_row["torn_repairs"] == 1
        _assert_sys_matches_snapshot(db)


class TestRecoverySysConsistency:
    @pytest.mark.parametrize("seed", [11, 37])
    def test_sys_tables_after_crash_recovery(self, seed):
        rng = random.Random(seed)
        db = company.figure1_database(buffer_capacity=4)
        db.checkpoint()
        injector = FaultInjector(
            seed=seed,
            plan=FaultPlan(torn_write_rate=0.2, drop_flush_rate=0.05),
            crash_after_ops=rng.randint(60, 160),
        ).install(db)
        injector.arm()
        try:
            for i in range(120):
                db.execute(
                    f"INSERT INTO SKILLS VALUES ({1000 + i}, 'skill{i}')"
                )
        except (SimulatedCrash, IOFaultError):
            pass  # simulated crash mid-workload is the point
        injector.disarm()

        db.txn_manager.wal.crash()
        recovered = Database(disk=db.disk, wal=db.txn_manager.wal)
        recovered.execute_script(company._SCHEMA)
        stats = recovered.recover()

        # recovery's WAL repairs are visible through plain SQL …
        wal_row = _sys_row(recovered, "SYS_STAT_WAL")
        assert wal_row["torn_repairs"] == recovered.txn_manager.wal.torn_repairs
        assert wal_row["stable_lsn"] == recovered.txn_manager.wal.stable_lsn
        # … and SYS tables agree with metrics_snapshot() post-recovery
        _assert_sys_matches_snapshot(recovered)

        # the recovered engine's statement stats are fresh (new registry)
        # and immediately queryable
        calls = recovered.execute(
            "SELECT sum(calls) FROM SYS_STAT_STATEMENTS"
        ).rows[0][0]
        assert calls >= 1

        # a second look must re-pull post-recovery live counters, not a
        # snapshot taken during recovery
        recovered.execute("INSERT INTO SKILLS VALUES (9999, 'fresh')")
        _assert_sys_matches_snapshot(recovered)
        assert stats is not None
