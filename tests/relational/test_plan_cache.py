"""Plan cache and prepared statements.

The compile-once subsystem: statement normalization (WHERE constants lift
into a parameter vector), the LRU cache keyed on (fingerprint, rewrite
flag) with per-object catalog-version dependencies, and the
``Database.prepare`` API whose re-executions must skip planning entirely
(proved by the hit counter).
"""

import pytest

from repro.errors import SQLError
from repro.relational.engine import Database
from repro.relational.plancache import normalize_statement
from repro.relational.sql.parser import parse_statements


@pytest.fixture
def tdb():
    db = Database()
    db.execute("CREATE TABLE T (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER)")
    db.execute(
        "INSERT INTO T VALUES (1, 1, 10), (2, 1, 20), (3, 2, 30), (4, 2, 40)"
    )
    return db


def _one(sql):
    (stmt,) = parse_statements(sql)
    return stmt


class TestNormalization:
    def test_where_literals_lifted(self):
        norm = normalize_statement(_one("SELECT val FROM T WHERE id = 3"))
        assert norm.lifted_values == [3]
        assert "?" in norm.fingerprint
        assert "3" not in norm.fingerprint.split("WHERE")[1]

    def test_same_shape_same_fingerprint(self):
        a = normalize_statement(_one("SELECT val FROM T WHERE id = 3"))
        b = normalize_statement(_one("SELECT val FROM T WHERE id = 7"))
        assert a.fingerprint == b.fingerprint
        assert a.lifted_values == [3] and b.lifted_values == [7]

    def test_group_order_literals_kept(self):
        # GROUP BY / ORDER BY have textual/positional matching semantics;
        # their literals must never be parameterized.
        norm = normalize_statement(
            _one("SELECT grp, COUNT(*) FROM T GROUP BY grp ORDER BY 1")
        )
        assert norm.lifted_values == []

    def test_explicit_params_precede_lifted(self):
        norm = normalize_statement(
            _one("SELECT val FROM T WHERE grp = ? AND val > 15")
        )
        assert norm.n_explicit == 1
        assert norm.lifted_values == [15]

    def test_null_literal_not_lifted(self):
        norm = normalize_statement(_one("SELECT val FROM T WHERE grp IS NULL"))
        assert norm.lifted_values == []


class TestTransparentCaching:
    def test_repeated_query_hits(self, tdb):
        tdb.execute("SELECT val FROM T WHERE id = 1")
        before = tdb.plan_cache.stats()
        tdb.execute("SELECT val FROM T WHERE id = 1")
        after = tdb.plan_cache.stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_different_constants_share_one_plan(self, tdb):
        assert tdb.execute("SELECT val FROM T WHERE id = 1").scalar() == 10
        entries = tdb.plan_cache.stats()["entries"]
        assert tdb.execute("SELECT val FROM T WHERE id = 4").scalar() == 40
        assert tdb.plan_cache.stats()["entries"] == entries
        assert tdb.plan_cache.stats()["hits"] >= 1

    def test_cache_hit_skips_pipeline_stages(self, tdb):
        tdb.execute("SELECT val FROM T WHERE id = 2")
        tdb.execute("SELECT val FROM T WHERE id = 3")
        assert tdb.last_timings["build_qgm"] == 0.0
        assert tdb.last_timings["rewrite"] == 0.0
        assert tdb.last_timings["optimize"] == 0.0

    def test_rewrite_flag_partitions_cache(self, tdb):
        tdb.execute("SELECT val FROM T WHERE id = 1")
        entries = tdb.plan_cache.stats()["entries"]
        tdb.enable_rewrite = False
        try:
            tdb.execute("SELECT val FROM T WHERE id = 1")
        finally:
            tdb.enable_rewrite = True
        assert tdb.plan_cache.stats()["entries"] == entries + 1

    def test_lru_eviction(self):
        db = Database(plan_cache_capacity=2)
        db.execute("CREATE TABLE T (a INTEGER)")
        db.execute("INSERT INTO T VALUES (1)")
        db.execute("SELECT a FROM T")
        db.execute("SELECT a + 1 FROM T")
        db.execute("SELECT a + 2 FROM T")
        stats = db.plan_cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] >= 1

    def test_zero_capacity_disables_cache(self, tdb):
        db = Database(plan_cache_capacity=0)
        db.execute("CREATE TABLE T (a INTEGER)")
        db.execute("INSERT INTO T VALUES (1)")
        assert db.execute("SELECT a FROM T").scalar() == 1
        assert db.plan_cache.stats()["entries"] == 0

    def test_results_identical_with_and_without_cache(self, tdb):
        queries = [
            "SELECT val FROM T WHERE grp = 2",
            "SELECT grp, SUM(val) FROM T GROUP BY grp ORDER BY grp",
            "SELECT val FROM T WHERE id IN (1, 3) ORDER BY val",
        ]
        cold = Database(plan_cache_capacity=0)
        cold.execute(
            "CREATE TABLE T (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER)"
        )
        cold.execute(
            "INSERT INTO T VALUES (1, 1, 10), (2, 1, 20), (3, 2, 30), (4, 2, 40)"
        )
        for sql in queries:
            for _ in range(2):  # second run exercises the cached plan
                assert tdb.execute(sql).rows == cold.execute(sql).rows


class TestInvalidation:
    def test_drop_table_invalidates(self, tdb):
        tdb.execute("SELECT val FROM T WHERE id = 1")
        tdb.execute("SELECT val FROM T WHERE id = 1")
        tdb.execute("DROP TABLE T")
        tdb.execute("CREATE TABLE T (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER)")
        tdb.execute("INSERT INTO T VALUES (9, 9, 90)")
        before = tdb.plan_cache.stats()
        assert tdb.execute("SELECT val FROM T WHERE id = 9").scalar() == 90
        after = tdb.plan_cache.stats()
        assert after["invalidations"] == before["invalidations"] + 1
        assert after["misses"] == before["misses"] + 1

    def test_create_index_invalidates(self, tdb):
        tdb.execute("SELECT val FROM T WHERE grp = 1")
        before = tdb.plan_cache.stats()
        tdb.execute("CREATE INDEX ig ON T (grp)")
        tdb.execute("SELECT val FROM T WHERE grp = 1")
        after = tdb.plan_cache.stats()
        assert after["invalidations"] == before["invalidations"] + 1

    def test_analyze_invalidates(self, tdb):
        tdb.execute("SELECT val FROM T WHERE grp = 1")
        before = tdb.plan_cache.stats()
        tdb.execute("ANALYZE")
        tdb.execute("SELECT val FROM T WHERE grp = 1")
        after = tdb.plan_cache.stats()
        assert after["invalidations"] == before["invalidations"] + 1

    def test_unrelated_ddl_does_not_invalidate(self, tdb):
        tdb.execute("SELECT val FROM T WHERE id = 1")
        tdb.execute("CREATE TABLE OTHER (x INTEGER)")
        before = tdb.plan_cache.stats()
        tdb.execute("SELECT val FROM T WHERE id = 1")
        after = tdb.plan_cache.stats()
        assert after["hits"] == before["hits"] + 1
        assert after["invalidations"] == before["invalidations"]


class TestPrepared:
    def test_re_execution_skips_planning(self, tdb):
        prepared = tdb.prepare("SELECT val FROM T WHERE id = ?")
        stats = tdb.plan_cache.stats()
        results = [prepared.execute([pid]).scalar() for pid in (1, 2, 3, 4)]
        assert results == [10, 20, 30, 40]
        after = tdb.plan_cache.stats()
        # every execution is a pure cache hit: zero additional compilations
        assert after["misses"] == stats["misses"]
        assert after["hits"] == stats["hits"] + 4

    def test_prepared_shares_plan_with_literal_query(self, tdb):
        tdb.execute("SELECT val FROM T WHERE id = 2")
        entries = tdb.plan_cache.stats()["entries"]
        prepared = tdb.prepare("SELECT val FROM T WHERE id = ?")
        assert prepared.execute([2]).scalar() == 20
        assert tdb.plan_cache.stats()["entries"] == entries

    def test_wrong_arity_rejected(self, tdb):
        prepared = tdb.prepare("SELECT val FROM T WHERE id = ?")
        with pytest.raises(SQLError):
            prepared.execute([])
        with pytest.raises(SQLError):
            prepared.execute([1, 2])

    def test_raw_execute_of_placeholder_rejected(self, tdb):
        with pytest.raises(SQLError):
            tdb.execute("SELECT val FROM T WHERE id = ?")

    def test_prepared_dml(self, tdb):
        ins = tdb.prepare("INSERT INTO T VALUES (?, ?, ?)")
        ins.execute([5, 3, 50])
        ins.execute([6, 3, 60])
        assert tdb.execute("SELECT COUNT(*) FROM T WHERE grp = 3").scalar() == 2
        upd = tdb.prepare("UPDATE T SET val = ? WHERE id = ?")
        upd.execute([99, 5])
        assert tdb.execute("SELECT val FROM T WHERE id = 5").scalar() == 99
        dele = tdb.prepare("DELETE FROM T WHERE grp = ?")
        dele.execute([3])
        assert tdb.execute("SELECT COUNT(*) FROM T WHERE grp = 3").scalar() == 0

    def test_prepared_mixed_explicit_and_lifted(self, tdb):
        prepared = tdb.prepare("SELECT val FROM T WHERE grp = ? AND val > 15")
        assert prepared.n_params == 1
        assert sorted(r[0] for r in prepared.execute([1])) == [20]
        assert sorted(r[0] for r in prepared.execute([2])) == [30, 40]

    def test_prepared_survives_unrelated_ddl(self, tdb):
        prepared = tdb.prepare("SELECT val FROM T WHERE id = ?")
        prepared.execute([1])
        tdb.execute("CREATE TABLE ELSEWHERE (x INTEGER)")
        before = tdb.plan_cache.stats()
        assert prepared.execute([3]).scalar() == 30
        assert tdb.plan_cache.stats()["misses"] == before["misses"]

    def test_prepared_recompiles_after_invalidation(self, tdb):
        prepared = tdb.prepare("SELECT val FROM T WHERE grp = ?")
        prepared.execute([1])
        tdb.execute("CREATE INDEX ig ON T (grp); ANALYZE")
        before = tdb.plan_cache.stats()
        assert sorted(r[0] for r in prepared.execute([2])) == [30, 40]
        after = tdb.plan_cache.stats()
        assert after["misses"] == before["misses"] + 1
        assert after["invalidations"] == before["invalidations"] + 1


class TestExplainCounters:
    def test_explain_reports_counters_without_mutating(self, tdb):
        tdb.execute("SELECT val FROM T WHERE id = 1")
        before = tdb.plan_cache.stats()
        text = tdb.explain("SELECT val FROM T WHERE id = 1")
        assert "plan cache: hits=" in text
        assert tdb.plan_cache.stats() == before
