"""Property-based query testing: random joins/aggregates vs SQLite, and
rewrite-on/off equivalence on randomly generated queries."""

import sqlite3

from hypothesis import given, settings, strategies as st

from repro.relational.engine import Database

ROWS_P = [
    (1, 30, "NY", 1.5),
    (2, 25, "SF", 2.5),
    (3, 35, "NY", None),
    (4, None, "LA", 4.0),
    (5, 25, None, 0.5),
    (6, 25, "NY", 2.5),
]
ROWS_Q = [
    (1, 1, 4),
    (2, 1, 7),
    (3, 3, 1),
    (4, None, 2),
    (5, 6, 3),
    (6, 6, 3),
]


def build_pair():
    ours = Database()
    ours.execute("CREATE TABLE P (id INTEGER, age INTEGER, city VARCHAR, score FLOAT)")
    ours.execute("CREATE TABLE Q (pid INTEGER, owner INTEGER, size INTEGER)")
    ref = sqlite3.connect(":memory:")
    ref.execute("CREATE TABLE P (id INTEGER, age INTEGER, city TEXT, score REAL)")
    ref.execute("CREATE TABLE Q (pid INTEGER, owner INTEGER, size INTEGER)")
    for row in ROWS_P:
        ref.execute("INSERT INTO P VALUES (?,?,?,?)", row)
        values = ", ".join("NULL" if v is None else repr(v) for v in row)
        ours.execute(f"INSERT INTO P VALUES ({values})")
    for row in ROWS_Q:
        ref.execute("INSERT INTO Q VALUES (?,?,?)", row)
        values = ", ".join("NULL" if v is None else repr(v) for v in row)
        ours.execute(f"INSERT INTO Q VALUES ({values})")
    return ours, ref


def norm(rows):
    def cell(v):
        if isinstance(v, float) and v.is_integer():
            return int(v)
        return v

    return sorted(
        (tuple(cell(v) for v in row) for row in rows),
        key=lambda r: tuple(
            (v is None, str(type(v)), v if v is not None else 0) for v in r
        ),
    )


_P_NUM = ["P.id", "P.age", "P.score"]
_Q_NUM = ["Q.pid", "Q.owner", "Q.size"]
_AGGS = ["COUNT(*)", "COUNT({c})", "SUM({c})", "MIN({c})", "MAX({c})"]


@st.composite
def join_queries(draw):
    """Random 2-table join with optional grouping."""
    join_left = draw(st.sampled_from(_P_NUM))
    join_right = draw(st.sampled_from(_Q_NUM))
    conjuncts = [f"{join_left} = {join_right}"]
    for _ in range(draw(st.integers(0, 2))):
        column = draw(st.sampled_from(_P_NUM + _Q_NUM))
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        value = draw(st.integers(-2, 10))
        conjuncts.append(f"{column} {op} {value}")
    where = " AND ".join(conjuncts)
    if draw(st.booleans()):
        key = draw(st.sampled_from(["P.city", "P.age", "Q.owner"]))
        agg_template = draw(st.sampled_from(_AGGS))
        agg = agg_template.format(c=draw(st.sampled_from(_P_NUM + _Q_NUM)))
        query = f"SELECT {key}, {agg} FROM P, Q WHERE {where} GROUP BY {key}"
        if draw(st.booleans()):
            query += f" HAVING COUNT(*) >= {draw(st.integers(1, 3))}"
        return query
    columns = draw(
        st.lists(st.sampled_from(_P_NUM + _Q_NUM + ["P.city"]),
                 min_size=1, max_size=3)
    )
    distinct = "DISTINCT " if draw(st.booleans()) else ""
    return f"SELECT {distinct}{', '.join(columns)} FROM P, Q WHERE {where}"


@settings(max_examples=60, deadline=None)
@given(query=join_queries())
def test_random_join_queries_match_sqlite(query):
    ours, ref = build_pair()
    assert norm(ours.execute(query).rows) == norm(ref.execute(query).fetchall()), query


@settings(max_examples=40, deadline=None)
@given(query=join_queries())
def test_rewrite_does_not_change_results(query):
    """Wrap the random query in a derived table so the rewrite engine has
    something to merge, then compare rewrite on vs off."""
    wrapped = f"SELECT * FROM ({query}) AS d"
    ours, _ = build_pair()
    ours.enable_rewrite = True
    with_rules = ours.execute(wrapped).rows
    ours.enable_rewrite = False
    without_rules = ours.execute(wrapped).rows
    assert norm(with_rules) == norm(without_rules), wrapped


@settings(max_examples=30, deadline=None)
@given(
    limit=st.integers(0, 8),
    offset=st.integers(0, 8),
    ascending=st.booleans(),
)
def test_order_limit_offset_window(limit, offset, ascending):
    """LIMIT/OFFSET must slice exactly the ordered row sequence."""
    ours, _ = build_pair()
    direction = "ASC" if ascending else "DESC"
    full = ours.execute(f"SELECT id FROM P ORDER BY id {direction}").rows
    window = ours.execute(
        f"SELECT id FROM P ORDER BY id {direction} LIMIT {limit} OFFSET {offset}"
    ).rows
    assert window == full[offset : offset + limit]
