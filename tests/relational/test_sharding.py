"""Sharded tables: routing, shard views, repartitioning, observability.

A :class:`ShardedTable` must be indistinguishable from a plain heap table
through the SQL surface (same rows, same index behaviour, same MVCC
visibility) while exposing its partitioning through SYS_SHARDS and the
read-only per-shard views.
"""

import pytest

from repro.errors import CatalogError, ReproError
from repro.relational.engine import Database
from repro.relational.storage.sharded import PartitionSpec, _stable_hash


def _parts_db(shards=0, rows=40, **kwargs):
    # pass shards through verbatim: an explicit 0 must stay unsharded even
    # when the REPRO_SHARDS leg forces a default for plain Database()
    db = Database(shards=shards, **kwargs)
    db.execute(
        "CREATE TABLE P (pid INTEGER PRIMARY KEY, grp VARCHAR, v INTEGER)"
    )
    table = db.catalog.get_table("P")
    table.insert_many(
        [(i, f"g{i % 3}", i * 10) for i in range(1, rows + 1)]
    )
    db.execute("ANALYZE")
    return db


def _rows(db, sql):
    return sorted(db.execute(sql).rows)


class TestPartitionSpec:
    def test_hash_routing_is_stable_and_total(self):
        spec = PartitionSpec("hash", "pid", 4)
        spec.bind({"pid": 0})
        for value in (0, 1, 17, -3, None, "abc", 2.5, True):
            assert 0 <= spec.route_value(value) < 4
        assert _stable_hash("abc") == _stable_hash("abc")

    def test_range_routing_uses_bounds(self):
        spec = PartitionSpec("range", "x", 3, bounds=[10, 20])
        spec.bind({"x": 0})
        assert spec.route_value(5) == 0
        assert spec.route_value(10) == 1  # bounds are [low, high)
        assert spec.route_value(19) == 1
        assert spec.route_value(20) == 2
        assert spec.route_value(None) == 0
        assert spec.range_of(0) == (None, 10)
        assert spec.range_of(1) == (10, 20)
        assert spec.range_of(2) == (20, None)

    def test_spec_validation(self):
        with pytest.raises(CatalogError):
            PartitionSpec("round-robin", "x", 2)
        with pytest.raises(CatalogError):
            PartitionSpec("hash", "x", 1)
        with pytest.raises(CatalogError):
            PartitionSpec("range", "x", 3, bounds=[1])


class TestShardedSQLEquivalence:
    """The same SQL must return the same rows sharded or not."""

    QUERIES = [
        "SELECT * FROM P",
        "SELECT pid, v FROM P WHERE v > 150",
        "SELECT grp, COUNT(*), SUM(v) FROM P GROUP BY grp",
        "SELECT * FROM P WHERE pid = 7",
        "SELECT a.pid, b.pid FROM P a, P b WHERE a.pid = b.v / 10 AND a.grp = 'g1'",
        "SELECT * FROM P ORDER BY v DESC LIMIT 5",
    ]

    def test_query_equivalence(self):
        plain = _parts_db(shards=0)
        sharded = _parts_db(shards=4)
        assert sharded.catalog.get_table("P").is_sharded
        for sql in self.QUERIES:
            assert _rows(plain, sql) == _rows(sharded, sql), sql

    def test_dml_equivalence(self):
        plain = _parts_db(shards=0)
        sharded = _parts_db(shards=3)
        for db in (plain, sharded):
            db.execute("UPDATE P SET v = v + 1 WHERE pid <= 10")
            db.execute("DELETE FROM P WHERE grp = 'g2'")
            db.execute("INSERT INTO P VALUES (999, 'g9', -1)")
        assert _rows(plain, "SELECT * FROM P") == _rows(sharded, "SELECT * FROM P")

    def test_pk_violation_still_enforced(self):
        db = _parts_db(shards=4)
        with pytest.raises(ReproError):
            db.execute("INSERT INTO P VALUES (1, 'dup', 0)")

    def test_skewed_partition_all_rows_one_shard(self):
        db = Database()
        db.execute("CREATE TABLE S (k INTEGER PRIMARY KEY, v INTEGER)")
        db.repartition("S", 4, kind="range", column="k", bounds=[1000, 2000, 3000])
        table = db.catalog.get_table("S")
        table.insert_many([(i, i) for i in range(50)])  # all route to shard 0
        assert table.heap.shards[0].row_count == 50
        assert sum(s.row_count for s in table.heap.shards[1:]) == 0
        assert _rows(db, "SELECT * FROM S") == [(i, i) for i in range(50)]


class TestShardViews:
    def test_views_partition_the_facade(self):
        db = _parts_db(shards=4)
        table = db.catalog.get_table("P")
        union = []
        for i in range(4):
            view_rows = db.execute(f"SELECT * FROM {table.shard_view_name(i)}").rows
            union.extend(view_rows)
        assert sorted(union) == _rows(db, "SELECT * FROM P")

    def test_views_are_read_only(self):
        db = _parts_db(shards=2)
        with pytest.raises(ReproError):
            db.execute("INSERT INTO P__S0 VALUES (777, 'x', 0)")
        with pytest.raises(ReproError):
            db.execute("DELETE FROM P__S1")
        with pytest.raises(CatalogError):
            db.catalog.get_table("P__S0").add_index("bad", ["pid"])

    def test_drop_refused_on_view_and_cascades_from_parent(self):
        db = _parts_db(shards=2)
        with pytest.raises(CatalogError):
            db.catalog.drop_table("P__S0")
        db.execute("DROP TABLE P")
        for name in ("P", "P__S0", "P__S1"):
            with pytest.raises(CatalogError):
                db.catalog.get_table(name)

    def test_views_hidden_from_sys_tables(self):
        db = _parts_db(shards=2)
        names = [
            r[0]
            for r in db.execute("SELECT table_name FROM SYS_STAT_TABLES").rows
        ]
        assert "P" in names
        assert not any("__S" in n for n in names)


class TestSysShards:
    def test_rows_and_zone_bounds(self):
        db = _parts_db(shards=4, rows=100)
        rows = db.execute(
            "SELECT shard, kind, partition_column, row_count FROM SYS_SHARDS "
            "WHERE table_name = 'P' ORDER BY shard"
        ).rows
        assert [r[0] for r in rows] == [0, 1, 2, 3]
        assert all(r[1] == "hash" and r[2] == "pid" for r in rows)
        assert sum(r[3] for r in rows) == 100

    def test_unsharded_db_has_no_shard_rows(self):
        db = _parts_db(shards=0)
        assert db.execute("SELECT * FROM SYS_SHARDS").rows == []


class TestRepartition:
    def test_roundtrip_preserves_rows_and_indexes(self):
        db = _parts_db(shards=0)
        db.execute("CREATE INDEX idx_p_v ON P (v)")
        before = _rows(db, "SELECT * FROM P")
        db.repartition("P", 4)
        table = db.catalog.get_table("P")
        assert table.is_sharded
        assert _rows(db, "SELECT * FROM P") == before
        assert "idx_p_v" in table.indexes
        assert f"pk_P" in table.indexes  # PK index rebuilt by create_table
        # and back to a plain heap
        db.repartition("P", 1)
        assert not db.catalog.get_table("P").is_sharded
        assert _rows(db, "SELECT * FROM P") == before

    def test_range_derives_equi_depth_bounds(self):
        db = _parts_db(shards=0, rows=100)
        db.repartition("P", 4, kind="range", column="v")
        table = db.catalog.get_table("P")
        counts = [s.row_count for s in table.heap.shards]
        assert sum(counts) == 100
        assert max(counts) - min(counts) <= 2  # near equi-depth

    def test_guards(self):
        db = _parts_db(shards=0)
        db.execute("BEGIN")
        with pytest.raises(ReproError):
            db.repartition("P", 2)
        db.execute("ROLLBACK")
        with pytest.raises(CatalogError):
            db.repartition("SYS_TABLES", 2)


class TestAutoSharding:
    def test_database_kwarg_shards_ddl(self):
        db = Database(shards=4)
        db.execute("CREATE TABLE T (a INTEGER PRIMARY KEY, b VARCHAR)")
        table = db.catalog.get_table("T")
        assert table.is_sharded
        assert table.partition.kind == "hash"
        assert table.partition.column.lower() == "a"

    def test_env_var_enables_sharding(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        db = Database()
        db.execute("CREATE TABLE T (a INTEGER PRIMARY KEY)")
        assert db.catalog.get_table("T").is_sharded

    def test_disk_backed_databases_never_autoshard(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        from repro.relational.storage.disk import DiskManager

        db = Database(disk=DiskManager(4096))
        db.execute("CREATE TABLE T (a INTEGER PRIMARY KEY)")
        assert not db.catalog.get_table("T").is_sharded


class TestShardedMVCC:
    def test_snapshot_visibility_on_sharded_table(self):
        db = _parts_db(shards=4, mvcc=True)
        s1 = db.connect()
        s2 = db.connect()
        with s1._activate():
            db.execute("BEGIN")
            before = sorted(db.execute("SELECT * FROM P").rows)
        with s2._activate():
            db.execute("INSERT INTO P VALUES (500, 'late', 1)")
            db.execute("UPDATE P SET v = -5 WHERE pid = 1")
        with s1._activate():
            # snapshot taken before s2's writes: still the old image
            assert sorted(db.execute("SELECT * FROM P").rows) == before
            db.execute("COMMIT")
        with s1._activate():
            after = sorted(db.execute("SELECT * FROM P").rows)
        assert (500, "late", 1) in after
        assert (1, "g1", -5) in after

    def test_shard_views_respect_snapshots(self):
        db = _parts_db(shards=2, mvcc=True)
        table = db.catalog.get_table("P")
        total = len(db.execute("SELECT * FROM P").rows)
        per_view = sum(
            len(db.execute(f"SELECT * FROM {table.shard_view_name(i)}").rows)
            for i in range(2)
        )
        assert per_view == total
