"""SQL lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.relational.sql import ast
from repro.relational.sql.lexer import tokenize
from repro.relational.sql.parser import parse_sql, parse_statements


class TestLexer:
    def test_basic_tokens(self):
        kinds = [(t.kind, t.text) for t in tokenize("SELECT a, 1.5 FROM t")]
        assert kinds[:6] == [
            ("IDENT", "SELECT"),
            ("IDENT", "a"),
            ("OP", ","),
            ("NUMBER", "1.5"),
            ("IDENT", "FROM"),
            ("IDENT", "t"),
        ]

    def test_string_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'abc")

    def test_comments(self):
        tokens = tokenize("a -- comment\n b /* block\n comment */ c")
        assert [t.text for t in tokens if t.kind == "IDENT"] == ["a", "b", "c"]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("/* oops")

    def test_multi_char_operators(self):
        tokens = tokenize("a <= b <> c -> d || e")
        ops = [t.text for t in tokens if t.kind == "OP"]
        assert ops == ["<=", "<>", "->", "||"]

    def test_hyphen_identifiers_off_by_default(self):
        tokens = tokenize("a-b")
        assert [t.text for t in tokens if t.kind != "EOF"] == ["a", "-", "b"]

    def test_hyphen_identifiers_on(self):
        tokens = tokenize("ALL-DEPS-ORG", hyphen_idents=True)
        assert tokens[0].text == "ALL-DEPS-ORG"

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_scientific_notation(self):
        tokens = tokenize("1e3 2.5E-2")
        assert [t.text for t in tokens if t.kind == "NUMBER"] == ["1e3", "2.5E-2"]

    def test_quoted_identifier(self):
        tokens = tokenize('"Select"')
        assert tokens[0].kind == "IDENT" and tokens[0].text == "Select"


class TestSelectParsing:
    def test_simple(self):
        stmt = parse_sql("SELECT a, b FROM t")
        assert isinstance(stmt, ast.SelectStmt)
        assert len(stmt.select_items) == 2
        assert isinstance(stmt.from_tables[0], ast.NamedTable)

    def test_star_forms(self):
        stmt = parse_sql("SELECT *, t.* FROM t")
        assert isinstance(stmt.select_items[0].expr, ast.Star)
        assert stmt.select_items[1].expr.table == "t"

    def test_aliases(self):
        stmt = parse_sql("SELECT a AS x, b y FROM t AS u, v w")
        assert stmt.select_items[0].alias == "x"
        assert stmt.select_items[1].alias == "y"
        assert stmt.from_tables[0].alias == "u"
        assert stmt.from_tables[1].alias == "w"

    def test_keyword_not_taken_as_alias(self):
        stmt = parse_sql("SELECT a FROM t WHERE a = 1")
        assert stmt.select_items[0].alias is None
        assert stmt.where is not None

    def test_operator_precedence(self):
        stmt = parse_sql("SELECT 1 + 2 * 3 FROM t")
        expr = stmt.select_items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_and_or_precedence(self):
        stmt = parse_sql("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_not_in_between_like(self):
        stmt = parse_sql(
            "SELECT 1 FROM t WHERE a NOT IN (1, 2) AND b NOT BETWEEN 1 AND 3 "
            "AND c NOT LIKE 'x%' AND d IS NOT NULL"
        )
        conjuncts = ast.conjuncts(stmt.where)
        assert isinstance(conjuncts[0], ast.InList) and conjuncts[0].negated
        assert isinstance(conjuncts[1], ast.Between) and conjuncts[1].negated
        assert isinstance(conjuncts[2], ast.UnaryOp)
        assert isinstance(conjuncts[3], ast.IsNull) and conjuncts[3].negated

    def test_subqueries(self):
        stmt = parse_sql(
            "SELECT 1 FROM t WHERE a IN (SELECT x FROM u) "
            "AND EXISTS (SELECT 1 FROM v) AND b = (SELECT MAX(y) FROM w)"
        )
        conjuncts = ast.conjuncts(stmt.where)
        assert isinstance(conjuncts[0], ast.InSubquery)
        assert isinstance(conjuncts[1], ast.Exists)
        assert isinstance(conjuncts[2].right, ast.ScalarSubquery)

    def test_joins(self):
        stmt = parse_sql(
            "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        join = stmt.from_tables[0]
        assert isinstance(join, ast.Join) and join.kind == "LEFT"
        assert join.left.kind == "INNER"

    def test_cross_join(self):
        stmt = parse_sql("SELECT 1 FROM a CROSS JOIN b")
        assert stmt.from_tables[0].condition is None

    def test_group_having_order_limit(self):
        stmt = parse_sql(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 "
            "ORDER BY a DESC LIMIT 10 OFFSET 5"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 10 and stmt.offset == 5

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct
        assert not parse_sql("SELECT ALL a FROM t").distinct

    def test_set_operations(self):
        stmt = parse_sql("SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1")
        assert isinstance(stmt, ast.SetOpStmt)
        assert stmt.op == "UNION" and stmt.all
        assert len(stmt.order_by) == 1

    def test_nested_set_operations(self):
        stmt = parse_sql(
            "(SELECT a FROM t UNION SELECT b FROM u) EXCEPT SELECT c FROM v"
        )
        assert stmt.op == "EXCEPT"
        assert stmt.left.op == "UNION"

    def test_derived_table(self):
        stmt = parse_sql("SELECT x FROM (SELECT a AS x FROM t) AS d")
        assert isinstance(stmt.from_tables[0], ast.DerivedTable)

    def test_case_expression(self):
        stmt = parse_sql(
            "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t"
        )
        case = stmt.select_items[0].expr
        assert isinstance(case, ast.Case)
        assert case.else_result is not None

    def test_simple_case(self):
        stmt = parse_sql("SELECT CASE a WHEN 1 THEN 'x' END FROM t")
        case = stmt.select_items[0].expr
        assert case.whens[0][0].op == "="

    def test_cast(self):
        stmt = parse_sql("SELECT CAST(a AS INTEGER) FROM t")
        assert stmt.select_items[0].expr.name == "CAST_INTEGER"

    def test_count_distinct(self):
        stmt = parse_sql("SELECT COUNT(DISTINCT a) FROM t")
        assert stmt.select_items[0].expr.distinct

    def test_unary_minus_folds_literals(self):
        stmt = parse_sql("SELECT -5 FROM t")
        assert stmt.select_items[0].expr.value == -5

    def test_roundtrip_to_sql(self):
        source = (
            "SELECT d.a, COUNT(*) AS n FROM t AS d WHERE (d.a > 1) "
            "GROUP BY d.a ORDER BY n ASC LIMIT 3"
        )
        stmt = parse_sql(source)
        reparsed = parse_sql(stmt.to_sql())
        assert reparsed.to_sql() == stmt.to_sql()


class TestErrorHandling:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM t garbage extra ,")

    def test_missing_from_item(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM")

    def test_bad_limit(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM t LIMIT 1.5")

    def test_empty_source(self):
        with pytest.raises(ParseError):
            parse_sql("")

    def test_error_has_position(self):
        with pytest.raises(ParseError) as info:
            parse_sql("SELECT a FROM\nWHERE")
        assert "line 2" in str(info.value)


class TestOtherStatements:
    def test_insert_values(self):
        stmt = parse_sql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_sql("INSERT INTO t SELECT * FROM u")
        assert stmt.select is not None

    def test_update(self):
        stmt = parse_sql("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_sql("DELETE FROM t")
        assert stmt.where is None

    def test_create_table(self):
        stmt = parse_sql(
            "CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(10) NOT NULL, "
            "c INTEGER REFERENCES u(x))"
        )
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null and stmt.columns[1].size == 10
        assert stmt.columns[2].references == ("U", "x")

    def test_create_table_if_not_exists(self):
        stmt = parse_sql("CREATE TABLE IF NOT EXISTS t (a INTEGER)")
        assert stmt.if_not_exists

    def test_create_index(self):
        stmt = parse_sql("CREATE UNIQUE INDEX i ON t (a, b) USING HASH")
        assert stmt.unique and stmt.kind == "hash" and stmt.columns == ["a", "b"]

    def test_create_view(self):
        stmt = parse_sql("CREATE VIEW v AS SELECT a FROM t")
        assert isinstance(stmt.query, ast.SelectStmt)

    def test_drop_variants(self):
        assert parse_sql("DROP TABLE IF EXISTS t").if_exists
        assert parse_sql("DROP VIEW v").kind == "VIEW"
        assert parse_sql("DROP INDEX i ON t").table == "t"

    def test_txn_statements(self):
        batch = parse_statements("BEGIN; COMMIT; ROLLBACK; ANALYZE t;")
        names = [type(s).__name__ for s in batch]
        assert names == ["BeginStmt", "CommitStmt", "RollbackStmt", "AnalyzeStmt"]

    def test_statement_batch(self):
        batch = parse_statements("SELECT 1 FROM t; SELECT 2 FROM t")
        assert len(batch) == 2
