"""DML, DDL, constraints, ANALYZE and plan selection through the engine."""

import pytest

from repro.errors import (
    CatalogError,
    ExecutionError,
    IntegrityError,
)


class TestInsert:
    def test_basic(self, db):
        db.execute("CREATE TABLE T (a INTEGER, b VARCHAR)")
        result = db.execute("INSERT INTO T VALUES (1, 'x'), (2, 'y')")
        assert result.rowcount == 2
        assert len(db.execute("SELECT * FROM T").rows) == 2

    def test_column_list_defaults_null(self, db):
        db.execute("CREATE TABLE T (a INTEGER, b VARCHAR, c FLOAT)")
        db.execute("INSERT INTO T (c, a) VALUES (1.5, 7)")
        assert db.execute("SELECT * FROM T").rows == [(7, None, 1.5)]

    def test_insert_select(self, people_db):
        people_db.execute("CREATE TABLE NAMES (n VARCHAR)")
        result = people_db.execute(
            "INSERT INTO NAMES SELECT name FROM PEOPLE WHERE age > 26"
        )
        assert result.rowcount == 2

    def test_insert_expression(self, db):
        db.execute("CREATE TABLE T (a INTEGER)")
        db.execute("INSERT INTO T VALUES (2 + 3 * 4)")
        assert db.execute("SELECT a FROM T").scalar() == 14

    def test_wrong_arity_raises(self, db):
        db.execute("CREATE TABLE T (a INTEGER, b INTEGER)")
        with pytest.raises((ExecutionError, IntegrityError)):
            db.execute("INSERT INTO T VALUES (1)")

    def test_type_mismatch_raises(self, db):
        db.execute("CREATE TABLE T (a INTEGER)")
        with pytest.raises(Exception):
            db.execute("INSERT INTO T VALUES ('not a number')")


class TestConstraints:
    def test_primary_key_uniqueness(self, db):
        db.execute("CREATE TABLE T (a INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO T VALUES (1)")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO T VALUES (1)")
        # failed insert must not leave a ghost row
        assert db.execute("SELECT COUNT(*) FROM T").scalar() == 1

    def test_primary_key_not_null(self, db):
        db.execute("CREATE TABLE T (a INTEGER PRIMARY KEY)")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO T VALUES (NULL)")

    def test_not_null(self, db):
        db.execute("CREATE TABLE T (a INTEGER NOT NULL)")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO T VALUES (NULL)")

    def test_foreign_key_checked(self, db):
        db.execute("CREATE TABLE P (id INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE C (ref INTEGER REFERENCES P(id))")
        db.execute("INSERT INTO P VALUES (1)")
        db.execute("INSERT INTO C VALUES (1)")
        db.execute("INSERT INTO C VALUES (NULL)")  # NULL FK allowed
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO C VALUES (99)")

    def test_foreign_key_on_update(self, db):
        db.execute("CREATE TABLE P (id INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE C (ref INTEGER REFERENCES P(id))")
        db.execute("INSERT INTO P VALUES (1)")
        db.execute("INSERT INTO C VALUES (1)")
        with pytest.raises(IntegrityError):
            db.execute("UPDATE C SET ref = 99")

    def test_unique_index_enforced(self, db):
        db.execute("CREATE TABLE T (a INTEGER)")
        db.execute("CREATE UNIQUE INDEX u ON T (a)")
        db.execute("INSERT INTO T VALUES (1)")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO T VALUES (1)")


class TestUpdateDelete:
    def test_update_with_where(self, people_db):
        result = people_db.execute("UPDATE PEOPLE SET age = age + 1 WHERE city = 'NY'")
        assert result.rowcount == 2
        assert people_db.execute(
            "SELECT age FROM PEOPLE WHERE name = 'ann'"
        ).scalar() == 31

    def test_update_all(self, people_db):
        assert people_db.execute("UPDATE PEOPLE SET score = 0.0").rowcount == 5

    def test_update_with_subquery_predicate(self, people_db):
        people_db.execute(
            "UPDATE PEOPLE SET score = 9.9 WHERE age = (SELECT MAX(age) FROM PEOPLE)"
        )
        assert people_db.execute(
            "SELECT score FROM PEOPLE WHERE name = 'cat'"
        ).scalar() == 9.9

    def test_update_maintains_indexes(self, people_db):
        people_db.execute("CREATE INDEX ia ON PEOPLE (age)")
        people_db.execute("UPDATE PEOPLE SET age = 99 WHERE id = 1")
        result = people_db.execute("SELECT name FROM PEOPLE WHERE age = 99")
        assert result.rows == [("ann",)]
        assert people_db.execute("SELECT name FROM PEOPLE WHERE age = 30").rows == []

    def test_delete_with_where(self, people_db):
        assert people_db.execute("DELETE FROM PEOPLE WHERE age = 25").rowcount == 2
        assert people_db.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 3

    def test_delete_all(self, people_db):
        people_db.execute("DELETE FROM PEOPLE")
        assert people_db.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 0

    def test_delete_maintains_indexes(self, people_db):
        people_db.execute("DELETE FROM PEOPLE WHERE id = 1")
        assert people_db.execute("SELECT * FROM PEOPLE WHERE id = 1").rows == []


class TestDDL:
    def test_create_drop_table(self, db):
        db.execute("CREATE TABLE T (a INTEGER)")
        db.execute("DROP TABLE T")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM T")

    def test_if_not_exists(self, db):
        db.execute("CREATE TABLE T (a INTEGER)")
        db.execute("CREATE TABLE IF NOT EXISTS T (a INTEGER)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE T (a INTEGER)")

    def test_drop_if_exists(self, db):
        db.execute("DROP TABLE IF EXISTS NOPE")
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE NOPE")

    def test_duplicate_column_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE T (a INTEGER, a VARCHAR)")

    def test_index_backfill(self, people_db):
        people_db.execute("CREATE INDEX ia ON PEOPLE (age)")
        table = people_db.catalog.get_table("PEOPLE")
        assert len(table.indexes["ia"]) == 4  # NULL age not indexed

    def test_drop_index(self, people_db):
        people_db.execute("CREATE INDEX ia ON PEOPLE (age)")
        people_db.execute("DROP INDEX ia ON PEOPLE")
        assert "ia" not in people_db.catalog.get_table("PEOPLE").indexes

    def test_analyze_fills_stats(self, people_db):
        people_db.execute("ANALYZE PEOPLE")
        stats = people_db.catalog.get_table("PEOPLE").stats
        assert stats.analyzed
        assert stats.row_count == 5
        assert stats.columns["age"].n_distinct == 3
        assert stats.columns["age"].null_count == 1
        assert stats.columns["age"].min_value == 25
        assert stats.columns["age"].max_value == 35


class TestPlanSelection:
    @pytest.fixture
    def indexed_db(self, db):
        db.execute("CREATE TABLE T (id INTEGER PRIMARY KEY, v INTEGER, s VARCHAR)")
        rows = ", ".join(f"({i}, {i % 10}, 's{i}')" for i in range(300))
        db.execute(f"INSERT INTO T VALUES {rows}")
        db.execute("CREATE INDEX iv ON T (v) USING HASH")
        db.execute("ANALYZE")
        return db

    def test_pk_equality_uses_index(self, indexed_db):
        plan = indexed_db.explain("SELECT * FROM T WHERE id = 7")
        assert "IndexEqScan" in plan
        assert indexed_db.execute("SELECT s FROM T WHERE id = 7").scalar() == "s7"

    def test_range_uses_btree(self, indexed_db):
        plan = indexed_db.explain("SELECT * FROM T WHERE id > 290")
        assert "IndexRangeScan" in plan
        assert len(indexed_db.execute("SELECT * FROM T WHERE id > 290").rows) == 9

    def test_hash_index_equality(self, indexed_db):
        plan = indexed_db.explain("SELECT * FROM T WHERE v = 3")
        assert "IndexEqScan(T.iv)" in plan

    def test_hash_index_not_used_for_range(self, indexed_db):
        plan = indexed_db.explain("SELECT * FROM T WHERE v > 3")
        assert "iv" not in plan

    def test_join_uses_index_or_hash(self, indexed_db):
        indexed_db.execute("CREATE TABLE U (ref INTEGER)")
        rows = ", ".join(f"({i % 300})" for i in range(600))
        indexed_db.execute(f"INSERT INTO U VALUES {rows}")
        indexed_db.execute("ANALYZE")
        plan = indexed_db.explain("SELECT T.s FROM U, T WHERE U.ref = T.id")
        assert "HashJoin" in plan or "IndexNLJoin" in plan

    def test_plans_produce_same_rows_with_and_without_rewrite(self, people_db):
        query = (
            "SELECT p.name FROM (SELECT * FROM PEOPLE WHERE age > 20) AS p "
            "WHERE p.city = 'NY' ORDER BY p.id"
        )
        with_rewrite = people_db.execute(query).rows
        people_db.enable_rewrite = False
        without_rewrite = people_db.execute(query).rows
        people_db.enable_rewrite = True
        assert with_rewrite == without_rewrite


class TestResultHelpers:
    def test_scalar_and_first(self, people_db):
        result = people_db.execute("SELECT id, name FROM PEOPLE ORDER BY id")
        assert result.scalar() == 1
        assert result.first() == (1, "ann")
        assert len(result) == 5
        assert list(result)[0] == (1, "ann")

    def test_pretty(self, people_db):
        text = people_db.execute("SELECT id, name FROM PEOPLE ORDER BY id").pretty()
        assert "id" in text and "ann" in text and "NULL" not in text

    def test_pretty_truncation(self, people_db):
        text = people_db.execute("SELECT id FROM PEOPLE").pretty(max_rows=2)
        assert "more rows" in text

    def test_io_stats_shape(self, people_db):
        people_db.reset_io_stats()
        people_db.execute("SELECT * FROM PEOPLE")
        stats = people_db.io_stats()
        assert set(stats) == {
            "disk_reads", "disk_writes", "buffer_hits", "buffer_misses",
            "evictions",
        }
