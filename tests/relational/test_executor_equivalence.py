"""Row-vs-batch executor equivalence.

Every query here runs through two Databases that differ only in executor
mode ("row" vs "batch") and must produce identical results — identical
multisets for unordered queries, identical sequences for ordered ones.
The corpus is the full SQLite-crosscheck set (already validated against
SQLite in row mode, so batch-mode agreement transitively matches the
oracle) plus queries aimed at the vectorized kernels specifically: large
IN lists, mixed NULL comparison domains, LEFT joins with NULL keys, and
correlated subqueries (which must *fall back* to row operators inside a
batch-mode plan without changing semantics).
"""

import pytest

from repro.errors import ExecutionError
from repro.relational.engine import Database

from tests.relational.test_sqlite_crosscheck import (
    CROSSCHECK_QUERIES,
    ORDERED_QUERIES,
)

# Enough rows that "auto" mode would also vectorize these tables, with
# NULLs in every column that participates in predicates or join keys.
N_PEOPLE = 150
N_PETS = 260

SPECIES = ("cat", "dog", "fish", "owl", "hen")
CITIES = ("NY", "SF", "LA", None)


def _fill(db: Database) -> None:
    db.execute(
        "CREATE TABLE P (id INTEGER PRIMARY KEY, name VARCHAR, age INTEGER, "
        "city VARCHAR, score FLOAT)"
    )
    db.execute(
        "CREATE TABLE Q (pid INTEGER PRIMARY KEY, owner INTEGER, "
        "species VARCHAR, age INTEGER)"
    )
    for i in range(1, N_PEOPLE + 1):
        name = f"p{i % 41:02d}"
        age = "NULL" if i % 13 == 0 else str(20 + (i * 7) % 45)
        city = CITIES[(i * 3) % len(CITIES)]
        city_sql = "NULL" if city is None else f"'{city}'"
        score = "NULL" if i % 11 == 0 else str(round((i * 1.7) % 9.5, 2))
        db.execute(
            f"INSERT INTO P VALUES ({i}, '{name}', {age}, {city_sql}, {score})"
        )
    for i in range(1, N_PETS + 1):
        owner = "NULL" if i % 17 == 0 else str((i * 5) % (N_PEOPLE + 20))
        species = SPECIES[i % len(SPECIES)]
        age = str(i % 19)
        db.execute(
            f"INSERT INTO Q VALUES ({i}, {owner}, '{species}', {age})"
        )
    db.execute("ANALYZE")


@pytest.fixture(scope="module")
def pair():
    row_db = Database(executor="row")
    batch_db = Database(executor="batch")
    _fill(row_db)
    _fill(batch_db)
    return row_db, batch_db


EXTRA_QUERIES = [
    # wide IN list: the batch kernel uses hashed set membership, the row
    # path folds tv_or — both must agree, including the NULL item
    "SELECT id FROM P WHERE age IN (25, 26, 27, 31, 40, 41, 52, 63, NULL)",
    "SELECT id FROM P WHERE age NOT IN (25, 26, 27, 31, 40, 41, 52, 63)",
    "SELECT id FROM P WHERE id IN (" + ", ".join(map(str, range(0, 300, 7))) + ")",
    # comparison both ways around, and column-vs-column
    "SELECT id FROM P WHERE 40 <= age",
    "SELECT pid FROM Q WHERE age < owner",
    # NULL-key joins never match, LEFT pads
    "SELECT P.id, Q.pid FROM P LEFT JOIN Q ON P.age = Q.age",
    "SELECT P.id, Q.pid FROM P JOIN Q ON P.age = Q.age",
    # multi-column grouping over data wider than one batch section
    "SELECT city, age, COUNT(*), SUM(score) FROM P GROUP BY city, age",
    "SELECT species, COUNT(DISTINCT owner) FROM Q GROUP BY species",
    # correlated subqueries: batch plans fall back to row operators here
    "SELECT name FROM P WHERE EXISTS "
    "(SELECT 1 FROM Q WHERE Q.owner = P.id AND Q.age > P.age - 30)",
    "SELECT id, (SELECT MAX(age) FROM Q WHERE Q.owner = P.id) FROM P",
    # string kernels
    "SELECT name FROM P WHERE name LIKE 'p1%'",
    "SELECT name FROM P WHERE name NOT LIKE '%3'",
    "SELECT name || '/' || city FROM P",
    # arithmetic incl. NULL propagation and int/float mixing
    "SELECT id, age * score, age - id FROM P",
    "SELECT id FROM P WHERE age * 2 > id + 40",
]

EXTRA_ORDERED = [
    "SELECT id, age FROM P ORDER BY age DESC, id LIMIT 20",
    "SELECT id FROM P WHERE city = 'NY' ORDER BY score, id OFFSET 5",
    "SELECT species, COUNT(*) AS n FROM Q GROUP BY species ORDER BY n DESC, species",
]


def _norm(rows):
    return sorted(
        rows,
        key=lambda r: tuple(
            (v is None, str(type(v)), v if v is not None else 0) for v in r
        ),
    )


@pytest.mark.parametrize("query", CROSSCHECK_QUERIES + EXTRA_QUERIES)
def test_unordered_equivalence(pair, query):
    row_db, batch_db = pair
    assert _norm(row_db.execute(query).rows) == _norm(
        batch_db.execute(query).rows
    ), query


@pytest.mark.parametrize("query", ORDERED_QUERIES + EXTRA_ORDERED)
def test_ordered_equivalence(pair, query):
    row_db, batch_db = pair
    assert row_db.execute(query).rows == batch_db.execute(query).rows, query


def test_not_vacuous(pair):
    """The batch database actually plans Vec* operators (and row doesn't)."""
    row_db, batch_db = pair
    query = "SELECT city, COUNT(*) FROM P WHERE age > 30 GROUP BY city"
    assert "Vec" in batch_db.explain(query)
    assert "Vec" not in row_db.explain(query)


def test_correlated_falls_back_to_row_operators(pair):
    _, batch_db = pair
    plan = batch_db.explain(
        "SELECT name FROM P WHERE EXISTS (SELECT 1 FROM Q WHERE Q.owner = P.id)"
    )
    assert "Vec" not in plan


def test_sys_tables_fall_back_to_row_operators(pair):
    _, batch_db = pair
    plan = batch_db.explain("SELECT * FROM SYS_STAT_TABLES")
    assert "Vec" not in plan


def test_analyze_reports_batches(pair):
    _, batch_db = pair
    text = batch_db.explain_analyze("SELECT id FROM P WHERE age >= 30")
    assert "batches=" in text and "fill=" in text


def test_execute_span_carries_executor_mode(pair):
    row_db, batch_db = pair
    for db, mode in ((row_db, "row"), (batch_db, "batch")):
        db.execute("SELECT COUNT(*) FROM P")
        rows = db.execute(
            "SELECT executor FROM SYS_TRACE_SPANS WHERE name = 'execute'"
        ).rows
        assert (mode,) in rows


def test_executor_mode_resolution(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "batch")
    assert Database().executor_mode == "batch"
    assert Database(executor="row").executor_mode == "row"
    monkeypatch.delenv("REPRO_EXECUTOR")
    assert Database().executor_mode == "auto"
    with pytest.raises(ExecutionError):
        Database(executor="columnar")


def test_xnf_extraction_equivalence():
    from repro.workloads.oo1 import build_parts_database, load_parts_co
    from repro.xnf.api import XNFSession

    def extract(mode):
        db = build_parts_database(80, executor=mode)
        co = load_parts_co(XNFSession(db))
        parts = sorted(tuple(t.values()) for t in co.node("Xpart"))
        conns = sorted(
            (
                tuple(c.parent.values()),
                tuple(c.child.values()),
                tuple(sorted(c.attributes.items())),
            )
            for c in co.connections("connects")
        )
        return parts, conns

    assert extract("row") == extract("batch")
