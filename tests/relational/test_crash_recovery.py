"""Crash-recovery property harness (ISSUE PR 2 tentpole, part 4).

For each seed: build a fully *logged* workload database, run a seeded DML
mix under an armed :class:`FaultInjector` until a simulated crash, then
reopen over the surviving disk + stable WAL prefix and recover.  The
invariants checked after every crash:

1. **Exactly the committed transactions** — a shadow oracle replays the
   CRC-verified stable log (committed transactions only, compensation
   records included) into per-table multisets; the recovered tables must
   match the oracle exactly.
2. **Acknowledged implies durable** — every transaction whose COMMIT was
   acknowledged to the client before the crash is in the stable committed
   set (the reverse need not hold: a commit can reach stable storage and
   crash before the acknowledgement).
3. **Every torn write detected** — recovery's checksum pass flags exactly
   the pages whose latest disk image the injector tore.
4. **Checksums clean afterwards** — every page re-reads without error.
5. **Idempotence** — a second recovery pass redoes and undoes nothing.
6. **CO equivalence** — instantiating the paper's composite object on the
   recovered database gives byte-identical nodes and connections to a
   never-crashed control database holding the oracle rows.
7. **Plan-cache warm-up** — re-running the CO instantiation after recovery
   hits the (freshly invalidated, then refilled) plan cache at > 0.9.

A module-scoped ledger collects :class:`RecoveryStats` and injector
counters per seed; when ``FAULT_LEDGER_PATH`` is set (the CI fault-matrix
job does), it is written out as ``BENCH_fault_recovery.json``.
"""

from __future__ import annotations

import json
import os
import random
from collections import Counter
from typing import Dict, List, Optional, Tuple

import pytest

from repro.errors import (
    ChecksumError,
    IOFaultError,
    ResourceExhaustedError,
    SimulatedCrash,
)
from repro.relational.engine import Database
from repro.relational.storage import FaultInjector, FaultPlan
from repro.relational.txn import wal as wal_kinds
from repro.workloads import company, oo1
from repro.xnf.api import XNFSession

SEEDS = [11, 23, 37, 41, 59]

COMPANY_TABLES = [
    "DEPT", "EMP", "PROJ", "SKILLS", "EMPSKILL", "PROJSKILL", "EMPPROJ",
]
PARTS_TABLES = ["DESIGNLIB", "PART", "CONN"]

_LEDGER: List[Dict] = []


@pytest.fixture(scope="module", autouse=True)
def fault_ledger():
    """Collect per-seed recovery stats; persist them for the CI artifact."""
    yield _LEDGER
    path = os.environ.get("FAULT_LEDGER_PATH")
    if path and _LEDGER:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"runs": _LEDGER}, handle, indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# shadow oracle: replay the stable log's committed transactions
# ---------------------------------------------------------------------------


def _oracle_tables(wal) -> Dict[str, Counter]:
    """Multiset of rows per table implied by the stable committed txns."""
    records = wal.stable_records()
    committed = {r.txn_id for r in records if r.kind == wal_kinds.COMMIT}
    tables: Dict[str, Counter] = {}
    for record in records:
        if record.txn_id not in committed:
            continue
        kind = record.comp_kind if record.kind == wal_kinds.CLR else record.kind
        if kind not in (wal_kinds.INSERT, wal_kinds.DELETE, wal_kinds.UPDATE):
            continue
        table = tables.setdefault(record.table, Counter())
        if kind in (wal_kinds.DELETE, wal_kinds.UPDATE):
            table[tuple(record.before)] -= 1
        if kind in (wal_kinds.INSERT, wal_kinds.UPDATE):
            table[tuple(record.after)] += 1
    return {name: +counter for name, counter in tables.items()}


def _table_contents(db: Database, name: str) -> Counter:
    return Counter(tuple(row) for row in db.execute(f"SELECT * FROM {name}").rows)


def _control_database(schema_fn, oracle: Dict[str, Counter]) -> Database:
    """A never-crashed database holding exactly the oracle rows."""
    control = Database()
    schema_fn(control)
    for name, rows in oracle.items():
        table = control.catalog.get_table(name)
        for row, count in sorted(rows.items(), key=repr):
            for _ in range(count):
                table.insert(row)
    control.execute("ANALYZE")
    return control


def _co_fingerprint(db: Database, co_text: str):
    """Canonical (nodes, connections) image of a composite object."""
    co = XNFSession(db).query(co_text)
    nodes = {
        name: sorted(tuple(ct.values()) for ct in co.node(name))
        for name in co.nodes()
    }
    edges = {
        name: sorted(
            (
                tuple(conn.parent.values()),
                tuple(conn.child.values()),
                tuple(sorted(conn.attributes.items())),
            )
            for conn in co.connections(name)
        )
        for name in co.edges()
    }
    return nodes, edges


# ---------------------------------------------------------------------------
# the seeded fault workload
# ---------------------------------------------------------------------------


class WorkloadRun:
    """One crash run: client-side acknowledgement log plus fault telemetry."""

    def __init__(self):
        self.acked_txn_ids: set = set()
        self.statements_run = 0
        self.statement_errors = 0
        self.crashed = False
        self.checksum_poisoned = False


def _last_commit_txn_id(db: Database) -> Optional[int]:
    records = db.txn_manager.wal.records
    if records and records[-1].kind == wal_kinds.COMMIT:
        return records[-1].txn_id
    return None


def _run_company_workload(
    db: Database, rng: random.Random, statements: int = 120
) -> WorkloadRun:
    """Seeded mix of autocommit DML, explicit transactions, rollbacks and
    checkpoints against EMP, driven until a simulated crash (or the end)."""
    run = WorkloadRun()
    known = [1, 2, 3, 4, 5, 6]
    next_eno = 1000

    def one_statement(sql: str) -> bool:
        """Returns True iff the statement was acknowledged."""
        run.statements_run += 1
        try:
            db.execute(sql)
            return True
        except IOFaultError:
            run.statement_errors += 1
            return False
        except ChecksumError:
            run.statement_errors += 1
            run.checksum_poisoned = True
            return False

    def random_dml() -> str:
        nonlocal next_eno
        roll = rng.random()
        if roll < 0.4:
            next_eno += 1
            known.append(next_eno)
            return (
                f"INSERT INTO EMP VALUES ({next_eno}, 'w{next_eno}', "
                f"{rng.randint(1, 900)}.0, {rng.randint(1, 3)}, 'gen')"
            )
        if roll < 0.8 or len(known) <= 4:
            return (
                f"UPDATE EMP SET sal = {rng.randint(1, 900)}.0 "
                f"WHERE eno = {rng.choice(known)}"
            )
        victim = known.pop(rng.randrange(6, len(known)) if len(known) > 6 else -1)
        return f"DELETE FROM EMP WHERE eno = {victim}"

    try:
        for _ in range(statements):
            if run.checksum_poisoned:
                break  # a poisoned page means an operator-forced restart
            action = rng.random()
            if action < 0.10 and not db.in_transaction:
                try:
                    db.checkpoint()
                except (IOFaultError, ChecksumError):
                    pass
                continue
            if action < 0.35:
                # explicit transaction: a few statements then COMMIT/ROLLBACK
                db.execute("BEGIN")
                txn_id = db._txn.txn_id
                for _ in range(rng.randint(1, 3)):
                    one_statement(random_dml())
                try:
                    if rng.random() < 0.75:
                        db.execute("COMMIT")
                        run.acked_txn_ids.add(txn_id)
                    else:
                        db.execute("ROLLBACK")
                except IOFaultError:
                    run.statement_errors += 1
                    if db.in_transaction:
                        db.execute("ROLLBACK")
                continue
            if one_statement(random_dml()):
                txn_id = _last_commit_txn_id(db)
                if txn_id is not None:
                    run.acked_txn_ids.add(txn_id)
    except SimulatedCrash:
        run.crashed = True
    return run


def _crash_and_recover(db: Database, schema_fn) -> Tuple[Database, object]:
    db.txn_manager.wal.crash()
    reopened = Database(disk=db.disk, wal=db.txn_manager.wal)
    schema_fn(reopened)
    stats = reopened.recover()
    return reopened, stats


def _company_schema(database: Database) -> None:
    database.execute_script(company._SCHEMA)


def _check_invariants(
    recovered: Database,
    stats,
    injector: FaultInjector,
    torn_snapshot: set,
    run: WorkloadRun,
    tables: List[str],
    schema_fn,
    co_text: str,
) -> None:
    wal = recovered.txn_manager.wal
    oracle = _oracle_tables(wal)

    # 1. exactly the committed transactions
    for name in tables:
        assert _table_contents(recovered, name) == oracle.get(name, Counter()), (
            f"seed-run table {name} diverges from the stable-log oracle"
        )

    # 2. acknowledged implies durable
    stable_committed = {
        r.txn_id for r in wal.stable_records() if r.kind == wal_kinds.COMMIT
    }
    assert run.acked_txn_ids <= stable_committed

    # 3. every torn write detected
    assert set(stats.torn_pages_detected) == torn_snapshot

    # 4. checksums clean after recovery
    for page_id in recovered.disk.page_ids():
        recovered.disk.read(page_id)

    # 5. idempotence
    second = recovered.recover()
    assert second.redo_applied == 0
    assert second.undo_applied == 0
    assert second.loser_txns == 0

    # 6. CO equivalence against a never-crashed control database
    control = _control_database(schema_fn, oracle)
    assert _co_fingerprint(recovered, co_text) == _co_fingerprint(
        control, co_text
    )

    # 7. plan-cache warm-up on re-run
    XNFSession(recovered).query(co_text)
    before = recovered.plan_cache.stats()
    XNFSession(recovered).query(co_text)
    after = recovered.plan_cache.stats()
    lookups = (after["hits"] - before["hits"]) + (
        after["misses"] - before["misses"]
    )
    assert lookups > 0
    hit_rate = (after["hits"] - before["hits"]) / lookups
    assert hit_rate > 0.9, f"plan-cache hit rate {hit_rate:.2f} after recovery"


@pytest.mark.parametrize("seed", SEEDS)
def test_company_crash_recovery_properties(seed, fault_ledger):
    rng = random.Random(seed)
    # A 4-frame pool keeps the working set larger than the cache, so the
    # workload generates steady disk traffic for the injector to corrupt.
    db = company.figure1_database(buffer_capacity=4)
    db.checkpoint()

    injector = FaultInjector(
        seed=seed,
        plan=FaultPlan(
            read_error_rate=0.02,
            write_error_rate=0.02,
            torn_write_rate=0.05,
            drop_flush_rate=0.03,
        ),
        crash_after_ops=rng.randint(60, 220),
    ).install(db)
    injector.arm()

    run = _run_company_workload(db, rng, statements=160)

    injector.disarm()
    torn_snapshot = set(injector.torn_pages)
    recovered, stats = _crash_and_recover(db, _company_schema)

    _check_invariants(
        recovered, stats, injector, torn_snapshot, run,
        COMPANY_TABLES, _company_schema, company.FIGURE1_CO,
    )
    fault_ledger.append(
        {
            "workload": "company",
            "seed": seed,
            "crashed": run.crashed,
            "statements_run": run.statements_run,
            "statement_errors": run.statement_errors,
            "acked_commits": len(run.acked_txn_ids),
            "injected_faults": dict(injector.counts),
            "recovery": stats.as_dict(),
        }
    )


# ---------------------------------------------------------------------------
# OO1 parts workload (logged variant: the stock builder bulk-loads without
# logging, which recovery cannot rebuild after a torn write)
# ---------------------------------------------------------------------------


def _parts_schema(database: Database) -> None:
    database.execute_script(
        """
        CREATE TABLE DESIGNLIB (lid INTEGER PRIMARY KEY, lname VARCHAR);
        CREATE TABLE PART (pid INTEGER PRIMARY KEY, ptype VARCHAR,
                           x INTEGER, y INTEGER, lib INTEGER);
        CREATE TABLE CONN (cfrom INTEGER, cto INTEGER, ctype VARCHAR,
                           clength INTEGER);
        CREATE INDEX idx_conn_from ON CONN (cfrom);
        CREATE INDEX idx_conn_to ON CONN (cto);
        """
    )


def _logged_parts_database(num_parts: int, seed: int, **db_kwargs) -> Database:
    """OO1-shaped database loaded through the logged SQL path."""
    db = Database(**db_kwargs)
    _parts_schema(db)
    db.execute("INSERT INTO DESIGNLIB VALUES (1, 'main-library')")
    rng = random.Random(seed)
    for pid in range(1, num_parts + 1):
        db.execute(
            f"INSERT INTO PART VALUES ({pid}, 'part-type{rng.randint(0, 9)}', "
            f"{rng.randint(0, 99999)}, {rng.randint(0, 99999)}, 1)"
        )
    for cfrom, cto, ctype, clength in oo1.generate_connections(num_parts, rng):
        db.execute(
            f"INSERT INTO CONN VALUES ({cfrom}, {cto}, '{ctype}', {clength})"
        )
    db.execute("ANALYZE")
    return db


def _run_parts_workload(
    db: Database, rng: random.Random, num_parts: int, statements: int = 60
) -> WorkloadRun:
    """OO1 insert-operation mix: new parts with connections, plus moves."""
    run = WorkloadRun()
    next_pid = num_parts + 1000
    try:
        for _ in range(statements):
            if run.checksum_poisoned:
                break
            run.statements_run += 1
            try:
                if rng.random() < 0.5:
                    next_pid += 1
                    targets = [rng.randint(1, num_parts) for _ in range(3)]
                    db.execute("BEGIN")
                    txn_id = db._txn.txn_id
                    db.execute(
                        f"INSERT INTO PART VALUES ({next_pid}, 'part-typeX', "
                        f"{rng.randint(0, 99999)}, {rng.randint(0, 99999)}, 1)"
                    )
                    for cto in targets:
                        db.execute(
                            f"INSERT INTO CONN VALUES ({next_pid}, {cto}, "
                            f"'conn-typeX', {rng.randint(0, 99)})"
                        )
                    db.execute("COMMIT")
                    run.acked_txn_ids.add(txn_id)
                else:
                    db.execute(
                        f"UPDATE PART SET x = {rng.randint(0, 99999)} "
                        f"WHERE pid = {rng.randint(1, num_parts)}"
                    )
                    txn_id = _last_commit_txn_id(db)
                    if txn_id is not None:
                        run.acked_txn_ids.add(txn_id)
            except IOFaultError:
                run.statement_errors += 1
                if db.in_transaction:
                    try:
                        db.execute("ROLLBACK")
                    except IOFaultError:
                        pass
            except ChecksumError:
                run.statement_errors += 1
                run.checksum_poisoned = True
                if db.in_transaction:
                    try:
                        db.execute("ROLLBACK")
                    except (IOFaultError, ChecksumError):
                        pass
    except SimulatedCrash:
        run.crashed = True
    return run


@pytest.mark.parametrize("seed", SEEDS)
def test_oo1_crash_recovery_properties(seed, fault_ledger):
    num_parts = 40
    rng = random.Random(seed * 7919)
    db = _logged_parts_database(num_parts, seed=3, buffer_capacity=6)
    db.checkpoint()

    injector = FaultInjector(
        seed=seed,
        plan=FaultPlan(
            read_error_rate=0.01,
            write_error_rate=0.01,
            torn_write_rate=0.03,
            drop_flush_rate=0.02,
        ),
        crash_after_ops=rng.randint(40, 150),
    ).install(db)
    injector.arm()

    run = _run_parts_workload(db, rng, num_parts, statements=80)

    injector.disarm()
    torn_snapshot = set(injector.torn_pages)
    recovered, stats = _crash_and_recover(db, _parts_schema)

    _check_invariants(
        recovered, stats, injector, torn_snapshot, run,
        PARTS_TABLES, _parts_schema, oo1.PARTS_CO,
    )
    fault_ledger.append(
        {
            "workload": "oo1",
            "seed": seed,
            "crashed": run.crashed,
            "statements_run": run.statements_run,
            "statement_errors": run.statement_errors,
            "acked_commits": len(run.acked_txn_ids),
            "injected_faults": dict(injector.counts),
            "recovery": stats.as_dict(),
        }
    )


# ---------------------------------------------------------------------------
# graceful degradation: execution guards abort cleanly
# ---------------------------------------------------------------------------


class TestExecutionGuards:
    def test_fixpoint_round_limit_aborts_cleanly(self, fig4_db):
        session = XNFSession(fig4_db, max_rounds=1)
        company.create_paper_views(session)
        with pytest.raises(ResourceExhaustedError) as excinfo:
            session.query("OUT OF EXT-ALL-DEPS-ORG TAKE *")
        assert "round" in str(excinfo.value)
        # the abort released every scratch table back to the pool and left
        # no worktable registered in the catalog
        assert not [
            n for n in fig4_db.catalog.tables if n.startswith("XNF_")
        ]
        # and a fresh, unguarded session still instantiates the view
        retry = XNFSession(fig4_db)
        company.create_paper_views(retry)
        co = retry.query("OUT OF EXT-ALL-DEPS-ORG TAKE *")
        assert co.cache.total_tuples() > 0

    def test_fixpoint_row_limit(self, fig4_db):
        session = XNFSession(fig4_db, max_rows=1)
        company.create_paper_views(session)
        with pytest.raises(ResourceExhaustedError) as excinfo:
            session.query("OUT OF EXT-ALL-DEPS-ORG TAKE *")
        assert "row" in str(excinfo.value)

    def test_fixpoint_timeout(self, fig4_db):
        session = XNFSession(fig4_db, timeout_s=0.0)
        company.create_paper_views(session)
        with pytest.raises(ResourceExhaustedError):
            session.query("OUT OF EXT-ALL-DEPS-ORG TAKE *")

    def test_guarded_session_leaves_engine_usable(self, fig4_db):
        session = XNFSession(fig4_db, max_rounds=1)
        company.create_paper_views(session)
        with pytest.raises(ResourceExhaustedError):
            session.query("OUT OF EXT-ALL-DEPS-ORG TAKE *")
        # plain SQL still works and the plan cache still serves entries
        assert fig4_db.execute("SELECT COUNT(*) FROM EMP").scalar() == 4
        assert fig4_db.execute("SELECT COUNT(*) FROM EMP").scalar() == 4
        assert fig4_db.plan_cache.stats()["hits"] > 0

    def test_statement_timeout(self):
        db = Database(statement_timeout_s=0.0)
        db.execute("CREATE TABLE T (a INTEGER)")
        with pytest.raises(ResourceExhaustedError) as excinfo:
            db.execute("SELECT * FROM T")
        assert "timeout" in str(excinfo.value)
        # the guard is per-statement: lifting it restores service
        db.statement_timeout_s = None
        assert db.execute("SELECT * FROM T").rows == []
