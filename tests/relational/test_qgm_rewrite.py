"""QGM construction and the rewrite engine's rules."""

import pytest

from repro.errors import CatalogError, TypeCheckError
from repro.relational.qgm.build import QGMBuilder
from repro.relational.qgm.model import (
    BaseTableBox,
    GroupByBox,
    OuterRef,
    QGMColumnRef,
    SelectBox,
    SetOpBox,
    SubqueryExpr,
    TopBox,
    collect_outer_refs,
)
from repro.relational.rewrite import Rewriter
from repro.relational.sql.parser import parse_sql


@pytest.fixture
def builder(people_db):
    people_db.execute("CREATE TABLE PETS (pid INTEGER PRIMARY KEY, owner INTEGER)")
    return QGMBuilder(people_db.catalog), people_db


def build(builder_db, sql):
    builder, _ = builder_db
    return builder.build_query(parse_sql(sql))


class TestQGMBuild:
    def test_simple_select_box(self, builder):
        box = build(builder, "SELECT name FROM PEOPLE WHERE age > 1")
        assert isinstance(box, SelectBox)
        assert box.output_columns() == ["name"]
        assert len(box.quantifiers) == 1
        assert isinstance(box.quantifiers[0].box, BaseTableBox)
        assert len(box.predicates) == 1

    def test_where_split_into_conjuncts(self, builder):
        box = build(builder, "SELECT 1 FROM PEOPLE WHERE age > 1 AND city = 'NY'")
        assert len(box.predicates) == 2

    def test_join_becomes_predicates(self, builder):
        box = build(
            builder,
            "SELECT 1 FROM PEOPLE p JOIN PETS q ON p.id = q.owner",
        )
        assert len(box.quantifiers) == 2
        assert len(box.predicates) == 1

    def test_left_join_recorded_separately(self, builder):
        box = build(
            builder,
            "SELECT 1 FROM PEOPLE p LEFT JOIN PETS q ON p.id = q.owner",
        )
        assert box.outer_joins == [("q", box.outer_joins[0][1])]
        assert box.predicates == []

    def test_group_by_box(self, builder):
        box = build(builder, "SELECT city, COUNT(*) FROM PEOPLE GROUP BY city")
        assert isinstance(box, GroupByBox)
        assert len(box.group_keys) == 1
        assert box.output_columns() == ["city", "col2"]

    def test_top_box_for_order_limit(self, builder):
        box = build(builder, "SELECT name FROM PEOPLE ORDER BY name LIMIT 2")
        assert isinstance(box, TopBox)
        assert box.limit == 2

    def test_set_op_box(self, builder):
        box = build(builder, "SELECT id FROM PEOPLE UNION SELECT pid FROM PETS")
        assert isinstance(box, SetOpBox)

    def test_correlated_subquery_gets_outer_ref(self, builder):
        box = build(
            builder,
            "SELECT 1 FROM PEOPLE p WHERE EXISTS "
            "(SELECT 1 FROM PETS q WHERE q.owner = p.id)",
        )
        sub = box.predicates[0]
        assert isinstance(sub, SubqueryExpr)
        assert sub.correlated
        assert ("p", "id") in collect_outer_refs(sub.box)

    def test_uncorrelated_subquery_flagged(self, builder):
        box = build(
            builder,
            "SELECT 1 FROM PEOPLE WHERE id IN (SELECT owner FROM PETS)",
        )
        assert not box.predicates[0].correlated

    def test_view_expands_to_nested_box(self, builder):
        _, db = builder
        db.execute("CREATE VIEW V AS SELECT id, name FROM PEOPLE WHERE age > 1")
        box = build(builder, "SELECT name FROM V")
        assert isinstance(box.quantifiers[0].box, SelectBox)

    def test_duplicate_alias_rejected(self, builder):
        with pytest.raises(CatalogError):
            build(builder, "SELECT 1 FROM PEOPLE p, PETS p")

    def test_in_subquery_arity_checked(self, builder):
        with pytest.raises(TypeCheckError):
            build(builder, "SELECT 1 FROM PEOPLE WHERE id IN (SELECT pid, owner FROM PETS)")

    def test_head_name_uniquification(self, builder):
        box = build(builder, "SELECT id, id FROM PEOPLE")
        assert box.output_columns() == ["id", "id_2"]


class TestRewriteRules:
    def test_derived_table_merged(self, builder):
        box = build(
            builder,
            "SELECT d.name FROM (SELECT name, age FROM PEOPLE) AS d WHERE d.age > 1",
        )
        rewriter = Rewriter()
        rewritten = rewriter.rewrite(box)
        assert rewriter.merges >= 1
        assert isinstance(rewritten.quantifiers[0].box, BaseTableBox)

    def test_view_merged_into_query(self, builder):
        _, db = builder
        db.execute("CREATE VIEW V AS SELECT id, age FROM PEOPLE WHERE age > 1")
        box = build(builder, "SELECT id FROM V WHERE age < 99")
        rewriter = Rewriter()
        rewritten = rewriter.rewrite(box)
        assert rewriter.merges >= 1
        # both the view's and the query's predicates now live in one box
        assert len(rewritten.predicates) == 2

    def test_distinct_child_not_merged_but_pushed_into(self, builder):
        box = build(
            builder,
            "SELECT d.age FROM (SELECT DISTINCT age FROM PEOPLE) AS d "
            "WHERE d.age > 1",
        )
        rewriter = Rewriter()
        rewritten = rewriter.rewrite(box)
        assert rewriter.merges == 0
        assert rewriter.pushdowns == 1
        child = rewritten.quantifiers[0].box
        assert child.distinct
        assert len(child.predicates) == 1

    def test_pushdown_through_union(self, builder):
        box = build(
            builder,
            "SELECT u.v FROM (SELECT age AS v FROM PEOPLE UNION "
            "SELECT pid AS v FROM PETS) AS u WHERE u.v > 5",
        )
        rewriter = Rewriter()
        rewriter.rewrite(box)
        assert rewriter.pushdowns >= 1

    def test_constant_folding(self, builder):
        box = build(builder, "SELECT 1 FROM PEOPLE WHERE 1 + 1 = 2 AND age > 0")
        rewriter = Rewriter()
        rewritten = rewriter.rewrite(box)
        assert rewriter.folds >= 1
        assert len(rewritten.predicates) == 1  # the TRUE conjunct is gone

    def test_rules_can_be_disabled(self, builder):
        box = build(
            builder,
            "SELECT d.name FROM (SELECT name FROM PEOPLE) AS d",
        )
        rewriter = Rewriter(enable_merge=False, enable_pushdown=False, enable_fold=False)
        rewriter.rewrite(box)
        assert rewriter.merges == 0

    def test_rewrite_preserves_results(self, people_db):
        queries = [
            "SELECT d.name FROM (SELECT name, age FROM PEOPLE WHERE age > 20) d "
            "WHERE d.age < 99 ORDER BY d.name",
            "SELECT u.v FROM (SELECT age AS v FROM PEOPLE UNION "
            "SELECT id AS v FROM PEOPLE) u WHERE u.v > 5 ORDER BY u.v",
            "SELECT d.c FROM (SELECT city, COUNT(*) AS c FROM PEOPLE "
            "GROUP BY city) d WHERE d.c > 1 ORDER BY d.c",
        ]
        for query in queries:
            people_db.enable_rewrite = True
            with_rules = people_db.execute(query).rows
            people_db.enable_rewrite = False
            without_rules = people_db.execute(query).rows
            people_db.enable_rewrite = True
            assert with_rules == without_rules, query

    def test_merge_renames_colliding_quantifiers(self, builder):
        # inner alias 'p' collides with the outer 'p'
        box = build(
            builder,
            "SELECT p.id FROM PEOPLE p, "
            "(SELECT p.pid AS pid FROM PETS p) AS d WHERE p.id = d.pid",
        )
        rewritten = Rewriter().rewrite(box)
        names = [q.name for q in rewritten.quantifiers]
        assert len(names) == len(set(names))

    def test_correlated_subquery_boxes_also_rewritten(self, builder):
        box = build(
            builder,
            "SELECT 1 FROM PEOPLE p WHERE EXISTS ("
            "SELECT 1 FROM (SELECT owner FROM PETS) AS d WHERE d.owner = p.id)",
        )
        rewriter = Rewriter()
        rewriter.rewrite(box)
        assert rewriter.merges >= 1
