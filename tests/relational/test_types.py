"""Types and three-valued logic: the foundation of SQL semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError, TypeCheckError
from repro.relational.types import (
    BOOLEAN,
    FLOAT,
    INTEGER,
    VARCHAR,
    sort_key,
    sql_arith,
    sql_compare,
    sql_like,
    tv_and,
    tv_not,
    tv_or,
    type_from_name,
)

TRUTH = [True, False, None]


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert tv_and(True, True) is True
        assert tv_and(True, False) is False
        assert tv_and(False, False) is False
        assert tv_and(True, None) is None
        assert tv_and(None, None) is None

    def test_and_false_dominates_unknown(self):
        assert tv_and(False, None) is False
        assert tv_and(None, False) is False

    def test_or_truth_table(self):
        assert tv_or(False, False) is False
        assert tv_or(True, False) is True
        assert tv_or(False, None) is None
        assert tv_or(None, None) is None

    def test_or_true_dominates_unknown(self):
        assert tv_or(True, None) is True
        assert tv_or(None, True) is True

    def test_not(self):
        assert tv_not(True) is False
        assert tv_not(False) is True
        assert tv_not(None) is None

    @given(st.sampled_from(TRUTH), st.sampled_from(TRUTH))
    def test_and_commutative(self, a, b):
        assert tv_and(a, b) == tv_and(b, a)

    @given(st.sampled_from(TRUTH), st.sampled_from(TRUTH))
    def test_or_commutative(self, a, b):
        assert tv_or(a, b) == tv_or(b, a)

    @given(st.sampled_from(TRUTH), st.sampled_from(TRUTH))
    def test_de_morgan(self, a, b):
        assert tv_not(tv_and(a, b)) == tv_or(tv_not(a), tv_not(b))

    @given(
        st.sampled_from(TRUTH), st.sampled_from(TRUTH), st.sampled_from(TRUTH)
    )
    def test_and_associative(self, a, b, c):
        assert tv_and(tv_and(a, b), c) == tv_and(a, tv_and(b, c))


class TestComparison:
    def test_null_propagates(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            assert sql_compare(op, None, 1) is None
            assert sql_compare(op, 1, None) is None
            assert sql_compare(op, None, None) is None

    def test_numeric(self):
        assert sql_compare("=", 1, 1.0) is True
        assert sql_compare("<", 1, 2) is True
        assert sql_compare(">=", 2.5, 2.5) is True
        assert sql_compare("<>", 1, 2) is True

    def test_strings(self):
        assert sql_compare("<", "abc", "abd") is True
        assert sql_compare("=", "x", "x") is True

    def test_mixed_domains_raise(self):
        with pytest.raises(TypeCheckError):
            sql_compare("=", 1, "1")

    @given(st.integers(), st.integers())
    def test_trichotomy(self, a, b):
        results = [
            sql_compare("<", a, b),
            sql_compare("=", a, b),
            sql_compare(">", a, b),
        ]
        assert results.count(True) == 1


class TestArithmetic:
    def test_null_propagates(self):
        for op in ("+", "-", "*", "/", "%"):
            assert sql_arith(op, None, 2) is None
            assert sql_arith(op, 2, None) is None

    def test_integer_division_truncates_toward_zero(self):
        assert sql_arith("/", 7, 2) == 3
        assert sql_arith("/", -7, 2) == -3
        assert sql_arith("/", 7, -2) == -3

    def test_float_division(self):
        assert sql_arith("/", 7.0, 2) == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            sql_arith("/", 1, 0)
        with pytest.raises(ExecutionError):
            sql_arith("/", 1.0, 0.0)
        with pytest.raises(ExecutionError):
            sql_arith("%", 5, 0)

    def test_concat(self):
        assert sql_arith("||", "a", "b") == "ab"
        assert sql_arith("||", "a", 1) == "a1"
        assert sql_arith("||", None, "b") is None

    def test_string_plus_rejected(self):
        with pytest.raises(TypeCheckError):
            sql_arith("*", "a", "b")


class TestLike:
    def test_percent(self):
        assert sql_like("hello", "h%") is True
        assert sql_like("hello", "%llo") is True
        assert sql_like("hello", "%ell%") is True
        assert sql_like("hello", "x%") is False

    def test_underscore(self):
        assert sql_like("cat", "c_t") is True
        assert sql_like("cart", "c_t") is False

    def test_null(self):
        assert sql_like(None, "%") is None
        assert sql_like("x", None) is None

    def test_regex_chars_are_literal(self):
        assert sql_like("a.b", "a.b") is True
        assert sql_like("axb", "a.b") is False


class TestTypeObjects:
    def test_integer_validation(self):
        assert INTEGER.validate(5) == 5
        assert INTEGER.validate(5.0) == 5
        assert INTEGER.validate(None) is None
        assert INTEGER.validate(True) == 1
        with pytest.raises(TypeCheckError):
            INTEGER.validate("5")
        with pytest.raises(TypeCheckError):
            INTEGER.validate(5.5)

    def test_float_validation(self):
        assert FLOAT.validate(5) == 5.0
        assert isinstance(FLOAT.validate(5), float)
        with pytest.raises(TypeCheckError):
            FLOAT.validate("x")

    def test_varchar_validation(self):
        vc = VARCHAR(10)
        assert vc.validate("hello") == "hello"
        with pytest.raises(TypeCheckError):
            vc.validate(5)

    def test_boolean_validation(self):
        assert BOOLEAN.validate(True) is True
        assert BOOLEAN.validate(1) is True
        assert BOOLEAN.validate(0) is False
        with pytest.raises(TypeCheckError):
            BOOLEAN.validate("true")

    def test_type_from_name_aliases(self):
        assert type_from_name("INT").name == "INTEGER"
        assert type_from_name("bigint").name == "INTEGER"
        assert type_from_name("REAL").name == "FLOAT"
        assert type_from_name("TEXT").name == "VARCHAR"
        assert type_from_name("BOOL").name == "BOOLEAN"
        assert type_from_name("VARCHAR", 30).size == 30
        with pytest.raises(TypeCheckError):
            type_from_name("BLOB")


class TestSortKey:
    def test_nulls_first(self):
        values = [3, None, 1, None, 2]
        assert sorted(values, key=sort_key) == [None, None, 1, 2, 3]

    def test_mixed_numeric(self):
        values = [2.5, 1, 3]
        assert sorted(values, key=sort_key) == [1, 2.5, 3]

    def test_strings_after_numbers(self):
        values = ["b", 1, "a", 2]
        assert sorted(values, key=sort_key) == [1, 2, "a", "b"]

    @given(st.lists(st.one_of(st.none(), st.integers(), st.floats(allow_nan=False))))
    def test_total_order(self, values):
        sorted(values, key=sort_key)  # must not raise
