"""Cross-check our SQL semantics against SQLite.

SQLite is used purely as a *reference oracle* for the SQL dialect both
engines share — the engine itself never uses it.  Includes a randomized
query generator (hypothesis) comparing result multisets.
"""

import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational.engine import Database

ROWS = [
    (1, "ann", 30, "NY", 1.5),
    (2, "bob", 25, "SF", 2.5),
    (3, "cat", 35, "NY", None),
    (4, "dan", None, "LA", 4.0),
    (5, "eve", 25, None, 0.5),
    (6, "fox", 25, "NY", 2.5),
]

PET_ROWS = [
    (1, 1, "cat", 4),
    (2, 1, "dog", 7),
    (3, 3, "fish", 1),
    (4, None, "owl", 2),
    (5, 6, "cat", 3),
]


@pytest.fixture
def engines():
    ours = Database()
    ours.execute(
        "CREATE TABLE P (id INTEGER PRIMARY KEY, name VARCHAR, age INTEGER, "
        "city VARCHAR, score FLOAT)"
    )
    ours.execute(
        "CREATE TABLE Q (pid INTEGER PRIMARY KEY, owner INTEGER, "
        "species VARCHAR, age INTEGER)"
    )
    ref = sqlite3.connect(":memory:")
    ref.execute("CREATE TABLE P (id INTEGER PRIMARY KEY, name TEXT, age INTEGER, city TEXT, score REAL)")
    ref.execute("CREATE TABLE Q (pid INTEGER PRIMARY KEY, owner INTEGER, species TEXT, age INTEGER)")
    for row in ROWS:
        ref.execute("INSERT INTO P VALUES (?,?,?,?,?)", row)
        values = ", ".join("NULL" if v is None else repr(v) for v in row)
        ours.execute(f"INSERT INTO P VALUES ({values})")
    for row in PET_ROWS:
        ref.execute("INSERT INTO Q VALUES (?,?,?,?)", row)
        values = ", ".join("NULL" if v is None else repr(v) for v in row)
        ours.execute(f"INSERT INTO Q VALUES ({values})")
    return ours, ref


def norm(rows):
    """Multiset comparison key with int/float unification."""
    def cell(v):
        if isinstance(v, float) and v.is_integer():
            return int(v)
        return v
    return sorted(
        (tuple(cell(v) for v in row) for row in rows),
        key=lambda r: tuple((v is None, str(type(v)), v if v is not None else 0) for v in r),
    )


def check(engines, query, ordered=False):
    ours, ref = engines
    mine = ours.execute(query).rows
    theirs = [tuple(r) for r in ref.execute(query).fetchall()]
    if ordered:
        assert [tuple(r) for r in mine] == theirs, query
    else:
        assert norm(mine) == norm(theirs), query


CROSSCHECK_QUERIES = [
    "SELECT * FROM P",
    "SELECT name, age FROM P WHERE age > 25",
    "SELECT name FROM P WHERE age > 25 AND city = 'NY'",
    "SELECT name FROM P WHERE age IS NULL OR city IS NULL",
    "SELECT name FROM P WHERE age BETWEEN 25 AND 30",
    "SELECT name FROM P WHERE name LIKE '%a%'",
    "SELECT name FROM P WHERE age IN (25, 35)",
    "SELECT name FROM P WHERE age NOT IN (25, 35)",
    "SELECT DISTINCT age FROM P",
    "SELECT DISTINCT city, age FROM P",
    "SELECT COUNT(*), COUNT(age), COUNT(DISTINCT age) FROM P",
    "SELECT SUM(age), AVG(score), MIN(name), MAX(score) FROM P",
    "SELECT city, COUNT(*) FROM P GROUP BY city",
    "SELECT city, SUM(age) FROM P GROUP BY city HAVING COUNT(*) > 1",
    "SELECT age, city, COUNT(*) FROM P GROUP BY age, city",
    "SELECT P.name, Q.species FROM P, Q WHERE P.id = Q.owner",
    "SELECT P.name, Q.species FROM P JOIN Q ON P.id = Q.owner",
    "SELECT P.name, Q.species FROM P LEFT JOIN Q ON P.id = Q.owner",
    "SELECT P.name FROM P LEFT JOIN Q ON P.id = Q.owner WHERE Q.pid IS NULL",
    "SELECT a.name, b.name FROM P a, P b WHERE a.age = b.age AND a.id < b.id",
    "SELECT name FROM P WHERE id IN (SELECT owner FROM Q)",
    "SELECT name FROM P WHERE id NOT IN (SELECT owner FROM Q)",
    "SELECT name FROM P WHERE id NOT IN (SELECT owner FROM Q WHERE owner IS NOT NULL)",
    "SELECT name FROM P WHERE EXISTS (SELECT 1 FROM Q WHERE Q.owner = P.id)",
    "SELECT name FROM P WHERE NOT EXISTS (SELECT 1 FROM Q WHERE Q.owner = P.id)",
    "SELECT name FROM P WHERE age = (SELECT MAX(age) FROM P)",
    "SELECT name, (SELECT COUNT(*) FROM Q WHERE Q.owner = P.id) FROM P",
    "SELECT name FROM P WHERE score > (SELECT AVG(score) FROM P)",
    "SELECT age FROM P UNION SELECT age FROM Q",
    "SELECT age FROM P UNION ALL SELECT age FROM Q",
    "SELECT age FROM P INTERSECT SELECT age FROM Q",
    "SELECT age FROM P EXCEPT SELECT age FROM Q",
    "SELECT d.name FROM (SELECT name, age FROM P WHERE age >= 25) AS d WHERE d.age < 31",
    "SELECT CASE WHEN age >= 30 THEN 'o' WHEN age IS NULL THEN 'u' ELSE 'y' END FROM P",
    "SELECT name, age * 2 + 1 FROM P",
    "SELECT UPPER(name), LENGTH(city), ABS(score) FROM P",
    "SELECT COALESCE(age, 0), COALESCE(city, 'none') FROM P",
    "SELECT age + score FROM P",
    "SELECT city FROM P WHERE NOT (age = 25)",
    "SELECT city, AVG(age) FROM P WHERE score IS NOT NULL GROUP BY city",
]

ORDERED_QUERIES = [
    "SELECT name FROM P ORDER BY name",
    "SELECT name, age FROM P WHERE age IS NOT NULL ORDER BY age DESC, name",
    "SELECT name FROM P ORDER BY id LIMIT 3",
    "SELECT name FROM P ORDER BY id LIMIT 2 OFFSET 2",
    "SELECT age, COUNT(*) AS n FROM P WHERE age IS NOT NULL GROUP BY age ORDER BY n DESC, age",
]


@pytest.mark.parametrize("query", CROSSCHECK_QUERIES)
def test_crosscheck_unordered(engines, query):
    check(engines, query)


@pytest.mark.parametrize("query", ORDERED_QUERIES)
def test_crosscheck_ordered(engines, query):
    check(engines, query, ordered=True)


# ---------------------------------------------------------------------------
# Randomised crosscheck
# ---------------------------------------------------------------------------

_COLUMNS = ["id", "age", "score"]
_COMPARATORS = ["=", "<>", "<", "<=", ">", ">="]


@st.composite
def predicates(draw, depth=0):
    kind = draw(st.sampled_from(
        ["cmp", "isnull", "between", "in"] + (["and", "or", "not"] if depth < 2 else [])
    ))
    if kind == "cmp":
        column = draw(st.sampled_from(_COLUMNS))
        op = draw(st.sampled_from(_COMPARATORS))
        value = draw(st.integers(min_value=-5, max_value=40))
        return f"{column} {op} {value}"
    if kind == "isnull":
        column = draw(st.sampled_from(_COLUMNS))
        negated = draw(st.booleans())
        return f"{column} IS {'NOT ' if negated else ''}NULL"
    if kind == "between":
        column = draw(st.sampled_from(_COLUMNS))
        low = draw(st.integers(min_value=0, max_value=20))
        high = draw(st.integers(min_value=20, max_value=40))
        return f"{column} BETWEEN {low} AND {high}"
    if kind == "in":
        column = draw(st.sampled_from(_COLUMNS))
        items = draw(st.lists(st.integers(0, 40), min_size=1, max_size=4))
        return f"{column} IN ({', '.join(map(str, items))})"
    if kind == "not":
        return f"NOT ({draw(predicates(depth=depth + 1))})"
    left = draw(predicates(depth=depth + 1))
    right = draw(predicates(depth=depth + 1))
    return f"({left}) {kind.upper()} ({right})"


@settings(max_examples=80, deadline=None)
@given(pred=predicates())
def test_random_predicates_match_sqlite(pred):
    ours = Database()
    ours.execute(
        "CREATE TABLE P (id INTEGER PRIMARY KEY, name VARCHAR, age INTEGER, "
        "city VARCHAR, score FLOAT)"
    )
    ref = sqlite3.connect(":memory:")
    ref.execute(
        "CREATE TABLE P (id INTEGER PRIMARY KEY, name TEXT, age INTEGER, "
        "city TEXT, score REAL)"
    )
    for row in ROWS:
        ref.execute("INSERT INTO P VALUES (?,?,?,?,?)", row)
        values = ", ".join("NULL" if v is None else repr(v) for v in row)
        ours.execute(f"INSERT INTO P VALUES ({values})")
    query = f"SELECT id FROM P WHERE {pred}"
    assert norm(ours.execute(query).rows) == norm(ref.execute(query).fetchall()), query
