"""Storage layer: pages, disk, buffer pool, heap files, CO clustering."""

import pytest

from repro.errors import (
    ChecksumError,
    ExecutionError,
    IOFaultError,
    PageNotFoundError,
    SimulatedCrash,
    SQLError,
    StorageError,
)
from repro.relational.storage import (
    BufferPool,
    CoCluster,
    DiskManager,
    FaultInjector,
    FaultPlan,
    HeapFile,
    Page,
    estimate_row_size,
)


class TestPage:
    def test_insert_read(self):
        page = Page(0)
        slot = page.insert("T", (1, "x"))
        assert page.read(slot) == ("T", (1, "x"))

    def test_slots_are_stable_after_delete(self):
        page = Page(0)
        s0 = page.insert("T", (1,))
        s1 = page.insert("T", (2,))
        page.delete(s0)
        assert page.read(s0) is None
        assert page.read(s1) == ("T", (2,))

    def test_deleted_slot_reused(self):
        page = Page(0)
        s0 = page.insert("T", (1,))
        page.insert("T", (2,))
        page.delete(s0)
        s2 = page.insert("T", (3,))
        assert s2 == s0

    def test_byte_accounting(self):
        page = Page(0, page_size=100)
        row = (1, "abcdefgh")
        size = estimate_row_size(row)
        assert page.can_fit(row)
        page.insert("T", row)
        assert page.used_bytes == size
        page.delete(0)
        assert page.used_bytes == 0

    def test_can_fit_respects_page_size(self):
        page = Page(0, page_size=64)
        big = ("x" * 100,)
        assert not page.can_fit(big)

    def test_update_adjusts_bytes(self):
        page = Page(0, page_size=1000)
        page.insert("T", ("short",))
        before = page.used_bytes
        page.update(0, ("a much longer string value",))
        assert page.used_bytes > before

    def test_mixed_table_slots(self):
        page = Page(0)
        page.insert("A", (1,))
        page.insert("B", (2,))
        assert page.read(0)[0] == "A"
        assert page.read(1)[0] == "B"


class TestDiskManager:
    def test_allocate_and_rw(self):
        disk = DiskManager()
        pid = disk.allocate()
        page = disk.read(pid)
        page.insert("T", (1,))
        disk.write(page)
        again = disk.read(pid)
        assert again.read(0) == ("T", (1,))

    def test_counters(self):
        disk = DiskManager()
        pid = disk.allocate()
        disk.read(pid)
        disk.read(pid)
        page = disk.read(pid)
        disk.write(page)
        assert disk.reads == 3
        assert disk.writes == 1
        disk.reset_stats()
        assert disk.reads == 0 and disk.writes == 0

    def test_read_returns_copy(self):
        disk = DiskManager()
        pid = disk.allocate()
        page = disk.read(pid)
        page.insert("T", (1,))
        # Not written back: the next read must not see it.
        assert disk.read(pid).read(0) is None

    def test_read_of_unallocated_page_raises_typed_error(self):
        disk = DiskManager()
        with pytest.raises(PageNotFoundError) as excinfo:
            disk.read(999)
        assert excinfo.value.page_id == 999
        # typed as a storage error inside the SQLError hierarchy, so the
        # generic handlers of callers still catch it
        assert isinstance(excinfo.value, StorageError)
        assert isinstance(excinfo.value, SQLError)

    def test_page_images_are_checksummed(self):
        disk = DiskManager()
        pid = disk.allocate()
        page = disk.read(pid)
        page.insert("T", (1, "x"))
        disk.write(page)
        # corrupt the stored image behind the checksum's back
        disk._pages[pid].slots.append(("T", (999,)))
        with pytest.raises(ChecksumError) as excinfo:
            disk.read(pid)
        assert excinfo.value.page_id == pid


class TestFaultInjector:
    def _disk_with_injector(self, **kwargs):
        disk = DiskManager()
        injector = FaultInjector(**kwargs)
        disk.fault_injector = injector
        injector.arm()
        return disk, injector

    def test_injected_read_error(self):
        disk, injector = self._disk_with_injector()
        pid = disk.allocate()
        injector.fail_next_reads(1)
        with pytest.raises(IOFaultError) as excinfo:
            disk.read(pid)
        assert excinfo.value.transient
        assert disk.read(pid) is not None  # one-shot: next read succeeds
        assert injector.counts["io_errors"] == 1

    def test_torn_write_detected_on_next_read(self):
        disk, injector = self._disk_with_injector()
        pid = disk.allocate()
        page = disk.read(pid)
        for i in range(4):
            page.insert("T", (i, "payload"))
        injector.tear_next_writes(1)
        disk.write(page)
        assert pid in injector.torn_pages
        with pytest.raises(ChecksumError):
            disk.read(pid)
        # recovery-side read flags instead of raising
        _, ok = disk.read_unchecked(pid)
        assert not ok

    def test_clean_rewrite_clears_torn_state(self):
        disk, injector = self._disk_with_injector()
        pid = disk.allocate()
        page = disk.read(pid)
        page.insert("T", (1,))
        injector.tear_next_writes(1)
        disk.write(page)
        disk.write(page)  # clean write replaces the torn image
        assert pid not in injector.torn_pages
        assert disk.read(pid).read(0) == ("T", (1,))

    def test_torn_write_of_empty_page_still_detected(self):
        disk, injector = self._disk_with_injector()
        pid = disk.allocate()
        page = disk.read(pid)
        injector.tear_next_writes(1)
        disk.write(page)
        with pytest.raises(ChecksumError):
            disk.read(pid)

    def test_crash_after_n_ops(self):
        disk, injector = self._disk_with_injector(crash_after_ops=3)
        pid = disk.allocate()
        disk.read(pid)
        disk.read(pid)
        with pytest.raises(SimulatedCrash) as excinfo:
            disk.read(pid)
        assert excinfo.value.op_index == 3
        # SimulatedCrash must not be swallowed by `except Exception`
        assert not isinstance(excinfo.value, Exception)
        # the machine is dead: nothing fires after the crash
        assert not injector.armed

    def test_deterministic_schedule_per_seed(self):
        plan = FaultPlan(read_error_rate=0.3)

        def run(seed):
            disk = DiskManager()
            injector = FaultInjector(seed=seed, plan=plan)
            disk.fault_injector = injector
            injector.arm()
            pid = disk.allocate()
            outcomes = []
            for _ in range(50):
                try:
                    disk.read(pid)
                    outcomes.append("ok")
                except IOFaultError:
                    outcomes.append("fault")
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_disarmed_injector_is_silent(self):
        disk, injector = self._disk_with_injector(
            plan=FaultPlan(read_error_rate=1.0)
        )
        injector.disarm()
        pid = disk.allocate()
        disk.read(pid)  # no fault
        assert injector.injected_total() == 0


class TestBufferPool:
    def test_hit_miss_accounting(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=4)
        pid = disk.allocate()
        pool.fetch(pid)
        pool.unpin(pid)
        pool.fetch(pid)
        pool.unpin(pid)
        assert pool.misses == 1
        assert pool.hits == 1

    def test_lru_eviction(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=2)
        pids = [disk.allocate() for _ in range(3)]
        for pid in pids:
            pool.fetch(pid)
            pool.unpin(pid)
        assert pool.evictions == 1
        # pids[0] was evicted; touching it again is a miss.
        pool.fetch(pids[0])
        pool.unpin(pids[0])
        assert pool.misses == 4

    def test_pinned_pages_not_evicted(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=2)
        p0 = disk.allocate()
        p1 = disk.allocate()
        p2 = disk.allocate()
        pool.fetch(p0)  # stays pinned
        pool.fetch(p1)
        pool.unpin(p1)
        pool.fetch(p2)  # must evict p1, not p0
        page0 = pool._frames.get(p0)
        assert page0 is not None

    def test_all_pinned_raises(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=1)
        p0 = disk.allocate()
        p1 = disk.allocate()
        pool.fetch(p0)
        with pytest.raises(ExecutionError):
            pool.fetch(p1)

    def test_fully_pinned_pool_raises_cleanly(self):
        """Exhaustion must raise without corrupting the pool: resident
        pages stay pinned and intact, and one unpin makes it usable again."""
        disk = DiskManager()
        pool = BufferPool(disk, capacity=3)
        resident = [disk.allocate() for _ in range(3)]
        for pid in resident:
            pool.fetch(pid)  # all frames pinned
        extra = disk.allocate()
        with pytest.raises(ExecutionError, match="all pages pinned"):
            pool.fetch(extra)
        with pytest.raises(ExecutionError, match="all pages pinned"):
            pool.new_page()
        # the failed requests must not have (partially) registered frames
        assert sorted(pool._frames) == sorted(resident)
        assert all(pool._pins[pid] == 1 for pid in resident)
        # releasing one pin makes the pool usable again
        pool.unpin(resident[0])
        fetched = pool.fetch(extra)
        assert fetched.page_id == extra
        assert resident[0] not in pool._frames  # the unpinned page was evicted

    def test_dirty_page_written_on_eviction(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=1)
        p0 = disk.allocate()
        page = pool.fetch(p0)
        page.insert("T", (42,))
        pool.unpin(p0, dirty=True)
        p1 = disk.allocate()
        pool.fetch(p1)
        pool.unpin(p1)
        assert disk.read(p0).read(0) == ("T", (42,))

    def test_failed_writeback_keeps_victim_resident_and_dirty(self):
        """An eviction whose write-back fails must not lose the dirty frame.

        The frame is the only copy of changes the WAL already logged; if
        eviction dropped it before the write succeeded, the next fetch
        would resurrect the stale disk image and later inserts would
        reuse slots that committed log records still occupy — committed
        rows would then vanish across a crash because redo trusts the
        page LSN of the eventual successful flush.
        """
        disk = DiskManager()
        pool = BufferPool(disk, capacity=1)
        p0 = disk.allocate()
        page = pool.fetch(p0)
        page.insert("T", (42,))
        pool.unpin(p0, dirty=True)

        injector = FaultInjector(seed=1)
        disk.fault_injector = injector
        injector.arm()
        injector.fail_next_writes(1)
        p1 = disk.allocate()
        with pytest.raises(IOFaultError):
            pool.fetch(p1)
        # the victim survived the failed eviction, still dirty
        assert p0 in pool._frames
        assert pool._frames[p0].dirty
        assert pool._frames[p0].read(0) == ("T", (42,))

        # once the disk heals, eviction completes and persists the row
        injector.disarm()
        pool.fetch(p1)
        pool.unpin(p1)
        assert disk.read(p0).read(0) == ("T", (42,))

    def test_unpin_unpinned_raises(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=2)
        pid = disk.allocate()
        pool.fetch(pid)
        pool.unpin(pid)
        with pytest.raises(ExecutionError):
            pool.unpin(pid)

    def test_clear_simulates_cold_cache(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=8)
        pid = disk.allocate()
        page = pool.fetch(pid)
        page.insert("T", (1,))
        pool.unpin(pid, dirty=True)
        pool.clear()
        pool.reset_stats()
        fetched = pool.fetch(pid)
        assert pool.misses == 1
        assert fetched.read(0) == ("T", (1,))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(DiskManager(), capacity=0)


def make_heap(capacity=64, page_size=4096):
    disk = DiskManager(page_size)
    pool = BufferPool(disk, capacity)
    return HeapFile("T", pool), pool


class TestHeapFile:
    def test_insert_fetch(self):
        heap, _ = make_heap()
        rid = heap.insert((1, "a"))
        assert heap.fetch_row(rid) == (1, "a")

    def test_scan_order(self):
        heap, _ = make_heap()
        rows = [(i, f"r{i}") for i in range(50)]
        for row in rows:
            heap.insert(row)
        assert [row for _, row in heap.scan()] == rows

    def test_spans_pages(self):
        heap, _ = make_heap(page_size=128)
        for i in range(100):
            heap.insert((i, "payload-xxxx"))
        assert heap.num_pages() > 1
        assert heap.row_count == 100

    def test_update(self):
        heap, _ = make_heap()
        rid = heap.insert((1, "a"))
        heap.update(rid, (1, "b"))
        assert heap.fetch_row(rid) == (1, "b")

    def test_delete(self):
        heap, _ = make_heap()
        rid = heap.insert((1, "a"))
        heap.delete(rid)
        assert heap.row_count == 0
        with pytest.raises(ExecutionError):
            heap.fetch_row(rid)

    def test_delete_missing_raises(self):
        heap, _ = make_heap()
        rid = heap.insert((1,))
        heap.delete(rid)
        with pytest.raises(ExecutionError):
            heap.delete(rid)

    def test_truncate(self):
        heap, _ = make_heap()
        for i in range(20):
            heap.insert((i,))
        heap.truncate()
        assert heap.row_count == 0
        assert list(heap.scan()) == []

    def test_shared_page_scan_filters_by_table(self):
        disk = DiskManager()
        pool = BufferPool(disk, 16)
        heap_a = HeapFile("A", pool)
        heap_b = HeapFile("B", pool)
        with CoCluster(pool) as cluster:
            cluster.load_group([(heap_a, (1,)), (heap_b, (2,)), (heap_b, (3,))])
        assert [row for _, row in heap_a.scan()] == [(1,)]
        assert [row for _, row in heap_b.scan()] == [(2,), (3,)]


class TestCoCluster:
    def test_group_colocated_on_one_page(self):
        disk = DiskManager(4096)
        pool = BufferPool(disk, 16)
        parent = HeapFile("P", pool)
        child = HeapFile("C", pool)
        with CoCluster(pool) as cluster:
            rids = cluster.load_group(
                [(parent, (1, "p")), (child, (1, 1)), (child, (1, 2))]
            )
        pages = {rid.page_id for rid in rids}
        assert len(pages) == 1

    def test_groups_pack_until_full(self):
        disk = DiskManager(256)
        pool = BufferPool(disk, 16)
        parent = HeapFile("P", pool)
        with CoCluster(pool) as cluster:
            for i in range(30):
                cluster.load_group([(parent, (i, "x" * 20))])
        assert parent.num_pages() > 1
        assert parent.row_count == 30

    def test_clustered_read_touches_fewer_pages(self):
        """The E4 effect in miniature: CO-clustered layout needs fewer
        page fetches per composite object than table-clustered layout."""
        page_size = 512
        # Table-clustered: parents then children, separate page runs.
        disk_t = DiskManager(page_size)
        pool_t = BufferPool(disk_t, capacity=2)
        parent_t = HeapFile("P", pool_t)
        child_t = HeapFile("C", pool_t)
        # CO-clustered: parent followed by its children.
        disk_c = DiskManager(page_size)
        pool_c = BufferPool(disk_c, capacity=2)
        parent_c = HeapFile("P", pool_c)
        child_c = HeapFile("C", pool_c)

        groups = [
            ((i, "parent-payload"), [(i, j, "child-payload") for j in range(5)])
            for i in range(40)
        ]
        for parent_row, children in groups:
            parent_t.insert(parent_row)
        for _, children in groups:
            for child_row in children:
                child_t.insert(child_row)
        with CoCluster(pool_c) as cluster:
            for parent_row, children in groups:
                cluster.load_group(
                    [(parent_c, parent_row)] + [(child_c, c) for c in children]
                )
        for pool in (pool_t, pool_c):
            pool.clear()
            pool.reset_stats()

        # Read each composite object: parent row + its children.
        parent_rids_t = [rid for rid, _ in parent_t.scan()]
        child_rids_t = {}
        for rid, row in child_t.scan():
            child_rids_t.setdefault(row[0], []).append(rid)
        pool_t.clear()
        pool_t.reset_stats()
        for i, rid in enumerate(parent_rids_t):
            parent_t.fetch_row(rid)
            for crid in child_rids_t.get(i, []):
                child_t.fetch_row(crid)
        misses_table = pool_t.misses

        parent_rids_c = [rid for rid, _ in parent_c.scan()]
        child_rids_c = {}
        for rid, row in child_c.scan():
            child_rids_c.setdefault(row[0], []).append(rid)
        pool_c.clear()
        pool_c.reset_stats()
        for i, rid in enumerate(parent_rids_c):
            parent_c.fetch_row(rid)
            for crid in child_rids_c.get(i, []):
                child_c.fetch_row(crid)
        misses_clustered = pool_c.misses

        assert misses_clustered < misses_table
