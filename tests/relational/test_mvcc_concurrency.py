"""MVCC snapshot isolation: deterministic semantics + concurrent chaos.

Part 1 (single-threaded, fully deterministic): snapshot visibility,
first-committer-wins conflicts, the retryable error taxonomy, admission
control, vacuum progress, and statement-timeout cleanup under the
vectorized executor.

Part 2 (multi-threaded chaos harness, parametrized over seeds): reader
threads extract composite invariants from the company and OO1 databases
while writer threads mutate them inside transactions.  The assertions:

* readers never observe a *torn composite* — every multi-table invariant
  a writer maintains transactionally holds inside every reader snapshot;
* readers never block on writers and never abort (abort rate 0 under
  pure MVCC reads);
* concurrent increments show first-committer-wins + bounded retries
  (no lost updates);
* a crash mid-workload preserves exactly the committed transactions and
  recovery leaves a consistent (empty) version store;
* vacuum progress is monotonic and reclaims all versions once no
  snapshot is active.

Thread scheduling is nondeterministic, but every assertion is a safety
property that must hold under *any* interleaving, so the harness passes
deterministically for every seed.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    AdmissionError,
    DeadlockError,
    ReproError,
    ResourceExhaustedError,
    SerializationError,
)
from repro.relational.engine import Database
from repro.workloads import company, oo1
from repro.xnf.api import XNFSession

SEEDS = [7, 19, 31]

#: Fig. 1 DEPT budgets sum (1000 + 2000 + 500): the transfer invariant
COMPANY_BUDGET_TOTAL = 3500.0


def _company_db() -> Database:
    return company.figure1_database(mvcc=True)


# ---------------------------------------------------------------------------
# Part 1: deterministic snapshot semantics
# ---------------------------------------------------------------------------


class TestSnapshotVisibility:
    def test_reader_sees_begin_time_state(self):
        db = _company_db()
        a, b = db.connect(), db.connect()
        a.begin()
        assert a.execute("SELECT COUNT(*) FROM EMP").scalar() == 6
        b.execute("INSERT INTO EMP VALUES (99, 'new', 1.0, 1, '')")
        # a's snapshot predates b's autocommit insert.
        assert a.execute("SELECT COUNT(*) FROM EMP").scalar() == 6
        a.commit()
        assert a.execute("SELECT COUNT(*) FROM EMP").scalar() == 7

    def test_own_writes_visible_within_txn(self):
        db = _company_db()
        a = db.connect()
        a.begin()
        a.execute("UPDATE DEPT SET budget = 9.0 WHERE dno = 1")
        assert (
            a.execute("SELECT budget FROM DEPT WHERE dno = 1").scalar() == 9.0
        )
        a.rollback()
        assert (
            db.execute("SELECT budget FROM DEPT WHERE dno = 1").scalar()
            == 1000.0
        )

    def test_index_scans_respect_snapshot(self):
        db = _company_db()
        a, b = db.connect(), db.connect()
        a.begin()
        assert (
            a.execute("SELECT ename FROM EMP WHERE eno = 1").scalar() == "e1"
        )
        b.execute("UPDATE EMP SET ename = 'renamed' WHERE eno = 1")
        # Index probe resolves to the snapshot image, not the heap latest.
        assert (
            a.execute("SELECT ename FROM EMP WHERE eno = 1").scalar() == "e1"
        )
        a.commit()
        assert (
            a.execute("SELECT ename FROM EMP WHERE eno = 1").scalar()
            == "renamed"
        )

    def test_deleted_row_still_visible_to_older_snapshot(self):
        db = _company_db()
        a, b = db.connect(), db.connect()
        a.begin()
        b.execute("DELETE FROM EMP WHERE eno = 1")
        assert a.execute("SELECT COUNT(*) FROM EMP").scalar() == 6
        assert (
            a.execute("SELECT ename FROM EMP WHERE eno = 1").scalar() == "e1"
        )
        a.commit()
        assert a.execute("SELECT COUNT(*) FROM EMP").scalar() == 5


class TestFirstCommitterWins:
    def test_second_writer_gets_serialization_error(self):
        db = _company_db()
        a, b = db.connect(), db.connect()
        a.begin()
        b.begin()
        a.execute("UPDATE DEPT SET budget = budget + 1 WHERE dno = 1")
        a.commit()
        # b's snapshot predates a's commit: updating the same row must
        # raise the retryable first-committer-wins conflict, never apply
        # a stale read-modify-write.
        with pytest.raises(SerializationError) as info:
            b.execute("UPDATE DEPT SET budget = budget + 1 WHERE dno = 1")
        assert info.value.retryable
        b.rollback()
        # A fresh transaction sees a's commit and succeeds.
        b.begin()
        b.execute("UPDATE DEPT SET budget = budget + 1 WHERE dno = 1")
        b.commit()
        assert (
            db.execute("SELECT budget FROM DEPT WHERE dno = 1").scalar()
            == 1002.0
        )

    def test_conflict_is_statement_atomic(self):
        db = _company_db()
        a, b = db.connect(), db.connect()
        a.begin()
        b.begin()
        a.execute("UPDATE EMP SET sal = sal + 1 WHERE eno = 1")
        a.commit()
        with pytest.raises(SerializationError):
            b.execute("UPDATE EMP SET sal = sal + 1")  # touches eno=1 too
        # The failed statement was rolled back in full: b's transaction is
        # still usable and sees none of its own partial writes.
        assert (
            b.execute("SELECT COUNT(*) FROM EMP WHERE sal > 1000").scalar()
            == 0
        )
        b.rollback()

    def test_conflicts_surface_in_metrics_and_systable(self):
        db = _company_db()
        a, b = db.connect(), db.connect()
        a.begin()
        b.begin()
        a.execute("UPDATE DEPT SET budget = 1.0 WHERE dno = 2")
        a.commit()
        with pytest.raises(SerializationError):
            b.execute("UPDATE DEPT SET budget = 2.0 WHERE dno = 2")
        b.rollback()
        assert db.metrics_snapshot()["mvcc"]["serialization_conflicts"] == 1
        row = db.query(
            "SELECT serialization_conflicts FROM SYS_SNAPSHOTS"
        ).rows[0]
        assert row[0] == 1


class TestRetryableTaxonomy:
    def test_error_flags(self):
        assert SerializationError("x").retryable
        assert AdmissionError("x").retryable
        assert DeadlockError("x").retryable
        assert not ReproError("x").retryable

    def test_run_retryable_retries_serialization_conflict(self):
        db = _company_db()
        a, b = db.connect(), db.connect()
        attempts = []

        def bump():
            attempts.append(1)
            b.begin()
            if len(attempts) == 1:
                # First attempt: manufacture a conflict by letting a commit
                # after b's snapshot was taken.
                a.execute("UPDATE DEPT SET budget = budget + 1 WHERE dno = 3")
            b.execute("UPDATE DEPT SET budget = budget + 1 WHERE dno = 3")
            b.commit()

        b.run_retryable(bump, retries=3, backoff_s=0.0001, max_backoff_s=0.001)
        assert len(attempts) == 2
        assert db.metrics.counter("txn.retries").value == 1
        assert (
            db.execute("SELECT budget FROM DEPT WHERE dno = 3").scalar()
            == 502.0
        )

    def test_run_retryable_exhausts_budget(self):
        db = Database(mvcc=True)

        def always_fails():
            raise SerializationError("induced")

        with pytest.raises(SerializationError):
            db.run_retryable(
                always_fails, retries=2, backoff_s=0.0001, max_backoff_s=0.001
            )
        assert db.metrics.counter("txn.retries").value == 2

    def test_run_retryable_does_not_retry_plain_errors(self):
        db = Database(mvcc=True)
        calls = []

        def fails():
            calls.append(1)
            raise ReproError("not retryable")

        with pytest.raises(ReproError):
            db.run_retryable(fails, retries=5)
        assert len(calls) == 1


class TestAdmissionControl:
    def test_over_limit_begin_rejected(self):
        db = Database(mvcc=True, max_concurrent_txns=2)
        db.execute("CREATE TABLE T (a INTEGER PRIMARY KEY)")
        a, b, c = db.connect(), db.connect(), db.connect()
        a.begin()
        b.begin()
        with pytest.raises(AdmissionError) as info:
            c.begin()
        assert info.value.retryable
        a.commit()
        c.begin()  # slot freed
        c.commit()
        b.commit()
        assert db.txn_manager.metrics()["admission_rejects"] == 1


class TestVacuum:
    def test_vacuum_reclaims_and_is_monotonic(self):
        db = _company_db()
        db.mvcc.autovacuum_threshold = 0  # manual vacuum only: no idle sweeps
        for i in range(5):
            db.execute(f"UPDATE DEPT SET budget = {i + 1.0} WHERE dno = 1")
        stats = db.metrics_snapshot()["mvcc"]
        assert stats["versioned_rows"] >= 1
        runs_before = stats["vacuum_runs"]  # seeding ran idle sweeps already
        first = db.vacuum()
        assert first["dropped"] >= 1
        after = db.metrics_snapshot()["mvcc"]
        assert after["versioned_rows"] == 0
        assert after["vacuum_runs"] == runs_before + 1
        second = db.vacuum()
        # Monotonic progress: the horizon never regresses, the cumulative
        # counters never decrease.
        assert second["horizon"] >= first["horizon"]
        final = db.metrics_snapshot()["mvcc"]
        assert final["vacuum_runs"] == runs_before + 2
        assert final["versions_pruned"] >= after["versions_pruned"]

    def test_last_snapshot_release_sweeps_store(self):
        """Releasing the last active snapshot sweeps committed entries, so
        lightly-written tables return to the clean scan fast path instead
        of carrying insert- and update-era entries forever."""
        db = _company_db()
        db.execute("UPDATE DEPT SET budget = 9.0 WHERE dno = 1")
        stats = db.metrics_snapshot()["mvcc"]
        assert stats["versioned_rows"] == 0
        assert stats["idle_vacuums"] >= 1
        # an open snapshot blocks the sweep ...
        reader = db.connect()
        reader.begin()
        assert reader.execute("SELECT COUNT(*) FROM DEPT").scalar() == 3
        db.execute("UPDATE DEPT SET budget = 10.0 WHERE dno = 1")
        assert db.metrics_snapshot()["mvcc"]["versioned_rows"] >= 1
        # ... and the entry resolves the old image for that snapshot
        assert (
            reader.execute(
                "SELECT budget FROM DEPT WHERE dno = 1"
            ).scalar()
            == 9.0
        )
        reader.commit()  # last snapshot out -> sweep runs
        assert db.metrics_snapshot()["mvcc"]["versioned_rows"] == 0

    def test_vacuum_keeps_versions_needed_by_open_snapshot(self):
        db = _company_db()
        a = db.connect()
        a.begin()
        assert a.execute("SELECT COUNT(*) FROM EMP").scalar() == 6
        db.execute("DELETE FROM EMP WHERE eno = 2")
        db.vacuum()
        # a's snapshot still needs the deleted row: vacuum must not free it.
        assert a.execute("SELECT COUNT(*) FROM EMP").scalar() == 6
        a.commit()
        db.vacuum()
        assert db.metrics_snapshot()["mvcc"]["versioned_rows"] == 0


class TestStatementTimeoutVectorized:
    def test_timeout_aborts_between_batches_with_clean_state(self):
        db = Database(mvcc=True, executor="batch")
        db.execute("CREATE TABLE BIG (a INTEGER PRIMARY KEY, b INTEGER)")
        rows = ",".join(f"({i},{i % 97})" for i in range(3000))
        db.execute(f"INSERT INTO BIG VALUES {rows}")
        db.statement_timeout_s = 1e-9
        db.begin()
        with pytest.raises(ResourceExhaustedError):
            db.query("SELECT COUNT(*) FROM BIG WHERE b >= 0")
        db.rollback()
        db.statement_timeout_s = None
        # Clean state after the mid-statement abort: no lock residue, no
        # leaked snapshot, and the next statement runs normally.
        assert db.txn_manager.locks.metrics()["held"] == 0
        assert db.metrics_snapshot()["mvcc"]["active_snapshots"] == 0
        assert db.query("SELECT COUNT(*) FROM BIG").scalar() == 3000

    def test_timeout_outside_txn_leaves_no_snapshot(self):
        db = Database(mvcc=True, executor="batch", statement_timeout_s=1e-9)
        db.execute("CREATE TABLE T2 (a INTEGER PRIMARY KEY)")
        db.execute(
            "INSERT INTO T2 VALUES "
            + ",".join(f"({i})" for i in range(2000))
        )
        db.statement_timeout_s = 1e-9
        with pytest.raises(ResourceExhaustedError):
            db.query("SELECT * FROM T2")
        db.statement_timeout_s = None
        assert db.metrics_snapshot()["mvcc"]["active_snapshots"] == 0
        assert db.query("SELECT COUNT(*) FROM T2").scalar() == 2000


# ---------------------------------------------------------------------------
# Part 2: multi-threaded chaos
# ---------------------------------------------------------------------------


def _run_threads(workers) -> None:
    threads = [threading.Thread(target=fn, daemon=True) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "chaos worker deadlocked"


def _tear_detail(db, sess):  # pragma: no cover - diagnostic only
    """Re-read the torn invariant inside the same snapshot as key sets, so
    a failure names the row that went missing or appeared twice."""
    enos = sorted(
        r[0] for r in sess.execute("SELECT eno FROM EMP WHERE eno >= 1000").rows
    )
    skill_enos = sorted(
        r[0]
        for r in sess.execute("SELECT eseno FROM EMPSKILL WHERE eseno >= 1000").rows
    )
    budgets = sorted(sess.execute("SELECT dno, budget FROM DEPT").rows)
    snap = db._txn.snapshot if db._txn is not None else None
    return {
        "read_ts": snap.read_ts if snap is not None else None,
        "emp_only": sorted(set(enos) - set(skill_enos)),
        "skill_only": sorted(set(skill_enos) - set(enos)),
        "key_counts": (len(enos), len(skill_enos)),
        "budgets": budgets,
    }


@pytest.mark.parametrize("seed", SEEDS)
class TestCompanyChaos:
    """Readers extract composite invariants while writers mutate.

    Writers maintain two transactional invariants:

    * budget transfers between DEPT rows keep SUM(budget) constant;
    * every EMP they insert gets an EMPSKILL row in the same transaction.

    A reader observing either one violated has seen a torn composite.
    """

    READERS = 4
    READER_ITERS = 25
    WRITER_TXNS = 15

    def test_no_torn_composites_and_no_reader_aborts(self, seed):
        db = _company_db()
        import random as _random

        stop = threading.Event()
        errors: list = []
        reader_aborts: list = []
        torn: list = []

        def transfer_writer(wid: int):
            rng = _random.Random(seed * 100 + wid)
            sess = db.connect()
            try:
                for _ in range(self.WRITER_TXNS):
                    amount = rng.randint(1, 50)
                    src, dst = rng.sample([1, 2, 3], 2)

                    def txn():
                        sess.begin()
                        sess.execute(
                            f"UPDATE DEPT SET budget = budget + {amount} "
                            f"WHERE dno = {src}"
                        )
                        sess.execute(
                            f"UPDATE DEPT SET budget = budget - {amount} "
                            f"WHERE dno = {dst}"
                        )
                        sess.commit()

                    sess.run_retryable(
                        txn, retries=60, backoff_s=0.0005, max_backoff_s=0.01
                    )
            except Exception as err:  # pragma: no cover - fails the test
                errors.append(err)
            finally:
                stop.set()

        def employee_writer(wid: int):
            base = 1000 + wid * self.WRITER_TXNS
            sess = db.connect()
            try:
                for i in range(self.WRITER_TXNS):
                    eno = base + i

                    def txn():
                        sess.begin()
                        sess.execute(
                            f"INSERT INTO EMP VALUES "
                            f"({eno}, 'w{eno}', 1.0, 1, '')"
                        )
                        sess.execute(
                            f"INSERT INTO EMPSKILL VALUES ({eno}, 1)"
                        )
                        sess.commit()

                    sess.run_retryable(
                        txn, retries=60, backoff_s=0.0005, max_backoff_s=0.01
                    )
            except Exception as err:  # pragma: no cover
                errors.append(err)
            finally:
                stop.set()

        def reader(rid: int):
            sess = db.connect()
            for _ in range(self.READER_ITERS):
                try:
                    sess.begin()
                    total = sess.execute(
                        "SELECT SUM(budget) FROM DEPT"
                    ).scalar()
                    emps = sess.execute(
                        "SELECT COUNT(*) FROM EMP WHERE eno >= 1000"
                    ).scalar()
                    skills = sess.execute(
                        "SELECT COUNT(*) FROM EMPSKILL WHERE eseno >= 1000"
                    ).scalar()
                    detail = None
                    if total != COMPANY_BUDGET_TOTAL or emps != skills:
                        # still inside the snapshot: capture what tore
                        detail = _tear_detail(db, sess)  # pragma: no cover
                    sess.commit()
                except ReproError as err:  # pragma: no cover
                    reader_aborts.append(err)
                    try:
                        sess.rollback()
                    except ReproError:
                        pass
                    continue
                if detail is not None:  # pragma: no cover
                    torn.append((total, emps, skills, detail))

        _run_threads(
            [lambda: transfer_writer(0), lambda: transfer_writer(1)]
            + [lambda: employee_writer(0), lambda: employee_writer(1)]
            + [
                (lambda r: lambda: reader(r))(r)
                for r in range(self.READERS)
            ]
        )
        assert not errors, errors[:3]
        assert not torn, torn[:3]
        # Headline: pure MVCC reads never abort and never block.
        assert reader_aborts == []
        # Final state: all writer transactions fully applied.
        assert (
            db.execute("SELECT SUM(budget) FROM DEPT").scalar()
            == COMPANY_BUDGET_TOTAL
        )
        n_emp = db.execute(
            "SELECT COUNT(*) FROM EMP WHERE eno >= 1000"
        ).scalar()
        assert n_emp == 2 * self.WRITER_TXNS
        assert (
            db.execute(
                "SELECT COUNT(*) FROM EMPSKILL WHERE eseno >= 1000"
            ).scalar()
            == n_emp
        )
        # Vacuum after the storm reclaims every version.
        db.vacuum()
        assert db.metrics_snapshot()["mvcc"]["versioned_rows"] == 0


@pytest.mark.parametrize("seed", SEEDS)
class TestOO1Chaos:
    """OO1 parts database: CO extraction vs. concurrent part inserts.

    Each writer transaction inserts one PART plus exactly three CONN rows
    (the OO1 shape), so ``COUNT(CONN) == 3 * COUNT(PART)`` inside every
    snapshot — including the snapshots under full XNF CO extraction.
    """

    WRITER_TXNS = 12

    def test_snapshot_consistent_co_extraction(self, seed):
        db = oo1.build_parts_database(60, seed=seed, mvcc=True)
        import random as _random

        errors: list = []
        torn: list = []

        def writer():
            rng = _random.Random(seed)
            sess = db.connect()
            try:
                for i in range(self.WRITER_TXNS):
                    pid = 10000 + i

                    def txn():
                        sess.begin()
                        sess.execute(
                            f"INSERT INTO PART VALUES "
                            f"({pid}, 'part-chaos', {rng.randint(0, 999)}, "
                            f"{rng.randint(0, 999)}, 1)"
                        )
                        for _ in range(3):
                            cto = rng.randint(1, 60)
                            sess.execute(
                                f"INSERT INTO CONN VALUES "
                                f"({pid}, {cto}, 'conn-chaos', 1)"
                            )
                        sess.commit()

                    sess.run_retryable(
                        txn, retries=60, backoff_s=0.0005, max_backoff_s=0.01
                    )
            except Exception as err:  # pragma: no cover
                errors.append(err)

        def co_reader():
            session = XNFSession(db)
            for _ in range(4):
                try:
                    db.begin()
                    co = oo1.load_parts_co(session)
                    parts = len(co.node("Xpart"))
                    conns = len(co.connections("connects"))
                    # relationship materialisation dedupes identical rows,
                    # so compare against the snapshot's DISTINCT tuples
                    # (the seed data may contain exact-duplicate CONNs)
                    sql_parts = db.execute(
                        "SELECT COUNT(*) FROM PART"
                    ).scalar()
                    sql_conns = len(db.execute(
                        "SELECT DISTINCT cfrom, cto, ctype, clength FROM CONN"
                    ).rows)
                    db.commit()
                except ReproError as err:  # pragma: no cover
                    errors.append(err)
                    try:
                        db.rollback()
                    except ReproError:
                        pass
                    continue
                if parts != sql_parts or conns != sql_conns:  # pragma: no cover
                    torn.append((parts, conns, sql_parts, sql_conns))

        def sql_reader():
            sess = db.connect()
            for _ in range(20):
                try:
                    sess.begin()
                    parts = sess.execute("SELECT COUNT(*) FROM PART").scalar()
                    conns = sess.execute("SELECT COUNT(*) FROM CONN").scalar()
                    sess.commit()
                except ReproError as err:  # pragma: no cover
                    errors.append(err)
                    try:
                        sess.rollback()
                    except ReproError:
                        pass
                    continue
                if conns != 3 * parts:  # pragma: no cover
                    torn.append((parts, conns))

        _run_threads([writer, co_reader, sql_reader, sql_reader])
        assert not errors, errors[:3]
        assert not torn, torn[:3]
        parts = db.execute("SELECT COUNT(*) FROM PART").scalar()
        conns = db.execute("SELECT COUNT(*) FROM CONN").scalar()
        assert parts == 60 + self.WRITER_TXNS
        assert conns == 3 * parts


@pytest.mark.parametrize("seed", SEEDS)
class TestLostUpdates:
    WORKERS = 3
    INCREMENTS = 8

    def test_concurrent_increments_never_lost(self, seed):
        db = Database(mvcc=True)
        db.execute("CREATE TABLE CTR (id INTEGER PRIMARY KEY, n INTEGER)")
        db.execute("INSERT INTO CTR VALUES (1, 0)")
        errors: list = []

        def incrementer(wid: int):
            sess = db.connect()
            try:
                for _ in range(self.INCREMENTS):

                    def txn():
                        sess.begin()
                        sess.execute("UPDATE CTR SET n = n + 1 WHERE id = 1")
                        sess.commit()

                    sess.run_retryable(
                        txn,
                        retries=100,
                        backoff_s=0.0005,
                        max_backoff_s=0.01,
                        rng=__import__("random").Random(seed * 10 + wid),
                    )
            except Exception as err:  # pragma: no cover
                errors.append(err)

        _run_threads(
            [(lambda w: lambda: incrementer(w))(w) for w in range(self.WORKERS)]
        )
        assert not errors, errors[:3]
        # First-committer-wins: every increment either committed exactly
        # once or was retried with a fresh snapshot — none were lost.
        assert (
            db.execute("SELECT n FROM CTR WHERE id = 1").scalar()
            == self.WORKERS * self.INCREMENTS
        )
        retries = db.metrics.counter("txn.retries").value
        # Retries stayed within every worker's budget (bounded).
        assert retries <= self.WORKERS * self.INCREMENTS * 100


@pytest.mark.parametrize("seed", SEEDS)
class TestFaultChaos:
    """Transient injected storage faults under concurrent MVCC traffic."""

    def test_transient_read_faults_are_absorbed(self, seed):
        from repro.relational.storage import FaultInjector, FaultPlan

        db = company.figure1_database(mvcc=True, buffer_capacity=4)
        injector = FaultInjector(
            seed=seed, plan=FaultPlan(read_error_rate=0.05)
        ).install(db)
        injector.arm()
        errors: list = []
        torn: list = []

        def writer():
            sess = db.connect()
            try:
                for i in range(8):

                    def txn():
                        sess.begin()
                        sess.execute(
                            "UPDATE DEPT SET budget = budget + 10 "
                            "WHERE dno = 1"
                        )
                        sess.execute(
                            "UPDATE DEPT SET budget = budget - 10 "
                            "WHERE dno = 2"
                        )
                        sess.commit()

                    sess.run_retryable(
                        txn, retries=60, backoff_s=0.0005, max_backoff_s=0.01
                    )
            except Exception as err:  # pragma: no cover
                errors.append(err)

        def reader():
            sess = db.connect()
            for _ in range(12):
                try:
                    sess.begin()
                    total = sess.execute(
                        "SELECT SUM(budget) FROM DEPT"
                    ).scalar()
                    sess.commit()
                except ReproError as err:  # pragma: no cover
                    errors.append(err)
                    try:
                        sess.rollback()
                    except ReproError:
                        pass
                    continue
                if total != COMPANY_BUDGET_TOTAL:  # pragma: no cover
                    torn.append(total)

        _run_threads([writer, reader, reader])
        injector.disarm()
        assert not errors, errors[:3]
        assert not torn, torn[:3]
        assert (
            db.execute("SELECT SUM(budget) FROM DEPT").scalar()
            == COMPANY_BUDGET_TOTAL
        )


@pytest.mark.parametrize("seed", SEEDS)
class TestCrashRecoveryMidWorkload:
    def test_committed_durable_uncommitted_gone(self, seed):
        db = Database(mvcc=True)
        db.execute(
            "CREATE TABLE ACC (id INTEGER PRIMARY KEY, bal INTEGER)"
        )
        db.execute("CREATE TABLE AUDIT (aid INTEGER PRIMARY KEY, ref INTEGER)")
        db.execute("INSERT INTO ACC VALUES (1, 100), (2, 100)")
        # Committed workload: transfers with a paired audit row.
        for i in range(1 + seed % 3):
            db.begin()
            db.execute("UPDATE ACC SET bal = bal - 10 WHERE id = 1")
            db.execute("UPDATE ACC SET bal = bal + 10 WHERE id = 2")
            db.execute(f"INSERT INTO AUDIT VALUES ({i}, 1)")
            db.commit()
        committed = 1 + seed % 3
        # In-flight transaction at crash time: must vanish.
        db.begin()
        db.execute("UPDATE ACC SET bal = 0 WHERE id = 1")
        db.execute(f"INSERT INTO AUDIT VALUES (999, 999)")
        db.txn_manager.wal.crash()

        reopened = Database(disk=db.disk, wal=db.txn_manager.wal, mvcc=True)
        reopened.execute(
            "CREATE TABLE ACC (id INTEGER PRIMARY KEY, bal INTEGER)"
        )
        reopened.execute(
            "CREATE TABLE AUDIT (aid INTEGER PRIMARY KEY, ref INTEGER)"
        )
        reopened.recover()
        # Committed-durable: the transfers and their audit rows survived.
        assert (
            reopened.execute("SELECT SUM(bal) FROM ACC").scalar() == 200
        )
        assert (
            reopened.execute(
                "SELECT bal FROM ACC WHERE id = 1"
            ).scalar()
            == 100 - 10 * committed
        )
        assert (
            reopened.execute("SELECT COUNT(*) FROM AUDIT").scalar()
            == committed
        )
        # Uncommitted-gone: the in-flight work left no trace.
        assert (
            reopened.execute(
                "SELECT COUNT(*) FROM AUDIT WHERE aid = 999"
            ).scalar()
            == 0
        )
        # Recovery rebuilt a consistent (empty) version store: no stale
        # versions, and new snapshot transactions work immediately.
        stats = reopened.metrics_snapshot()["mvcc"]
        assert stats["versioned_rows"] == 0
        assert stats["active_snapshots"] == 0
        reopened.begin()
        reopened.execute("UPDATE ACC SET bal = bal + 1 WHERE id = 1")
        reopened.commit()
        assert reopened.execute("SELECT SUM(bal) FROM ACC").scalar() == 201
