"""Estimate-vs-actual feedback loop (ISSUE 5 tentpole, part 3).

EXPLAIN ANALYZE records per-operator actual cardinalities and q-errors
into the feedback registry (surfaced as ``SYS_STAT_ESTIMATES``); with
``optimizer_feedback=True`` the planner consults observed actuals on
re-planning, collapsing the q-error toward 1.
"""

import pytest

from repro.obs.feedback import FeedbackRegistry
from repro.relational.engine import Database


@pytest.fixture
def skewed_db():
    """1000 rows, 990 of them b=0: the uniform-selectivity guess for
    ``b = 0`` is off by ~an order of magnitude until ANALYZE+feedback."""
    db = Database(optimizer_feedback=True)
    db.execute("CREATE TABLE s (a INTEGER, b INTEGER)")
    db.execute("BEGIN")
    for i in range(1000):
        db.execute(f"INSERT INTO s VALUES ({i}, {0 if i < 990 else i})")
    db.execute("COMMIT")
    db.execute("ANALYZE")
    return db


class TestFeedbackRegistry:
    def test_record_and_lookup(self):
        reg = FeedbackRegistry()
        reg.record("T", "Filter", "(T.b = ?0)", est_rows=10.0, actual_rows=500.0)
        assert reg.lookup_rows("T", "(T.b = ?0)") == 500.0
        entry = reg.entries()[0]
        assert entry.q_error == pytest.approx(50.0)

    def test_ewma_smoothing_on_repeat(self):
        reg = FeedbackRegistry()
        reg.record("T", "Filter", "p", est_rows=10.0, actual_rows=100.0)
        reg.record("T", "Filter", "p", est_rows=10.0, actual_rows=200.0)
        assert reg.lookup_rows("T", "p") == pytest.approx(150.0)
        assert reg.entries()[0].samples == 2

    def test_bounded_capacity(self):
        reg = FeedbackRegistry(capacity=4)
        for i in range(10):
            reg.record("T", "Filter", f"p{i}", est_rows=1.0, actual_rows=2.0)
        assert len(reg) <= 4
        assert reg.evicted == 6


class TestFeedbackLoop:
    def test_analyze_records_normalized_keys(self, skewed_db):
        skewed_db.execute("EXPLAIN ANALYZE SELECT * FROM s WHERE b = 0")
        keys = {
            (e.source, e.predicate) for e in skewed_db.feedback.entries()
        }
        assert ("S", "(s.b = ?0)") in keys

    def test_replanning_consults_feedback(self, skewed_db):
        """After one instrumented run, a re-plan of the same shape uses
        the observed cardinality instead of the static guess."""
        skewed_db.execute("EXPLAIN ANALYZE SELECT * FROM s WHERE b = 0")
        entry = next(
            e for e in skewed_db.feedback.entries() if e.source == "S"
        )
        first_q = entry.q_error
        assert entry.actual_rows == pytest.approx(990.0)

        skewed_db.plan_cache.clear()
        skewed_db.execute("EXPLAIN ANALYZE SELECT * FROM s WHERE b = 0")
        entry = next(
            e for e in skewed_db.feedback.entries() if e.source == "S"
        )
        # second plan started from the observed 990, so est == actual
        assert entry.q_error <= first_q
        assert entry.q_error == pytest.approx(1.0, rel=0.01)
        assert entry.est_rows == pytest.approx(990.0, rel=0.01)

    def test_feedback_disabled_by_default(self):
        db = Database()
        db.execute("CREATE TABLE s (a INTEGER, b INTEGER)")
        db.execute("BEGIN")
        for i in range(200):
            db.execute(f"INSERT INTO s VALUES ({i}, 0)")
        db.execute("COMMIT")
        db.execute("ANALYZE")
        db.execute("EXPLAIN ANALYZE SELECT * FROM s WHERE b = 0")
        entry = next(e for e in db.feedback.entries() if e.source == "S")
        first_est = entry.est_rows
        db.plan_cache.clear()
        db.execute("EXPLAIN ANALYZE SELECT * FROM s WHERE b = 0")
        entry = next(e for e in db.feedback.entries() if e.source == "S")
        # registry still fills (observability), but the planner ignores it
        assert entry.est_rows == pytest.approx(first_est)

    def test_estimates_section_in_metrics_snapshot(self, skewed_db):
        skewed_db.execute("EXPLAIN ANALYZE SELECT * FROM s WHERE b = 0")
        snap = skewed_db.metrics_snapshot()
        assert snap["estimates"]["tracked"] >= 1
