"""Hash and B+-tree indexes, including model-based property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IntegrityError
from repro.relational.indexes import BTreeIndex, HashIndex
from repro.relational.storage.heap import RID


def make_btree(order=4, unique=False):
    return BTreeIndex("i", "T", ["k"], [0], unique=unique, order=order)


def make_hash(unique=False):
    return HashIndex("i", "T", ["k"], [0], unique=unique)


class TestHashIndex:
    def test_insert_search(self):
        index = make_hash()
        index.insert_row((5, "x"), RID(0, 0))
        assert index.search((5,)) == [RID(0, 0)]
        assert index.search((6,)) == []

    def test_duplicates(self):
        index = make_hash()
        index.insert_row((5,), RID(0, 0))
        index.insert_row((5,), RID(0, 1))
        assert index.search((5,)) == [RID(0, 0), RID(0, 1)]
        assert len(index) == 2
        assert index.distinct_keys() == 1

    def test_delete(self):
        index = make_hash()
        index.insert_row((5,), RID(0, 0))
        index.delete_row((5,), RID(0, 0))
        assert index.search((5,)) == []
        assert len(index) == 0

    def test_null_keys_not_indexed(self):
        index = make_hash()
        index.insert_row((None,), RID(0, 0))
        assert len(index) == 0

    def test_unique_violation(self):
        index = make_hash(unique=True)
        index.insert_row((5,), RID(0, 0))
        with pytest.raises(IntegrityError):
            index.insert_row((5,), RID(0, 1))

    def test_update_row_moves_key(self):
        index = make_hash()
        index.insert_row((5,), RID(0, 0))
        index.update_row((5,), (6,), RID(0, 0))
        assert index.search((5,)) == []
        assert index.search((6,)) == [RID(0, 0)]

    def test_idempotent_insert(self):
        index = make_hash()
        index.insert_row((5,), RID(0, 0))
        index.insert_row((5,), RID(0, 0))
        assert len(index) == 1


class TestBTreeIndex:
    def test_insert_search(self):
        index = make_btree()
        for i in range(100):
            index.insert_row((i,), RID(0, i))
        for i in range(100):
            assert index.search((i,)) == [RID(0, i)]

    def test_reverse_insert_order(self):
        index = make_btree()
        for i in reversed(range(100)):
            index.insert_row((i,), RID(0, i))
        assert [k[0] for k, _ in index.range_scan()] == list(range(100))

    def test_range_scan_bounds(self):
        index = make_btree()
        for i in range(20):
            index.insert_row((i,), RID(0, i))
        keys = [k[0] for k, _ in index.range_scan((5,), (10,))]
        assert keys == [5, 6, 7, 8, 9, 10]
        keys = [k[0] for k, _ in index.range_scan((5,), (10,), False, False)]
        assert keys == [6, 7, 8, 9]
        keys = [k[0] for k, _ in index.range_scan(None, (3,))]
        assert keys == [0, 1, 2, 3]
        keys = [k[0] for k, _ in index.range_scan((17,), None)]
        assert keys == [17, 18, 19]

    def test_duplicates_in_range(self):
        index = make_btree()
        index.insert_row((5,), RID(0, 0))
        index.insert_row((5,), RID(0, 1))
        index.insert_row((6,), RID(0, 2))
        results = list(index.range_scan((5,), (5,)))
        assert len(results) == 2

    def test_delete_lazy(self):
        index = make_btree()
        for i in range(50):
            index.insert_row((i,), RID(0, i))
        for i in range(0, 50, 2):
            index.delete_row((i,), RID(0, i))
        assert len(index) == 25
        assert [k[0] for k, _ in index.range_scan()] == list(range(1, 50, 2))

    def test_string_keys(self):
        index = make_btree()
        words = ["pear", "apple", "fig", "banana"]
        for pos, word in enumerate(words):
            index.insert_row((word,), RID(0, pos))
        assert [k[0] for k, _ in index.range_scan()] == sorted(words)

    def test_mixed_int_float_ordering(self):
        index = make_btree()
        index.insert_row((2,), RID(0, 0))
        index.insert_row((1.5,), RID(0, 1))
        index.insert_row((3,), RID(0, 2))
        assert [k[0] for k, _ in index.range_scan()] == [1.5, 2, 3]

    def test_unique_violation(self):
        index = make_btree(unique=True)
        index.insert_row((5,), RID(0, 0))
        with pytest.raises(IntegrityError):
            index.insert_row((5,), RID(0, 1))

    def test_order_validation(self):
        with pytest.raises(ValueError):
            make_btree(order=2)

    def test_composite_keys(self):
        index = BTreeIndex("i", "T", ["a", "b"], [0, 1])
        index.insert_row((1, "x"), RID(0, 0))
        index.insert_row((1, "y"), RID(0, 1))
        assert index.search((1, "x")) == [RID(0, 0)]
        assert index.search((1, "z")) == []


class TestBTreePropertyBased:
    """Model-based testing against a plain dict of key -> set(RID)."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.integers(min_value=-50, max_value=50),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=200,
        )
    )
    def test_matches_model(self, operations):
        index = make_btree(order=4)
        model = {}
        for op, key, slot in operations:
            rid = RID(0, slot)
            if op == "insert":
                index.insert_row((key,), rid)
                model.setdefault(key, set()).add(rid)
            else:
                index.delete_row((key,), rid)
                if key in model:
                    model[key].discard(rid)
                    if not model[key]:
                        del model[key]
        # searches agree
        for key in range(-50, 51):
            assert index.search((key,)) == sorted(model.get(key, set()))
        # full scan sorted and complete
        scanned = [(k[0], rid) for k, rid in index.range_scan()]
        expected = [
            (key, rid) for key in sorted(model) for rid in sorted(model[key])
        ]
        assert scanned == expected
        assert len(index) == sum(len(s) for s in model.values())

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(-1000, 1000), unique=True, min_size=1, max_size=300),
        st.integers(-1000, 1000),
        st.integers(-1000, 1000),
    )
    def test_range_scan_matches_filter(self, keys, low, high):
        if low > high:
            low, high = high, low
        index = make_btree(order=8)
        for pos, key in enumerate(keys):
            index.insert_row((key,), RID(0, pos))
        scanned = [k[0] for k, _ in index.range_scan((low,), (high,))]
        assert scanned == sorted(k for k in keys if low <= k <= high)
