"""SYS_* virtual system tables: the queryable catalog (ISSUE 5 tentpole).

Covers the acceptance query, JOIN/aggregate/filter over SYS tables, the
read-only write-path protections, and the satellite (a) stale-snapshot
regression: a cached plan over a SYS table must re-pull live data on
every execution while still *hitting* the plan cache.
"""

import pytest

from repro.errors import CatalogError
from repro.relational.engine import Database
from repro.relational.systables import SYS_TABLE_NAMES


@pytest.fixture
def warm_db():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
    for i in range(12):
        db.execute(f"INSERT INTO t VALUES ({i}, {i % 3})")
    for i in range(12):  # one fingerprint, 12 calls (literals normalize)
        db.execute(f"SELECT * FROM t WHERE b = {i % 3}")
    db.execute("SELECT count(*) FROM t")
    return db


class TestInstallation:
    def test_all_sys_tables_resolvable(self, db):
        for name in SYS_TABLE_NAMES:
            assert db.catalog.has_table(name)
            assert db.catalog.is_virtual(name)
            result = db.execute(f"SELECT * FROM {name}")
            assert result.columns  # schema exposed like any table

    def test_user_table_name_collision_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE SYS_STAT_WAL (a INTEGER)")

    def test_sys_tables_cannot_be_dropped(self, db):
        with pytest.raises(CatalogError, match="system table"):
            db.catalog.drop_table("SYS_STAT_BUFFER")

    def test_write_paths_rejected(self, db):
        with pytest.raises(CatalogError, match="read-only"):
            db.execute("INSERT INTO SYS_STAT_LOCKS VALUES (1, 2, 3, 4, 5, 6)")
        with pytest.raises(CatalogError, match="read-only"):
            db.execute("DELETE FROM SYS_TRACE_SPANS")
        with pytest.raises(CatalogError, match="read-only"):
            db.execute("UPDATE SYS_STAT_LOCKS SET held = 0")


class TestAcceptanceQuery:
    def test_statement_stats_through_plain_sql(self, warm_db):
        result = warm_db.execute(
            "SELECT fingerprint, calls, mean_ms FROM SYS_STAT_STATEMENTS "
            "ORDER BY mean_ms DESC"
        )
        assert result.columns == ["fingerprint", "calls", "mean_ms"]
        assert len(result.rows) > 2
        fingerprints = [row[0] for row in result.rows]
        assert "SELECT * FROM t WHERE (b = ?0)" in fingerprints
        means = [row[2] for row in result.rows]
        assert means == sorted(means, reverse=True)
        # the 12 identical INSERTs collapse onto one fingerprint
        insert_rows = [r for r in result.rows if r[0].startswith("INSERT")]
        assert sum(r[1] for r in insert_rows) == 12

    def test_quantile_columns_populated(self, warm_db):
        row = warm_db.execute(
            "SELECT calls, p50_ms, p95_ms, p99_ms, max_ms "
            "FROM SYS_STAT_STATEMENTS WHERE calls >= 12"
        ).rows[0]
        calls, p50, p95, p99, mx = row
        assert p50 is not None and p50 > 0
        assert p50 <= p95 <= p99
        assert p99 <= mx * 1.001

    def test_stat_tables_and_indexes(self, warm_db):
        warm_db.execute("CREATE INDEX idx_t_b ON t (b)")
        rows = warm_db.execute(
            "SELECT table_name, row_count, index_count FROM SYS_STAT_TABLES"
        ).rows
        assert ("T", 12, 1) in rows
        idx = warm_db.execute(
            "SELECT index_name, key_columns FROM SYS_STAT_INDEXES "
            "WHERE table_name = 'T'"
        ).rows
        assert len(idx) == 1
        assert idx[0][1] == "b"

    def test_joins_and_aggregates_over_sys_tables(self, warm_db):
        # JOIN two SYS tables: statements with their spans by fingerprint.
        rows = warm_db.execute(
            "SELECT s.fingerprint, sp.name "
            "FROM SYS_STAT_STATEMENTS s "
            "JOIN SYS_TRACE_SPANS sp ON s.fingerprint = sp.fingerprint "
            "WHERE s.calls >= 1"
        ).rows
        assert any(name == "sql.select" for _, name in rows)
        # aggregate
        total = warm_db.execute(
            "SELECT sum(calls) FROM SYS_STAT_STATEMENTS"
        ).rows[0][0]
        assert total >= 14

    def test_trace_spans_parent_child(self, warm_db):
        rows = warm_db.execute(
            "SELECT child.name FROM SYS_TRACE_SPANS parent "
            "JOIN SYS_TRACE_SPANS child "
            "ON child.parent_span_id = parent.span_id "
            "WHERE parent.name = 'sql.select'"
        ).rows
        names = {name for (name,) in rows}
        assert {"optimize", "execute"} <= names


class TestVolatility:
    def test_cached_sys_plan_repulls_live_data(self, warm_db):
        """Satellite (a): the stale-snapshot regression test.

        Two executions of the same SYS query must see *different* live
        data (stats grew in between) while the second execution *hits*
        the plan cache — proving snapshotting happens at scan time, not
        plan-build time.
        """
        query = "SELECT sum(calls) FROM SYS_STAT_STATEMENTS"
        first = warm_db.execute(query).rows[0][0]
        warm_db.execute("SELECT * FROM t")  # grow the stats between runs
        before = warm_db.plan_cache.stats()
        second = warm_db.execute(query).rows[0][0]
        after = warm_db.plan_cache.stats()
        assert after["hits"] == before["hits"] + 1, "plan was not cached"
        # first run + the extra select + second run itself have landed
        assert second > first

    def test_sys_plans_marked_volatile(self, warm_db):
        warm_db.execute("SELECT * FROM SYS_STAT_BUFFER")
        warm_db.execute("SELECT flushes FROM SYS_STAT_WAL")
        assert warm_db.plan_cache.stats()["volatile_entries"] >= 2

    def test_wide_row_tables_track_live_counters(self, warm_db):
        flushes0 = warm_db.execute("SELECT flushes FROM SYS_STAT_WAL").rows[0][0]
        for i in range(5):
            warm_db.execute(f"INSERT INTO t VALUES ({100 + i}, 0)")
        flushes1 = warm_db.execute("SELECT flushes FROM SYS_STAT_WAL").rows[0][0]
        assert flushes1 > flushes0

    def test_analyze_sys_table_snapshots_stats(self, warm_db):
        warm_db.execute("ANALYZE SYS_STAT_STATEMENTS")
        stats = warm_db.catalog.get_table("SYS_STAT_STATEMENTS").stats
        assert stats.analyzed
        assert stats.row_count > 0


class TestEstimates:
    def test_explain_analyze_populates_estimates(self, warm_db):
        warm_db.execute("EXPLAIN ANALYZE SELECT * FROM t WHERE b = 2")
        rows = warm_db.execute(
            "SELECT source, predicate, est_rows, actual_rows, q_error, samples "
            "FROM SYS_STAT_ESTIMATES WHERE source = 'T'"
        ).rows
        assert rows, "no feedback recorded for T"
        source, predicate, est, actual, q, samples = rows[0]
        assert "?0" in predicate  # normalized key, matches cached compiles
        assert actual == 4.0
        assert q >= 1.0
        assert samples >= 1
