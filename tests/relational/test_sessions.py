"""Multiple sessions over one database: lock conflicts and isolation."""

import pytest

from repro.errors import DeadlockError
from repro.relational.txn.manager import IsolationLevel


@pytest.fixture
def shared(people_db):
    return people_db, people_db.connect(), people_db.connect()


class TestSessionIndependence:
    def test_sessions_have_own_transactions(self, shared):
        db, a, b = shared
        a.begin()
        assert a.in_transaction
        assert not b.in_transaction
        assert not db.in_transaction
        a.rollback()

    def test_autocommit_sessions_share_data(self, shared):
        _, a, b = shared
        a.execute("INSERT INTO PEOPLE VALUES (9, 'zed', 1, 'NY', 0.0)")
        assert b.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 6

    def test_session_rollback_only_undoes_own_work(self, shared):
        _, a, b = shared
        b.execute("INSERT INTO PEOPLE VALUES (8, 'yak', 1, 'NY', 0.0)")
        a.begin()
        a.execute("INSERT INTO PEOPLE VALUES (9, 'zed', 1, 'NY', 0.0)")
        a.rollback()
        assert b.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 6

    def test_default_database_acts_as_a_session(self, shared):
        db, a, _ = shared
        db.begin()
        db.execute("DELETE FROM PEOPLE WHERE id = 1")
        db.rollback()
        assert a.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 5


class TestLockConflicts:
    def test_writer_blocks_reader(self, shared):
        db, a, b = shared
        a.begin()
        a.execute("DELETE FROM PEOPLE WHERE id = 1")
        b.begin()
        if db.mvcc is not None:
            # Snapshot isolation: the reader never blocks and sees the
            # pre-delete state until the writer commits.
            assert b.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 5
            a.commit()
            # b's snapshot predates a's commit: still 5 rows.
            assert b.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 5
            b.commit()
            assert b.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 4
            return
        with pytest.raises(DeadlockError):
            b.execute("SELECT * FROM PEOPLE")
        a.commit()
        b.execute("SELECT * FROM PEOPLE")  # now fine
        b.commit()

    def test_writer_blocks_writer(self, shared):
        _, a, b = shared
        a.begin()
        a.execute("UPDATE PEOPLE SET age = 1 WHERE id = 1")
        b.begin()
        with pytest.raises(DeadlockError):
            b.execute("UPDATE PEOPLE SET age = 2 WHERE id = 2")
        a.rollback()
        b.execute("UPDATE PEOPLE SET age = 2 WHERE id = 2")
        b.commit()

    def test_readers_share(self, shared):
        _, a, b = shared
        a.begin()
        b.begin()
        a.execute("SELECT * FROM PEOPLE")
        b.execute("SELECT * FROM PEOPLE")
        a.commit()
        b.commit()

    def test_repeatable_read_blocks_writer_until_commit(self, shared):
        db, a, b = shared
        a.begin(IsolationLevel.REPEATABLE_READ)
        a.execute("SELECT * FROM PEOPLE")
        b.begin()
        if db.mvcc is not None:
            # MVCC readers hold no S locks: the writer proceeds, and a's
            # snapshot still shows the deleted row (repeatable reads come
            # from versioning, not locks).
            b.execute("DELETE FROM PEOPLE WHERE id = 1")
            b.commit()
            assert a.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 5
            a.commit()
            return
        with pytest.raises(DeadlockError):
            b.execute("DELETE FROM PEOPLE WHERE id = 1")
        a.commit()
        b.execute("DELETE FROM PEOPLE WHERE id = 1")
        b.commit()

    def test_cursor_stability_releases_after_statement(self, shared):
        """Section 1's 'cursor stability': read locks end with the
        statement, so a writer can proceed before the reader commits."""
        _, a, b = shared
        a.begin(IsolationLevel.CURSOR_STABILITY)
        a.execute("SELECT * FROM PEOPLE")
        b.begin()
        b.execute("DELETE FROM PEOPLE WHERE id = 1")  # no conflict
        b.commit()
        a.commit()

    def test_autocommit_reads_never_hold_locks(self, shared):
        _, a, b = shared
        a.execute("SELECT * FROM PEOPLE")  # autocommit: no txn, no lock
        b.begin()
        b.execute("DELETE FROM PEOPLE WHERE id = 1")
        b.commit()
