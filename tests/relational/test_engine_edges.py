"""Edge cases across the engine: tiny buffers, odd queries, planner paths."""

import pytest

from repro.relational.engine import Database


class TestTinyBufferPool:
    """Queries stay correct when the working set far exceeds the buffer."""

    def test_scan_with_evictions(self):
        db = Database(page_size=512, buffer_capacity=3)
        db.execute("CREATE TABLE T (a INTEGER, payload VARCHAR)")
        table = db.catalog.get_table("T")
        for i in range(300):
            table.insert((i, f"row-{i}-padding-padding"))
        assert db.execute("SELECT COUNT(*) FROM T").scalar() == 300
        assert db.buffer_pool.evictions > 0

    def test_join_with_evictions(self):
        db = Database(page_size=512, buffer_capacity=3)
        db.execute("CREATE TABLE A (x INTEGER)")
        db.execute("CREATE TABLE B (y INTEGER)")
        for table_name, col in (("A", "x"), ("B", "y")):
            table = db.catalog.get_table(table_name)
            for i in range(120):
                table.insert((i,))
        result = db.execute("SELECT COUNT(*) FROM A, B WHERE A.x = B.y")
        assert result.scalar() == 120

    def test_update_survives_evictions(self):
        db = Database(page_size=512, buffer_capacity=3)
        db.execute("CREATE TABLE T (a INTEGER, s VARCHAR)")
        table = db.catalog.get_table("T")
        for i in range(200):
            table.insert((i, "x" * 30))
        db.execute("UPDATE T SET s = 'updated' WHERE a < 100")
        assert db.execute(
            "SELECT COUNT(*) FROM T WHERE s = 'updated'"
        ).scalar() == 100


class TestOddQueries:
    def test_select_constant_only(self, db):
        assert db.execute("SELECT 40 + 2").rows == [(42,)]

    def test_select_constant_with_subquery(self, people_db):
        result = people_db.execute("SELECT (SELECT MAX(age) FROM PEOPLE)")
        assert result.rows == [(35,)]

    def test_union_of_constants(self, db):
        result = db.execute("SELECT 1 UNION SELECT 2 UNION SELECT 1")
        assert sorted(result.rows) == [(1,), (2,)]

    def test_having_without_group_by(self, people_db):
        result = people_db.execute(
            "SELECT COUNT(*) FROM PEOPLE HAVING COUNT(*) > 3"
        )
        assert result.rows == [(5,)]
        result = people_db.execute(
            "SELECT COUNT(*) FROM PEOPLE HAVING COUNT(*) > 99"
        )
        assert result.rows == []

    def test_between_on_indexed_column(self, people_db):
        result = people_db.execute(
            "SELECT name FROM PEOPLE WHERE id BETWEEN 2 AND 4 ORDER BY id"
        )
        assert [r[0] for r in result.rows] == ["bob", "cat", "dan"]

    def test_nested_derived_tables(self, people_db):
        result = people_db.execute(
            "SELECT z.n FROM (SELECT y.n FROM (SELECT name AS n FROM PEOPLE "
            "WHERE age > 26) AS y) AS z ORDER BY z.n"
        )
        assert result.rows == [("ann",), ("cat",)]

    def test_empty_statement_rejected(self, db):
        with pytest.raises(Exception):
            db.execute("   ")

    def test_execute_script_returns_all_results(self, people_db):
        results = people_db.execute_script(
            "SELECT 1; SELECT COUNT(*) FROM PEOPLE; SELECT 3"
        )
        assert [r.scalar() for r in results] == [1, 5, 3]

    def test_string_concat_operator(self, people_db):
        result = people_db.execute(
            "SELECT name || '@' || city FROM PEOPLE WHERE id = 1"
        )
        assert result.rows == [("ann@NY",)]

    def test_arith_null_propagation_in_projection(self, people_db):
        result = people_db.execute("SELECT age + 1 FROM PEOPLE WHERE id = 4")
        assert result.rows == [(None,)]

    def test_in_list_with_null_candidate(self, people_db):
        # city IN ('NY', NULL): eve's NULL city -> unknown, others match NY
        result = people_db.execute(
            "SELECT COUNT(*) FROM PEOPLE WHERE city IN ('NY', NULL)"
        )
        assert result.scalar() == 2

    def test_substr_and_mod(self, people_db):
        result = people_db.execute(
            "SELECT SUBSTR(name, 1, 2), MOD(id, 2) FROM PEOPLE WHERE id = 3"
        )
        assert result.rows == [("ca", 1)]


class TestManyTableJoins:
    def test_greedy_join_order_beyond_dp_threshold(self, db):
        """More than DP_THRESHOLD tables exercises the greedy planner."""
        names = [f"T{i}" for i in range(10)]
        for name in names:
            db.execute(f"CREATE TABLE {name} (k INTEGER, v INTEGER)")
            table = db.catalog.get_table(name)
            for i in range(6):
                table.insert((i, i * 10))
        joins = " AND ".join(
            f"{a}.k = {b}.k" for a, b in zip(names, names[1:])
        )
        froms = ", ".join(names)
        result = db.execute(
            f"SELECT COUNT(*) FROM {froms} WHERE {joins}"
        )
        assert result.scalar() == 6

    def test_star_join(self, db):
        db.execute("CREATE TABLE FACT (d1 INTEGER, d2 INTEGER, d3 INTEGER)")
        for dim in ("D1", "D2", "D3"):
            db.execute(f"CREATE TABLE {dim} (id INTEGER PRIMARY KEY, lab VARCHAR)")
            db.execute(f"INSERT INTO {dim} VALUES (1, 'a'), (2, 'b')")
        db.execute("INSERT INTO FACT VALUES (1, 2, 1), (2, 1, 2), (1, 1, 1)")
        db.execute("ANALYZE")
        result = db.execute(
            "SELECT COUNT(*) FROM FACT f, D1, D2, D3 "
            "WHERE f.d1 = D1.id AND f.d2 = D2.id AND f.d3 = D3.id "
            "AND D1.lab = 'a'"
        )
        assert result.scalar() == 2

    def test_outer_join_then_subquery_filter(self, people_db):
        people_db.execute("CREATE TABLE PETS (owner INTEGER, kind VARCHAR)")
        people_db.execute("INSERT INTO PETS VALUES (1, 'cat'), (3, 'dog')")
        result = people_db.execute(
            "SELECT p.name FROM PEOPLE p LEFT JOIN PETS q ON p.id = q.owner "
            "WHERE q.kind IS NULL AND EXISTS "
            "(SELECT 1 FROM PEOPLE r WHERE r.age = p.age AND r.id <> p.id) "
            "ORDER BY p.id"
        )
        assert result.rows == [("bob",), ("eve",)]


class TestWorkloadGenerators:
    def test_design_total_tuples_formula(self):
        from repro.workloads import design

        db = design.build_design_database(3)
        total = 0
        for name in ("DOCUMENT", "VERSION", "COMPONENT", "SUBCOMP"):
            total += db.execute(f"SELECT COUNT(*) FROM {name}").scalar()
        assert total == design.total_tuples(3)

    def test_oo1_connection_shape(self):
        import random

        from repro.workloads import oo1

        rows = oo1.generate_connections(100, random.Random(1))
        assert len(rows) == 100 * oo1.CONNECTIONS_PER_PART
        assert all(1 <= cto <= 100 for _, cto, _, _ in rows)

    def test_scaled_company_row_counts(self):
        from repro.workloads import company

        db = company.scaled_database(departments=5, employees_per_dept=4,
                                     projects_per_dept=2)
        assert db.execute("SELECT COUNT(*) FROM DEPT").scalar() == 5
        assert db.execute("SELECT COUNT(*) FROM EMP").scalar() == 20
        assert db.execute("SELECT COUNT(*) FROM PROJ").scalar() == 10
        # every project manager is an employee of the owning department
        bad = db.execute(
            "SELECT COUNT(*) FROM PROJ p WHERE p.pmgrno IS NOT NULL AND "
            "NOT EXISTS (SELECT 1 FROM EMP e WHERE e.eno = p.pmgrno "
            "AND e.edno = p.pdno)"
        ).scalar()
        assert bad == 0
