"""Transactions: rollback, locks, isolation levels, WAL crash recovery."""

import pytest

from repro.errors import DeadlockError, IOFaultError, IntegrityError, TransactionError
from repro.relational.engine import Database
from repro.relational.storage import FaultInjector
from repro.relational.txn.locks import LockManager, LockMode
from repro.relational.txn.manager import IsolationLevel
from repro.relational.txn.wal import WriteAheadLog


class TestRollback:
    def test_rollback_insert(self, people_db):
        people_db.execute("BEGIN")
        people_db.execute("INSERT INTO PEOPLE VALUES (9, 'zed', 1, 'NY', 0.0)")
        people_db.execute("ROLLBACK")
        assert people_db.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 5

    def test_rollback_delete(self, people_db):
        people_db.execute("BEGIN")
        people_db.execute("DELETE FROM PEOPLE WHERE city = 'NY'")
        people_db.execute("ROLLBACK")
        assert people_db.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 5
        # index consistency after undo
        assert people_db.execute("SELECT name FROM PEOPLE WHERE id = 1").scalar() == "ann"

    def test_rollback_update(self, people_db):
        people_db.execute("BEGIN")
        people_db.execute("UPDATE PEOPLE SET age = 0")
        people_db.execute("ROLLBACK")
        assert people_db.execute(
            "SELECT age FROM PEOPLE WHERE name = 'ann'"
        ).scalar() == 30

    def test_rollback_mixed_operations_in_order(self, people_db):
        people_db.execute("BEGIN")
        people_db.execute("INSERT INTO PEOPLE VALUES (9, 'zed', 1, 'NY', 0.0)")
        people_db.execute("UPDATE PEOPLE SET age = age + 1 WHERE id = 9")
        people_db.execute("DELETE FROM PEOPLE WHERE id = 9")
        people_db.execute("ROLLBACK")
        assert people_db.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 5

    def test_commit_keeps_changes(self, people_db):
        people_db.execute("BEGIN")
        people_db.execute("DELETE FROM PEOPLE WHERE id = 1")
        people_db.execute("COMMIT")
        assert people_db.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 4

    def test_nested_begin_rejected(self, people_db):
        people_db.execute("BEGIN")
        with pytest.raises(TransactionError):
            people_db.execute("BEGIN")
        people_db.execute("ROLLBACK")

    def test_commit_without_begin_rejected(self, people_db):
        with pytest.raises(TransactionError):
            people_db.execute("COMMIT")

    def test_rollback_without_begin_rejected(self, people_db):
        with pytest.raises(TransactionError):
            people_db.execute("ROLLBACK")


class TestLockManager:
    def test_shared_locks_compatible(self):
        locks = LockManager()
        locks.acquire(1, "T", LockMode.SHARED)
        locks.acquire(2, "T", LockMode.SHARED)

    def test_exclusive_conflicts(self):
        locks = LockManager()
        locks.acquire(1, "T", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            locks.acquire(2, "T", LockMode.SHARED)
        with pytest.raises(DeadlockError):
            locks.acquire(2, "T", LockMode.EXCLUSIVE)

    def test_shared_blocks_exclusive(self):
        locks = LockManager()
        locks.acquire(1, "T", LockMode.SHARED)
        with pytest.raises(DeadlockError):
            locks.acquire(2, "T", LockMode.EXCLUSIVE)

    def test_upgrade_own_lock(self):
        locks = LockManager()
        locks.acquire(1, "T", LockMode.SHARED)
        locks.acquire(1, "T", LockMode.EXCLUSIVE)
        assert ("T", LockMode.EXCLUSIVE) in locks.held(1)

    def test_release_all(self):
        locks = LockManager()
        locks.acquire(1, "A", LockMode.SHARED)
        locks.acquire(1, "B", LockMode.EXCLUSIVE)
        locks.release_all(1)
        assert locks.held(1) == set()
        locks.acquire(2, "B", LockMode.EXCLUSIVE)

    def test_release_shared_keeps_exclusive(self):
        locks = LockManager()
        locks.acquire(1, "A", LockMode.SHARED)
        locks.acquire(1, "B", LockMode.EXCLUSIVE)
        locks.release_shared(1)
        assert locks.held(1) == {("B", LockMode.EXCLUSIVE)}


class TestIsolationLevels:
    def test_repeatable_read_holds_read_locks(self, people_db):
        people_db.isolation = IsolationLevel.REPEATABLE_READ
        people_db.execute("BEGIN")
        people_db.execute("SELECT * FROM PEOPLE")
        txn_id = people_db._txn.txn_id
        held = people_db.txn_manager.locks.held(txn_id)
        if people_db.mvcc is not None:
            # Snapshot isolation replaces read locks with versioned reads.
            assert held == set()
        else:
            assert ("PEOPLE", LockMode.SHARED) in held
        people_db.execute("COMMIT")

    def test_cursor_stability_releases_read_locks(self, people_db):
        people_db.execute("BEGIN")
        people_db._txn.isolation = IsolationLevel.CURSOR_STABILITY
        people_db.execute("SELECT * FROM PEOPLE")
        txn_id = people_db._txn.txn_id
        assert people_db.txn_manager.locks.held(txn_id) == set()
        people_db.execute("COMMIT")

    def test_write_locks_held_until_commit_either_way(self, people_db):
        people_db.execute("BEGIN")
        people_db._txn.isolation = IsolationLevel.CURSOR_STABILITY
        people_db.execute("DELETE FROM PEOPLE WHERE id = 1")
        txn_id = people_db._txn.txn_id
        held = people_db.txn_manager.locks.held(txn_id)
        assert ("PEOPLE", LockMode.EXCLUSIVE) in held
        people_db.execute("COMMIT")
        assert people_db.txn_manager.locks.held(txn_id) == set()


def _company_schema(database):
    database.execute("CREATE TABLE T (a INTEGER PRIMARY KEY, b VARCHAR)")


def _crash_and_reopen(db, schema_fn=_company_schema):
    """Simulate a power cut and reopen over the surviving disk + WAL.

    A crash loses the buffer pool and the WAL's volatile tail; the disk
    page images and the stable log survive.  The reopened instance gets
    the schema re-created (DDL is not logged in this engine) and then runs
    crash recovery.
    """
    db.txn_manager.wal.crash()
    reopened = Database(disk=db.disk, wal=db.txn_manager.wal)
    schema_fn(reopened)
    stats = reopened.recover()
    return reopened, stats


class TestRecovery:
    def test_committed_work_survives_crash(self):
        primary = Database()
        _company_schema(primary)
        primary.execute("INSERT INTO T VALUES (1, 'x'), (2, 'y')")
        primary.execute("BEGIN")
        primary.execute("UPDATE T SET b = 'z' WHERE a = 1")
        primary.execute("COMMIT")
        primary.execute("BEGIN")
        primary.execute("DELETE FROM T WHERE a = 2")
        primary.execute("COMMIT")

        reopened, stats = _crash_and_reopen(primary)
        assert stats.committed_txns == 3  # 1 implicit + 2 explicit
        assert stats.redo_applied > 0
        assert reopened.execute("SELECT * FROM T ORDER BY a").rows == [(1, "z")]

    def test_uncommitted_work_not_recovered(self):
        primary = Database()
        _company_schema(primary)
        primary.execute("INSERT INTO T VALUES (1, 'x')")
        primary.execute("BEGIN")
        primary.execute("INSERT INTO T VALUES (2, 'y')")
        # no COMMIT: crash now — the txn's records were never forced
        reopened, _ = _crash_and_reopen(primary)
        assert reopened.execute("SELECT * FROM T").rows == [(1, "x")]

    def test_stable_loser_records_are_undone(self):
        primary = Database()
        _company_schema(primary)
        primary.execute("INSERT INTO T VALUES (1, 'x')")
        primary.execute("BEGIN")
        primary.execute("INSERT INTO T VALUES (2, 'y')")
        primary.execute("UPDATE T SET b = 'w' WHERE a = 1")
        # The loser's records reach stable storage (say, a background
        # flush) but its COMMIT never does: redo repeats its history,
        # undo must then roll it back with compensation records.
        primary.txn_manager.wal.flush()
        reopened, stats = _crash_and_reopen(primary)
        assert stats.loser_txns == 1
        assert stats.undo_applied == 2
        assert reopened.execute("SELECT * FROM T ORDER BY a").rows == [(1, "x")]

    def test_autocommit_statements_are_durable(self):
        primary = Database()
        _company_schema(primary)
        primary.execute("INSERT INTO T VALUES (1, 'x')")
        primary.execute("UPDATE T SET b = 'q' WHERE a = 1")
        reopened, _ = _crash_and_reopen(primary)
        assert reopened.execute("SELECT b FROM T").scalar() == "q"

    def test_indexes_rebuilt_after_recovery(self):
        primary = Database()
        _company_schema(primary)
        primary.execute("INSERT INTO T VALUES (1, 'x'), (2, 'y'), (3, 'z')")
        primary.execute("DELETE FROM T WHERE a = 2")
        reopened, _ = _crash_and_reopen(primary)
        # unique-index path (pk lookup) must agree with the heap
        assert reopened.execute("SELECT b FROM T WHERE a = 3").scalar() == "z"
        assert reopened.execute("SELECT b FROM T WHERE a = 2").rows == []
        with pytest.raises(IntegrityError):
            reopened.execute("INSERT INTO T VALUES (1, 'dup')")

    def test_recovery_is_idempotent(self):
        primary = Database()
        _company_schema(primary)
        primary.execute("INSERT INTO T VALUES (1, 'x'), (2, 'y')")
        primary.execute("BEGIN")
        primary.execute("UPDATE T SET b = 'p' WHERE a = 2")
        primary.txn_manager.wal.flush()  # stable loser
        reopened, first = _crash_and_reopen(primary)
        before = reopened.execute("SELECT * FROM T ORDER BY a").rows
        assert first.redo_applied > 0

        # Recovering again must be a no-op: page LSNs already cover every
        # record, and the loser was ABORT-terminated by the first pass.
        second = reopened.recover()
        assert second.redo_applied == 0
        assert second.undo_applied == 0
        assert second.loser_txns == 0
        assert reopened.execute("SELECT * FROM T ORDER BY a").rows == before

    def test_checkpoint_bounds_redo(self):
        primary = Database()
        _company_schema(primary)
        primary.execute("INSERT INTO T VALUES (1, 'x'), (2, 'y')")
        primary.checkpoint()
        primary.execute("UPDATE T SET b = 'z' WHERE a = 1")
        reopened, stats = _crash_and_reopen(primary)
        assert stats.checkpoint_lsn > 0
        # Only the post-checkpoint update needs redo; the two inserts are
        # already on disk (page LSN ≥ record LSN after the flush).
        assert stats.redo_applied == 1
        assert reopened.execute("SELECT * FROM T ORDER BY a").rows == [
            (1, "z"),
            (2, "y"),
        ]

    def test_unacknowledged_commit_is_not_durable(self):
        """A commit whose WAL flushes all fail raises (transaction stays
        active and undoable) — so an acknowledged commit is always durable
        and an unacknowledged one reliably disappears."""
        primary = Database()
        _company_schema(primary)
        primary.execute("INSERT INTO T VALUES (1, 'x')")
        injector = FaultInjector().install(primary)
        primary.execute("BEGIN")
        primary.execute("INSERT INTO T VALUES (2, 'y')")
        injector.arm()
        injector.drop_next_flushes(10)  # outlasts every commit retry
        with pytest.raises(IOFaultError):
            primary.execute("COMMIT")
        injector.disarm()
        assert primary.in_transaction  # still active, still undoable
        primary.execute("ROLLBACK")
        reopened, _ = _crash_and_reopen(primary)
        assert reopened.execute("SELECT * FROM T").rows == [(1, "x")]

    def test_wal_records_have_increasing_lsns(self, people_db):
        people_db.execute("INSERT INTO PEOPLE VALUES (9, 'z', 1, 'NY', 0.0)")
        people_db.execute("DELETE FROM PEOPLE WHERE id = 9")
        lsns = [r.lsn for r in people_db.txn_manager.wal.records]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == len(lsns)


class TestAbortResidue:
    """ABORT paths leave zero residue in heap pages and indexes."""

    def _residue_rows(self, database, table_name):
        """Rows physically present in page slots tagged with *table_name*."""
        table = database.catalog.get_table(table_name)
        pool = table.heap.buffer_pool
        found = []
        for page_id in database.disk.page_ids():
            page = pool.fetch(page_id)
            try:
                for content in page.slots:
                    if content is not None and content[0] == table_name:
                        found.append(content[1])
            finally:
                pool.unpin(page_id)
        return sorted(found)

    def test_explicit_rollback_leaves_no_residue(self, people_db):
        baseline = sorted(people_db.execute("SELECT * FROM PEOPLE").rows)
        people_db.execute("BEGIN")
        people_db.execute("INSERT INTO PEOPLE VALUES (9, 'zed', 1, 'NY', 0.0)")
        people_db.execute("UPDATE PEOPLE SET age = age + 10 WHERE city = 'NY'")
        people_db.execute("DELETE FROM PEOPLE WHERE id = 2")
        people_db.execute("ROLLBACK")
        assert sorted(people_db.execute("SELECT * FROM PEOPLE").rows) == baseline
        assert self._residue_rows(people_db, "PEOPLE") == baseline
        # index paths agree with the heap
        assert people_db.execute(
            "SELECT name FROM PEOPLE WHERE id = 2"
        ).scalar() == "bob"
        assert people_db.execute("SELECT name FROM PEOPLE WHERE id = 9").rows == []

    def test_error_triggered_rollback_leaves_no_residue(self, people_db):
        """A mid-statement failure (duplicate key on the second row) must
        undo the statement's earlier rows — statement-level atomicity."""
        baseline = sorted(people_db.execute("SELECT * FROM PEOPLE").rows)
        with pytest.raises(IntegrityError):
            people_db.execute(
                "INSERT INTO PEOPLE VALUES (8, 'new', 1, 'NY', 0.0), "
                "(1, 'dup', 2, 'SF', 0.0)"
            )
        assert sorted(people_db.execute("SELECT * FROM PEOPLE").rows) == baseline
        assert self._residue_rows(people_db, "PEOPLE") == baseline
        assert people_db.execute("SELECT name FROM PEOPLE WHERE id = 8").rows == []

    def test_error_inside_transaction_keeps_earlier_statements(self, people_db):
        people_db.execute("BEGIN")
        people_db.execute("INSERT INTO PEOPLE VALUES (8, 'new', 1, 'NY', 0.0)")
        with pytest.raises(IntegrityError):
            people_db.execute("INSERT INTO PEOPLE VALUES (1, 'dup', 2, 'SF', 0.0)")
        # the failed statement rolled back, the transaction survives
        assert people_db.in_transaction
        people_db.execute("COMMIT")
        assert people_db.execute(
            "SELECT name FROM PEOPLE WHERE id = 8"
        ).scalar() == "new"

    def test_rollback_does_not_touch_plan_cache_counters(self, people_db):
        people_db.execute("SELECT * FROM PEOPLE WHERE id = 1")
        people_db.execute("SELECT * FROM PEOPLE WHERE id = 2")  # cache hit
        before = people_db.plan_cache.stats()
        assert before["hits"] >= 1
        people_db.execute("BEGIN")
        people_db.execute("INSERT INTO PEOPLE VALUES (9, 'zed', 1, 'NY', 0.0)")
        people_db.execute("ROLLBACK")
        after = people_db.plan_cache.stats()
        assert after["hits"] == before["hits"]
        assert after["invalidations"] == before["invalidations"]
        # and the cached plan still hits after the rollback
        people_db.execute("SELECT * FROM PEOPLE WHERE id = 3")
        assert people_db.plan_cache.stats()["hits"] == before["hits"] + 1


class TestWalFaults:
    """Flush-level fault behavior of the WAL itself."""

    def _wal_with_injector(self):
        wal = WriteAheadLog()
        injector = FaultInjector()
        wal.fault_injector = injector
        injector.arm()
        return wal, injector

    def test_dropped_flush_keeps_tail_volatile(self):
        wal, injector = self._wal_with_injector()
        wal.append(1, "BEGIN")
        wal.append(1, "COMMIT")
        injector.drop_next_flushes(1)
        assert wal.flush() == 0  # nothing reached stable storage
        assert wal.stable_records() == []
        # the tail survives, so a retry succeeds
        assert wal.flush() == 2
        assert [r.kind for r in wal.stable_records()] == ["BEGIN", "COMMIT"]

    def test_torn_flush_withholds_final_record(self):
        wal, injector = self._wal_with_injector()
        wal.append(1, "BEGIN")
        wal.append(1, "COMMIT")
        injector.tear_next_flushes(1)
        # only the prefix before the torn record is reported stable
        assert wal.flush() == 1
        assert [r.kind for r in wal.stable_records()] == ["BEGIN"]
        # the torn record stays buffered; the next flush rewrites it cleanly
        assert wal.flush() == 2
        assert [r.kind for r in wal.stable_records()] == ["BEGIN", "COMMIT"]
        assert all(r.verify() for r in wal.stable_records())

    def test_crash_after_torn_flush_truncates_log(self):
        wal, injector = self._wal_with_injector()
        wal.append(1, "BEGIN")
        wal.append(1, "INSERT", table="T", after=(1,), rid=(0, 0))
        injector.tear_next_flushes(1)
        wal.flush()
        wal.crash()
        # recovery sees only the verified prefix
        assert [r.kind for r in wal.stable_records()] == ["BEGIN"]
        # the LSN clock rewound to the verified high-water mark, so the
        # torn record's LSN is reused by the next append
        record = wal.append(2, "BEGIN")
        assert record.lsn == 2
        wal.flush()
        assert [r.lsn for r in wal.stable_records()] == [1, 2]
