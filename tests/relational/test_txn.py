"""Transactions: rollback, locks, isolation levels, WAL recovery."""

import pytest

from repro.errors import DeadlockError, TransactionError
from repro.relational.engine import Database
from repro.relational.txn.locks import LockManager, LockMode
from repro.relational.txn.manager import IsolationLevel


class TestRollback:
    def test_rollback_insert(self, people_db):
        people_db.execute("BEGIN")
        people_db.execute("INSERT INTO PEOPLE VALUES (9, 'zed', 1, 'NY', 0.0)")
        people_db.execute("ROLLBACK")
        assert people_db.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 5

    def test_rollback_delete(self, people_db):
        people_db.execute("BEGIN")
        people_db.execute("DELETE FROM PEOPLE WHERE city = 'NY'")
        people_db.execute("ROLLBACK")
        assert people_db.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 5
        # index consistency after undo
        assert people_db.execute("SELECT name FROM PEOPLE WHERE id = 1").scalar() == "ann"

    def test_rollback_update(self, people_db):
        people_db.execute("BEGIN")
        people_db.execute("UPDATE PEOPLE SET age = 0")
        people_db.execute("ROLLBACK")
        assert people_db.execute(
            "SELECT age FROM PEOPLE WHERE name = 'ann'"
        ).scalar() == 30

    def test_rollback_mixed_operations_in_order(self, people_db):
        people_db.execute("BEGIN")
        people_db.execute("INSERT INTO PEOPLE VALUES (9, 'zed', 1, 'NY', 0.0)")
        people_db.execute("UPDATE PEOPLE SET age = age + 1 WHERE id = 9")
        people_db.execute("DELETE FROM PEOPLE WHERE id = 9")
        people_db.execute("ROLLBACK")
        assert people_db.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 5

    def test_commit_keeps_changes(self, people_db):
        people_db.execute("BEGIN")
        people_db.execute("DELETE FROM PEOPLE WHERE id = 1")
        people_db.execute("COMMIT")
        assert people_db.execute("SELECT COUNT(*) FROM PEOPLE").scalar() == 4

    def test_nested_begin_rejected(self, people_db):
        people_db.execute("BEGIN")
        with pytest.raises(TransactionError):
            people_db.execute("BEGIN")
        people_db.execute("ROLLBACK")

    def test_commit_without_begin_rejected(self, people_db):
        with pytest.raises(TransactionError):
            people_db.execute("COMMIT")

    def test_rollback_without_begin_rejected(self, people_db):
        with pytest.raises(TransactionError):
            people_db.execute("ROLLBACK")


class TestLockManager:
    def test_shared_locks_compatible(self):
        locks = LockManager()
        locks.acquire(1, "T", LockMode.SHARED)
        locks.acquire(2, "T", LockMode.SHARED)

    def test_exclusive_conflicts(self):
        locks = LockManager()
        locks.acquire(1, "T", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            locks.acquire(2, "T", LockMode.SHARED)
        with pytest.raises(DeadlockError):
            locks.acquire(2, "T", LockMode.EXCLUSIVE)

    def test_shared_blocks_exclusive(self):
        locks = LockManager()
        locks.acquire(1, "T", LockMode.SHARED)
        with pytest.raises(DeadlockError):
            locks.acquire(2, "T", LockMode.EXCLUSIVE)

    def test_upgrade_own_lock(self):
        locks = LockManager()
        locks.acquire(1, "T", LockMode.SHARED)
        locks.acquire(1, "T", LockMode.EXCLUSIVE)
        assert ("T", LockMode.EXCLUSIVE) in locks.held(1)

    def test_release_all(self):
        locks = LockManager()
        locks.acquire(1, "A", LockMode.SHARED)
        locks.acquire(1, "B", LockMode.EXCLUSIVE)
        locks.release_all(1)
        assert locks.held(1) == set()
        locks.acquire(2, "B", LockMode.EXCLUSIVE)

    def test_release_shared_keeps_exclusive(self):
        locks = LockManager()
        locks.acquire(1, "A", LockMode.SHARED)
        locks.acquire(1, "B", LockMode.EXCLUSIVE)
        locks.release_shared(1)
        assert locks.held(1) == {("B", LockMode.EXCLUSIVE)}


class TestIsolationLevels:
    def test_repeatable_read_holds_read_locks(self, people_db):
        people_db.isolation = IsolationLevel.REPEATABLE_READ
        people_db.execute("BEGIN")
        people_db.execute("SELECT * FROM PEOPLE")
        txn_id = people_db._txn.txn_id
        held = people_db.txn_manager.locks.held(txn_id)
        assert ("PEOPLE", LockMode.SHARED) in held
        people_db.execute("COMMIT")

    def test_cursor_stability_releases_read_locks(self, people_db):
        people_db.execute("BEGIN")
        people_db._txn.isolation = IsolationLevel.CURSOR_STABILITY
        people_db.execute("SELECT * FROM PEOPLE")
        txn_id = people_db._txn.txn_id
        assert people_db.txn_manager.locks.held(txn_id) == set()
        people_db.execute("COMMIT")

    def test_write_locks_held_until_commit_either_way(self, people_db):
        people_db.execute("BEGIN")
        people_db._txn.isolation = IsolationLevel.CURSOR_STABILITY
        people_db.execute("DELETE FROM PEOPLE WHERE id = 1")
        txn_id = people_db._txn.txn_id
        held = people_db.txn_manager.locks.held(txn_id)
        assert ("PEOPLE", LockMode.EXCLUSIVE) in held
        people_db.execute("COMMIT")
        assert people_db.txn_manager.locks.held(txn_id) == set()


class TestRecovery:
    def _schema(self, database):
        database.execute(
            "CREATE TABLE T (a INTEGER PRIMARY KEY, b VARCHAR)"
        )

    def test_replay_committed_work(self):
        primary = Database()
        self._schema(primary)
        primary.execute("INSERT INTO T VALUES (1, 'x'), (2, 'y')")
        primary.execute("BEGIN")
        primary.execute("UPDATE T SET b = 'z' WHERE a = 1")
        primary.execute("COMMIT")
        primary.execute("BEGIN")
        primary.execute("DELETE FROM T WHERE a = 2")
        primary.execute("COMMIT")

        # crash: fresh database with the same schema, replay the WAL
        replica = Database()
        self._schema(replica)
        applied = primary.txn_manager.recover_into(replica)
        assert applied > 0
        assert replica.execute("SELECT * FROM T ORDER BY a").rows == [(1, "z")]

    def test_uncommitted_work_not_replayed(self):
        primary = Database()
        self._schema(primary)
        primary.execute("INSERT INTO T VALUES (1, 'x')")
        primary.execute("BEGIN")
        primary.execute("INSERT INTO T VALUES (2, 'y')")
        # no COMMIT: crash now
        replica = Database()
        self._schema(replica)
        primary.txn_manager.recover_into(replica)
        assert replica.execute("SELECT * FROM T").rows == [(1, "x")]

    def test_autocommit_statements_are_durable(self):
        primary = Database()
        self._schema(primary)
        primary.execute("INSERT INTO T VALUES (1, 'x')")
        primary.execute("UPDATE T SET b = 'q' WHERE a = 1")
        replica = Database()
        self._schema(replica)
        primary.txn_manager.recover_into(replica)
        assert replica.execute("SELECT b FROM T").scalar() == "q"

    def test_replay_is_idempotent_on_fresh_copy(self):
        primary = Database()
        self._schema(primary)
        primary.execute("INSERT INTO T VALUES (1, 'x')")
        for _ in range(2):
            replica = Database()
            self._schema(replica)
            primary.txn_manager.recover_into(replica)
            assert replica.execute("SELECT COUNT(*) FROM T").scalar() == 1

    def test_wal_records_have_increasing_lsns(self, people_db):
        people_db.execute("INSERT INTO PEOPLE VALUES (9, 'z', 1, 'NY', 0.0)")
        people_db.execute("DELETE FROM PEOPLE WHERE id = 9")
        lsns = [r.lsn for r in people_db.txn_manager.wal.records]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == len(lsns)
