"""Retry/backoff contract of Database.run_retryable and WireClient.run_retryable.

Two regressions pinned here:

* ``backoff_s=0`` used to busy-spin: the "seed from the error's
  backoff_hint_s" re-arm only fired for ``None``, and ``0 * 2`` stays 0, so
  every retry slept zero seconds.  Zero/negative seeds now re-arm exactly
  like ``None``.
* jitter could overshoot ``max_backoff_s`` by up to ``jitter``×: the cap was
  applied before the jitter multiplier, not after.  The post-jitter sleep is
  now clamped.
"""

import random

import pytest

from repro.errors import SerializationError
from repro.client.client import WireClient
from repro.relational.engine import Database


class _Flaky:
    """Callable failing with a retryable error for the first *failures* calls."""

    def __init__(self, failures, hint=None):
        self.failures = failures
        self.calls = 0
        self.hint = hint

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            err = SerializationError("write-write conflict")
            if self.hint is not None:
                err.backoff_hint_s = self.hint
            raise err
        return "done"


@pytest.fixture
def sleeps(monkeypatch):
    """Record every time.sleep() a retry loop performs."""
    recorded = []
    monkeypatch.setattr("time.sleep", lambda s: recorded.append(s))
    return recorded


def _wire_client():
    """A WireClient with no socket: run_retryable only needs rollback()."""
    client = WireClient.__new__(WireClient)
    client.rollback = lambda: None
    return client


RUNNERS = [
    pytest.param(lambda: Database().run_retryable, id="engine"),
    pytest.param(lambda: _wire_client().run_retryable, id="wire-client"),
]


@pytest.mark.parametrize("make_runner", RUNNERS)
class TestRetryBackoff:
    def test_zero_backoff_does_not_busy_spin(self, make_runner, sleeps):
        run = make_runner()
        fn = _Flaky(failures=4)
        assert run(fn, backoff_s=0, jitter=0.0, rng=random.Random(1)) == "done"
        assert fn.calls == 5
        assert len(sleeps) == 4
        # re-armed from the 2 ms default hint, then doubled — never zero
        assert all(s > 0 for s in sleeps)
        assert sleeps == sorted(sleeps)
        assert sleeps[0] == pytest.approx(0.002)
        assert sleeps[-1] > sleeps[0]

    def test_negative_backoff_treated_like_none(self, make_runner, sleeps):
        run = make_runner()
        assert (
            run(_Flaky(failures=2), backoff_s=-1.0, jitter=0.0,
                rng=random.Random(1))
            == "done"
        )
        assert all(s > 0 for s in sleeps)

    def test_backoff_hint_seeds_first_delay(self, make_runner, sleeps):
        run = make_runner()
        run(_Flaky(failures=2, hint=0.02), jitter=0.0, rng=random.Random(1))
        assert sleeps[0] == pytest.approx(0.02)
        assert sleeps[1] == pytest.approx(0.04)

    def test_jitter_never_exceeds_max_backoff(self, make_runner, sleeps):
        run = make_runner()
        run(
            _Flaky(failures=6),
            retries=6,
            backoff_s=0.2,
            max_backoff_s=0.25,
            jitter=1.0,  # pre-fix this could sleep up to 2 * max_backoff_s
            rng=random.Random(7),
        )
        assert len(sleeps) == 6
        assert all(s <= 0.25 for s in sleeps)

    def test_non_retryable_errors_propagate_immediately(self, make_runner, sleeps):
        run = make_runner()

        def boom():
            raise ValueError("not a repro error at all")

        with pytest.raises(ValueError):
            run(boom)
        assert sleeps == []

    def test_budget_exhaustion_reraises_last_error(self, make_runner, sleeps):
        run = make_runner()
        fn = _Flaky(failures=99)
        with pytest.raises(SerializationError):
            run(fn, retries=3, backoff_s=0, jitter=0.0, rng=random.Random(1))
        assert fn.calls == 4  # initial attempt + 3 retries
        assert len(sleeps) == 3  # no sleep after the final failure


def test_wire_client_rolls_back_between_attempts(sleeps):
    client = WireClient.__new__(WireClient)
    rollbacks = []
    client.rollback = lambda: rollbacks.append(True)
    assert (
        client.run_retryable(_Flaky(failures=2), rng=random.Random(3)) == "done"
    )
    assert len(rollbacks) == 2
