"""Greedy vs. DP join ordering must agree on results (plans may differ).

Above :data:`DP_THRESHOLD` quantifiers the planner switches from
Selinger-style DP enumeration to a greedy chain.  Join order is a pure
optimisation: whatever order either picks, the result set is fixed by the
query.  These tests pin that — including after optimizer feedback has
overridden cardinality estimates, which is exactly the regime the greedy
seed used to ignore (an access path's ``cost`` is never recomputed from the
feedback-corrected ``est_rows``).
"""

import pytest

from repro.relational.optimizer import planner
from repro.workloads import company

#: 9 quantifiers — above DP_THRESHOLD (8), so the greedy path runs by
#: default and the DP path needs the threshold raised.
NINE_WAY = """
SELECT d.dname, e.ename, p.pname, s.sname, mgr.ename
FROM DEPT d, EMP e, PROJ p, EMPPROJ ep, SKILLS s, EMPSKILL es,
     PROJSKILL ps, EMP mgr, DEPT d2
WHERE e.edno = d.dno
  AND p.pdno = d.dno
  AND ep.epeno = e.eno AND ep.eppno = p.pno
  AND es.eseno = e.eno AND es.essno = s.sno
  AND ps.pspno = p.pno AND ps.pssno = s.sno
  AND mgr.eno = p.pmgrno
  AND d2.dno = mgr.edno
"""

FIVE_WAY = """
SELECT d.dname, e.ename, p.pname
FROM DEPT d, EMP e, PROJ p, EMPPROJ ep, EMP mgr
WHERE e.edno = d.dno AND p.pdno = d.dno
  AND ep.epeno = e.eno AND ep.eppno = p.pno
  AND mgr.eno = p.pmgrno AND e.sal > 20
"""


def _run(db, sql):
    return sorted(db.execute(sql).rows)


@pytest.fixture
def scaled_db():
    return company.scaled_database(departments=8, employees_per_dept=6,
                                   projects_per_dept=2, skills=12)


@pytest.fixture
def feedback_db():
    db = company.scaled_database(
        departments=8, employees_per_dept=6, projects_per_dept=2, skills=12,
        optimizer_feedback=True,
    )
    # Warm the feedback store with observed actuals so later plans run with
    # feedback-corrected est_rows (the case the greedy seed must respect).
    db.execute("EXPLAIN ANALYZE " + NINE_WAY)
    db.execute("EXPLAIN ANALYZE " + FIVE_WAY)
    return db


def _with_threshold(monkeypatch, db, sql, threshold):
    monkeypatch.setattr(planner, "DP_THRESHOLD", threshold)
    db.plan_cache.clear()
    return _run(db, sql)


class TestGreedyVsDP:
    def test_nine_way_join_same_result(self, scaled_db, monkeypatch):
        greedy = _with_threshold(monkeypatch, scaled_db, NINE_WAY, 1)
        dp = _with_threshold(monkeypatch, scaled_db, NINE_WAY, 16)
        assert greedy == dp
        assert greedy  # non-degenerate: the workload joins to something

    def test_five_way_join_same_result(self, scaled_db, monkeypatch):
        greedy = _with_threshold(monkeypatch, scaled_db, FIVE_WAY, 1)
        dp = _with_threshold(monkeypatch, scaled_db, FIVE_WAY, 16)
        assert greedy == dp
        assert greedy

    def test_equivalence_survives_optimizer_feedback(
        self, feedback_db, monkeypatch
    ):
        for sql in (NINE_WAY, FIVE_WAY):
            greedy = _with_threshold(monkeypatch, feedback_db, sql, 1)
            dp = _with_threshold(monkeypatch, feedback_db, sql, 16)
            assert greedy == dp

    def test_greedy_matches_unjoined_baseline(self, scaled_db, monkeypatch):
        # Cross-check against the default configuration (DP for the 5-way,
        # greedy for the 9-way): forcing either mode must not change rows.
        default_nine = _run(scaled_db, NINE_WAY)
        default_five = _run(scaled_db, FIVE_WAY)
        assert _with_threshold(monkeypatch, scaled_db, NINE_WAY, 1) == default_nine
        assert _with_threshold(monkeypatch, scaled_db, FIVE_WAY, 1) == default_five
