"""Shared fixtures: fresh engines and the paper's example databases."""

import pytest

from repro.relational.engine import Database
from repro.workloads import company, oo1
from repro.xnf.api import XNFSession


@pytest.fixture
def db():
    """An empty database."""
    return Database()


@pytest.fixture
def company_db():
    """The Fig. 1 company database."""
    return company.figure1_database()


@pytest.fixture
def fig4_db():
    """The Figs 3-5 company database (recursive scenario)."""
    return company.figure4_database()


@pytest.fixture
def fig4_session(fig4_db):
    """XNF session over the Fig. 4 database, with the paper's views."""
    session = XNFSession(fig4_db)
    company.create_paper_views(session)
    return session


@pytest.fixture
def company_session(company_db):
    return XNFSession(company_db)


@pytest.fixture
def parts_db():
    """A small OO1 parts database."""
    return oo1.build_parts_database(120, seed=3)


@pytest.fixture
def parts_co(parts_db):
    session = XNFSession(parts_db)
    return oo1.load_parts_co(session)


@pytest.fixture
def people_db():
    """A small generic table for SQL-semantics tests."""
    database = Database()
    database.execute(
        "CREATE TABLE PEOPLE (id INTEGER PRIMARY KEY, name VARCHAR, "
        "age INTEGER, city VARCHAR, score FLOAT)"
    )
    database.execute(
        "INSERT INTO PEOPLE VALUES "
        "(1, 'ann', 30, 'NY', 1.5), "
        "(2, 'bob', 25, 'SF', 2.5), "
        "(3, 'cat', 35, 'NY', NULL), "
        "(4, 'dan', NULL, 'LA', 4.0), "
        "(5, 'eve', 25, NULL, 0.5)"
    )
    return database
