"""Per-connection handle caps: LRU eviction with a typed, non-retryable error.

A wire session's prepared statements, fetch cursors, composite objects and
CO cursors used to accumulate until disconnect.  With
``max_session_handles`` set, the oldest handle of a kind is evicted when the
cap is exceeded, and touching an evicted handle raises
:class:`~repro.errors.HandleEvictedError` — distinguishable on the client
from a plain unknown-handle :class:`CursorError`, and never retryable (the
handle cannot be replayed; the client must re-create it).
"""

import pytest

from repro.client.client import WireClient
from repro.errors import CursorError, HandleEvictedError
from repro.server.server import ServerThread
from repro.workloads.company import figure1_database

XNF_TAKE = """
OUT OF Xdept AS DEPT, Xemp AS EMP,
 employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno)
TAKE *
"""


@pytest.fixture
def tight_server():
    """A server that only keeps 3 live handles per kind per connection."""
    db = figure1_database(mvcc=True)
    with ServerThread(db, max_connections=8, max_session_handles=3) as server:
        yield server


@pytest.fixture
def client(tight_server):
    with WireClient(port=tight_server.port) as c:
        yield c


class TestPreparedEviction:
    def test_oldest_prepared_statement_evicted(self, client):
        handles = [client.prepare("SELECT * FROM DEPT") for _ in range(4)]
        with pytest.raises(HandleEvictedError) as exc:
            handles[0].execute()
        assert exc.value.retryable is False
        # the survivors still execute
        assert handles[1].execute().rows()
        assert handles[3].execute().rows()

    def test_lru_order_respects_recent_use(self, client):
        handles = [client.prepare("SELECT * FROM DEPT") for _ in range(3)]
        handles[0].execute()  # touch: now handles[1] is the LRU entry
        client.prepare("SELECT * FROM EMP")
        assert handles[0].execute().rows()
        with pytest.raises(HandleEvictedError):
            handles[1].execute()

    def test_error_survives_wire_roundtrip_as_typed(self, client):
        for _ in range(4):
            client.prepare("SELECT * FROM DEPT")
        with pytest.raises(HandleEvictedError):
            client.request(op="EXECUTE", stmt=1, params=[])
        # and an id that never existed still reports the generic error
        with pytest.raises(CursorError):
            client.request(op="CO_FETCH", cursor=99999)


class TestCOEviction:
    def test_evicted_co_and_cascaded_cursors(self, client):
        first = client.take(XNF_TAKE)
        # open but do not drain: an exhausted cursor closes itself server-side
        cursor = first.cursor("Xemp")
        for _ in range(3):
            client.take(XNF_TAKE)  # push the first CO out of the LRU
        with pytest.raises(HandleEvictedError):
            first.path("Xdept", "employment", dname="d1")
        # the CO's cursor was cascaded out with it
        with pytest.raises(HandleEvictedError):
            client.request(op="CO_FETCH", cursor=cursor.cursor_id, n=10)

    def test_explicit_close_still_reports_unknown(self, client):
        co = client.take(XNF_TAKE)
        co.close()
        with pytest.raises(CursorError) as exc:
            client.request(op="CO_PATH", co=co.co_id, start="Xdept",
                           path="employment")
        assert not isinstance(exc.value, HandleEvictedError)

    def test_eviction_counter_visible_in_network_stats(self, tight_server):
        with WireClient(port=tight_server.port) as c:
            for _ in range(5):
                c.prepare("SELECT * FROM DEPT")
        snap = tight_server.server.db.network.snapshot()
        assert snap.get("handles_evicted", 0) >= 2


class TestDefaultCapIsRoomy:
    def test_default_server_keeps_many_handles(self):
        db = figure1_database(mvcc=True)
        with ServerThread(db, max_connections=4) as server:
            assert server.server.max_session_handles == 256
            with WireClient(port=server.port) as c:
                handles = [c.prepare("SELECT * FROM DEPT") for _ in range(20)]
                assert all(h.execute().rows() for h in handles)
