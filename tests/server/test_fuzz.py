"""Protocol fuzz tests: a hostile or broken client must never take the
server down, corrupt another session, or leak its own session entry.

Every scenario drives raw bytes at the socket (no WireClient involved),
then proves the blast radius with a *healthy* client: the server still
answers queries and ``SYS_SESSIONS`` drops back to just the prober.
"""

import socket
import struct
import threading
import time

import pytest

from repro.client.client import WireClient
from repro.server import protocol


def _raw(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), 10)
    sock.settimeout(10)
    hello = protocol.read_frame(sock)  # consume the greeting
    assert hello["ok"]
    return sock


def _assert_server_healthy(port: int, expected_sessions: int = 1) -> None:
    """The definitive post-fuzz check: fresh sessions work, nothing leaked."""
    deadline = time.monotonic() + 5
    while True:
        with WireClient(port=port) as client:
            assert client.execute("SELECT COUNT(*) FROM DEPT").scalar() == 3
            live = client.execute(
                "SELECT COUNT(*) FROM SYS_SESSIONS"
            ).scalar()
            if live == expected_sessions or time.monotonic() > deadline:
                assert live == expected_sessions
                return
        time.sleep(0.01)  # give the server a beat to reap the bad session


class TestMalformedFrames:
    def test_junk_bytes(self, wire_server):
        sock = _raw(wire_server.port)
        sock.sendall(b"\xde\xad\xbe\xef" * 64)
        # server answers with a ProtocolError frame, then closes
        response = protocol.read_frame(sock)
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"
        assert sock.recv(1) == b""  # EOF: connection was closed
        sock.close()
        _assert_server_healthy(wire_server.port)

    def test_oversized_length_prefix(self, wire_server):
        sock = _raw(wire_server.port)
        sock.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
        response = protocol.read_frame(sock)
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"
        assert sock.recv(1) == b""
        sock.close()
        _assert_server_healthy(wire_server.port)

    def test_zero_length_frame(self, wire_server):
        sock = _raw(wire_server.port)
        sock.sendall(struct.pack(">I", 0))
        response = protocol.read_frame(sock)
        assert response["error"]["type"] == "ProtocolError"
        sock.close()
        _assert_server_healthy(wire_server.port)

    def test_valid_length_invalid_json(self, wire_server):
        sock = _raw(wire_server.port)
        body = b"\xff\xfe this is not json"
        sock.sendall(struct.pack(">I", len(body)) + body)
        response = protocol.read_frame(sock)
        assert response["error"]["type"] == "ProtocolError"
        sock.close()
        _assert_server_healthy(wire_server.port)

    def test_json_array_body(self, wire_server):
        sock = _raw(wire_server.port)
        body = b"[1, 2, 3]"
        sock.sendall(struct.pack(">I", len(body)) + body)
        response = protocol.read_frame(sock)
        assert response["error"]["type"] == "ProtocolError"
        sock.close()
        _assert_server_healthy(wire_server.port)

    def test_frame_without_op(self, wire_server):
        # structurally valid JSON object, semantically empty: the session
        # survives (only stream-level damage closes the connection)
        sock = _raw(wire_server.port)
        protocol.write_frame(sock, {"not_op": "QUERY"})
        response = protocol.read_frame(sock)
        assert response["ok"] is False
        sock.close()
        _assert_server_healthy(wire_server.port)


class TestTruncation:
    def test_truncated_length_prefix(self, wire_server):
        sock = _raw(wire_server.port)
        sock.sendall(b"\x00\x00")  # half a prefix, then vanish
        sock.close()
        _assert_server_healthy(wire_server.port)

    def test_truncated_body(self, wire_server):
        sock = _raw(wire_server.port)
        frame = protocol.encode_frame({"op": "QUERY", "sql": "SELECT 1"})
        sock.sendall(frame[: len(frame) - 5])  # drop the tail
        sock.close()
        _assert_server_healthy(wire_server.port)

    def test_mid_statement_disconnect(self, wire_server):
        """Client dies while its statement is executing server-side: the
        statement's transaction rolls back and the session is reaped."""
        sock = _raw(wire_server.port)
        protocol.write_frame(sock, {"op": "QUERY", "sql": "BEGIN"})
        assert protocol.read_frame(sock)["ok"]
        protocol.write_frame(
            sock,
            {"op": "QUERY",
             "sql": "UPDATE DEPT SET budget = 0.0 WHERE dno = 1"},
        )
        assert protocol.read_frame(sock)["ok"]
        # a long statement, then hang up without reading the answer
        protocol.write_frame(
            sock,
            {"op": "QUERY",
             "sql": "SELECT d1.dno FROM DEPT d1, DEPT d2, EMP e1, EMP e2"},
        )
        sock.close()
        _assert_server_healthy(wire_server.port)
        # the orphaned transaction must have rolled back
        with WireClient(port=wire_server.port) as client:
            assert client.execute(
                "SELECT budget FROM DEPT WHERE dno = 1"
            ).scalar() == 1000.0


class TestIsolation:
    def test_bad_session_does_not_disturb_good_one(self, wire_server):
        """A healthy session with an open CO keeps working while a fuzzer
        trashes its own connection next door."""
        with WireClient(port=wire_server.port) as good:
            from repro.workloads.company import FIGURE1_CO
            co = good.take(FIGURE1_CO)
            sock = _raw(wire_server.port)
            sock.sendall(b"garbage garbage garbage!")
            response = protocol.read_frame(sock)
            assert response["error"]["type"] == "ProtocolError"
            sock.close()
            # the good session's CO survived the neighbour's demise
            names = sorted(row["ename"] for row in co.cursor("Xemp"))
            assert names == ["e1", "e2", "e4", "e5", "e6"]
            assert good.execute("SELECT COUNT(*) FROM DEPT").scalar() == 3
        _assert_server_healthy(wire_server.port)

    def test_fuzz_barrage_then_service(self, wire_server):
        """Many concurrent garbage connections; the server survives them
        all and then serves real clients."""
        payloads = [
            b"\x00" * 7,
            b"\xff\xff\xff\xff",
            struct.pack(">I", 16) + b"short",
            protocol.encode_frame({"op": 42}),
            b"GET / HTTP/1.1\r\n\r\n",
        ]
        errors = []

        def fuzz(data: bytes) -> None:
            try:
                sock = _raw(wire_server.port)
                sock.sendall(data)
                try:
                    sock.recv(4096)
                except OSError:
                    pass
                sock.close()
            except Exception as exc:  # noqa: BLE001 - must not happen
                errors.append(exc)

        threads = [
            threading.Thread(target=fuzz, args=(p,))
            for p in payloads * 3
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        _assert_server_healthy(wire_server.port)

    def test_protocol_errors_counted(self, wire_server):
        sock = _raw(wire_server.port)
        sock.sendall(b"\xba\xad\xf0\x0d")
        protocol.read_frame(sock)
        sock.close()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if wire_server.server.db.network.snapshot()["protocol_errors"]:
                break
            time.sleep(0.01)
        assert wire_server.server.db.network.snapshot()["protocol_errors"] >= 1


@pytest.mark.parametrize("length", [1, 3])
def test_tiny_partial_prefix_then_eof(wire_server, length):
    sock = _raw(wire_server.port)
    sock.sendall(b"\x01" * length)
    sock.close()
    _assert_server_healthy(wire_server.port)
