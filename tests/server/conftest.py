"""Fixtures for wire server/client tests: one server per test over a
fresh Fig. 1 company database (MVCC mode, so snapshot-conflict paths are
exercisable)."""

import pytest

from repro.client.client import WireClient
from repro.server.server import ServerThread
from repro.workloads.company import figure1_database


@pytest.fixture
def wire_server():
    db = figure1_database(mvcc=True)
    with ServerThread(db, max_connections=16) as server:
        yield server


@pytest.fixture
def client(wire_server):
    with WireClient(port=wire_server.port) as c:
        yield c
