"""End-to-end wire server tests over loopback.

Each test boots a real asyncio server (fixture in conftest) and drives it
with the blocking client — the same code path as the REPL and the
benchmark, so frame handling, session multiplexing, the error taxonomy
and the SYS_* observability are all exercised across an actual socket.
"""

import threading
import time

import pytest

from repro.errors import (
    AdmissionError,
    AuthError,
    CatalogError,
    ParseError,
    ResourceExhaustedError,
    SerializationError,
    ServerShutdownError,
)
from repro.client.client import WireClient
from repro.server.server import ServerThread
from repro.workloads.company import FIGURE1_CO, figure1_database


class TestQueries:
    def test_hello_announces_session_and_mvcc(self, client):
        assert client.server_info["server"] == "repro-xnf"
        assert client.session_id >= 1
        assert client.mvcc is True

    def test_select_roundtrip(self, client):
        result = client.execute(
            "SELECT dname, loc FROM DEPT WHERE loc = 'NY' ORDER BY dname"
        )
        assert result.columns == ["dname", "loc"]
        assert result.rows() == [("d1", "NY"), ("d3", "NY")]

    def test_dml_rowcount(self, client):
        result = client.execute("UPDATE EMP SET sal = sal + 1 WHERE edno = 2")
        assert result.rowcount == 3

    def test_typed_errors_cross_the_wire(self, client):
        with pytest.raises(CatalogError):
            client.execute("SELECT * FROM NO_SUCH_TABLE")
        with pytest.raises(ParseError):
            client.execute("SELEC dname FROM DEPT")
        # the session survives its own errors
        assert client.execute("SELECT COUNT(*) FROM DEPT").scalar() == 3

    def test_prepare_execute(self, client):
        stmt = client.prepare("SELECT ename FROM EMP WHERE edno = ?")
        assert stmt.n_params == 1
        assert len(stmt.execute([2]).rows()) == 3
        assert len(stmt.execute([1]).rows()) == 2

    def test_long_result_streams_through_fetch_cursor(self, wire_server):
        with WireClient(port=wire_server.port) as client:
            client.execute(
                "CREATE TABLE BULK (n INTEGER PRIMARY KEY, v VARCHAR)"
            )
            values = ", ".join(f"({i}, 'v{i}')" for i in range(500))
            client.execute(f"INSERT INTO BULK VALUES {values}")
            result = client.execute(
                "SELECT n FROM BULK ORDER BY n", max_rows=64
            )
            # only the first page is inline; rows() drains the rest
            assert result._more is True
            rows = result.rows()
            assert [r[0] for r in rows] == list(range(500))

    def test_transactions_span_frames(self, wire_server):
        with WireClient(port=wire_server.port) as a, \
                WireClient(port=wire_server.port) as b:
            a.begin()
            a.execute("UPDATE DEPT SET budget = 9999.0 WHERE dno = 1")
            # b's snapshot ignores a's uncommitted write
            assert b.execute(
                "SELECT budget FROM DEPT WHERE dno = 1"
            ).scalar() == 1000.0
            a.commit()
            assert b.execute(
                "SELECT budget FROM DEPT WHERE dno = 1"
            ).scalar() == 9999.0

    def test_disconnect_rolls_back_open_transaction(self, wire_server):
        with WireClient(port=wire_server.port) as a:
            a.begin()
            a.execute("UPDATE DEPT SET budget = 0.0 WHERE dno = 1")
        # connection closed with the transaction open: changes must vanish
        with WireClient(port=wire_server.port) as b:
            assert b.execute(
                "SELECT budget FROM DEPT WHERE dno = 1"
            ).scalar() == 1000.0


class TestCompositeObjects:
    def test_take_and_navigate(self, client):
        co = client.take(FIGURE1_CO)
        assert co.nodes == {"Xdept": 3, "Xemp": 5, "Xproj": 2, "Xskill": 4}
        names = sorted(row["ename"] for row in co.cursor("Xemp"))
        assert names == ["e1", "e2", "e4", "e5", "e6"]
        emps = co.path("Xdept", "employment", dname="d1")
        assert sorted(t["values"]["ename"] for t in emps) == ["e1", "e2"]
        co.close()

    def test_multi_step_path(self, client):
        co = client.take(FIGURE1_CO)
        skills = co.path("Xdept", "employment->Xemp->empproperty", dname="d1")
        assert sorted(t["values"]["sname"] for t in skills) == ["s1", "s3"]

    def test_explain_analyze_passthrough(self, client):
        rendered = client.explain_analyze(FIGURE1_CO)
        assert "xnf.instantiate" in rendered

    def test_closed_co_rejects_navigation(self, client):
        co = client.take(FIGURE1_CO)
        co.close()
        from repro.errors import CursorError
        with pytest.raises(CursorError):
            co.path("Xdept", "employment")

    def test_cos_tracked_in_sys_sessions(self, wire_server, client):
        co = client.take(FIGURE1_CO)
        row = client.execute(
            "SELECT cos_open FROM SYS_SESSIONS "
            f"WHERE session_id = {client.session_id}"
        ).scalar()
        assert row == 1
        co.close()


class TestSessionControls:
    def test_statement_timeout_is_per_session(self, wire_server):
        with WireClient(port=wire_server.port) as slow, \
                WireClient(port=wire_server.port) as normal:
            slow.set_statement_timeout(0.0)  # everything times out
            with pytest.raises(ResourceExhaustedError):
                slow.execute("SELECT COUNT(*) FROM EMP")
            # the other session is unaffected ...
            assert normal.execute("SELECT COUNT(*) FROM EMP").scalar() == 6
            # ... and clearing the override restores service
            slow.set_statement_timeout(None)
            assert slow.execute("SELECT COUNT(*) FROM EMP").scalar() == 6

    def test_auth_token_gate(self):
        db = figure1_database(mvcc=True)
        with ServerThread(db, auth_token="sesame") as server:
            with pytest.raises(AuthError):
                with WireClient(port=server.port) as nosy:
                    nosy.execute("SELECT 1 FROM DEPT")
            with pytest.raises(AuthError):
                WireClient(port=server.port, auth_token="wrong")
            with WireClient(port=server.port, auth_token="sesame") as ok:
                assert ok.execute("SELECT COUNT(*) FROM DEPT").scalar() == 3

    def test_admission_limit_is_retryable_over_wire(self):
        db = figure1_database(mvcc=True)
        with ServerThread(db, max_connections=2) as server:
            a = WireClient(port=server.port)
            b = WireClient(port=server.port)
            try:
                with pytest.raises(AdmissionError) as info:
                    WireClient(port=server.port)
                assert info.value.retryable
                assert info.value.backoff_hint_s == AdmissionError.backoff_hint_s
                assert db.network.snapshot()["connections_refused"] == 1
            finally:
                a.close()
                b.close()
            # capacity freed: admission succeeds again
            with WireClient(port=server.port) as c:
                assert c.execute("SELECT COUNT(*) FROM DEPT").scalar() == 3


class TestRetryableConflicts:
    def test_serialization_conflict_roundtrip(self, wire_server):
        with WireClient(port=wire_server.port) as a, \
                WireClient(port=wire_server.port) as b:
            a.begin()
            b.begin()
            a.execute("UPDATE DEPT SET budget = budget + 1 WHERE dno = 1")
            a.commit()
            with pytest.raises(SerializationError) as info:
                b.execute("UPDATE DEPT SET budget = budget + 1 WHERE dno = 1")
            assert info.value.retryable
            assert info.value.backoff_hint_s == SerializationError.backoff_hint_s
            assert getattr(info.value, "remote", False)
            b.rollback()

    def test_client_run_retryable_converges(self, wire_server):
        """N remote writers increment one row under run_retryable: every
        conflict must be retried to success, like in-process."""
        workers = 4
        increments = 3
        errors = []

        def worker():
            try:
                with WireClient(port=wire_server.port) as c:
                    for _ in range(increments):
                        def txn():
                            c.begin()
                            c.execute(
                                "UPDATE DEPT SET budget = budget + 1 "
                                "WHERE dno = 1"
                            )
                            c.commit()
                        c.run_retryable(txn, retries=25)
            except Exception as exc:  # noqa: BLE001 - surfaced via assert
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors
        with WireClient(port=wire_server.port) as c:
            assert c.execute(
                "SELECT budget FROM DEPT WHERE dno = 1"
            ).scalar() == 1000.0 + workers * increments


class TestObservability:
    def test_sys_sessions_reflects_live_connections(self, wire_server):
        with WireClient(port=wire_server.port) as a, \
                WireClient(port=wire_server.port) as b:
            rows = a.execute(
                "SELECT session_id, state FROM SYS_SESSIONS ORDER BY session_id"
            ).rows()
            ids = [r[0] for r in rows]
            assert a.session_id in ids and b.session_id in ids
            assert len(rows) == 2
        # both gone after close
        with WireClient(port=wire_server.port) as c:
            assert c.execute("SELECT COUNT(*) FROM SYS_SESSIONS").scalar() == 1

    def test_sys_stat_network_counts_frames(self, wire_server, client):
        before = client.execute(
            "SELECT frames_in, frames_out FROM SYS_STAT_NETWORK"
        ).first()
        client.execute("SELECT COUNT(*) FROM EMP")
        after = client.execute(
            "SELECT frames_in, frames_out FROM SYS_STAT_NETWORK"
        ).first()
        assert after[0] >= before[0] + 2
        assert after[1] >= before[1] + 2

    def test_errors_counted(self, wire_server, client):
        with pytest.raises(CatalogError):
            client.execute("SELECT * FROM NOPE")
        counters = wire_server.server.db.network.snapshot()
        assert counters["errors_sent"] >= 1
        errors = client.execute(
            "SELECT errors FROM SYS_SESSIONS "
            f"WHERE session_id = {client.session_id}"
        ).scalar()
        assert errors == 1


class TestGracefulShutdown:
    def test_draining_refuses_new_connections_retryably(self):
        db = figure1_database(mvcc=True)
        server = ServerThread(db).start()
        try:
            server.server._draining = True
            with pytest.raises(ServerShutdownError) as info:
                WireClient(port=server.port)
            assert info.value.retryable
        finally:
            server.server._draining = False
            server.stop()

    def test_shutdown_leaves_no_sessions(self):
        db = figure1_database(mvcc=True)
        server = ServerThread(db).start()
        clients = [WireClient(port=server.port) for _ in range(3)]
        for idx, c in enumerate(clients):
            assert c.execute("SELECT COUNT(*) FROM DEPT").scalar() == 3
        server.stop()
        assert len(db.wire_sessions) == 0
        assert db.network.snapshot()["connections_active"] == 0
        assert db.execute("SELECT COUNT(*) FROM SYS_SESSIONS").scalar() == 0
        for c in clients:
            c.sock.close()

    def test_in_flight_statement_drains(self):
        """A statement running when stop() is called still gets its answer."""
        db = figure1_database(mvcc=True)
        server = ServerThread(db, drain_timeout_s=30).start()
        client = WireClient(port=server.port)
        result = {}

        def slow_query():
            result["rows"] = client.execute(
                "SELECT d1.dno FROM DEPT d1, DEPT d2, EMP e1, EMP e2, EMP e3"
            ).rows()

        worker = threading.Thread(target=slow_query)
        worker.start()
        # wait until the server actually has the statement in flight (or it
        # already finished) so stop() exercises the drain path, not a close
        # of an idle connection that never received the frame
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and worker.is_alive():
            states = [row[2] for row in db.wire_sessions.rows_snapshot()]
            if "running" in states:
                break
            time.sleep(0.001)
        server.stop()
        worker.join(30)
        assert len(result.get("rows", [])) == 3 * 3 * 6 * 6 * 6
        client.sock.close()
