"""Wire-protocol unit tests: frame codec and lossless error taxonomy."""

import struct

import pytest

from repro.errors import (
    AdmissionError,
    CatalogError,
    DeadlockError,
    IOFaultError,
    ParseError,
    ReproError,
    SerializationError,
    ServerShutdownError,
)
from repro.server import protocol
from repro.server.protocol import ProtocolError, RemoteServerError


class TestFrameCodec:
    def test_roundtrip(self):
        payload = {"op": "QUERY", "sql": "SELECT 1", "nested": {"a": [1, 2]}}
        data = protocol.encode_frame(payload)
        length = protocol.decode_length(data[:4])
        assert length == len(data) - 4
        assert protocol.decode_body(data[4:]) == payload

    def test_length_prefix_is_big_endian(self):
        data = protocol.encode_frame({"x": 1})
        assert struct.unpack(">I", data[:4])[0] == len(data) - 4

    def test_zero_length_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_length(b"\x00\x00\x00\x00")

    def test_truncated_prefix_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_length(b"\x00\x01")

    def test_oversized_length_rejected(self):
        huge = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            protocol.decode_length(huge)

    def test_non_json_body_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_body(b"\xff\xfe not json")

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_body(b"[1, 2, 3]")

    def test_oversized_outgoing_frame_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_frame({"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)})


class TestErrorTaxonomyRoundTrip:
    """Satellite 6: retry metadata must survive the wire losslessly."""

    @pytest.mark.parametrize("cls", [SerializationError, DeadlockError,
                                     AdmissionError, ServerShutdownError])
    def test_retryable_class_roundtrip(self, cls):
        err = cls("boom")
        back = protocol.rehydrate_error(protocol.error_payload(err))
        assert type(back) is cls
        assert isinstance(back, ReproError)
        assert back.retryable is True
        assert back.backoff_hint_s == cls.backoff_hint_s
        assert str(back) == "boom"
        assert back.remote is True

    def test_admission_backs_off_longer_than_conflicts(self):
        # the wire must preserve the taxonomy's backoff ordering, not
        # flatten it: capacity rejects wait 10x longer than row conflicts
        adm = protocol.error_payload(AdmissionError("full"))
        ser = protocol.error_payload(SerializationError("conflict"))
        assert adm["backoff_s"] > ser["backoff_s"]

    def test_non_retryable_roundtrip(self):
        err = CatalogError("unknown table NOPE")
        back = protocol.rehydrate_error(protocol.error_payload(err))
        assert type(back) is CatalogError
        assert back.retryable is False
        assert back.backoff_hint_s is None

    def test_parse_error_position_survives(self):
        err = ParseError("unexpected token", line=3, column=14)
        back = protocol.rehydrate_error(protocol.error_payload(err))
        assert type(back) is ParseError
        assert back.line == 3
        assert back.column == 14

    def test_transient_iofault_instance_override(self):
        err = IOFaultError("disk glitch", transient=True)
        back = protocol.rehydrate_error(protocol.error_payload(err))
        assert type(back) is IOFaultError
        assert back.retryable is True
        assert back.transient is True
        assert back.backoff_hint_s == 0.001

    def test_persistent_iofault_instance_override(self):
        # instance-level override must win over any class default
        err = IOFaultError("disk gone", transient=False)
        back = protocol.rehydrate_error(protocol.error_payload(err))
        assert back.retryable is False
        assert back.transient is False
        assert back.backoff_hint_s is None

    def test_unknown_type_degrades_to_remote_error(self):
        payload = {"type": "FutureFancyError", "message": "from v99",
                   "retryable": True, "backoff_s": 0.5}
        back = protocol.rehydrate_error(payload)
        assert isinstance(back, RemoteServerError)
        assert back.retryable is True  # server's contract still honored
        assert back.backoff_hint_s == 0.5

    def test_taxonomy_registry_covers_hierarchy(self):
        for name in ("SerializationError", "AdmissionError", "DeadlockError",
                     "CatalogError", "ParseError", "ProtocolError"):
            assert name in protocol.ERROR_TYPES

    def test_payload_is_json_clean(self):
        # every error payload must survive the actual frame codec
        for cls in (SerializationError, AdmissionError, CatalogError):
            frame = protocol.encode_frame(protocol.err_frame(cls("x")))
            body = protocol.decode_body(frame[4:])
            assert body["ok"] is False
            assert body["error"]["type"] == cls.__name__
