"""End-to-end observability: XNF fixpoint spans, metrics snapshot across
crash recovery, and the slow-query log (PR 3 satellite d)."""

import json

import pytest

from repro.relational.engine import Database
from repro.xnf.api import XNFSession
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.semantic_rewrite import XNFCompiler
from repro.xnf.views import XNFViewCatalog, resolve

RECURSIVE_CO = """
OUT OF
  Xroot AS (SELECT * FROM NODES WHERE nid = 1),
  Xnode AS NODES,
  seed AS (RELATE Xroot, Xnode WHERE Xroot.nid = Xnode.nid),
  links AS (RELATE Xnode a, Xnode b
            USING EDGES e
            WHERE a.nid = e.src AND b.nid = e.dst)
TAKE *
"""


@pytest.fixture
def graph_db():
    db = Database()
    db.execute("CREATE TABLE NODES (nid INTEGER PRIMARY KEY, tag VARCHAR)")
    db.execute("CREATE TABLE EDGES (src INTEGER, dst INTEGER)")
    for nid in range(1, 9):
        db.execute(f"INSERT INTO NODES VALUES ({nid}, 'n{nid}')")
    edges = [
        (1, 2), (2, 3), (3, 4), (4, 4), (4, 5), (5, 6), (6, 4),
        (2, 7), (3, 7), (7, 8),
    ]
    for src, dst in edges:
        db.execute(f"INSERT INTO EDGES VALUES ({src}, {dst})")
    db.execute("ANALYZE")
    return db


class TestFixpointSpans:
    def test_one_span_per_fixpoint_round(self, graph_db):
        """The span tree of a recursive CO instantiation carries exactly
        one ``xnf.fixpoint.round`` span per semi-naive round."""
        schema = resolve(parse_xnf(RECURSIVE_CO), XNFViewCatalog())
        compiler = XNFCompiler(graph_db, semi_naive=True)
        compiler.instantiate(schema)

        root = graph_db.tracer.last_trace
        assert root is not None and root.name == "xnf.instantiate"
        rounds = root.find("xnf.fixpoint.round")
        assert len(rounds) == compiler.stats.iterations
        # round numbers are 1..n in order, each with a delta_rows figure
        assert [s.attrs["round"] for s in rounds] == list(
            range(1, len(rounds) + 1)
        )
        assert all("delta_rows" in s.attrs for s in rounds)
        # the final round is the empty delta that closed the fixpoint
        assert rounds[-1].attrs["delta_rows"] == 0

    def test_rounds_nest_generated_statements(self, graph_db):
        schema = resolve(parse_xnf(RECURSIVE_CO), XNFViewCatalog())
        XNFCompiler(graph_db, semi_naive=True).instantiate(schema)
        root = graph_db.tracer.last_trace
        for round_span in root.find("xnf.fixpoint.round"):
            selects = round_span.find("sql.select")
            assert selects, "each round issues at least one generated query"
            for select in selects:
                assert select.find("execute")

    def test_instantiate_span_summarises_the_run(self, graph_db):
        schema = resolve(parse_xnf(RECURSIVE_CO), XNFViewCatalog())
        compiler = XNFCompiler(graph_db, semi_naive=True)
        instance = compiler.instantiate(schema)
        attrs = graph_db.tracer.last_trace.attrs
        assert attrs["rounds"] == compiler.stats.iterations
        assert attrs["tuples"] == sum(
            len(rows) for rows in instance.rows.values()
        )
        assert graph_db.metrics_snapshot()["fixpoint"]["instantiations"] == 1

    def test_xnf_explain_analyze_renders_rounds(self, graph_db):
        text = XNFSession(graph_db).explain_analyze(RECURSIVE_CO)
        assert "xnf.instantiate" in text
        assert "xnf.fixpoint.round" in text
        assert "fixpoint rounds:" in text
        assert "stages:" in text
        assert "plan cache:" in text
        # analyze mode attaches per-operator actuals under the spans
        assert "rows_in=" in text or "loops=" in text


class TestMetricsAcrossRecovery:
    def test_snapshot_consistent_after_crash_recovery(self):
        db = Database()
        db.execute("CREATE TABLE T (a INTEGER PRIMARY KEY, b VARCHAR)")
        for n in range(1, 6):
            db.execute(f"INSERT INTO T VALUES ({n}, 'v{n}')")
        # an uncommitted transaction that will die with the "crash"
        db.execute("BEGIN")
        db.execute("INSERT INTO T VALUES (99, 'lost')")
        # abandon db (simulated crash) and reopen over the surviving
        # disk + stable WAL prefix, as the recovery harness does
        reopened = Database(disk=db.disk, wal=db.txn_manager.wal)
        reopened.execute("CREATE TABLE T (a INTEGER PRIMARY KEY, b VARCHAR)")
        stats = reopened.recover()
        assert stats.redo_applied >= 5

        snap = reopened.metrics_snapshot()
        json.dumps(snap)  # must stay JSON-serializable
        # all sections present with consistent counters
        for section in (
            "buffer", "disk", "wal", "locks", "txn", "fixpoint",
            "plan_cache", "statements",
        ):
            assert section in snap, f"missing section {section}"
        assert snap["txn"]["active"] == 0
        assert snap["wal"]["stable_records"] >= 5
        assert snap["wal"]["torn_flushes"] == snap["wal"]["torn_repairs"]
        assert snap["fixpoint"] == {
            "rounds": 0, "delta_rows": 0, "instantiations": 0,
            "guard_trips": 0,
        }
        # recovery resets the lock manager: nothing may remain held
        assert snap["locks"]["held"] == 0
        # committed rows survived, the uncommitted one did not
        rows = reopened.execute("SELECT COUNT(*) FROM T").scalar()
        assert rows == 5

    def test_snapshot_reflects_workload_counters(self):
        db = Database()
        db.execute("CREATE TABLE T (a INTEGER)")
        db.execute("INSERT INTO T VALUES (1)")
        db.execute("SELECT * FROM T")
        db.execute("SELECT * FROM T")
        snap = db.metrics_snapshot()
        assert snap["statements"]["executed"] >= 4
        assert snap["statements"]["latency"]["count"] >= 4
        assert snap["txn"]["commits"] >= 1
        assert snap["plan_cache"]["hits"] >= 1
        assert 0.0 <= snap["buffer"]["hit_rate"] <= 1.0


class TestSlowQueryLog:
    def test_threshold_zero_logs_every_statement_with_trace(self):
        db = Database(slow_query_threshold_s=0.0)
        db.execute("CREATE TABLE T (a INTEGER)")
        db.execute("INSERT INTO T VALUES (1)")
        db.execute("SELECT * FROM T")
        entries = db.slow_query_log.entries()
        assert len(entries) == 3
        assert db.slow_query_log.total_logged == 3
        select = entries[-1]
        assert "SELECT" in select.sql.upper()
        assert select.duration_s >= 0
        # the span tree rides along and is JSON-ready
        assert select.trace is not None
        json.dumps(select.trace)
        assert select.trace["name"].startswith("sql.")
        assert db.metrics_snapshot()["statements"]["slow_logged"] == 3

    def test_disabled_by_default(self):
        db = Database()
        db.execute("CREATE TABLE T (a INTEGER)")
        db.execute("SELECT * FROM T")
        assert not db.slow_query_log.enabled
        assert len(db.slow_query_log) == 0

    def test_capacity_bounds_the_log(self):
        db = Database(slow_query_threshold_s=0.0)
        db.slow_query_log._entries = __import__("collections").deque(maxlen=4)
        db.execute("CREATE TABLE T (a INTEGER)")
        for n in range(10):
            db.execute(f"INSERT INTO T VALUES ({n})")
        assert len(db.slow_query_log) == 4
        assert db.slow_query_log.total_logged == 11
