"""Unit tests for the span tracer (PR 3 tentpole, part 1)."""

import json

import pytest

from repro.obs.trace import NULL_SPAN, Span, Tracer


class TestSpanTree:
    def test_nesting_follows_the_stack(self):
        tracer = Tracer()
        with tracer.span("statement", sql="SELECT 1"):
            with tracer.span("parse"):
                pass
            with tracer.span("execute") as ex:
                ex.annotate(rows=3)
        root = tracer.last_trace
        assert root is not None
        assert root.name == "statement"
        assert [c.name for c in root.children] == ["parse", "execute"]
        assert root.children[1].attrs["rows"] == 3
        assert root.attrs["sql"] == "SELECT 1"

    def test_durations_are_finished_and_ordered(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        root = tracer.last_trace
        assert root.end_s is not None
        inner = root.children[0]
        assert inner.end_s is not None
        assert inner.duration_s <= root.duration_s

    def test_walk_and_find(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        root = tracer.last_trace
        assert [s.name for s in root.walk()] == ["a", "b", "b", "c"]
        assert len(root.find("b")) == 2
        assert root.find("missing") == []

    def test_to_dict_round_trips_through_json(self):
        tracer = Tracer()
        with tracer.span("statement", sql="SELECT 1"):
            with tracer.span("execute") as ex:
                ex.annotate(rows=1)
        payload = json.loads(tracer.last_trace.to_json())
        assert payload["name"] == "statement"
        assert payload["children"][0]["attrs"]["rows"] == 1
        assert payload["children"][0]["duration_ms"] >= 0

    def test_render_indents_children_and_detail(self):
        span = Span("execute", {"rows": 2, "detail": "Op1\n  Op2"})
        span.finish()
        lines = span.render().splitlines()
        assert lines[0].startswith("execute")
        assert "[rows=2]" in lines[0]
        # detail is multiline, indented below the span line, never inline
        assert lines[1].strip() == "Op1"
        assert lines[2].strip() == "Op2"


class TestTracerLifecycle:
    def test_exception_annotates_and_unwinds(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        # both spans closed; the tree is complete and error-tagged
        root = tracer.last_trace
        assert root.name == "outer"
        assert root.end_s is not None
        assert root.children[0].attrs["error"] == "ValueError"
        assert tracer.current() is None

    def test_disabled_tracer_hands_out_null_span(self):
        tracer = Tracer(enabled=False)
        with tracer.span("anything", key="value") as span:
            assert span is NULL_SPAN
            span.annotate(rows=5)  # swallowed
        assert tracer.last_trace is None
        assert tracer.recent == []

    def test_history_is_bounded(self):
        tracer = Tracer(history=3)
        for n in range(10):
            with tracer.span(f"op{n}"):
                pass
        assert len(tracer.recent) == 3
        assert [s.name for s in tracer.recent] == ["op7", "op8", "op9"]
        assert tracer.last_trace.name == "op9"

    def test_annotate_targets_innermost_open_span(self):
        tracer = Tracer()
        tracer.annotate(ignored=True)  # no open span: no-op, no error
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.annotate(plan_cache="hit")
        root = tracer.last_trace
        assert "ignored" not in root.attrs
        assert root.children[0].attrs["plan_cache"] == "hit"
