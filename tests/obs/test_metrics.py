"""Unit tests for the metrics registry (PR 3 tentpole, part 3)."""

import json

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestPrimitives:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_holds_last_value(self):
        gauge = Gauge()
        gauge.set(3.5)
        gauge.set(1.0)
        assert gauge.value == 1.0

    def test_histogram_summary_and_buckets(self):
        hist = Histogram()
        for value in (0.0002, 0.002, 0.002, 1.5):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 0.0002
        assert snap["max"] == 1.5
        assert abs(snap["sum"] - 1.5042) < 1e-9
        # sparse buckets: only touched upper bounds appear
        assert sum(snap["buckets"].values()) == 4

    def test_empty_histogram_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_inc_set_observe_shorthands(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 2)
        registry.set("depth", 7)
        registry.observe("lat", 0.01)
        snap = registry.snapshot()
        assert snap["hits"] == 3
        assert snap["depth"] == 7
        assert snap["lat"]["count"] == 1

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.inc("x.y.count")
        registry.observe("x.y.seconds", 0.5)
        json.dumps(registry.snapshot())

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.observe("b", 1.0)
        registry.reset()
        assert registry.snapshot() == {}
