"""Unit tests for distributed tracing: TraceContext handoff, head-based
sampling, orphan accounting, exporter batching, and per-statement profiles."""

import io
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.export import JsonlTraceExporter
from repro.obs.profile import build_profile, render_profile
from repro.obs.trace import FRESH_CONTEXT, NULL_SPAN, TraceContext, Tracer


class TestTraceContextWire:
    def test_to_wire_round_trips(self):
        ctx = TraceContext(trace_id=42, span_id=7, sampled=False)
        back = TraceContext.from_wire(ctx.to_wire())
        assert back is not None
        assert (back.trace_id, back.span_id, back.sampled) == (42, 7, False)
        assert back.span is None  # the live span never crosses the wire

    @pytest.mark.parametrize("junk", [
        None, "garbage", 17, [], {"id": "x", "span": 1},
        {"id": 0, "span": 1}, {"id": -3, "span": 1},
        {"id": 5, "span": -1}, {"id": 5, "span": "y"}, {},
    ])
    def test_from_wire_tolerates_junk(self, junk):
        assert TraceContext.from_wire(junk) is None

    def test_from_wire_defaults_sampled_true(self):
        ctx = TraceContext.from_wire({"id": 5, "span": 3})
        assert ctx is not None and ctx.sampled is True

    def test_trace_ids_are_unique_and_tagged(self):
        tracer = Tracer()
        ids = set()
        for _ in range(50):
            with tracer.span("statement") as span:
                ids.add(span.trace_id)
        assert len(ids) == 50
        assert all(trace_id > (1 << 32) for trace_id in ids)


class TestCrossThreadHandoff:
    def test_worker_span_links_into_parent_tree(self):
        tracer = Tracer()
        with tracer.span("statement") as root:
            context = tracer.current_context()

            def work(shard):
                with tracer.adopt(context):
                    with tracer.span("xnf.scatter.shard", shard=shard):
                        pass

            with ThreadPoolExecutor(max_workers=2) as pool:
                list(pool.map(work, range(4)))
        shard_spans = root.find("xnf.scatter.shard")
        assert len(shard_spans) == 4
        assert {s.attrs["shard"] for s in shard_spans} == {0, 1, 2, 3}
        assert all(s.trace_id == root.trace_id for s in shard_spans)
        assert tracer.orphans == 0
        # linked children never double-report as separate history roots
        assert [s.name for s in tracer.recent] == ["statement"]

    def test_wire_context_adoption_sets_parent_id(self):
        server = Tracer()
        remote = TraceContext.from_wire({"id": 99, "span": 12})
        with server.adopt(remote):
            with server.span("wire.query") as span:
                assert span.trace_id == 99
                assert span.parent_id == 12
        assert server.last_trace is span

    def test_unadopted_pool_root_counts_as_orphan(self):
        tracer = Tracer()

        def work():
            with tracer.span("stray"):
                pass

        with ThreadPoolExecutor(max_workers=1) as pool:
            pool.submit(work).result()
        assert tracer.orphans == 1

    def test_fresh_context_suppresses_orphan_accounting(self):
        tracer = Tracer()

        def work():
            with tracer.adopt(None):  # explicit "new trace starts here"
                with tracer.span("wire.query"):
                    pass

        with ThreadPoolExecutor(max_workers=1) as pool:
            pool.submit(work).result()
        assert tracer.orphans == 0
        assert FRESH_CONTEXT.trace_id == 0

    def test_main_thread_roots_are_never_orphans(self):
        tracer = Tracer()
        with tracer.span("statement"):
            pass
        assert tracer.orphans == 0

    def test_adopt_restores_previous_context(self):
        tracer = Tracer()
        outer = TraceContext(5, 1)
        with tracer.adopt(outer):
            with tracer.adopt(TraceContext(6, 2)):
                pass
            assert tracer.current_context() is outer


class TestHeadBasedSampling:
    def test_rate_zero_drops_fast_clean_roots(self):
        tracer = Tracer(sample_rate=0.0)
        for _ in range(5):
            with tracer.span("statement") as root:
                child = tracer.span("execute")
                assert child is NULL_SPAN  # children suppressed
                assert root.sampled is False
        assert tracer.sampled_out == 5
        assert tracer.recent == [] and tracer.last_trace is None

    def test_rate_one_keeps_everything(self):
        tracer = Tracer(sample_rate=1.0)
        for _ in range(5):
            with tracer.span("statement"):
                pass
        assert tracer.sampled_out == 0
        assert len(tracer.recent) == 5

    def test_errors_are_kept_despite_sampling(self):
        tracer = Tracer(sample_rate=0.0)
        with pytest.raises(ValueError):
            with tracer.span("statement"):
                raise ValueError("boom")
        assert tracer.last_trace is not None
        assert tracer.last_trace.attrs["sampled"] == "late"
        assert tracer.sampled_out == 0

    def test_slow_roots_are_kept_despite_sampling(self):
        tracer = Tracer(sample_rate=0.0, slow_sample_s=0.0)
        with tracer.span("statement"):
            pass
        assert tracer.last_trace is not None
        assert tracer.last_trace.attrs["sampled"] == "late"

    def test_adopted_context_overrides_local_rate(self):
        tracer = Tracer(sample_rate=0.0)
        with tracer.adopt(TraceContext(77, 3, sampled=True)):
            with tracer.span("wire.query") as span:
                assert span.sampled is True
        assert tracer.last_trace is span

    def test_force_sample_revives_suppressed_tree(self):
        tracer = Tracer(sample_rate=0.0)
        with tracer.span("statement") as root:
            tracer.force_sample()
            with tracer.span("execute"):
                pass
        assert root.attrs["sampled"] == "late"
        assert [c.name for c in root.children] == ["execute"]
        assert tracer.last_trace is root


class TestExporterBatching:
    def _root(self, tracer, name="statement"):
        with tracer.span(name):
            pass
        return tracer.last_trace

    def test_buffered_until_batch_size(self):
        stream = io.StringIO()
        tracer = Tracer()
        tracer.exporter = JsonlTraceExporter(stream, batch_size=3)
        for _ in range(2):
            self._root(tracer)
        assert stream.getvalue() == ""  # still buffered
        self._root(tracer)
        assert len(stream.getvalue().splitlines()) == 3
        assert tracer.exporter.exported == 3

    def test_flush_writes_partial_batch(self):
        stream = io.StringIO()
        tracer = Tracer()
        tracer.exporter = JsonlTraceExporter(stream, batch_size=100)
        self._root(tracer)
        tracer.exporter.flush()
        (line,) = stream.getvalue().splitlines()
        assert json.loads(line)["name"] == "statement"

    def test_close_drains_owned_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        exporter = JsonlTraceExporter(str(path), batch_size=100)
        tracer.exporter = exporter
        self._root(tracer)
        exporter.close()
        assert len(path.read_text().splitlines()) == 1

    def test_exported_lines_carry_trace_ids(self):
        stream = io.StringIO()
        tracer = Tracer()
        tracer.exporter = JsonlTraceExporter(stream, batch_size=1)
        root = self._root(tracer)
        record = json.loads(stream.getvalue())
        assert record["trace_id"] == root.trace_id

    def test_reentrant_export_does_not_recurse(self):
        tracer = Tracer()

        class Nosy:
            def __init__(self):
                self.calls = 0

            def export(self, span):
                self.calls += 1
                # a misbehaving exporter that traces work of its own
                with tracer.span("exporter.side_effect"):
                    pass

        tracer.exporter = Nosy()
        with tracer.span("statement"):
            pass
        assert tracer.exporter.calls == 1
        assert tracer.export_failures == 0


class TestBuildProfile:
    def test_none_and_null_span_give_no_profile(self):
        assert build_profile(None) is None
        assert build_profile(NULL_SPAN) is None

    def test_aggregates_stages_and_shards(self):
        tracer = Tracer()
        with tracer.span("wire.query") as root:
            with tracer.span("parse"):
                pass
            with tracer.span("execute") as ex:
                ex.annotate(batches=4)
            for shard in (0, 1):
                with tracer.span("xnf.scatter.shard", shard=shard):
                    pass
            with tracer.span("xnf.fixpoint.round"):
                pass
        profile = build_profile(
            root, queue_wait_s=0.001, retry_wait_s=0.002, lock_conflicts=3
        )
        assert profile["op"] == "wire.query"
        assert profile["trace_id"] == root.trace_id
        assert set(profile["stages"]) == {"parse", "execute"}
        assert profile["queue_wait_ms"] == 1.0
        assert profile["retry_wait_ms"] == 2.0
        assert profile["lock_conflicts"] == 3
        assert profile["execute_batches"] == 4
        assert profile["fixpoint_rounds"] == 1
        assert set(profile["scatter"]["shards"]) == {0, 1}
        assert profile["scatter"]["skew"] >= 1.0

    def test_error_surfaces_in_profile(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("wire.query"):
                raise RuntimeError("boom")
        profile = build_profile(tracer.last_trace)
        assert profile["error"] == "RuntimeError"

    def test_render_profile_is_human_readable(self):
        tracer = Tracer()
        with tracer.span("wire.query") as root:
            with tracer.span("execute"):
                pass
            with tracer.span("xnf.scatter.shard", shard=1):
                pass
        text = render_profile(build_profile(root, queue_wait_s=0.0))
        assert "wire.query" in text
        assert "execute" in text
        assert "shard 1" in text
        assert render_profile(None).startswith("no profile")

    def test_render_survives_json_round_trip(self):
        # PROFILE crosses the wire as JSON: shard keys become strings
        tracer = Tracer()
        with tracer.span("wire.xnf") as root:
            with tracer.span("xnf.scatter.shard", shard=2):
                pass
        profile = json.loads(json.dumps(build_profile(root)))
        assert "shard 2" in render_profile(profile)


class TestMainThreadNaming:
    def test_worker_prefix_detection_uses_thread_name(self):
        tracer = Tracer()
        done = threading.Event()

        def work():
            with tracer.span("stray"):
                pass
            done.set()

        # a plain (non-pool) thread is not treated as a pool worker
        thread = threading.Thread(target=work, name="my-own-thread")
        thread.start()
        thread.join()
        assert done.is_set()
        assert tracer.orphans == 0
