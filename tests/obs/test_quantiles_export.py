"""Latency quantiles (satellite b) and the JSONL trace exporter."""

import io
import json

import pytest

from repro.obs import Histogram, JsonlTraceExporter, q_error
from repro.relational.engine import Database


class TestHistogramQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram()
        assert h.quantile(0.5) is None
        snap = h.snapshot()
        assert snap["p50"] is None and snap["p99"] is None

    def test_single_observation_collapses_to_value(self):
        h = Histogram()
        h.observe(0.0042)
        for q in (0.5, 0.95, 0.99):
            assert h.quantile(q) == pytest.approx(0.0042)

    def test_quantiles_ordered_and_within_range(self):
        h = Histogram()
        values = [0.0002 * (i + 1) for i in range(200)]  # 0.2ms .. 40ms
        for v in values:
            h.observe(v)
        p50, p95, p99 = h.quantile(0.5), h.quantile(0.95), h.quantile(0.99)
        assert min(values) <= p50 <= p95 <= p99 <= max(values)
        # log-bucket interpolation is coarse; just require sane ballpark
        assert 0.01 <= p50 <= 0.03
        assert p99 >= 0.03

    def test_overflow_bucket_clamped_to_max(self):
        h = Histogram()
        h.observe(0.001)
        for _ in range(99):
            h.observe(50.0)  # beyond the last bound
        p99 = h.quantile(0.99)
        assert 10.0 <= p99 <= 50.0  # interpolated inside overflow, <= max
        assert h.quantile(1.0) == pytest.approx(50.0)

    def test_snapshot_carries_quantiles(self):
        h = Histogram()
        for i in range(50):
            h.observe(0.001 * (i + 1))
        snap = h.snapshot()
        assert snap["p50"] <= snap["p95"] <= snap["p99"]

    def test_statement_latency_quantiles_in_metrics_snapshot(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER)")
        for i in range(10):
            db.execute(f"INSERT INTO t VALUES ({i})")
        snap = db.metrics_snapshot()
        latency = snap["statements"]["latency"]
        assert latency["count"] >= 11
        assert latency["p50"] is not None
        assert latency["p50"] <= latency["p95"] <= latency["p99"]


class TestQError:
    def test_exact_estimate_is_one(self):
        assert q_error(10, 10) == 1.0

    def test_symmetric(self):
        assert q_error(10, 100) == q_error(100, 10) == 10.0

    def test_floors_at_one(self):
        assert q_error(0.0, 0.0) == 1.0
        assert q_error(0.5, 2.0) == 2.0


class TestJsonlExporter:
    def test_export_to_stream_one_line_per_root(self):
        stream = io.StringIO()
        db = Database()
        db.tracer.exporter = JsonlTraceExporter(stream)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("SELECT * FROM t")
        db.tracer.exporter.flush()  # exports are buffered (batch_size=16)
        lines = [ln for ln in stream.getvalue().splitlines() if ln]
        assert len(lines) == 3
        roots = [json.loads(line) for line in lines]
        assert all(root["name"] == "statement" for root in roots)
        select = roots[-1]
        child_names = [child["name"] for child in select["children"]]
        assert "sql.select" in child_names
        assert db.tracer.exporter.exported == 3
        assert db.tracer.export_failures == 0

    def test_export_to_file_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        db = Database()
        with JsonlTraceExporter(str(path)) as exporter:
            db.tracer.exporter = exporter
            db.execute("CREATE TABLE t (a INTEGER)")
        db.tracer.exporter = None
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "statement"

    def test_exporter_failure_never_breaks_statements(self):
        class Broken:
            def export(self, span):
                raise OSError("disk full")

        db = Database()
        db.tracer.exporter = Broken()
        db.execute("CREATE TABLE t (a INTEGER)")
        result = db.execute("SELECT 1")
        assert result.rows == [(1,)]
        assert db.tracer.export_failures == 2
