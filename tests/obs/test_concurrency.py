"""Satellite (c): the metrics registry, slow-query log and statement
stats stay bounded and consistent under concurrent hammering."""

import threading

from repro.obs import MetricsRegistry, SlowQueryLog, StatementStatsRegistry

THREADS = 8
ITERATIONS = 400


def _hammer(fn):
    errors = []

    def body(worker):
        try:
            for i in range(ITERATIONS):
                fn(worker, i)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=body, args=(w,)) for w in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestMetricsRegistryConcurrency:
    def test_counters_sum_exactly(self):
        registry = MetricsRegistry()
        _hammer(lambda w, i: registry.inc("shared.counter"))
        assert registry.counter("shared.counter").value == THREADS * ITERATIONS
        assert registry.dropped == 0

    def test_capacity_bound_holds_under_pressure(self):
        registry = MetricsRegistry(max_metrics=64)
        _hammer(lambda w, i: registry.inc(f"worker{w}.c{i}"))
        assert len(registry) <= 64
        # everything over the cap landed on detached metrics and was counted
        assert registry.dropped == THREADS * ITERATIONS - 64

    def test_histograms_record_every_observation(self):
        registry = MetricsRegistry()
        _hammer(lambda w, i: registry.observe("lat", 0.001 * (i + 1)))
        snap = registry.snapshot()
        assert snap["lat"]["count"] == THREADS * ITERATIONS
        assert snap["lat"]["p50"] is not None

    def test_snapshot_while_writing_is_safe(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                registry.snapshot()

        t = threading.Thread(target=reader)
        t.start()
        try:
            _hammer(lambda w, i: registry.inc("c"))
        finally:
            stop.set()
            t.join()
        assert registry.counter("c").value == THREADS * ITERATIONS


class TestSlowLogConcurrency:
    def test_ring_buffer_bounded_with_eviction_count(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=32)
        _hammer(lambda w, i: log.maybe_record(f"SELECT {w}-{i}", 0.5))
        assert len(log) == 32
        assert log.evicted == THREADS * ITERATIONS - 32


class TestStatementStatsConcurrency:
    def test_bounded_with_lru_eviction(self):
        registry = StatementStatsRegistry(capacity=50)
        _hammer(lambda w, i: registry.record(f"q{i % 200}", 0.001, rows=1))
        assert len(registry) <= 50
        assert registry.evicted > 0
        total_calls = sum(s.calls for s in registry.entries())
        assert total_calls <= THREADS * ITERATIONS

    def test_single_fingerprint_counts_exactly(self):
        registry = StatementStatsRegistry()
        _hammer(
            lambda w, i: registry.record(
                "hot", 0.002, rows=3, cache_hit=(i % 2 == 0)
            )
        )
        stat = registry.get("hot")
        assert stat.calls == THREADS * ITERATIONS
        assert stat.rows == 3 * THREADS * ITERATIONS
        assert stat.plan_cache_hits == THREADS * (ITERATIONS // 2)
        assert stat.latency.count == stat.calls
