"""EXPLAIN ANALYZE: rendered row counts must equal actual cardinalities
(PR 3 satellite d, part 2)."""

import re

import pytest

from repro.relational.engine import Database

OP_LINE = re.compile(r"^\s*(.+?)\s+\((rows=[^)]*)\)\s*$")


def op_stats_lines(text):
    """Parse ``Op  (rows=…, loops=…, time=…)`` lines into (op, attrs) pairs."""
    out = []
    for line in text.splitlines():
        match = OP_LINE.match(line)
        if not match:
            continue
        attrs = {}
        for part in match.group(2).split(","):
            key, _, value = part.strip().partition("=")
            attrs[key] = value
        out.append((match.group(1), attrs))
    return out


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE DEPT (dno INTEGER PRIMARY KEY, dname VARCHAR)"
    )
    database.execute(
        "CREATE TABLE EMP (eno INTEGER PRIMARY KEY, name VARCHAR, "
        "dno INTEGER, salary INTEGER)"
    )
    for dno in range(1, 4):
        database.execute(f"INSERT INTO DEPT VALUES ({dno}, 'd{dno}')")
    for eno in range(1, 13):
        database.execute(
            f"INSERT INTO EMP VALUES ({eno}, 'e{eno}', {eno % 3 + 1}, "
            f"{1000 * eno})"
        )
    database.execute("ANALYZE")
    return database


class TestRowCountsMatchActuals:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM EMP",
            "SELECT * FROM EMP WHERE salary > 6000",
            "SELECT e.name, d.dname FROM EMP e, DEPT d WHERE e.dno = d.dno",
            "SELECT dno, COUNT(*) FROM EMP GROUP BY dno",
            "SELECT * FROM EMP ORDER BY salary DESC",
            "SELECT DISTINCT dno FROM EMP",
        ],
    )
    def test_root_rows_equal_result_cardinality(self, db, sql):
        actual = len(db.execute(sql).rows)
        text = db.explain_analyze(sql)
        ops = op_stats_lines(text)
        assert ops, f"no instrumented operators in:\n{text}"
        root_op, root_attrs = ops[0]
        assert int(root_attrs["rows"]) == actual
        assert f"actual rows: {actual}" in text

    def test_statement_form_matches_helper(self, db):
        sql = "SELECT * FROM EMP WHERE dno = 2"
        via_stmt = db.execute(f"EXPLAIN ANALYZE {sql}")
        text = "\n".join(row[0] for row in via_stmt.rows)
        actual = len(db.execute(sql).rows)
        assert f"actual rows: {actual}" in text
        assert "stages:" in text
        assert "plan cache:" in text

    def test_rows_in_consistent_with_children(self, db):
        """A join's rows_in is the sum of what its inputs produced."""
        text = db.explain_analyze(
            "SELECT e.name, d.dname FROM EMP e, DEPT d WHERE e.dno = d.dno"
        )
        ops = op_stats_lines(text)
        joins = [a for op, a in ops if "Join" in op]
        assert joins, f"no join operator in:\n{text}"
        leaf_rows = sum(
            int(a["rows"]) for op, a in ops if "Scan" in op
        )
        assert int(joins[0]["rows_in"]) == leaf_rows

    def test_stage_timings_cover_the_pipeline(self, db):
        text = db.explain_analyze("SELECT * FROM EMP")
        stage_line = next(
            line for line in text.splitlines() if line.startswith("stages:")
        )
        for stage in ("parse", "build_qgm", "rewrite", "optimize", "execute"):
            assert f"{stage}=" in stage_line

    def test_analyze_does_not_pollute_the_plan_cache(self, db):
        db.plan_cache.clear()
        before = db.plan_cache.stats()["entries"]
        db.explain_analyze("SELECT * FROM EMP WHERE dno = 1")
        db.execute("EXPLAIN ANALYZE SELECT * FROM EMP WHERE dno = 1")
        assert db.plan_cache.stats()["entries"] == before
        # and a subsequent normal execution still works and caches
        db.execute("SELECT * FROM EMP WHERE dno = 1")
        db.execute("SELECT * FROM EMP WHERE dno = 1")
        assert db.plan_cache.stats()["hits"] >= 1
