"""End-to-end distributed tracing: one trace id follows one statement from
the client through the wire server into the engine and every shard worker.

The hammer scenarios here are the PR's acceptance tests: sharded
scatter/gather and partitioned-delta workers parent their spans under the
statement span (zero orphans), concurrent wire sessions keep their traces
apart, and the client- and server-side JSONL exports join on trace_id.
"""

import io
import json
import threading

import pytest

from repro.client.client import WireClient
from repro.client.repl import Repl
from repro.obs.export import JsonlTraceExporter
from repro.server.server import ServerThread
from repro.workloads import oo1
from repro.workloads.company import figure1_database
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.semantic_rewrite import XNFCompiler
from repro.xnf.views import XNFViewCatalog, resolve


def _jsonl(stream: io.StringIO):
    return [json.loads(line) for line in stream.getvalue().splitlines() if line]


#: restricted Xpart triggers the candidate-scatter path (same shape as the
#: sharded-fixpoint equivalence suite); the unrestricted PARTS_CO derives
#: Xpart through the partitioned-delta fixpoint instead.
RESTRICTED_CO = """
OUT OF
 Xlib AS DESIGNLIB,
 Xpart AS (SELECT * FROM PART WHERE x < 30000 AND y < 60000),
 contains AS (RELATE Xlib, Xpart WHERE Xlib.lid = Xpart.lib),
 connects AS (RELATE Xpart source, Xpart target
              WITH ATTRIBUTES c.ctype AS ctype, c.clength AS clength
              USING CONN c
              WHERE source.pid = c.cfrom AND target.pid = c.cto)
TAKE *
"""


class TestShardedSpanParenting:
    """In-process: every shard worker's span must land inside the
    extraction's own trace tree, never as an orphaned root."""

    @pytest.fixture(scope="class")
    def sharded_db(self):
        db = oo1.build_parts_database(300, seed=11, shards=4)
        compiler = XNFCompiler(db, scatter=True)
        for text in (oo1.PARTS_CO, RESTRICTED_CO):
            compiler.instantiate(resolve(parse_xnf(text), XNFViewCatalog()))
        return db

    def _instantiate_roots(self, db):
        return [r for r in db.tracer.recent if r.name == "xnf.instantiate"]

    def test_delta_workers_parent_under_the_statement(self, sharded_db):
        root = self._instantiate_roots(sharded_db)[0]  # PARTS_CO
        delta_spans = root.find("xnf.delta.shard")
        assert {s.attrs["shard"] for s in delta_spans} == {0, 1, 2, 3}
        assert all(s.trace_id == root.trace_id for s in delta_spans)
        # the pool genuinely ran on other threads, yet nothing orphaned
        assert all(s.thread_id != root.thread_id for s in delta_spans)
        assert sharded_db.tracer.orphans == 0

    def test_scatter_workers_parent_under_the_statement(self, sharded_db):
        root = self._instantiate_roots(sharded_db)[1]  # RESTRICTED_CO
        shard_spans = root.find("xnf.scatter.shard")
        assert shard_spans, "restricted candidate did not scatter"
        shards = {s.attrs["shard"] for s in shard_spans}
        assert shards <= {0, 1, 2, 3}
        assert all(s.trace_id == root.trace_id for s in shard_spans)
        assert all(s.thread_id != root.thread_id for s in shard_spans)
        assert sharded_db.tracer.orphans == 0

    def test_per_shard_durations_queryable_via_sys_trace_spans(self, sharded_db):
        db = sharded_db
        rows = db.execute(
            "SELECT shard, SUM(duration_ms) FROM SYS_TRACE_SPANS "
            "WHERE name = 'xnf.delta.shard' GROUP BY shard"
        ).rows
        shards = {row[0] for row in rows}
        assert {0, 1, 2, 3} <= shards
        assert all(row[1] >= 0.0 for row in rows)

    def test_shard_spans_carry_thread_column(self, sharded_db):
        rows = sharded_db.execute(
            "SELECT thread, trace_id FROM SYS_TRACE_SPANS "
            "WHERE shard IS NOT NULL"
        ).rows
        assert rows
        assert all(row[0] is not None and row[1] > 0 for row in rows)


class TestWireTraceStitching:
    @pytest.fixture
    def server_db(self):
        return figure1_database(mvcc=True)

    @pytest.fixture
    def wire_server(self, server_db):
        with ServerThread(server_db, max_connections=16) as server:
            yield server

    def test_client_and_server_jsonl_join_on_trace_id(
        self, server_db, wire_server
    ):
        client_log = io.StringIO()
        server_log = io.StringIO()
        server_db.tracer.exporter = JsonlTraceExporter(server_log, batch_size=1)
        try:
            with WireClient(port=wire_server.port, tracing=True) as client:
                client.tracer.exporter = JsonlTraceExporter(
                    client_log, batch_size=1
                )
                client.execute("SELECT dname FROM DEPT ORDER BY dname")
                client.execute("SELECT COUNT(*) FROM EMP")
        finally:
            server_db.tracer.exporter = None
        client_records = [
            r for r in _jsonl(client_log) if r["name"] == "client.query"
        ]
        server_records = {
            r["trace_id"]: r
            for r in _jsonl(server_log)
            if r["name"] == "wire.query"
        }
        assert len(client_records) == 2
        assert len({r["trace_id"] for r in client_records}) == 2
        for record in client_records:
            mate = server_records[record["trace_id"]]  # joinable on trace_id
            assert mate["parent_span_id"] == record["span_id"]
            # the server-side tree contains the real engine work
            child_names = [c["name"] for c in mate.get("children", [])]
            assert "statement" in child_names

    def test_profile_op_reports_stage_breakdown(self, wire_server):
        with WireClient(port=wire_server.port, tracing=True) as client:
            assert client.profile() is None  # nothing ran yet
            client.execute("SELECT ename FROM EMP")
            profile = client.profile()
        assert profile["op"] == "wire.query"
        assert profile["trace_id"] > 0
        assert "execute" in profile["stages"]
        assert profile["queue_wait_ms"] >= 0.0
        assert profile["total_ms"] > 0.0

    def test_untraced_client_still_profiles_under_fresh_trace(
        self, wire_server
    ):
        # no trace field in the frames: the server starts its own trace
        with WireClient(port=wire_server.port) as client:
            client.execute("SELECT 1")
            profile = client.profile()
        assert profile["op"] == "wire.query"
        assert profile["trace_id"] > 0

    def test_repl_profile_command(self, wire_server):
        out = io.StringIO()
        with WireClient(port=wire_server.port) as client:
            repl = Repl(client, out=out)
            assert repl.handle("\\profile")  # before any statement
            assert repl.handle("SELECT dname FROM DEPT")
            assert repl.handle("\\profile")
        text = out.getvalue()
        assert "no profile yet" in text
        assert "wire.query" in text
        assert "execute" in text

    def test_take_over_sharded_server_reaches_every_shard(self):
        db = oo1.build_parts_database(300, seed=11, shards=4)
        with ServerThread(db, max_connections=8) as server:
            with WireClient(port=server.port, tracing=True) as client:
                co = client.take(oo1.PARTS_CO)
                co.close()
                client_trace_ids = {
                    span.trace_id for span in client.tracer.recent
                }
        roots = [
            root for root in db.tracer.recent if root.name == "wire.xnf"
        ]
        assert roots, "server recorded no wire.xnf root"
        root = roots[0]
        # one trace id: client -> server -> engine -> every shard worker
        assert root.trace_id in client_trace_ids
        shard_spans = root.find("xnf.delta.shard")
        assert {s.attrs["shard"] for s in shard_spans} == {0, 1, 2, 3}
        assert all(s.trace_id == root.trace_id for s in shard_spans)
        assert db.tracer.orphans == 0


class TestConcurrentWireSessionsHammer:
    def test_zero_orphans_and_distinct_traces_under_concurrency(self):
        db = figure1_database(mvcc=True)
        server_log = io.StringIO()
        db.tracer.exporter = JsonlTraceExporter(server_log, batch_size=1)
        statements_per_client = 5
        n_clients = 4
        errors = []

        def drive(idx):
            try:
                with WireClient(port=server.port, tracing=True) as client:
                    for n in range(statements_per_client):
                        client.execute(
                            f"SELECT ename FROM EMP WHERE edno >= {n % 3}"
                        )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        with ServerThread(db, max_connections=16) as server:
            threads = [
                threading.Thread(target=drive, args=(i,))
                for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        db.tracer.exporter.flush()
        db.tracer.exporter = None
        assert errors == []
        assert db.tracer.orphans == 0
        assert db.metrics.counter("trace.orphan_spans").value == 0
        wire_records = [
            r for r in _jsonl(server_log) if r["name"] == "wire.query"
        ]
        trace_ids = [r["trace_id"] for r in wire_records]
        assert len(wire_records) == n_clients * statements_per_client
        assert len(set(trace_ids)) == len(trace_ids)  # never shared or reused
        # every adopted trace remembers its client-side parent span
        assert all(r.get("parent_span_id") for r in wire_records)

    def test_session_ids_stamped_into_statement_stats(self):
        db = figure1_database(mvcc=True)
        with ServerThread(db, max_connections=8) as server:
            with WireClient(port=server.port, tracing=True) as client:
                client.execute("SELECT loc FROM DEPT WHERE dno = 1")
                rows = client.execute(
                    "SELECT fingerprint, last_session_id, last_trace_id "
                    "FROM SYS_STAT_STATEMENTS "
                    "WHERE last_session_id IS NOT NULL"
                ).rows()
        assert rows, "no statement carried a session id"
        session_ids = {row[1] for row in rows}
        assert client.session_id in session_ids
        assert any(row[2] is not None and row[2] > 0 for row in rows)
