"""Materialized CO views (snapshots) — the footnote-1 extension."""

import pytest

from repro.errors import XNFError
from repro.workloads import company
from repro.xnf.api import XNFSession


@pytest.fixture
def session(fig4_session):
    return fig4_session


class TestMaterialize:
    def test_snapshot_tables_created(self, session, fig4_db):
        handle = session.materialize_view("ALL-DEPS")
        assert set(handle.node_tables) == {"Xdept", "Xemp", "Xproj"}
        assert set(handle.edge_tables) == {"employment", "ownership"}
        for table in handle.node_tables.values():
            assert fig4_db.catalog.has_table(table)
        assert handle.tuple_count == 10  # 2 + 4 + 4
        assert handle.connection_count == 8

    def test_load_snapshot_equals_live_view(self, session):
        live = session.query("OUT OF EXT-ALL-DEPS-ORG TAKE *")
        session.materialize_view("EXT-ALL-DEPS-ORG", "SNAP1")
        snap = session.load_snapshot("SNAP1")
        for node in live.nodes():
            assert sorted(
                tuple(t.values()) for t in live.node(node)
            ) == sorted(tuple(t.values()) for t in snap.node(node))
        for edge in live.edges():
            live_pairs = sorted(
                (tuple(c.parent.values()), tuple(c.child.values()))
                for c in live.connections(edge)
            )
            snap_pairs = sorted(
                (tuple(c.parent.values()), tuple(c.child.values()))
                for c in snap.connections(edge)
            )
            assert live_pairs == snap_pairs

    def test_attributes_survive_materialisation(self, session):
        session.materialize_view("ALL-DEPS-ORG", "SNAP2")
        snap = session.load_snapshot("SNAP2")
        attrs = sorted(
            (c.parent["pname"], c.child["ename"], c["percentage"])
            for c in snap.connections("membership")
        )
        assert attrs == [("p2", "e3", 50.0), ("p2", "e4", 25.0), ("p4", "e4", 100.0)]

    def test_surrogate_key_hidden(self, session):
        session.materialize_view("ALL-DEPS", "SNAP3")
        snap = session.load_snapshot("SNAP3")
        dept = snap.node("Xdept")[0]
        assert "xnf_rid" not in [c.lower() for c in dept.as_dict()]
        with pytest.raises(XNFError):
            dept["xnf_rid"]

    def test_snapshot_is_a_snapshot(self, session, fig4_db):
        """Base-table changes after materialisation are not visible."""
        session.materialize_view("ALL-DEPS", "SNAP4")
        fig4_db.execute("INSERT INTO EMP VALUES (99, 'late', 1.0, 1, 'staff')")
        snap = session.load_snapshot("SNAP4")
        assert snap.find("Xemp", ename="late") is None

    def test_refresh_picks_up_changes(self, session, fig4_db):
        session.materialize_view("ALL-DEPS", "SNAP5")
        fig4_db.execute("INSERT INTO EMP VALUES (99, 'late', 1.0, 1, 'staff')")
        session.refresh_snapshot("SNAP5")
        snap = session.load_snapshot("SNAP5")
        assert snap.find("Xemp", ename="late") is not None

    def test_navigation_on_snapshot(self, session):
        session.materialize_view("EXT-ALL-DEPS-ORG", "SNAP6")
        snap = session.load_snapshot("SNAP6")
        dny = snap.find("Xdept", dname="dNY")
        projects = snap.path(dny, "employment->projmanagement")
        assert sorted(t["pname"] for t in projects) == ["p2", "p3"]

    def test_snapshot_loading_avoids_fixpoint(self, session):
        """Loading a recursive view's snapshot needs no recursion: the
        surrogate link tables already encode the closed instance."""
        session.materialize_view("EXT-ALL-DEPS-ORG", "SNAP7")
        live_iters = session.last_stats.iterations
        session.load_snapshot("SNAP7")
        snap_iters = session.last_stats.iterations
        assert live_iters > snap_iters or snap_iters <= 2

    def test_drop_snapshot(self, session, fig4_db):
        handle = session.materialize_view("ALL-DEPS", "SNAP8")
        session.drop_snapshot("SNAP8")
        for table in handle.node_tables.values():
            assert not fig4_db.catalog.has_table(table)
        with pytest.raises(XNFError):
            session.load_snapshot("SNAP8")

    def test_duplicate_snapshot_rejected(self, session):
        session.materialize_view("ALL-DEPS", "SNAP9")
        with pytest.raises(XNFError):
            session.materialize_view("ALL-DEPS", "SNAP9")

    def test_unknown_view_rejected(self, session):
        with pytest.raises(XNFError):
            session.materialize_view("NOPE")

    def test_snapshot_listing(self, session):
        session.materialize_view("ALL-DEPS", "SNAPA")
        session.materialize_view("ALL-DEPS-ORG", "SNAPB")
        assert session.snapshots() == ["SNAPA", "SNAPB"]

    def test_null_safe_connections(self, fig4_db):
        """Connections between tuples whose *other* columns are NULL
        survive the round trip (surrogate keys, not value joins)."""
        fig4_db.execute("UPDATE EMP SET descr = NULL WHERE eno = 1")
        fresh = XNFSession(fig4_db)
        company.create_paper_views(fresh)
        fresh.materialize_view("ALL-DEPS", "SNAPN")
        snap = fresh.load_snapshot("SNAPN")
        e1 = snap.find("Xemp", ename="e1")
        assert e1["descr"] is None
        assert [d["dname"] for d in e1.related("employment")] == ["dNY"]

    def test_snapshot_manipulation_writes_to_snapshot_tables(
        self, session, fig4_db
    ):
        session.materialize_view("ALL-DEPS", "SNAPM")
        snap = session.load_snapshot("SNAPM")
        e1 = snap.find("Xemp", ename="e1")
        snap.update(e1, sal=777.0)
        # the snapshot table changed, the original base table did not
        assert fig4_db.execute(
            "SELECT sal FROM SNAPM_XEMP WHERE ename = 'e1'"
        ).scalar() == 777.0
        assert fig4_db.execute(
            "SELECT sal FROM EMP WHERE ename = 'e1'"
        ).scalar() == 100.0
