"""The CO cache (pointer structures, stream loading) and cursors."""

import pytest

from repro.errors import CursorError, XNFError
from repro.workloads import company
from repro.xnf.api import XNFSession
from repro.xnf.semantic_rewrite import XNFCompiler
from repro.xnf.stream import ConnectionItem, SchemaItem, TupleItem, heterogeneous_stream
from repro.xnf.cache import COCache
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.views import XNFViewCatalog, resolve


@pytest.fixture
def fig1_co(company_db):
    return XNFSession(company_db).query(company.FIGURE1_CO)


class TestStream:
    def test_schema_items_first(self, company_db):
        schema = resolve(parse_xnf(company.FIGURE1_CO), XNFViewCatalog())
        instance = XNFCompiler(company_db).instantiate(schema)
        items = list(heterogeneous_stream(instance))
        headers = [i for i in items if isinstance(i, SchemaItem)]
        assert items[: len(headers)] == headers
        assert {h.component for h in headers if h.kind == "node"} == set(
            schema.nodes
        )

    def test_parents_stream_before_children(self, company_db):
        schema = resolve(parse_xnf(company.FIGURE1_CO), XNFViewCatalog())
        instance = XNFCompiler(company_db).instantiate(schema)
        seen_nodes = []
        for item in heterogeneous_stream(instance):
            if isinstance(item, TupleItem) and item.component not in seen_nodes:
                seen_nodes.append(item.component)
        assert seen_nodes.index("Xdept") < seen_nodes.index("Xemp")
        assert seen_nodes.index("Xemp") < seen_nodes.index("Xskill")

    def test_connections_follow_their_endpoint_tuples(self, company_db):
        schema = resolve(parse_xnf(company.FIGURE1_CO), XNFViewCatalog())
        instance = XNFCompiler(company_db).instantiate(schema)
        emitted = set()
        for item in heterogeneous_stream(instance):
            if isinstance(item, TupleItem):
                emitted.add((item.component, item.row))
            elif isinstance(item, ConnectionItem):
                edge = schema.edges[item.component]
                assert (edge.parent, item.parent_row) in emitted
                assert (edge.child, item.child_row) in emitted

    def test_stream_rebuilds_identical_cache(self, company_db):
        schema = resolve(parse_xnf(company.FIGURE1_CO), XNFViewCatalog())
        instance = XNFCompiler(company_db).instantiate(schema)
        cache_a = COCache.load(instance)
        cache_b = COCache.load(instance)
        for node in cache_a.node_names():
            assert [t.values() for t in cache_a.node(node)] == [
                t.values() for t in cache_b.node(node)
            ]


class TestCacheAccess:
    def test_column_access_by_name(self, fig1_co):
        d1 = fig1_co.find("Xdept", dname="d1")
        assert d1["dno"] == 1
        assert d1["loc"] == "NY"
        assert d1.get("nothere", "default") == "default"

    def test_case_insensitive_columns(self, fig1_co):
        d1 = fig1_co.find("Xdept", dname="d1")
        assert d1["DNO"] == 1

    def test_unknown_column_raises(self, fig1_co):
        d1 = fig1_co.find("Xdept", dname="d1")
        with pytest.raises(XNFError):
            d1["missing"]

    def test_as_dict(self, fig1_co):
        d1 = fig1_co.find("Xdept", dname="d1")
        assert d1.as_dict()["dname"] == "d1"

    def test_find_all(self, fig1_co):
        ny = fig1_co.find_all("Xdept", loc="NY")
        assert sorted(t["dname"] for t in ny) == ["d1", "d3"]

    def test_unknown_node_raises(self, fig1_co):
        with pytest.raises(XNFError):
            fig1_co.node("Nope")

    def test_navigation_counter(self, fig1_co):
        before = fig1_co.cache.navigations
        d1 = fig1_co.find("Xdept", dname="d1")
        d1.related("employment")
        assert fig1_co.cache.navigations == before + 1

    def test_related_rejects_wrong_edge(self, fig1_co):
        s3 = fig1_co.find("Xskill", sname="s3")
        with pytest.raises(XNFError):
            s3.related("employment")

    def test_connections_listing(self, fig1_co):
        e2 = fig1_co.find("Xemp", ename="e2")
        conns = e2.connections("empproperty")
        assert len(conns) == 1
        assert conns[0].child["sname"] == "s3"

    def test_summary(self, fig1_co):
        text = fig1_co.summary()
        assert "Xdept: 3 tuples" in text
        assert "employment: 5 connections" in text


class TestIndependentCursor:
    def test_iteration(self, fig1_co):
        names = [t["dname"] for t in fig1_co.cursor("Xdept")]
        assert names == ["d1", "d2", "d3"]

    def test_fetch_protocol(self, fig1_co):
        cursor = fig1_co.cursor("Xdept")
        assert cursor.fetch()["dname"] == "d1"
        assert cursor.current["dname"] == "d1"
        assert cursor.fetch()["dname"] == "d2"
        cursor.rewind()
        assert cursor.fetch()["dname"] == "d1"

    def test_exhaustion_returns_none(self, fig1_co):
        cursor = fig1_co.cursor("Xdept")
        for _ in range(3):
            assert cursor.fetch() is not None
        assert cursor.fetch() is None
        assert cursor.fetch() is None

    def test_closed_cursor_raises(self, fig1_co):
        cursor = fig1_co.cursor("Xdept")
        cursor.close()
        with pytest.raises(CursorError):
            cursor.fetch()

    def test_context_manager(self, fig1_co):
        with fig1_co.cache.cursor("Xdept") as cursor:
            assert cursor.fetch() is not None
        with pytest.raises(CursorError):
            cursor.fetch()

    def test_unknown_node(self, fig1_co):
        with pytest.raises(CursorError):
            fig1_co.cursor("Nope")

    def test_skips_dead_tuples(self, fig1_co):
        d2 = fig1_co.find("Xdept", dname="d2")
        fig1_co.cache.remove_tuple(d2)
        names = [t["dname"] for t in fig1_co.cursor("Xdept")]
        assert names == ["d1", "d3"]


class TestDependentCursor:
    def test_follows_parent_position(self, fig1_co):
        parent = fig1_co.cursor("Xdept")
        parent.fetch()  # d1
        child = fig1_co.dependent_cursor(parent, "employment")
        assert sorted(t["ename"] for t in child) == ["e1", "e2"]
        parent.fetch()  # d2
        child.refresh()
        assert sorted(t["ename"] for t in child) == ["e4", "e5", "e6"]

    def test_multi_step_path(self, fig1_co):
        parent = fig1_co.cursor("Xdept")
        parent.fetch()  # d1
        skills = fig1_co.dependent_cursor(parent, "employment->empproperty")
        assert sorted(t["sname"] for t in skills) == ["s1", "s3"]

    def test_qualified_path_step(self, fig1_co):
        parent = fig1_co.cursor("Xdept")
        parent.fetch()  # d1
        rich = fig1_co.dependent_cursor(
            parent, "employment->(Xemp e WHERE e.sal > 150)"
        )
        assert [t["ename"] for t in rich] == ["e2"]

    def test_unpositioned_parent_raises(self, fig1_co):
        parent = fig1_co.cursor("Xdept")
        parent.rewind()
        with pytest.raises(CursorError):
            fig1_co.dependent_cursor(parent, "employment")

    def test_paper_example_aDept_anEmpOfDept(self, fig4_session):
        """Section 3.7's aDept / anEmpOfDept scenario."""
        co = fig4_session.query("OUT OF ALL-DEPS-ORG TAKE *")
        a_dept = co.cursor("Xdept")
        dept = a_dept.fetch()
        an_emp_of_dept = co.dependent_cursor(a_dept, "employment")
        emps = [e["ename"] for e in an_emp_of_dept]
        expected = [e["ename"] for e in dept.related("employment")]
        assert emps == expected
