"""Property-based check of the core invariant: reachability.

Random small composite objects are generated over random base tables; the
engine-driven instantiation (semi-naive generated SQL) must agree exactly
with a pure-Python reference BFS over the same data — for every random
graph shape, including cycles, sharing, and empty roots, and for both
ablation modes.
"""

from hypothesis import given, settings, strategies as st

from repro.relational.engine import Database
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.semantic_rewrite import instantiate
from repro.xnf.views import XNFViewCatalog, resolve


@st.composite
def co_cases(draw):
    """Random 3-node CO over random link data."""
    # base data: three tables A, B, C with ids and a group column
    def table_rows(prefix):
        n = draw(st.integers(min_value=0, max_value=6))
        return [(i, draw(st.integers(0, 3))) for i in range(1, n + 1)]

    rows = {name: table_rows(name) for name in ("A", "B", "C")}
    # random directed edges among the three nodes (match on the group column)
    possible = [("A", "B"), ("A", "C"), ("B", "C"), ("C", "B"), ("B", "A")]
    count = draw(st.integers(min_value=1, max_value=4))
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=count, max_size=count)
    )
    # dedupe edge pairs; name them r0, r1, ...
    unique = list(dict.fromkeys(edges))
    return rows, unique


def build_db(rows):
    db = Database()
    for name in ("A", "B", "C"):
        db.execute(f"CREATE TABLE {name} (id INTEGER, grp INTEGER)")
        table = db.catalog.get_table(name)
        for row in rows[name]:
            table.insert(row)
    return db


def reference_reachability(rows, edges):
    """Pure-Python model: tuples keyed (table, id, grp); match grp."""
    nodes = {name: set(rows[name]) for name in ("A", "B", "C")}
    children = {name for _, name in edges}
    roots = [name for name in nodes if name not in children]
    reached = {name: set() for name in nodes}
    frontier = []
    for root in roots:
        for row in nodes[root]:
            reached[root].add(row)
            frontier.append((root, row))
    while frontier:
        table, row = frontier.pop()
        for parent, child in edges:
            if parent != table:
                continue
            for candidate in nodes[child]:
                if candidate[1] == row[1] and candidate not in reached[child]:
                    reached[child].add(candidate)
                    frontier.append((child, candidate))
    return reached, roots


@settings(max_examples=40, deadline=None)
@given(case=co_cases())
def test_engine_matches_reference_bfs(case):
    rows, edges = case
    _, roots = reference_reachability(rows, edges)
    if not roots:
        return  # ill-formed CO (no root table): rejected elsewhere
    db = build_db(rows)
    components = [f"X{name} AS {name}" for name in ("A", "B", "C")]
    for idx, (parent, child) in enumerate(edges):
        components.append(
            f"r{idx} AS (RELATE X{parent}, X{child} "
            f"WHERE X{parent}.grp = X{child}.grp)"
        )
    text = "OUT OF " + ", ".join(components) + " TAKE *"
    schema = resolve(parse_xnf(text), XNFViewCatalog())
    expected, _ = reference_reachability(rows, edges)

    for reuse in (True, False):
        for semi in (True, False):
            instance = instantiate(db, schema, reuse_common=reuse, semi_naive=semi)
            for name in ("A", "B", "C"):
                assert set(instance.rows[f"X{name}"]) == expected[name], (
                    text, reuse, semi,
                )


@settings(max_examples=25, deadline=None)
@given(case=co_cases())
def test_connections_link_only_reachable_tuples(case):
    rows, edges = case
    _, roots = reference_reachability(rows, edges)
    if not roots:
        return
    db = build_db(rows)
    components = [f"X{name} AS {name}" for name in ("A", "B", "C")]
    for idx, (parent, child) in enumerate(edges):
        components.append(
            f"r{idx} AS (RELATE X{parent}, X{child} "
            f"WHERE X{parent}.grp = X{child}.grp)"
        )
    text = "OUT OF " + ", ".join(components) + " TAKE *"
    schema = resolve(parse_xnf(text), XNFViewCatalog())
    instance = instantiate(db, schema)
    for idx, (parent, child) in enumerate(edges):
        for parent_row, child_rows, _ in instance.connections[f"r{idx}"]:
            assert parent_row in instance.rows[f"X{parent}"]
            assert child_rows[0] in instance.rows[f"X{child}"]
            assert parent_row[1] == child_rows[0][1]  # join predicate held
