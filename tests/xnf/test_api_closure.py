"""Session API, projection visibility, closure classification."""

import pytest

from repro.errors import XNFError
from repro.workloads import company
from repro.xnf.api import CompositeObject
from repro.xnf.closure import QueryClass, classify, materialize_node


class TestSessionAPI:
    def test_execute_returns_co_for_take(self, company_session):
        result = company_session.execute(company.FIGURE1_CO)
        assert isinstance(result, CompositeObject)

    def test_query_rejects_non_take(self, fig4_session):
        with pytest.raises(XNFError):
            fig4_session.query("OUT OF ALL-DEPS DELETE *")

    def test_create_view_validates(self, company_session):
        with pytest.raises(Exception):
            company_session.create_view(
                "CREATE VIEW BAD AS OUT OF MISSING-VIEW TAKE *"
            )

    def test_create_view_requires_view_statement(self, company_session):
        with pytest.raises(XNFError):
            company_session.create_view("OUT OF Xdept AS DEPT TAKE *")

    def test_drop_view(self, fig4_session):
        fig4_session.execute("DROP VIEW ALL-DEPS")
        with pytest.raises(Exception):
            fig4_session.query("OUT OF ALL-DEPS TAKE *")

    def test_last_stats_populated(self, company_session):
        company_session.query(company.FIGURE1_CO)
        assert company_session.last_stats is not None
        assert company_session.last_stats.queries_issued > 0

    def test_describe(self, company_session):
        text = company_session.describe(company.FIGURE1_CO)
        assert "Xskill" in text and "empproperty" in text

    def test_repr(self, company_session):
        co = company_session.query(company.FIGURE1_CO)
        assert "tuples" in repr(co)


class TestProjectionVisibility:
    def test_hidden_columns_not_readable(self, fig4_session):
        co = fig4_session.query(
            "OUT OF ALL-DEPS TAKE Xdept(dno, dname), Xemp(*), employment"
        )
        dept = co.node("Xdept")[0]
        assert dept["dname"].startswith("d")
        with pytest.raises(XNFError):
            dept["budget"]

    def test_values_respect_projection(self, fig4_session):
        co = fig4_session.query(
            "OUT OF ALL-DEPS TAKE Xdept(dno, dname), Xemp(*), employment"
        )
        dept = co.node("Xdept")[0]
        assert len(dept.values()) == 2

    def test_edges_still_work_on_projected_nodes(self, fig4_session):
        """Edge predicates use the full internal row even when the join
        column is projected away for the application."""
        co = fig4_session.query(
            "OUT OF ALL-DEPS TAKE Xdept(dname), Xemp(ename), employment"
        )
        dept = co.find("Xdept", dname="dNY")
        assert sorted(t["ename"] for t in dept.related("employment")) == [
            "e1", "e2",
        ]

    def test_manipulation_works_despite_projection(self, fig4_session, fig4_db):
        co = fig4_session.query(
            "OUT OF ALL-DEPS TAKE Xdept(dname), Xemp(ename, sal), employment"
        )
        e1 = co.find("Xemp", ename="e1")
        co.update(e1, sal=77.0)
        assert fig4_db.execute("SELECT sal FROM EMP WHERE eno = 1").scalar() == 77.0


class TestClosure:
    def test_classify_type1(self):
        assert classify(
            "OUT OF a AS T, b AS U, r AS (RELATE a, b WHERE a.x = b.y) TAKE *"
        ) == QueryClass.NF_TO_XNF

    def test_classify_type2(self):
        assert classify("OUT OF SOME-VIEW TAKE *") == QueryClass.XNF_TO_XNF

    def test_classify_type4(self):
        assert classify("SELECT * FROM T") == QueryClass.NF_TO_NF

    def test_classify_create_view(self):
        assert classify(
            "CREATE VIEW V AS OUT OF OTHER-VIEW TAKE *"
        ) == QueryClass.XNF_TO_XNF

    def test_materialize_node_respects_projection(self, fig4_session, fig4_db):
        co = fig4_session.query(
            "OUT OF ALL-DEPS TAKE Xdept(*), Xemp(ename, sal), employment"
        )
        name = materialize_node(fig4_db, co.cache, "Xemp")
        result = fig4_db.execute(f"SELECT * FROM {name}")
        assert result.columns == ["ename", "sal"]
        assert len(result.rows) == 4

    def test_materialized_table_named(self, fig4_session, fig4_db):
        co = fig4_session.query("OUT OF ALL-DEPS TAKE *")
        name = co.to_table("Xdept", "DEPT_SNAP")
        assert name == "DEPT_SNAP"
        assert fig4_db.execute("SELECT COUNT(*) FROM DEPT_SNAP").scalar() == 2


class TestSharedDatabase:
    """Fig. 7: SQL applications and XNF applications share the data."""

    def test_sql_sees_xnf_changes(self, fig4_session, fig4_db):
        co = fig4_session.query("OUT OF ALL-DEPS TAKE *")
        e1 = co.find("Xemp", ename="e1")
        co.update(e1, sal=500.0)
        assert fig4_db.execute(
            "SELECT sal FROM EMP WHERE ename = 'e1'"
        ).scalar() == 500.0

    def test_xnf_sees_sql_changes(self, fig4_session, fig4_db):
        fig4_db.execute("INSERT INTO EMP VALUES (50, 'sqln', 1.0, 1, 'staff')")
        co = fig4_session.query("OUT OF ALL-DEPS TAKE *")
        assert co.find("Xemp", ename="sqln") is not None

    def test_traditional_app_needs_no_change(self, fig4_session, fig4_db):
        """Plain SQL keeps working mid-session, untouched by XNF use."""
        fig4_session.query("OUT OF EXT-ALL-DEPS-ORG TAKE *")
        result = fig4_db.execute(
            "SELECT d.dname, COUNT(*) FROM DEPT d, EMP e "
            "WHERE d.dno = e.edno GROUP BY d.dname ORDER BY 1"
        )
        assert result.rows == [("dNY", 2), ("dSF", 2)]
