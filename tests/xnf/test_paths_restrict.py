"""Path expressions and instance-level restrictions (sections 3.3–3.5)."""

import pytest

from repro.errors import PathError
from repro.xnf.api import XNFSession


@pytest.fixture
def ext_co(fig4_session):
    return fig4_session.query("OUT OF EXT-ALL-DEPS-ORG TAKE *")


class TestPathEvaluation:
    def test_single_step(self, ext_co):
        d = ext_co.find("Xdept", dname="dNY")
        emps = ext_co.path(d, "employment")
        assert sorted(t["ename"] for t in emps) == ["e1", "e2"]

    def test_reduced_path(self, ext_co):
        """d->employment->projmanagement: the paper's syntactically reduced
        form, skipping the intermediate node name."""
        d = ext_co.find("Xdept", dname="dNY")
        projects = ext_co.path(d, "employment->projmanagement")
        assert sorted(t["pname"] for t in projects) == ["p2", "p3"]

    def test_full_path_equals_reduced(self, ext_co):
        d = ext_co.find("Xdept", dname="dNY")
        full = ext_co.path(d, "employment->Xemp->projmanagement->Xproj")
        reduced = ext_co.path(d, "employment->projmanagement")
        assert [t["pname"] for t in full] == [t["pname"] for t in reduced]

    def test_node_start_ranges_over_all_tuples(self, ext_co):
        """Xdept->employment->... denotes targets reachable from *any*
        department (section 3.5, second example)."""
        projects = ext_co.path("Xdept", "employment->projmanagement")
        assert sorted(t["pname"] for t in projects) == ["p2", "p3", "p4"]

    def test_backward_traversal(self, ext_co):
        e1 = ext_co.find("Xemp", ename="e1")
        depts = ext_co.path(e1, "employment")
        assert [t["dname"] for t in depts] == ["dNY"]

    def test_qualified_path(self, ext_co):
        d = ext_co.find("Xdept", dname="dNY")
        projects = ext_co.path(
            d, "employment->(Xemp e WHERE e.sal >= 200)->projmanagement"
        )
        assert [t["pname"] for t in projects] == ["p3"]

    def test_qualified_path_referencing_anchor(self, ext_co):
        d = ext_co.find("Xdept", dname="dNY")
        projects = ext_co.path(
            d, "employment->projmanagement->(Xproj p WHERE p.budget > 25)"
        )
        assert [t["pname"] for t in projects] == ["p3"]

    def test_path_deduplicates(self, ext_co):
        p2 = ext_co.find("Xproj", pname="p2")
        # membership back to employees, then their departments: e3 and e4
        # are both in dSF — result must list it once.
        depts = ext_co.path(p2, "membership->employment")
        assert [t["dname"] for t in depts] == ["dSF"]

    def test_unknown_step_raises(self, ext_co):
        d = ext_co.find("Xdept", dname="dNY")
        with pytest.raises(PathError):
            ext_co.path(d, "nosuchedge")

    def test_wrong_partner_raises(self, ext_co):
        d = ext_co.find("Xdept", dname="dNY")
        with pytest.raises(PathError):
            ext_co.path(d, "membership")

    def test_empty_path_result(self, ext_co):
        p1 = ext_co.find("Xproj", pname="p1")
        assert ext_co.path(p1, "membership") == []


class TestCyclicRolePaths:
    @pytest.fixture
    def manages_co(self, db):
        db.execute(
            "CREATE TABLE STAFF (eno INTEGER PRIMARY KEY, ename VARCHAR, "
            "mgrno INTEGER, rank INTEGER)"
        )
        db.execute(
            "INSERT INTO STAFF VALUES (1, 'boss', NULL, 0), "
            "(2, 'mid', 1, 1), (3, 'leaf1', 2, 2), (4, 'leaf2', 2, 2)"
        )
        session = XNFSession(db)
        return session.query(
            """
            OUT OF
              Xtop AS (SELECT * FROM STAFF WHERE mgrno IS NULL),
              Xemp AS STAFF,
              heads AS (RELATE Xtop, Xemp WHERE Xtop.eno = Xemp.eno),
              manages AS (RELATE Xemp manager, Xemp report
                          WHERE manager.eno = report.mgrno)
            TAKE *
            """
        )

    def test_recursive_reachability(self, manages_co):
        assert len(manages_co.node("Xemp")) == 4

    def test_role_selects_direction(self, manages_co):
        mid = manages_co.find("Xemp", ename="mid")
        reports = manages_co.path(mid, "manages[report]")
        assert sorted(t["ename"] for t in reports) == ["leaf1", "leaf2"]
        managers = manages_co.path(mid, "manages[manager]")
        assert [t["ename"] for t in managers] == ["boss"]

    def test_missing_role_is_ambiguous(self, manages_co):
        mid = manages_co.find("Xemp", ename="mid")
        with pytest.raises(PathError):
            manages_co.path(mid, "manages")

    def test_two_level_role_path(self, manages_co):
        boss = manages_co.find("Xemp", ename="boss")
        grand = manages_co.path(boss, "manages[report]->manages[report]")
        assert sorted(t["ename"] for t in grand) == ["leaf1", "leaf2"]


class TestInstanceRestrictions:
    def test_count_path_restriction(self, fig4_session):
        co = fig4_session.query(
            """
            OUT OF EXT-ALL-DEPS-ORG
            WHERE Xdept d SUCH THAT COUNT(d->employment) >= 2
            TAKE *
            """
        )
        assert sorted(t["dname"] for t in co.node("Xdept")) == ["dNY", "dSF"]

    def test_count_path_with_budget(self, fig4_session):
        """Section 3.5's query: at least 2 managed projects AND a budget."""
        co = fig4_session.query(
            """
            OUT OF EXT-ALL-DEPS-ORG
            WHERE Xdept d SUCH THAT
              COUNT(d->employment->projmanagement) >= 2 AND d.budget > 500
            TAKE *
            """
        )
        assert [t["dname"] for t in co.node("Xdept")] == ["dNY"]

    def test_exists_qualified_path(self, fig4_session):
        """Section 3.5's staff/budget query."""
        co = fig4_session.query(
            """
            OUT OF EXT-ALL-DEPS-ORG
            WHERE Xdept d SUCH THAT
              (EXISTS d->employment->(Xemp e WHERE e.descr = 'staff')->
               projmanagement->(Xproj p WHERE p.budget > d.budget / 100))
            TAKE *
            """
        )
        # dSF's only staff employee (e4) manages no project: EXISTS fails.
        assert sorted(t["dname"] for t in co.node("Xdept")) == ["dNY"]

    def test_restriction_drops_unreachable_downstream(self, fig4_session):
        co = fig4_session.query(
            """
            OUT OF ALL-DEPS
            WHERE Xdept d SUCH THAT COUNT(d->employment) >= 99
            TAKE *
            """
        )
        assert co.node("Xdept") == []
        assert co.node("Xemp") == []
        assert co.node("Xproj") == []

    def test_edge_restriction_instance_level(self, fig4_session):
        co = fig4_session.query(
            """
            OUT OF EXT-ALL-DEPS-ORG
            WHERE employment (d, e) SUCH THAT
              COUNT(e->projmanagement) >= 1
            TAKE Xdept(*), employment, Xemp(*)
            """
        )
        # only employees managing projects stay employed-connected
        assert sorted(t["ename"] for t in co.node("Xemp")) == ["e1", "e2", "e3"]

    def test_simultaneous_semantics(self, fig4_session):
        """Restrictions are evaluated against the unrestricted instance:
        dropping dSF must not change what dNY's COUNT sees."""
        co = fig4_session.query(
            """
            OUT OF EXT-ALL-DEPS-ORG
            WHERE Xdept d SUCH THAT
              d.loc = 'NY' AND COUNT(d->employment->projmanagement) >= 2
            TAKE *
            """
        )
        assert [t["dname"] for t in co.node("Xdept")] == ["dNY"]
