"""n-ary relationships (section 2: "in a general setting we allow for
n-ary relationships").

The classic ternary example: SUPPLY relates a project (parent) with a part
and a supplier (two child partners) through a three-way link table, with a
quantity attribute on the relationship.
"""

import pytest

from repro.errors import SchemaGraphError, UpdatabilityError, XNFError
from repro.relational.engine import Database
from repro.xnf.api import XNFSession
from repro.xnf.lang.parser import parse_xnf

TERNARY_CO = """
OUT OF
  Xproj AS (SELECT * FROM PROJECT WHERE active = TRUE),
  Xpart AS PART,
  Xsupp AS SUPPLIER,
  supply AS (RELATE Xproj, Xpart, Xsupp
             WITH ATTRIBUTES s.qty
             USING SUPPLY s
             WHERE Xproj.pjid = s.spj AND Xpart.ptid = s.spt
               AND Xsupp.sid = s.ssu)
TAKE *
"""


@pytest.fixture
def supply_db():
    db = Database()
    db.execute_script(
        """
        CREATE TABLE PROJECT (pjid INTEGER PRIMARY KEY, pjname VARCHAR,
                              active BOOLEAN);
        CREATE TABLE PART (ptid INTEGER PRIMARY KEY, ptname VARCHAR);
        CREATE TABLE SUPPLIER (sid INTEGER PRIMARY KEY, sname VARCHAR);
        CREATE TABLE SUPPLY (spj INTEGER, spt INTEGER, ssu INTEGER,
                             qty INTEGER);
        """
    )
    db.execute(
        "INSERT INTO PROJECT VALUES (1, 'alpha', TRUE), (2, 'beta', TRUE), "
        "(3, 'mothballed', FALSE)"
    )
    db.execute(
        "INSERT INTO PART VALUES (10, 'bolt'), (11, 'nut'), (12, 'gear'), "
        "(13, 'unused-part')"
    )
    db.execute(
        "INSERT INTO SUPPLIER VALUES (100, 'acme'), (101, 'globex'), "
        "(102, 'idle-supplier')"
    )
    db.execute(
        "INSERT INTO SUPPLY VALUES "
        "(1, 10, 100, 500), "   # alpha gets bolts from acme
        "(1, 11, 101, 200), "   # alpha gets nuts from globex
        "(2, 10, 101, 50), "    # beta gets bolts from globex
        "(3, 12, 100, 10)"      # mothballed project: filtered out
    )
    return db


@pytest.fixture
def supply_co(supply_db):
    return XNFSession(supply_db).query(TERNARY_CO)


class TestParsing:
    def test_three_partners_parse(self):
        query = parse_xnf(TERNARY_CO)
        rel = query.components[3]
        assert rel.parent == "Xproj"
        assert rel.child == "Xpart"
        assert rel.extra_partners == [("Xsupp", None)]

    def test_to_sql_roundtrip(self):
        query = parse_xnf(TERNARY_CO)
        again = parse_xnf(query.to_sql())
        assert again.to_sql() == query.to_sql()

    def test_roles_on_extra_partners(self):
        query = parse_xnf(
            "OUT OF a AS T, r AS (RELATE a one, a two, a three "
            "WHERE one.x = two.y AND two.y = three.z) TAKE *"
        )
        rel = query.components[1]
        assert rel.parent_role == "one"
        assert rel.child_role == "two"
        assert rel.extra_partners == [("a", "three")]


class TestSchema:
    def test_children_and_roots(self, supply_co):
        schema = supply_co.schema
        edge = schema.edges["supply"]
        assert not edge.is_binary
        assert edge.child_names() == ["Xpart", "Xsupp"]
        assert schema.roots() == ["Xproj"]

    def test_shared_counts_all_slots(self, supply_co):
        assert supply_co.schema.shared_nodes() == []

    def test_duplicate_partner_needs_roles(self):
        with pytest.raises(SchemaGraphError):
            XNFSession(Database()).execute(
                "OUT OF a AS T, r AS (RELATE a, a, a WHERE a.x = a.y) TAKE *"
            )

    def test_describe_lists_all_targets(self, supply_co):
        text = supply_co.schema.describe()
        assert "Xproj -> Xpart, Xsupp" in text


class TestReachability:
    def test_parts_and_suppliers_of_active_projects(self, supply_co):
        assert sorted(t["ptname"] for t in supply_co.node("Xpart")) == [
            "bolt", "nut",
        ]
        assert sorted(t["sname"] for t in supply_co.node("Xsupp")) == [
            "acme", "globex",
        ]

    def test_inactive_project_chain_excluded(self, supply_co):
        # project 3 is filtered; its gear/acme supply must not make 'gear'
        # reachable (acme is reachable through project 1 instead)
        assert supply_co.find("Xpart", ptname="gear") is None
        assert supply_co.find("Xproj", pjname="mothballed") is None

    def test_unlinked_tuples_excluded(self, supply_co):
        assert supply_co.find("Xpart", ptname="unused-part") is None
        assert supply_co.find("Xsupp", sname="idle-supplier") is None

    def test_connection_count_and_attributes(self, supply_co):
        conns = supply_co.connections("supply")
        assert len(conns) == 3
        triple = sorted(
            (c.parent["pjname"], c.child["ptname"],
             c.extra_children[0]["sname"], c["qty"])
            for c in conns
        )
        assert triple == [
            ("alpha", "bolt", "acme", 500),
            ("alpha", "nut", "globex", 200),
            ("beta", "bolt", "globex", 50),
        ]


class TestNavigation:
    def test_related_from_parent_yields_all_partners(self, supply_co):
        alpha = supply_co.find("Xproj", pjname="alpha")
        partners = alpha.related("supply")
        names = sorted(
            t.get("ptname") or t.get("sname") for t in partners
        )
        assert names == ["acme", "bolt", "globex", "nut"]

    def test_related_from_any_child_yields_parent(self, supply_co):
        acme = supply_co.find("Xsupp", sname="acme")
        assert [t["pjname"] for t in acme.related("supply")] == ["alpha"]
        bolt = supply_co.find("Xpart", ptname="bolt")
        assert sorted(t["pjname"] for t in bolt.related("supply")) == [
            "alpha", "beta",
        ]

    def test_path_with_node_filter(self, supply_co):
        alpha = supply_co.find("Xproj", pjname="alpha")
        suppliers = supply_co.path(alpha, "supply->Xsupp")
        assert sorted(t["sname"] for t in suppliers) == ["acme", "globex"]
        parts = supply_co.path(alpha, "supply->Xpart")
        assert sorted(t["ptname"] for t in parts) == ["bolt", "nut"]

    def test_count_path_restriction(self, supply_db):
        session = XNFSession(supply_db)
        co = session.query(
            TERNARY_CO.replace(
                "TAKE *",
                "WHERE Xproj p SUCH THAT COUNT(p->supply->Xsupp) >= 2 TAKE *",
            )
        )
        assert [t["pjname"] for t in co.node("Xproj")] == ["alpha"]


class TestGuards:
    def test_nary_edges_are_read_only(self, supply_co):
        alpha = supply_co.find("Xproj", pjname="alpha")
        bolt = supply_co.find("Xpart", ptname="bolt")
        with pytest.raises(UpdatabilityError):
            supply_co.connect("supply", alpha, bolt)

    def test_nary_edge_restriction_rejected(self, supply_db):
        session = XNFSession(supply_db)
        with pytest.raises(SchemaGraphError):
            session.query(
                TERNARY_CO.replace(
                    "TAKE *",
                    "WHERE supply (p, x) SUCH THAT x.qty > 1 TAKE *",
                )
            )

    def test_nary_snapshot_rejected(self, supply_db):
        session = XNFSession(supply_db)
        session.views.create("SUPPLYCO", parse_xnf(TERNARY_CO))
        with pytest.raises(XNFError):
            session.materialize_view("SUPPLYCO")

    def test_node_updates_still_work(self, supply_co, supply_db):
        bolt = supply_co.find("Xpart", ptname="bolt")
        supply_co.update(bolt, ptname="BOLT")
        assert supply_db.execute(
            "SELECT ptname FROM PART WHERE ptid = 10"
        ).scalar() == "BOLT"


class TestProjection:
    def test_take_requires_all_partners(self, supply_db):
        session = XNFSession(supply_db)
        co = session.query(
            TERNARY_CO.replace("TAKE *", "TAKE Xproj(*), Xpart(*), supply")
        )
        # Xsupp not taken -> the ternary edge is implicitly discarded
        assert "supply" not in co.edges()
        assert co.nodes() == ["Xproj", "Xpart"]

    def test_take_all_partners_keeps_edge(self, supply_db):
        session = XNFSession(supply_db)
        co = session.query(
            TERNARY_CO.replace(
                "TAKE *", "TAKE Xproj(*), Xpart(*), Xsupp(*), supply"
            )
        )
        assert "supply" in co.edges()
        assert len(co.connections("supply")) == 3
