"""Sharded scatter/gather extraction must be bit-identical to unsharded.

The scatter stage splits the candidate query across per-shard views and the
delta stage partitions fixpoint deltas by the USING table's partition key —
both are pure re-arrangements of the same relational work, so every node's
rows and every edge's connection set must come out exactly equal, on cyclic
graphs, skewed partitions, and when pruning eliminates every shard.
"""

import pytest

from repro.relational.engine import Database
from repro.workloads import oo1
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.semantic_rewrite import XNFCompiler
from repro.xnf.views import XNFViewCatalog, resolve

RESTRICTED_CO = """
OUT OF
 Xlib AS DESIGNLIB,
 Xpart AS (SELECT * FROM PART WHERE x < 30000 AND y < 60000),
 contains AS (RELATE Xlib, Xpart WHERE Xlib.lid = Xpart.lib),
 connects AS (RELATE Xpart source, Xpart target
              WITH ATTRIBUTES c.ctype AS ctype, c.clength AS clength
              USING CONN c
              WHERE source.pid = c.cfrom AND target.pid = c.cto)
TAKE *
"""

IMPOSSIBLE_CO = """
OUT OF
 Xlib AS DESIGNLIB,
 Xpart AS (SELECT * FROM PART WHERE x < -1),
 contains AS (RELATE Xlib, Xpart WHERE Xlib.lid = Xpart.lib)
TAKE *
"""


def _schema(text):
    return resolve(parse_xnf(text), XNFViewCatalog())


def _canonical(instance):
    return (
        {name: sorted(rows, key=repr) for name, rows in instance.rows.items()},
        {
            name: sorted(conns, key=repr)
            for name, conns in instance.connections.items()
        },
    )


def _extract(db, text, scatter=True):
    compiler = XNFCompiler(db, scatter=scatter)
    instance = compiler.instantiate(_schema(text))
    return compiler, instance


class TestShardedFixpointEquivalence:
    """The OO1 connection graph is cyclic (parts connect back into earlier
    parts), so the fixpoint genuinely iterates; 300 parts keeps it fast."""

    @pytest.fixture(scope="class")
    def dbs(self):
        plain = oo1.build_parts_database(300, seed=11)
        sharded = oo1.build_parts_database(300, seed=11, shards=4)
        return plain, sharded

    def test_full_parts_co_identical(self, dbs):
        plain, sharded = dbs
        _, base = _extract(plain, oo1.PARTS_CO)
        _, shard = _extract(sharded, oo1.PARTS_CO)
        assert _canonical(base) == _canonical(shard)
        assert base.total_tuples() == shard.total_tuples() > 0
        assert base.total_connections() == shard.total_connections() > 0

    def test_restricted_co_identical_and_pruned(self, dbs):
        plain, sharded = dbs
        _, base = _extract(plain, RESTRICTED_CO)
        before = sharded.metrics.counter("xnf.scatter.pruned").value
        compiler, shard = _extract(sharded, RESTRICTED_CO)
        assert _canonical(base) == _canonical(shard)
        # x < 30000 on a 4-way range partition of [0, 100000) must prove at
        # least the top two shards empty at candidate time
        assert sharded.metrics.counter("xnf.scatter.pruned").value - before >= 2
        assert compiler.shard_stats["Xpart"]

    def test_scatter_ablation_matches(self, dbs):
        _, sharded = dbs
        _, scattered = _extract(sharded, RESTRICTED_CO, scatter=True)
        _, serial = _extract(sharded, RESTRICTED_CO, scatter=False)
        assert _canonical(scattered) == _canonical(serial)

    def test_all_shards_pruned_yields_empty_instance(self, dbs):
        plain, sharded = dbs
        _, base = _extract(plain, IMPOSSIBLE_CO)
        _, shard = _extract(sharded, IMPOSSIBLE_CO)
        assert _canonical(base) == _canonical(shard)
        assert shard.rows["Xpart"] == []
        # the facade fallback must still produce the node's column header
        assert shard.columns["Xpart"] == base.columns["Xpart"]


class TestSkewedPartitions:
    def test_everything_on_one_shard(self):
        """Degenerate range bounds: every part lands on shard 3."""
        plain = oo1.build_parts_database(150, seed=5)
        skewed = oo1.build_parts_database(150, seed=5)
        skewed.repartition(
            "PART", 4, kind="range", column="x", bounds=[-3, -2, -1]
        )
        skewed.repartition("CONN", 4, kind="hash", column="cfrom")
        table = skewed.catalog.get_table("PART")
        assert table.heap.shards[3].row_count == 150
        _, base = _extract(plain, oo1.PARTS_CO)
        _, shard = _extract(skewed, oo1.PARTS_CO)
        assert _canonical(base) == _canonical(shard)

    def test_shard_stats_expose_skew(self):
        db = oo1.build_parts_database(150, seed=5)
        db.repartition("PART", 4, kind="range", column="x", bounds=[-3, -2, -1])
        compiler, instance = _extract(db, RESTRICTED_CO)
        per_shard = compiler.shard_stats["Xpart"]
        # every part routed to shard 3: the skew is visible as one bucket
        assert set(per_shard) == {3}
        assert per_shard[3] == len(instance.rows["Xpart"]) > 0
        rows = db.execute(
            "SELECT component, cardinality FROM SYS_CO_STATS WHERE kind = 'shard'"
        ).rows
        assert ("Xpart#s3", per_shard[3]) in rows


class TestScatterInsideTransactions:
    def test_extraction_in_snapshot_still_identical(self):
        db = oo1.build_parts_database(120, seed=9, shards=2, mvcc=True)
        _, outside = _extract(db, oo1.PARTS_CO)
        db.execute("BEGIN")
        try:
            _, inside = _extract(db, oo1.PARTS_CO)
        finally:
            db.execute("ROLLBACK")
        assert _canonical(outside) == _canonical(inside)
