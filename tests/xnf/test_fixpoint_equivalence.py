"""Semi-naive vs naive fixpoint equivalence on cyclic schema graphs.

The semi-naive evaluation (section 3.4) is a pure optimization: joining
only the per-round delta must reach exactly the same fixpoint as re-joining
the full reachable set each round — including when the schema graph is
cyclic (a relationship whose parent and child are the same node, or a
cycle through several nodes) and when the *data* contains cycles, which is
where a wrong delta bookkeeping would diverge or loop forever.
"""

import pytest

from repro.relational.engine import Database
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.semantic_rewrite import XNFCompiler
from repro.xnf.views import XNFViewCatalog, resolve


def resolve_text(text):
    return resolve(parse_xnf(text), XNFViewCatalog())


def canonical(instance):
    return (
        {name: sorted(rows, key=repr) for name, rows in instance.rows.items()},
        {
            name: sorted(conns, key=repr)
            for name, conns in instance.connections.items()
        },
    )


def both_modes(db, text):
    schema = resolve_text(text)
    semi = XNFCompiler(db, semi_naive=True)
    naive = XNFCompiler(db, semi_naive=False)
    return (
        semi.instantiate(schema),
        naive.instantiate(schema),
        semi.stats,
        naive.stats,
    )


@pytest.fixture
def graph_db():
    """A directed graph with a self-loop, a 3-cycle, and a diamond."""
    db = Database()
    db.execute("CREATE TABLE NODES (nid INTEGER PRIMARY KEY, tag VARCHAR)")
    db.execute("CREATE TABLE EDGES (src INTEGER, dst INTEGER)")
    for nid in range(1, 9):
        db.execute(f"INSERT INTO NODES VALUES ({nid}, 'n{nid}')")
    edges = [
        (1, 2), (2, 3), (3, 4),        # chain from the root
        (4, 4),                        # self-loop
        (4, 5), (5, 6), (6, 4),        # 3-cycle back to 4
        (2, 7), (3, 7), (7, 8),        # diamond converging on 7
    ]
    for src, dst in edges:
        db.execute(f"INSERT INTO EDGES VALUES ({src}, {dst})")
    db.execute("CREATE INDEX ie ON EDGES (src); ANALYZE")
    return db


CYCLIC_CO = """
OUT OF
  Xroot AS (SELECT * FROM NODES WHERE nid = 1),
  Xnode AS NODES,
  seed AS (RELATE Xroot, Xnode WHERE Xroot.nid = Xnode.nid),
  links AS (RELATE Xnode a, Xnode b
            USING EDGES e
            WHERE a.nid = e.src AND b.nid = e.dst)
TAKE *
"""


class TestCyclicEquivalence:
    def test_same_instance_on_cyclic_graph(self, graph_db):
        semi, naive, _, _ = both_modes(graph_db, CYCLIC_CO)
        assert canonical(semi) == canonical(naive)
        # every node is reachable from 1 through the cycles
        assert len(semi.rows["Xnode"]) == 8

    def test_fixpoint_terminates_despite_cycles(self, graph_db):
        semi, naive, semi_stats, naive_stats = both_modes(graph_db, CYCLIC_CO)
        assert semi_stats.iterations <= 10
        assert naive_stats.iterations <= 10
        assert semi.total_connections() == naive.total_connections()

    def test_unreachable_component_excluded(self, graph_db):
        graph_db.execute("INSERT INTO NODES VALUES (100, 'island')")
        graph_db.execute("INSERT INTO EDGES VALUES (100, 100)")
        semi, naive, _, _ = both_modes(graph_db, CYCLIC_CO)
        assert canonical(semi) == canonical(naive)
        reached = {row[0] for row in semi.rows["Xnode"]}
        assert 100 not in reached

    def test_repeated_instantiations_stay_equivalent(self, graph_db):
        """Re-running both modes re-uses cached plans and pooled scratch
        tables; results must stay identical across repetitions."""
        first = canonical(both_modes(graph_db, CYCLIC_CO)[0])
        for _ in range(3):
            semi, naive, _, _ = both_modes(graph_db, CYCLIC_CO)
            assert canonical(semi) == first
            assert canonical(naive) == first

    def test_semi_naive_issues_no_more_queries(self, graph_db):
        _, _, semi_stats, naive_stats = both_modes(graph_db, CYCLIC_CO)
        assert semi_stats.queries_issued <= naive_stats.queries_issued
