"""XNF language parser."""

import pytest

from repro.errors import ParseError
from repro.relational.sql import ast as sql_ast
from repro.xnf.lang import xast
from repro.xnf.lang.parser import parse_xnf, parse_xnf_statements


class TestComponents:
    def test_node_table_shorthand(self):
        query = parse_xnf("OUT OF Xemp AS EMP TAKE *")
        node = query.components[0]
        assert isinstance(node, xast.NodeDef)
        assert node.table == "EMP" and node.query is None

    def test_node_query(self):
        query = parse_xnf(
            "OUT OF Xdept AS (SELECT * FROM DEPT WHERE loc = 'NY') TAKE *"
        )
        node = query.components[0]
        assert node.query is not None

    def test_view_reference(self):
        query = parse_xnf("OUT OF ALL-DEPS TAKE *")
        assert isinstance(query.components[0], xast.ViewRef)
        assert query.components[0].name == "ALL-DEPS"

    def test_relate_basic(self):
        query = parse_xnf(
            "OUT OF a AS T, b AS U, "
            "r AS (RELATE a, b WHERE a.x = b.y) TAKE *"
        )
        rel = query.components[2]
        assert isinstance(rel, xast.RelationshipDef)
        assert rel.parent == "a" and rel.child == "b"
        assert rel.predicate is not None

    def test_relate_with_attributes_and_using(self):
        query = parse_xnf(
            "OUT OF a AS T, b AS U, r AS (RELATE a, b "
            "WITH ATTRIBUTES ep.pct, ep.x + 1 AS bump "
            "USING EMPPROJ ep WHERE a.i = ep.j AND b.k = ep.l) TAKE *"
        )
        rel = query.components[2]
        assert [name for name, _ in rel.attributes] == ["pct", "bump"]
        assert rel.using[0].table == "EMPPROJ" and rel.using[0].alias == "ep"

    def test_relate_roles_for_cyclic(self):
        query = parse_xnf(
            "OUT OF e AS EMP, manages AS (RELATE e manager, e report "
            "WHERE manager.eno = report.mgrno) TAKE *"
        )
        rel = query.components[1]
        assert rel.parent_role == "manager" and rel.child_role == "report"

    def test_attribute_without_name_rejected(self):
        with pytest.raises(ParseError):
            parse_xnf(
                "OUT OF a AS T, b AS U, r AS (RELATE a, b "
                "WITH ATTRIBUTES x + 1 USING L l WHERE a.i = l.j) TAKE *"
            )


class TestRestrictions:
    def test_node_restriction_with_alias(self):
        query = parse_xnf("OUT OF V WHERE Xemp e SUCH THAT e.sal < 2 TAKE *")
        restriction = query.restrictions[0]
        assert isinstance(restriction, xast.NodeRestriction)
        assert restriction.alias == "e"

    def test_node_restriction_bare(self):
        query = parse_xnf("OUT OF V WHERE Xdept SUCH THAT loc = 'NY' TAKE *")
        assert query.restrictions[0].alias is None

    def test_edge_restriction(self):
        query = parse_xnf(
            "OUT OF V WHERE employment (d, e) SUCH THAT e.sal < d.b / 100 TAKE *"
        )
        restriction = query.restrictions[0]
        assert isinstance(restriction, xast.EdgeRestriction)
        assert (restriction.parent_alias, restriction.child_alias) == ("d", "e")

    def test_multiple_restrictions_split_on_and(self):
        query = parse_xnf(
            "OUT OF V WHERE Xdept SUCH THAT loc = 'NY' AND budget > 5 "
            "AND Xemp e SUCH THAT e.sal > 1 TAKE *"
        )
        assert len(query.restrictions) == 2
        # the first restriction keeps its own AND conjunct
        assert isinstance(query.restrictions[0].predicate, sql_ast.BinaryOp)

    def test_or_stays_within_one_restriction(self):
        query = parse_xnf(
            "OUT OF V WHERE Xdept SUCH THAT loc = 'NY' OR loc = 'SF' TAKE *"
        )
        assert len(query.restrictions) == 1
        assert query.restrictions[0].predicate.op == "OR"


class TestPathExpressions:
    def parse_pred(self, text):
        return parse_xnf(f"OUT OF V WHERE Xdept d SUCH THAT {text} TAKE *").restrictions[0].predicate

    def test_count_path(self):
        pred = self.parse_pred("COUNT(d->employment->projmanagement) > 2")
        count = pred.left
        assert isinstance(count.args[0], xast.PathExpr)
        assert count.args[0].start == "d"
        assert [s.name for s in count.args[0].steps] == [
            "employment", "projmanagement",
        ]

    def test_exists_path(self):
        pred = self.parse_pred("EXISTS d->employment->Xemp")
        assert pred.name == "EXISTS"
        assert isinstance(pred.args[0], xast.PathExpr)

    def test_qualified_step(self):
        pred = self.parse_pred(
            "EXISTS d->employment->(Xemp e WHERE e.sal < 2)->projmanagement"
        )
        steps = pred.args[0].steps
        assert steps[1].alias == "e"
        assert steps[1].predicate is not None

    def test_role_qualified_step(self):
        pred = self.parse_pred("COUNT(d->manages[report]) > 0")
        assert pred.left.args[0].steps[0].role == "report"

    def test_node_name_path_start(self):
        pred = self.parse_pred("COUNT(Xdept->employment) > 0")
        assert pred.left.args[0].start == "Xdept"

    def test_path_to_sql_roundtrip(self):
        pred = self.parse_pred(
            "EXISTS d->employment->(Xemp e WHERE e.a = 1)->projmanagement"
        )
        text = pred.to_sql()
        assert "->" in text and "WHERE" in text


class TestTakeClause:
    def test_take_star(self):
        query = parse_xnf("OUT OF V TAKE *")
        assert isinstance(query.take, xast.TakeAll)

    def test_take_items(self):
        query = parse_xnf("OUT OF V TAKE Xdept(*), Xemp(eno, ename), employment")
        items = query.take
        assert items[0].columns == ["*"]
        assert items[1].columns == ["eno", "ename"]
        assert items[2].columns is None

    def test_missing_take_rejected(self):
        with pytest.raises(ParseError):
            parse_xnf("OUT OF V")


class TestManipulationStatements:
    def test_co_delete(self):
        query = parse_xnf("OUT OF V WHERE Xemp e SUCH THAT e.sal < 2 DELETE *")
        assert query.action == "DELETE"

    def test_co_update(self):
        query = parse_xnf("OUT OF V UPDATE Xemp SET sal = sal * 2, bonus = 1")
        assert query.action == "UPDATE"
        assert query.update_node == "Xemp"
        assert len(query.update_assignments) == 2


class TestViewStatements:
    def test_create_view(self):
        stmt = parse_xnf("CREATE VIEW MY-VIEW AS OUT OF V TAKE *")
        assert isinstance(stmt, xast.CreateXNFView)
        assert stmt.name == "MY-VIEW"

    def test_drop_view(self):
        stmt = parse_xnf("DROP VIEW IF EXISTS MY-VIEW")
        assert isinstance(stmt, xast.DropXNFView)
        assert stmt.if_exists

    def test_statement_batch(self):
        statements = parse_xnf_statements(
            "CREATE VIEW A AS OUT OF V TAKE *; OUT OF A TAKE *"
        )
        assert len(statements) == 2

    def test_to_sql_reparses(self):
        source = """
        CREATE VIEW W AS
        OUT OF Xd AS DEPT, Xe AS EMP,
          emp AS (RELATE Xd, Xe WHERE Xd.dno = Xe.edno)
        TAKE Xd(*), Xe(*), emp
        """
        stmt = parse_xnf(source)
        again = parse_xnf(stmt.to_sql())
        assert again.to_sql() == stmt.to_sql()
