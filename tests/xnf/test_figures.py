"""Reproduction of the paper's figures 1–6 (experiments F1–F6).

Each test encodes the exact instance-level outcome the paper describes, on
the exact schema/queries of the running example.
"""

import pytest

from repro.workloads import company
from repro.xnf.api import XNFSession
from repro.xnf.closure import QueryClass


class TestFigure1:
    """'Company Organizational Unit': reachability and instance sharing."""

    @pytest.fixture
    def co(self, company_db):
        session = XNFSession(company_db)
        return session.query(company.FIGURE1_CO)

    def test_unemployed_e3_excluded(self, co):
        assert sorted(t["ename"] for t in co.node("Xemp")) == [
            "e1", "e2", "e4", "e5", "e6",
        ]

    def test_unattached_s2_excluded(self, co):
        assert sorted(t["sname"] for t in co.node("Xskill")) == [
            "s1", "s3", "s4", "s5",
        ]

    def test_root_d3_included_without_connections(self, co):
        d3 = co.find("Xdept", dname="d3")
        assert d3 is not None
        assert d3.related("employment") == []

    def test_connection_counts(self, co):
        assert len(co.connections("employment")) == 5
        assert len(co.connections("ownership")) == 2
        assert len(co.connections("empproperty")) == 4
        assert len(co.connections("projproperty")) == 2

    def test_instance_sharing_on_s3(self, co):
        """Skill s3 is shared by employees e2 and e4 and by project p1."""
        s3 = co.find("Xskill", sname="s3")
        assert sorted(t["ename"] for t in s3.related("empproperty")) == ["e2", "e4"]
        assert [t["pname"] for t in s3.related("projproperty")] == ["p1"]

    def test_schema_sharing_detected(self, co):
        assert co.schema.shared_nodes() == ["Xskill"]
        assert not co.schema.is_recursive()
        assert co.schema.roots() == ["Xdept"]

    def test_relationships_traverse_both_directions(self, co):
        e2 = co.find("Xemp", ename="e2")
        d1 = e2.related("employment")[0]
        assert d1["dname"] == "d1"
        assert e2 in d1.related("employment")


class TestFigure2:
    """Same EMPLOYMENT abstraction over two database representations."""

    def test_implicit_fk_representation(self, company_db):
        session = XNFSession(company_db)
        co = session.query(
            """
            OUT OF Xdept AS DEPT, Xemp AS EMP,
              employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno)
            TAKE *
            """
        )
        d1 = co.find("Xdept", dname="d1")
        assert sorted(t["ename"] for t in d1.related("employment")) == ["e1", "e2"]

    def test_explicit_table_representation(self):
        db = company.cdb2_database()
        session = XNFSession(db)
        co = session.query(
            """
            OUT OF Xdept AS DEPT, Xemp AS EMP,
              employment AS (RELATE Xdept, Xemp USING DEPTEMP de
                             WHERE Xdept.dno = de.dedno AND Xemp.eno = de.deeno)
            TAKE *
            """
        )
        d1 = co.find("Xdept", dname="d1")
        assert sorted(t["ename"] for t in d1.related("employment")) == ["e1", "e2"]
        # e3 is in no DEPTEMP row: unreachable, exactly like CDB1
        assert co.find("Xemp", ename="e3") is None

    def test_both_representations_agree(self, company_db):
        cdb1 = XNFSession(company_db).query(
            """
            OUT OF Xdept AS DEPT, Xemp AS EMP,
              employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno)
            TAKE *
            """
        )
        cdb2 = XNFSession(company.cdb2_database()).query(
            """
            OUT OF Xdept AS DEPT, Xemp AS EMP,
              employment AS (RELATE Xdept, Xemp USING DEPTEMP de
                             WHERE Xdept.dno = de.dedno AND Xemp.eno = de.deeno)
            TAKE *
            """
        )
        pairs1 = sorted(
            (c.parent["dname"], c.child["ename"])
            for c in cdb1.connections("employment")
        )
        pairs2 = sorted(
            (c.parent["dname"], c.child["ename"])
            for c in cdb2.connections("employment")
        )
        assert pairs1 == pairs2


class TestFigure3:
    """ALL-DEPS-ORG: views over views, relationship attributes, new
    reachability through the added 'membership' relationship."""

    def test_membership_attribute(self, fig4_session):
        co = fig4_session.query("OUT OF ALL-DEPS-ORG TAKE *")
        conns = co.connections("membership")
        attrs = sorted(
            (c.parent["pname"], c.child["ename"], c["percentage"]) for c in conns
        )
        assert attrs == [("p2", "e3", 50.0), ("p2", "e4", 25.0), ("p4", "e4", 100.0)]

    def test_view_layering(self, fig4_session):
        base = fig4_session.query("OUT OF ALL-DEPS TAKE *")
        layered = fig4_session.query("OUT OF ALL-DEPS-ORG TAKE *")
        assert set(base.edges()) == {"employment", "ownership"}
        assert set(layered.edges()) == {"employment", "ownership", "membership"}


class TestFigure4:
    """EXT-ALL-DEPS-ORG is structurally recursive."""

    def test_cycle_detected(self, fig4_session):
        co = fig4_session.query("OUT OF EXT-ALL-DEPS-ORG TAKE *")
        assert co.schema.is_recursive()

    def test_projmanagement_edges(self, fig4_session):
        co = fig4_session.query("OUT OF EXT-ALL-DEPS-ORG TAKE *")
        pairs = sorted(
            (c.parent["ename"], c.child["pname"])
            for c in co.connections("projmanagement")
        )
        assert pairs == [("e1", "p2"), ("e2", "p3"), ("e3", "p4")]

    def test_fixpoint_converges(self, fig4_session):
        fig4_session.query("OUT OF EXT-ALL-DEPS-ORG TAKE *")
        assert fig4_session.last_stats.iterations >= 2


class TestFigure5:
    """Restriction + projection on the recursive CO, Fig. 5's exact result."""

    @pytest.fixture
    def restricted(self, fig4_session):
        return fig4_session.query(
            """
            OUT OF EXT-ALL-DEPS-ORG
            WHERE Xdept SUCH THAT loc = 'NY'
            TAKE Xdept(*), employment, Xemp(*), projmanagement,
                 membership, Xproj(*)
            """
        )

    def test_only_ny_department(self, restricted):
        assert [t["dname"] for t in restricted.node("Xdept")] == ["dNY"]

    def test_transitively_reached_employees(self, restricted):
        # e1, e2 directly; e3, e4 via membership on reachable projects
        assert sorted(t["ename"] for t in restricted.node("Xemp")) == [
            "e1", "e2", "e3", "e4",
        ]

    def test_p1_unreachable_after_projection(self, restricted):
        """'Project p1 is not in the result since it is not reachable
        anymore' — ownership was projected away."""
        assert sorted(t["pname"] for t in restricted.node("Xproj")) == [
            "p2", "p3", "p4",
        ]

    def test_ownership_edge_gone(self, restricted):
        assert "ownership" not in restricted.edges()

    def test_p1_reachable_when_ownership_kept(self, fig4_session):
        full = fig4_session.query(
            "OUT OF EXT-ALL-DEPS-ORG WHERE Xdept SUCH THAT loc = 'SF' TAKE *"
        )
        assert "p1" in [t["pname"] for t in full.node("Xproj")]


class TestFigure6:
    """The four query classes, all executed."""

    def test_type1_nf_to_xnf(self, fig4_session):
        query = """
        OUT OF Xdept AS DEPT, Xemp AS EMP,
          employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno)
        TAKE *
        """
        assert fig4_session.classify(query) == QueryClass.NF_TO_XNF
        co = fig4_session.query(query)
        assert co.cache.total_tuples() > 0

    def test_type2_xnf_to_xnf(self, fig4_session):
        query = "OUT OF ALL-DEPS WHERE Xemp e SUCH THAT e.sal > 150 TAKE *"
        assert fig4_session.classify(query) == QueryClass.XNF_TO_XNF
        co = fig4_session.query(query)
        assert sorted(t["ename"] for t in co.node("Xemp")) == ["e2", "e3", "e4"]

    def test_type3_xnf_to_nf(self, fig4_session, fig4_db):
        co = fig4_session.query("OUT OF ALL-DEPS TAKE *")
        co.to_table("Xemp", "CO_EMPS")
        result = fig4_db.execute(
            "SELECT COUNT(*) FROM CO_EMPS WHERE sal > 150"
        )
        assert result.scalar() == 3

    def test_type4_nf_to_nf(self, fig4_session, fig4_db):
        sql = "SELECT COUNT(*) FROM EMP"
        assert fig4_session.classify(sql) == QueryClass.NF_TO_NF
        assert fig4_db.execute(sql).scalar() == 4

    def test_closure_roundtrip(self, fig4_session, fig4_db):
        """XNF result -> table -> XNF again (closure under operations)."""
        co = fig4_session.query("OUT OF ALL-DEPS TAKE *")
        co.to_table("Xemp", "EMP_SNAPSHOT")
        again = fig4_session.query(
            """
            OUT OF Xdept AS DEPT,
              Xsnap AS EMP_SNAPSHOT,
              employment AS (RELATE Xdept, Xsnap WHERE Xdept.dno = Xsnap.edno)
            TAKE *
            """
        )
        assert len(again.node("Xsnap")) == 4
