"""The XNF semantic rewrite: generated-SQL instantiation and its ablations."""

import pytest

from repro.workloads import company
from repro.xnf.api import XNFSession
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.semantic_rewrite import XNFCompiler, instantiate
from repro.xnf.views import XNFViewCatalog, resolve


def resolve_text(text, views=None):
    return resolve(parse_xnf(text), views or XNFViewCatalog())


def canonical(instance):
    """Order-independent image of an instance for equivalence checks."""
    return (
        {name: sorted(rows) for name, rows in instance.rows.items()},
        {name: sorted(conns) for name, conns in instance.connections.items()},
    )


class TestInstantiation:
    def test_candidate_restrictions_pushed(self, company_db):
        schema = resolve_text(
            "OUT OF Xdept AS DEPT WHERE Xdept SUCH THAT loc = 'NY' TAKE *"
        )
        instance = XNFCompiler(company_db).instantiate(schema)
        assert len(instance.rows["Xdept"]) == 2

    def test_duplicate_candidates_become_sets(self, db):
        db.execute("CREATE TABLE T (a INTEGER)")
        db.execute("INSERT INTO T VALUES (1), (1), (2)")
        schema = resolve_text("OUT OF n AS (SELECT a FROM T) TAKE *")
        instance = XNFCompiler(db).instantiate(schema)
        assert sorted(instance.rows["n"]) == [(1,), (2,)]

    def test_temp_tables_cleaned_up(self, company_db):
        before = set(company_db.catalog.tables)
        schema = resolve_text(company.FIGURE1_CO)
        XNFCompiler(company_db).instantiate(schema)
        assert set(company_db.catalog.tables) == before

    def test_temp_tables_cleaned_up_on_error(self, company_db):
        schema = resolve_text(
            "OUT OF Xdept AS DEPT, Xbad AS (SELECT missing FROM EMP), "
            "r AS (RELATE Xdept, Xbad WHERE Xdept.dno = Xbad.missing) TAKE *"
        )
        before = set(company_db.catalog.tables)
        with pytest.raises(Exception):
            XNFCompiler(company_db).instantiate(schema)
        assert set(company_db.catalog.tables) == before

    def test_stats_recorded(self, company_db):
        schema = resolve_text(company.FIGURE1_CO)
        compiler = XNFCompiler(company_db)
        compiler.instantiate(schema)
        stats = compiler.stats
        assert stats.queries_issued > 0
        assert stats.iterations >= 1
        # all Fig.-1 nodes are bare tables: only the root's seeding query
        assert stats.candidate_queries_run == 1
        assert stats.temp_tables_created > 0

    def test_empty_root_gives_empty_instance(self, company_db):
        schema = resolve_text(
            "OUT OF Xdept AS (SELECT * FROM DEPT WHERE dno > 999), Xemp AS EMP, "
            "r AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno) TAKE *"
        )
        instance = XNFCompiler(company_db).instantiate(schema)
        assert instance.rows["Xdept"] == []
        assert instance.rows["Xemp"] == []
        assert instance.connections["r"] == []


class TestCommonSubexpressionAblation:
    """reuse_common=False recomputes node queries at every use (E3)."""

    def test_results_identical(self, company_db):
        schema = resolve_text(company.FIGURE1_CO)
        with_reuse = instantiate(company_db, schema, reuse_common=True)
        without_reuse = instantiate(company_db, schema, reuse_common=False)
        assert canonical(with_reuse) == canonical(without_reuse)

    # Xskill is schema-shared (child of two edges) and non-trivial, so its
    # defining query is *used* twice: once per incoming relationship.
    RESTRICTED_CO = """
    OUT OF
      Xdept AS (SELECT * FROM DEPT WHERE budget > 0),
      Xemp AS (SELECT * FROM EMP WHERE sal > 0),
      Xproj AS (SELECT * FROM PROJ WHERE budget > 0),
      Xskill AS (SELECT * FROM SKILLS WHERE sno > 0),
      employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno),
      ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno),
      empproperty AS (RELATE Xemp, Xskill USING EMPSKILL es
                      WHERE Xemp.eno = es.eseno AND Xskill.sno = es.essno),
      projproperty AS (RELATE Xproj, Xskill USING PROJSKILL ps
                       WHERE Xproj.pno = ps.pspno AND Xskill.sno = ps.pssno)
    TAKE *
    """

    def test_ablation_recomputes_candidates(self, company_db):
        """Non-trivial node queries run once with reuse, per-use without."""
        reuse = XNFCompiler(company_db, reuse_common=True)
        reuse.instantiate(resolve_text(self.RESTRICTED_CO))
        no_reuse = XNFCompiler(company_db, reuse_common=False)
        no_reuse.instantiate(resolve_text(self.RESTRICTED_CO))
        assert (
            no_reuse.stats.candidate_queries_run
            > reuse.stats.candidate_queries_run
        )

    def test_trivial_nodes_referenced_directly(self, company_db):
        """Bare base-table nodes never get a candidate query or temp table:
        generated SQL references the base table (and its indexes)."""
        schema = resolve_text(company.FIGURE1_CO)
        compiler = XNFCompiler(company_db, reuse_common=True)
        compiler.instantiate(schema)
        # only the root's seeding query runs
        assert compiler.stats.candidate_queries_run == 1


class TestSemiNaiveAblation:
    """semi_naive=False re-joins the full reachable set per round (E6)."""

    def test_results_identical_on_recursive_co(self, fig4_db):
        session = XNFSession(fig4_db)
        company.create_paper_views(session)
        stored = session.views.get("EXT-ALL-DEPS-ORG")
        schema_a = resolve(stored, session.views)
        schema_b = resolve(stored, session.views)
        semi = instantiate(fig4_db, schema_a, semi_naive=True)
        naive = instantiate(fig4_db, schema_b, semi_naive=False)
        assert canonical(semi) == canonical(naive)

    def test_deep_chain(self, db):
        """A reports-to chain of depth 12 needs 12 fixpoint rounds."""
        db.execute(
            "CREATE TABLE NODES (nid INTEGER PRIMARY KEY, parent INTEGER)"
        )
        rows = ", ".join(
            f"({i}, {i - 1 if i > 1 else 'NULL'})" for i in range(1, 13)
        )
        db.execute(f"INSERT INTO NODES VALUES {rows}")
        schema = resolve_text(
            """
            OUT OF
              Xroot AS (SELECT * FROM NODES WHERE parent IS NULL),
              Xnode AS NODES,
              seed AS (RELATE Xroot, Xnode WHERE Xroot.nid = Xnode.nid),
              child_of AS (RELATE Xnode up, Xnode down
                           WHERE up.nid = down.parent)
            TAKE *
            """
        )
        compiler = XNFCompiler(db)
        instance = compiler.instantiate(schema)
        assert len(instance.rows["Xnode"]) == 12
        assert compiler.stats.iterations >= 12

    def test_semi_naive_issues_fewer_or_equal_rows_work(self, db):
        db.execute("CREATE TABLE NODES (nid INTEGER PRIMARY KEY, parent INTEGER)")
        rows = ", ".join(
            f"({i}, {i - 1 if i > 1 else 'NULL'})" for i in range(1, 16)
        )
        db.execute(f"INSERT INTO NODES VALUES {rows}")
        text = """
            OUT OF
              Xroot AS (SELECT * FROM NODES WHERE parent IS NULL),
              Xnode AS NODES,
              seed AS (RELATE Xroot, Xnode WHERE Xroot.nid = Xnode.nid),
              child_of AS (RELATE Xnode up, Xnode down
                           WHERE up.nid = down.parent)
            TAKE *
        """
        semi = XNFCompiler(db, semi_naive=True)
        semi.instantiate(resolve_text(text))
        naive = XNFCompiler(db, semi_naive=False)
        naive.instantiate(resolve_text(text))
        # same number of rounds, but naive re-materialises ever-growing
        # delta tables; measured as total queries it is never cheaper.
        assert semi.stats.queries_issued <= naive.stats.queries_issued


class TestGeneratedQueriesGoThroughEngine:
    def test_statements_counted(self, company_db):
        before = company_db.statements_executed
        schema = resolve_text(company.FIGURE1_CO)
        XNFCompiler(company_db).instantiate(schema)
        assert company_db.statements_executed > before

    def test_paper_classification_of_reuse(self, company_db):
        """'when we generate the tuples of a parent node, we output them,
        and also use them again to find the tuples of the associated
        children' — with reuse on, each non-trivial node's query runs at
        most once, no matter how many relationships touch the node."""
        schema = resolve_text(
            TestCommonSubexpressionAblation.RESTRICTED_CO
        )
        compiler = XNFCompiler(company_db, reuse_common=True)
        compiler.instantiate(schema)
        assert compiler.stats.candidate_queries_run <= len(schema.nodes)
