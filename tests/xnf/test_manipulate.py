"""Manipulation: udi-operations, connect/disconnect, propagation rules."""

import pytest

from repro.errors import UpdatabilityError
from repro.workloads import company
from repro.xnf.api import XNFSession
from repro.xnf.manipulate import analyze_edge, analyze_node
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.views import XNFViewCatalog, resolve


@pytest.fixture
def co(fig4_session):
    return fig4_session.query("OUT OF EXT-ALL-DEPS-ORG TAKE *")


class TestNodeUpdatabilityAnalysis:
    def analyze(self, db, text, node="n"):
        schema = resolve(parse_xnf(text), XNFViewCatalog())
        return analyze_node(schema.nodes[node], db)

    def test_table_shorthand_updatable(self, fig4_db):
        info = self.analyze(fig4_db, "OUT OF n AS EMP TAKE *")
        assert info.updatable
        assert info.base_table == "EMP"
        assert info.column_map["sal"] == "sal"

    def test_simple_select_updatable(self, fig4_db):
        info = self.analyze(
            fig4_db, "OUT OF n AS (SELECT eno, sal AS pay FROM EMP) TAKE *"
        )
        assert info.updatable
        assert info.column_map == {"eno": "eno", "pay": "sal"}

    def test_select_star_with_where_updatable(self, fig4_db):
        info = self.analyze(
            fig4_db, "OUT OF n AS (SELECT * FROM EMP WHERE sal > 1) TAKE *"
        )
        assert info.updatable

    def test_distinct_read_only(self, fig4_db):
        info = self.analyze(
            fig4_db, "OUT OF n AS (SELECT DISTINCT sal FROM EMP) TAKE *"
        )
        assert not info.updatable and "DISTINCT" in info.reason

    def test_aggregate_read_only(self, fig4_db):
        info = self.analyze(
            fig4_db,
            "OUT OF n AS (SELECT edno, COUNT(*) AS c FROM EMP GROUP BY edno) TAKE *",
        )
        assert not info.updatable

    def test_join_read_only(self, fig4_db):
        info = self.analyze(
            fig4_db,
            "OUT OF n AS (SELECT e.eno FROM EMP e, DEPT d "
            "WHERE e.edno = d.dno) TAKE *",
        )
        assert not info.updatable

    def test_computed_column_read_only(self, fig4_db):
        info = self.analyze(
            fig4_db, "OUT OF n AS (SELECT sal * 2 AS dbl FROM EMP) TAKE *"
        )
        assert not info.updatable


class TestEdgeUpdatabilityAnalysis:
    def analyze(self, db, text, edge="r"):
        schema = resolve(parse_xnf(text), XNFViewCatalog())
        return analyze_edge(schema.edges[edge], db)

    def test_fk_edge(self, fig4_db):
        info = self.analyze(
            fig4_db,
            "OUT OF d AS DEPT, e AS EMP, "
            "r AS (RELATE d, e WHERE d.dno = e.edno) TAKE *",
        )
        assert info.kind == "fk"
        assert info.parent_col == "dno" and info.child_col == "edno"

    def test_fk_edge_reversed_sides(self, fig4_db):
        info = self.analyze(
            fig4_db,
            "OUT OF d AS DEPT, e AS EMP, "
            "r AS (RELATE d, e WHERE e.edno = d.dno) TAKE *",
        )
        assert info.kind == "fk"
        assert info.child_col == "edno"

    def test_mn_edge(self, fig4_db):
        info = self.analyze(
            fig4_db,
            "OUT OF p AS PROJ, e AS EMP, r AS (RELATE p, e "
            "WITH ATTRIBUTES ep.percentage USING EMPPROJ ep "
            "WHERE p.pno = ep.eppno AND e.eno = ep.epeno) TAKE *",
        )
        assert info.kind == "mn"
        assert info.link_table == "EMPPROJ"
        assert info.parent_link_col == "eppno"
        assert info.child_link_col == "epeno"
        assert info.attr_cols == {"percentage": "percentage"}

    def test_derived_relationship_read_only(self, fig4_db):
        info = self.analyze(
            fig4_db,
            "OUT OF d AS DEPT, e AS EMP, "
            "r AS (RELATE d, e WHERE d.budget > e.sal) TAKE *",
        )
        assert info.kind == "readonly"


class TestUpdate:
    def test_update_propagates(self, co, fig4_db):
        e1 = co.find("Xemp", ename="e1")
        co.update(e1, sal=999.0)
        assert e1["sal"] == 999.0
        assert fig4_db.execute("SELECT sal FROM EMP WHERE eno = 1").scalar() == 999.0

    def test_relationship_column_blocked(self, co):
        """Paper: 'update of the dno column of Xemp is done only through
        the relationship connect/disconnect'."""
        e1 = co.find("Xemp", ename="e1")
        with pytest.raises(UpdatabilityError):
            co.update(e1, edno=2)

    def test_unknown_column_blocked(self, co):
        e1 = co.find("Xemp", ename="e1")
        with pytest.raises(UpdatabilityError):
            co.update(e1, nothere=1)

    def test_cache_index_follows_update(self, co):
        e1 = co.find("Xemp", ename="e1")
        co.update(e1, ename="e1-renamed")
        assert co.find("Xemp", ename="e1-renamed") is e1
        assert co.find("Xemp", ename="e1") is None


class TestDelete:
    def test_delete_removes_base_row(self, co, fig4_db):
        e4 = co.find("Xemp", ename="e4")
        co.delete(e4)
        assert fig4_db.execute("SELECT COUNT(*) FROM EMP WHERE eno = 4").scalar() == 0
        assert co.find("Xemp", ename="e4") is None

    def test_delete_disconnects_attached_mn_links(self, co, fig4_db):
        """e4 has two membership link rows; deleting e4 removes them."""
        e4 = co.find("Xemp", ename="e4")
        co.delete(e4)
        assert fig4_db.execute(
            "SELECT COUNT(*) FROM EMPPROJ WHERE epeno = 4"
        ).scalar() == 0

    def test_delete_parent_nullifies_children_fks(self, co, fig4_db):
        """Paper: delete of an Xdept tuple disconnects all its employment
        instances — i.e. nullifies the employees' FK."""
        dny = co.find("Xdept", dname="dNY")
        co.delete(dny)
        assert fig4_db.execute(
            "SELECT COUNT(*) FROM EMP WHERE edno = 1"
        ).scalar() == 0
        assert fig4_db.execute(
            "SELECT COUNT(*) FROM EMP WHERE edno IS NULL"
        ).scalar() == 2

    def test_delete_does_not_cascade_to_tuples(self, co):
        """'delete of a tuple can only result in delete of the tuple itself
        and the relationship instances directly attached to it'."""
        dny = co.find("Xdept", dname="dNY")
        co.delete(dny)
        assert co.find("Xemp", ename="e1") is not None  # tuple survives


class TestInsert:
    def test_insert_propagates(self, co, fig4_db):
        new_emp = co.insert("Xemp", eno=99, ename="new", sal=1.0, descr="staff")
        assert fig4_db.execute("SELECT ename FROM EMP WHERE eno = 99").scalar() == "new"
        assert co.find("Xemp", eno=99) is new_emp

    def test_insert_then_connect(self, co, fig4_db):
        new_emp = co.insert("Xemp", eno=99, ename="new", sal=1.0, descr="staff")
        dny = co.find("Xdept", dname="dNY")
        co.connect("employment", dny, new_emp)
        assert fig4_db.execute("SELECT edno FROM EMP WHERE eno = 99").scalar() == 1
        assert new_emp in dny.related("employment")


class TestConnectDisconnect:
    def test_fk_disconnect_nullifies(self, co, fig4_db):
        """'Disconnecting an employment relationship instance results in
        setting the dno of the tuple of Xemp to the null value.'"""
        e1 = co.find("Xemp", ename="e1")
        conn = e1.connections("employment")[0]
        co.disconnect(conn)
        assert fig4_db.execute("SELECT edno FROM EMP WHERE eno = 1").scalar() is None
        assert e1["edno"] is None
        assert e1.related("employment") == []

    def test_fk_connect_sets(self, co, fig4_db):
        e1 = co.find("Xemp", ename="e1")
        co.disconnect(e1.connections("employment")[0])
        dsf = co.find("Xdept", dname="dSF")
        co.connect("employment", dsf, e1)
        assert fig4_db.execute("SELECT edno FROM EMP WHERE eno = 1").scalar() == 2

    def test_mn_connect_inserts_link_row(self, co, fig4_db):
        """'the operation connect results in inserting a tuple in the
        EMPPROJ table'."""
        p3 = co.find("Xproj", pname="p3")
        e1 = co.find("Xemp", ename="e1")
        co.connect("membership", p3, e1, {"percentage": 40.0})
        assert (1, 3, 40.0) in fig4_db.execute("SELECT * FROM EMPPROJ").rows

    def test_mn_disconnect_deletes_link_row(self, co, fig4_db):
        """'The disconnect operation results in deleting the corresponding
        tuple in the EMPPROJ table.'"""
        p2 = co.find("Xproj", pname="p2")
        conn = [c for c in co.connections("membership") if c.parent is p2][0]
        target = (conn.child["eno"], 2, conn["percentage"])
        co.disconnect(conn)
        assert target not in fig4_db.execute("SELECT * FROM EMPPROJ").rows

    def test_connect_wrong_partner_types(self, co):
        e1 = co.find("Xemp", ename="e1")
        p2 = co.find("Xproj", pname="p2")
        with pytest.raises(UpdatabilityError):
            co.connect("employment", e1, p2)

    def test_readonly_relationship_rejected(self, fig4_session):
        derived = fig4_session.query(
            """
            OUT OF d AS DEPT, e AS EMP,
              richer AS (RELATE d, e WHERE d.budget > e.sal)
            TAKE *
            """
        )
        parent = derived.node("d")[0]
        child = derived.node("e")[0]
        with pytest.raises(UpdatabilityError):
            derived.connect("richer", parent, child)

    def test_unknown_attribute_rejected(self, co):
        p3 = co.find("Xproj", pname="p3")
        e1 = co.find("Xemp", ename="e1")
        with pytest.raises(UpdatabilityError):
            co.connect("membership", p3, e1, {"nothere": 1})


class TestDeferredPropagation:
    def test_flush_applies_batch(self, fig4_db):
        session = XNFSession(fig4_db, deferred_propagation=True)
        company.create_paper_views(session)
        co = session.query("OUT OF ALL-DEPS TAKE *")
        e1 = co.find("Xemp", ename="e1")
        co.update(e1, sal=1234.0)
        # cache sees it immediately, the base table does not yet
        assert e1["sal"] == 1234.0
        assert fig4_db.execute("SELECT sal FROM EMP WHERE eno = 1").scalar() == 100.0
        assert co.manipulator.pending_count == 1
        applied = co.flush()
        assert applied == 1
        assert fig4_db.execute("SELECT sal FROM EMP WHERE eno = 1").scalar() == 1234.0

    def test_flush_is_transactional(self, fig4_db):
        session = XNFSession(fig4_db, deferred_propagation=True)
        company.create_paper_views(session)
        co = session.query("OUT OF ALL-DEPS TAKE *")
        e1 = co.find("Xemp", ename="e1")
        co.update(e1, sal=1.0)
        # sabotage: second queued statement fails (duplicate PK)
        from repro.relational.sql import ast as sql_ast

        co.manipulator._pending.append(
            sql_ast.InsertStmt("EMP", None, rows=[[
                sql_ast.Literal(1), sql_ast.Literal("dup"), sql_ast.Literal(0.0),
                sql_ast.Literal(None), sql_ast.Literal("x"),
            ]])
        )
        with pytest.raises(Exception):
            co.flush()
        # the whole batch rolled back
        assert fig4_db.execute("SELECT sal FROM EMP WHERE eno = 1").scalar() == 100.0


class TestCOLevelStatements:
    def test_co_delete(self, fig4_session, fig4_db):
        """Section 3.7's CO deletion statement."""
        removed = fig4_session.execute(
            """
            OUT OF ALL-DEPS
            WHERE Xemp e SUCH THAT e.sal < 200
            DELETE *
            """
        )
        # the restricted CO: both depts, e1 only, all 4 projects
        assert removed == 7
        assert fig4_db.execute("SELECT COUNT(*) FROM DEPT").scalar() == 0
        assert fig4_db.execute("SELECT COUNT(*) FROM PROJ").scalar() == 0
        assert fig4_db.execute("SELECT COUNT(*) FROM EMP").scalar() == 3

    def test_co_update(self, fig4_session, fig4_db):
        updated = fig4_session.execute(
            """
            OUT OF ALL-DEPS
            WHERE Xemp e SUCH THAT e.edno = 1
            UPDATE Xemp SET sal = sal * 2
            """
        )
        assert updated == 2
        assert fig4_db.execute("SELECT sal FROM EMP WHERE eno = 1").scalar() == 200.0
        assert fig4_db.execute("SELECT sal FROM EMP WHERE eno = 3").scalar() == 300.0
