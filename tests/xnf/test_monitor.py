"""SYS_MONITOR: the built-in self-monitoring CO (ISSUE 5 tentpole,
part 2).  XNF path expressions over the engine's own SYS_* tables answer
"which operator dominated my slowest query"."""

import pytest

from repro.relational.engine import Database
from repro.xnf.api import XNFSession
from repro.xnf.monitor import MONITOR_VIEW_NAME, install_monitor


@pytest.fixture
def monitored():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
    for i in range(30):
        db.execute(f"INSERT INTO t VALUES ({i}, {i % 5})")
    db.execute("ANALYZE")
    for i in range(5):
        db.execute(f"SELECT * FROM t WHERE b = {i}")
    db.execute("SELECT count(*), b FROM t GROUP BY b")
    return db, XNFSession(db)


class TestInstall:
    def test_view_registered_on_session_construction(self, monitored):
        _, session = monitored
        assert MONITOR_VIEW_NAME in session.views.names()

    def test_install_idempotent(self, monitored):
        _, session = monitored
        assert install_monitor(session) is True
        assert session.views.names().count(MONITOR_VIEW_NAME) == 1

    def test_droppable_and_reinstallable(self, monitored):
        _, session = monitored
        session.execute("DROP VIEW SYS_MONITOR")
        assert MONITOR_VIEW_NAME not in session.views.names()
        assert install_monitor(session) is True


class TestSelfMonitoringCO:
    def test_monitor_instantiates_over_sys_tables(self, monitored):
        _, session = monitored
        co = session.query("OUT OF SYS_MONITOR TAKE *")
        assert co.nodes() == ["STATEMENTS", "SPANS"]
        assert co.edges() == ["CALLS", "SUBSPANS"]
        assert len(co.node("STATEMENTS")) >= 3
        assert len(co.node("SPANS")) >= 3

    def test_which_operator_dominated_my_slowest_query(self, monitored):
        """The acceptance scenario: path expressions return the
        per-operator span breakdown of a previously executed statement."""
        _, session = monitored
        co = session.query("OUT OF SYS_MONITOR TAKE *")
        select_stats = [
            t for t in co.node("STATEMENTS")
            if t["fingerprint"].startswith("SELECT")
        ]
        assert select_stats
        slowest = max(select_stats, key=lambda t: t["mean_ms"])
        roots = co.path(slowest, "CALLS")
        assert roots, "statement has no trace spans"
        operators = co.path(slowest, "CALLS->SUBSPANS[callee]")
        names = {span["name"] for span in operators}
        assert {"optimize", "execute"} <= names
        dominant = max(operators, key=lambda s: s["duration_ms"])
        total = sum(s["duration_ms"] for s in operators)
        assert dominant["duration_ms"] <= total
        # the parent span covers (at least) its children's time
        assert roots[0]["duration_ms"] >= dominant["duration_ms"] * 0.5

    def test_subspans_walks_deeper_levels(self, monitored):
        db, session = monitored
        co = session.query("OUT OF SYS_MONITOR TAKE *")
        spans_by_depth = {}
        for span in co.node("SPANS"):
            spans_by_depth.setdefault(span["depth"], []).append(span)
        max_depth = max(spans_by_depth)
        if max_depth < 2:
            pytest.skip("trace too shallow for a 2-hop walk")
        stmt = next(
            t for t in co.node("STATEMENTS")
            if t["fingerprint"].startswith("SELECT")
        )
        grandchildren = co.path(stmt, "CALLS->SUBSPANS[callee]->SUBSPANS[callee]")
        for span in grandchildren:
            assert span["depth"] >= 2

    def test_restriction_on_monitor_query(self, monitored):
        _, session = monitored
        co = session.query(
            "OUT OF SYS_MONITOR "
            "WHERE STATEMENTS s SUCH THAT s.calls >= 5 TAKE *"
        )
        for stat in co.node("STATEMENTS"):
            assert stat["calls"] >= 5

    def test_monitor_absent_without_sys_tables(self):
        class _Bare:
            pass

        bare_catalog = _Bare()
        bare_db = _Bare()
        bare_db.catalog = bare_catalog

        class _Views:
            def get(self, name):
                return None

        session = _Bare()
        session.db = bare_db
        session.views = _Views()
        assert install_monitor(session) is False
