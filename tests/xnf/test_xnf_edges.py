"""XNF layer edge cases: projection + manipulation interplay, restriction
attribute references, CO deletion of non-updatable nodes, stream on cyclic
schemas, snapshot of projected views."""

import pytest

from repro.errors import UpdatabilityError, XNFError
from repro.xnf.api import XNFSession


class TestEdgeRestrictionAttributes:
    def test_schema_level_attribute_reference(self, fig4_session):
        """An edge restriction can reference the relationship's attribute;
        the resolver substitutes its defining expression."""
        co = fig4_session.query(
            """
            OUT OF ALL-DEPS-ORG
            WHERE membership (p, e) SUCH THAT percentage >= 50
            TAKE *
            """
        )
        pairs = sorted(
            (c.parent["pname"], c.child["ename"], c["percentage"])
            for c in co.connections("membership")
        )
        assert pairs == [("p2", "e3", 50.0), ("p4", "e4", 100.0)]

    def test_involve_style_view(self, fig4_session):
        """Section 5's 'involve' example: a derived relationship with an
        attribute threshold, defined declaratively."""
        fig4_session.create_view(
            """
            CREATE VIEW INVOLVED AS
            OUT OF Xdept AS DEPT, Xemp AS EMP,
              involve AS (RELATE Xdept, Xemp
                WITH ATTRIBUTES ep.percentage
                USING PROJ pr, EMPPROJ ep
                WHERE Xdept.dno = pr.pdno AND pr.pno = ep.eppno
                  AND Xemp.eno = ep.epeno AND ep.percentage >= 50)
            TAKE *
            """
        )
        co = fig4_session.query("OUT OF INVOLVED TAKE *")
        pairs = sorted(
            (c.parent["dname"], c.child["ename"])
            for c in co.connections("involve")
        )
        # >= 50%: e3 on p2 (dept dNY owns p2), e4 on p4 (dept dSF owns p4)
        assert pairs == [("dNY", "e3"), ("dSF", "e4")]


class TestCODeleteGuards:
    def test_co_delete_over_aggregated_node_rejected(self, fig4_session):
        fig4_session.create_view(
            """
            CREATE VIEW AGGD AS
            OUT OF Xd AS (SELECT edno, COUNT(*) AS n FROM EMP GROUP BY edno)
            TAKE *
            """
        )
        with pytest.raises(XNFError):
            fig4_session.execute("OUT OF AGGD DELETE *")

    def test_read_only_node_update_rejected(self, fig4_session):
        co = fig4_session.query(
            "OUT OF Xd AS (SELECT edno, COUNT(*) AS n FROM EMP "
            "GROUP BY edno) TAKE *"
        )
        target = co.node("Xd")[0]
        with pytest.raises(UpdatabilityError):
            co.update(target, n=99)


class TestProjectionEdgeCases:
    def test_take_single_node_becomes_whole_candidate_set(self, fig4_session):
        """Taking only a node (dropping its incoming edges' parents) makes
        it a root: every candidate is then reachable by definition."""
        co = fig4_session.query("OUT OF ALL-DEPS TAKE Xemp(*)")
        assert len(co.node("Xemp")) == 4
        assert co.edges() == []

    def test_projection_then_restriction(self, fig4_session):
        co = fig4_session.query(
            """
            OUT OF ALL-DEPS
            WHERE Xemp e SUCH THAT e.sal >= 200
            TAKE Xdept(*), Xemp(ename), employment
            """
        )
        assert sorted(t["ename"] for t in co.node("Xemp")) == ["e2", "e3", "e4"]
        emp = co.node("Xemp")[0]
        with pytest.raises(XNFError):
            emp["sal"]  # projected away

    def test_pending_take_with_path_restriction(self, fig4_session):
        """Path restrictions force post-instantiation projection; the
        combination must still match Fig. 5-style semantics."""
        co = fig4_session.query(
            """
            OUT OF EXT-ALL-DEPS-ORG
            WHERE Xdept d SUCH THAT COUNT(d->employment) >= 2
            TAKE Xdept(*), employment, Xemp(*)
            """
        )
        assert sorted(t["dname"] for t in co.node("Xdept")) == ["dNY", "dSF"]
        assert co.nodes() == ["Xdept", "Xemp"]
        assert "ownership" not in co.edges()


class TestSnapshotsOfProjectedViews:
    def test_snapshot_keeps_projection(self, fig4_session):
        fig4_session.create_view(
            """
            CREATE VIEW SLIM AS
            OUT OF Xdept AS DEPT, Xemp AS EMP,
              employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno)
            TAKE Xdept(dname), Xemp(ename, sal), employment
            """
        )
        fig4_session.materialize_view("SLIM", "SLIMSNAP")
        snap = fig4_session.load_snapshot("SLIMSNAP")
        dept = snap.node("Xdept")[0]
        assert list(dept.as_dict()) == ["dname"]
        emp = dept.related("employment")[0]
        assert set(emp.as_dict()) == {"ename", "sal"}


class TestStreamCyclicSchemas:
    def test_stream_handles_cycles(self, fig4_session):
        from repro.xnf.stream import TupleItem, heterogeneous_stream
        from repro.xnf.semantic_rewrite import XNFCompiler
        from repro.xnf.views import resolve

        stored = fig4_session.views.get("EXT-ALL-DEPS-ORG")
        schema = resolve(stored, fig4_session.views)
        instance = XNFCompiler(fig4_session.db).instantiate(schema)
        items = list(heterogeneous_stream(instance))
        tuple_counts = {}
        for item in items:
            if isinstance(item, TupleItem):
                tuple_counts[item.component] = (
                    tuple_counts.get(item.component, 0) + 1
                )
        assert tuple_counts == {
            name: len(rows) for name, rows in instance.rows.items()
        }

    def test_stream_emits_every_connection_exactly_once(self, fig4_session):
        from repro.xnf.stream import ConnectionItem, heterogeneous_stream
        from repro.xnf.semantic_rewrite import XNFCompiler
        from repro.xnf.views import resolve

        stored = fig4_session.views.get("EXT-ALL-DEPS-ORG")
        schema = resolve(stored, fig4_session.views)
        instance = XNFCompiler(fig4_session.db).instantiate(schema)
        per_edge = {}
        for item in heterogeneous_stream(instance):
            if isinstance(item, ConnectionItem):
                per_edge[item.component] = per_edge.get(item.component, 0) + 1
        assert per_edge == {
            name: len(conns) for name, conns in instance.connections.items()
        }


class TestMatchPredicateWithoutPK:
    def test_update_on_pkless_base_table(self, db):
        """Propagation matches on all columns when no PK subset exists."""
        db.execute("CREATE TABLE NOTES (txt VARCHAR, prio INTEGER)")
        db.execute("INSERT INTO NOTES VALUES ('a', 1), ('b', NULL)")
        session = XNFSession(db)
        co = session.query("OUT OF Xn AS NOTES TAKE *")
        note_b = co.find("Xn", txt="b")
        co.update(note_b, prio=9)
        assert sorted(db.execute("SELECT * FROM NOTES").rows) == [
            ("a", 1), ("b", 9),
        ]

    def test_delete_with_null_match(self, db):
        db.execute("CREATE TABLE NOTES (txt VARCHAR, prio INTEGER)")
        db.execute("INSERT INTO NOTES VALUES ('a', 1), ('b', NULL)")
        session = XNFSession(db)
        co = session.query("OUT OF Xn AS NOTES TAKE *")
        co.delete(co.find("Xn", txt="b"))
        assert db.execute("SELECT * FROM NOTES").rows == [("a", 1)]
