"""CO schemas: well-formedness, classification, resolution, TAKE."""

import pytest

from repro.errors import SchemaGraphError
from repro.xnf.lang.parser import parse_xnf
from repro.xnf.views import XNFViewCatalog, contains_path, resolve


def make_views():
    return XNFViewCatalog()


def resolve_text(text, views=None):
    return resolve(parse_xnf(text), views or make_views())


class TestWellFormedness:
    def test_edge_endpoints_must_be_components(self):
        with pytest.raises(SchemaGraphError) as info:
            resolve_text(
                "OUT OF a AS T, r AS (RELATE a, missing WHERE a.x = missing.y) TAKE *"
            )
        assert "component table" in str(info.value)

    def test_duplicate_component_names_rejected(self):
        with pytest.raises(SchemaGraphError):
            resolve_text("OUT OF a AS T, a AS U TAKE *")

    def test_cyclic_edge_needs_roles(self):
        with pytest.raises(SchemaGraphError) as info:
            resolve_text("OUT OF a AS T, r AS (RELATE a, a WHERE a.x = a.y) TAKE *")
        assert "role" in str(info.value)

    def test_no_root_rejected(self):
        with pytest.raises(SchemaGraphError) as info:
            resolve_text(
                "OUT OF a AS T, b AS U, "
                "r AS (RELATE a, b WHERE a.x = b.y), "
                "s AS (RELATE b, a WHERE b.y = a.x) TAKE *"
            )
        assert "root" in str(info.value)

    def test_restriction_on_unknown_node(self):
        with pytest.raises(SchemaGraphError):
            resolve_text("OUT OF a AS T WHERE nope SUCH THAT x = 1 TAKE *")

    def test_restriction_on_unknown_edge(self):
        with pytest.raises(SchemaGraphError):
            resolve_text("OUT OF a AS T WHERE r (x, y) SUCH THAT x.a = 1 TAKE *")

    def test_take_of_unknown_component(self):
        with pytest.raises(SchemaGraphError):
            resolve_text("OUT OF a AS T TAKE nothere")


class TestClassification:
    def test_roots(self):
        schema = resolve_text(
            "OUT OF a AS T, b AS U, c AS V, "
            "r AS (RELATE a, b WHERE a.x = b.y) TAKE *"
        )
        assert sorted(schema.roots()) == ["a", "c"]

    def test_recursion(self):
        schema = resolve_text(
            "OUT OF a AS T, b AS U, "
            "r AS (RELATE a, b WHERE a.x = b.y), "
            "s AS (RELATE b, b2 WHERE b.y = b2.z), "
            "b2 AS W, t AS (RELATE b2, b WHERE b2.z = b.y) TAKE *"
        )
        assert schema.is_recursive()

    def test_schema_sharing(self):
        schema = resolve_text(
            "OUT OF a AS T, b AS U, c AS V, "
            "r AS (RELATE a, c WHERE a.x = c.y), "
            "s AS (RELATE b, c WHERE b.x = c.y), "
            "q AS (RELATE a, b WHERE a.x = b.k) TAKE *"
        )
        assert schema.shared_nodes() == ["c"]

    def test_describe_mentions_flags(self, fig4_session):
        text = fig4_session.describe("OUT OF EXT-ALL-DEPS-ORG TAKE *")
        assert "recursive" in text
        assert "root" in text
        assert "membership" in text

    def test_graph_export(self):
        schema = resolve_text(
            "OUT OF a AS T, b AS U, r AS (RELATE a, b WHERE a.x = b.y) TAKE *"
        )
        graph = schema.graph()
        assert set(graph.nodes) == {"a", "b"}
        assert graph.has_edge("a", "b")


class TestViewResolution:
    def test_unknown_view(self):
        with pytest.raises(SchemaGraphError):
            resolve_text("OUT OF NOPE TAKE *")

    def test_view_components_inherited(self):
        views = make_views()
        views.create(
            "BASE",
            parse_xnf(
                "OUT OF a AS T, b AS U, r AS (RELATE a, b WHERE a.x = b.y) TAKE *"
            ),
        )
        schema = resolve_text(
            "OUT OF BASE, c AS V, s AS (RELATE a, c WHERE a.x = c.z) TAKE *",
            views,
        )
        assert set(schema.nodes) == {"a", "b", "c"}
        assert set(schema.edges) == {"r", "s"}

    def test_view_restrictions_compose(self):
        views = make_views()
        views.create(
            "BASE",
            parse_xnf(
                "OUT OF a AS T, b AS U, r AS (RELATE a, b WHERE a.x = b.y) "
                "WHERE a SUCH THAT x > 1 TAKE *"
            ),
        )
        schema = resolve_text(
            "OUT OF BASE WHERE a SUCH THAT x < 10 TAKE *", views
        )
        assert len(schema.nodes["a"].restrictions) == 2

    def test_view_cycle_detected(self):
        views = make_views()
        views.create("A", parse_xnf("OUT OF B TAKE *"))
        views.create("B", parse_xnf("OUT OF A TAKE *"))
        with pytest.raises(SchemaGraphError):
            resolve_text("OUT OF A TAKE *", views)

    def test_duplicate_view_rejected(self):
        views = make_views()
        views.create("A", parse_xnf("OUT OF x AS T TAKE *"))
        with pytest.raises(SchemaGraphError):
            views.create("A", parse_xnf("OUT OF x AS T TAKE *"))

    def test_drop_view(self):
        views = make_views()
        views.create("A", parse_xnf("OUT OF x AS T TAKE *"))
        views.drop("A")
        assert views.get("A") is None
        views.drop("A", if_exists=True)
        with pytest.raises(SchemaGraphError):
            views.drop("A")


class TestRestrictionClassification:
    def test_plain_predicate_is_pushable(self):
        schema = resolve_text(
            "OUT OF a AS T WHERE a SUCH THAT x > 1 TAKE *"
        )
        assert schema.nodes["a"].restrictions
        assert not schema.instance_restrictions

    def test_path_predicate_is_instance_level(self):
        schema = resolve_text(
            "OUT OF a AS T, b AS U, r AS (RELATE a, b WHERE a.x = b.y) "
            "WHERE a d SUCH THAT COUNT(d->r) > 1 TAKE *"
        )
        assert not schema.nodes["a"].restrictions
        assert len(schema.instance_restrictions) == 1

    def test_contains_path_helper(self):
        query = parse_xnf(
            "OUT OF V WHERE a d SUCH THAT COUNT(d->r) > 1 AND d.x = 2 TAKE *"
        )
        assert contains_path(query.restrictions[0].predicate)

    def test_edge_restriction_merged_into_predicate(self):
        schema = resolve_text(
            "OUT OF a AS T, b AS U, r AS (RELATE a, b WHERE a.x = b.y) "
            "WHERE r (p, c) SUCH THAT c.z > p.w TAKE *"
        )
        text = schema.edges["r"].predicate.to_sql()
        # aliases rewritten onto the edge bindings
        assert "b.z" in text and "a.w" in text


class TestTake:
    def test_projection_drops_components(self):
        schema = resolve_text(
            "OUT OF a AS T, b AS U, c AS V, "
            "r AS (RELATE a, b WHERE a.x = b.y), "
            "s AS (RELATE a, c WHERE a.x = c.y) "
            "TAKE a(*), b(*), r"
        )
        assert set(schema.nodes) == {"a", "b"}
        assert set(schema.edges) == {"r"}

    def test_edge_implicitly_discarded_with_endpoint(self):
        schema = resolve_text(
            "OUT OF a AS T, b AS U, r AS (RELATE a, b WHERE a.x = b.y) "
            "TAKE a(*), r"
        )
        assert set(schema.edges) == set()

    def test_column_projection_recorded(self):
        schema = resolve_text("OUT OF a AS T TAKE a(x, y)")
        assert schema.nodes["a"].projection == ["x", "y"]

    def test_star_columns_mean_no_projection(self):
        schema = resolve_text("OUT OF a AS T TAKE a(*)")
        assert schema.nodes["a"].projection is None
