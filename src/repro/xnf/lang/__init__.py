"""XNF language front end: AST and parser."""

from repro.xnf.lang import xast
from repro.xnf.lang.parser import XNFParser, parse_xnf, parse_xnf_statements

__all__ = ["xast", "XNFParser", "parse_xnf", "parse_xnf_statements"]
