"""AST for the XNF language (section 3 of the paper).

An XNF statement is one of:

* :class:`XNFQuery` — ``OUT OF … [WHERE …] TAKE …`` (or ``DELETE``/
  ``UPDATE`` instead of TAKE for CO-level manipulation, section 3.7),
* :class:`CreateXNFView` — ``CREATE VIEW name AS <XNFQuery>``,
* :class:`DropXNFView`.

The OUT OF clause lists *components*: node definitions, relationship
definitions, and references to previously defined XNF views whose components
are inherited (views over views, section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.relational.sql import ast as sql_ast


# ---------------------------------------------------------------------------
# Path expressions (section 3.5)
# ---------------------------------------------------------------------------


@dataclass
class PathStep:
    """One ``->`` step: a relationship or node name, optionally qualified.

    ``(Xemp e WHERE e.sal < 2000)`` parses to name="Xemp", alias="e",
    predicate=<expr>.  ``role`` disambiguates cyclic relationships
    (section 2: "role names have to be used to avoid ambiguities") and is
    written ``rel[role]``.
    """

    name: str
    alias: Optional[str] = None
    predicate: Optional[sql_ast.Expr] = None
    role: Optional[str] = None

    def to_sql(self) -> str:
        text = self.name
        if self.role:
            text += f"[{self.role}]"
        if self.predicate is not None:
            alias = f" {self.alias}" if self.alias else ""
            return f"({text}{alias} WHERE {self.predicate.to_sql()})"
        return text


@dataclass
class PathExpr(sql_ast.Expr):
    """``start->step->step…`` — denotes a subset of the target node's tuples.

    ``start`` is either a tuple variable bound by an enclosing SUCH THAT
    (``d->employment->…``) or a node name (``Xdept->employment->…``), in
    which case the path ranges over every tuple of that node.
    """

    start: str
    steps: List[PathStep] = field(default_factory=list)

    def to_sql(self) -> str:
        return "->".join([self.start] + [step.to_sql() for step in self.steps])


# ---------------------------------------------------------------------------
# OUT OF components
# ---------------------------------------------------------------------------


@dataclass
class NodeDef:
    """``name AS (SELECT …)`` or the shorthand ``name AS TABLE``."""

    name: str
    query: Optional[sql_ast.Query] = None  # None => table shorthand
    table: Optional[str] = None

    def to_sql(self) -> str:
        if self.table is not None:
            return f"{self.name} AS {self.table}"
        return f"{self.name} AS ({self.query.to_sql()})"


@dataclass
class UsingTable:
    """One base table of a USING clause, with its alias."""

    table: str
    alias: str


@dataclass
class RelationshipDef:
    """``name AS (RELATE parent, child [WITH ATTRIBUTES …] [USING …] WHERE p)``.

    ``parent_role``/``child_role`` name the partner roles for cyclic
    relationships (``RELATE Xemp manager, Xemp report WHERE …``).
    """

    name: str
    parent: str
    child: str
    predicate: Optional[sql_ast.Expr] = None
    attributes: List[Tuple[str, sql_ast.Expr]] = field(default_factory=list)
    using: List[UsingTable] = field(default_factory=list)
    parent_role: Optional[str] = None
    child_role: Optional[str] = None
    #: additional child partners beyond the first: (name, role) pairs.
    #: Section 2: "in a general setting we allow for n-ary relationships".
    extra_partners: List[Tuple[str, Optional[str]]] = field(default_factory=list)

    def to_sql(self) -> str:
        parts = [f"{self.name} AS (RELATE {self.parent}"]
        if self.parent_role:
            parts[-1] += f" {self.parent_role}"
        parts.append(f", {self.child}")
        if self.child_role:
            parts[-1] += f" {self.child_role}"
        for partner, role in self.extra_partners:
            parts.append(f", {partner}")
            if role:
                parts[-1] += f" {role}"
        if self.attributes:
            attrs = ", ".join(
                f"{expr.to_sql()}" + (f" AS {name}" if name else "")
                for name, expr in self.attributes
            )
            parts.append(f" WITH ATTRIBUTES {attrs}")
        if self.using:
            tables = ", ".join(f"{u.table} {u.alias}" for u in self.using)
            parts.append(f" USING {tables}")
        if self.predicate is not None:
            parts.append(f" WHERE {self.predicate.to_sql()}")
        parts.append(")")
        return "".join(parts)


@dataclass
class ViewRef:
    """Reference to a previously created XNF view in an OUT OF clause."""

    name: str

    def to_sql(self) -> str:
        return self.name


Component = Union[NodeDef, RelationshipDef, ViewRef]


# ---------------------------------------------------------------------------
# Restrictions (section 3.3)
# ---------------------------------------------------------------------------


@dataclass
class NodeRestriction:
    """``WHERE Xemp e SUCH THAT e.sal < 2000`` (alias optional)."""

    node: str
    alias: Optional[str]
    predicate: sql_ast.Expr

    def to_sql(self) -> str:
        alias = f" {self.alias}" if self.alias else ""
        return f"{self.node}{alias} SUCH THAT {self.predicate.to_sql()}"


@dataclass
class EdgeRestriction:
    """``WHERE employment (d, e) SUCH THAT e.sal < d.budget / 100``."""

    edge: str
    parent_alias: str
    child_alias: str
    predicate: sql_ast.Expr

    def to_sql(self) -> str:
        return (
            f"{self.edge} ({self.parent_alias}, {self.child_alias}) "
            f"SUCH THAT {self.predicate.to_sql()}"
        )


Restriction = Union[NodeRestriction, EdgeRestriction]


# ---------------------------------------------------------------------------
# TAKE clause (structural projection, section 3.3)
# ---------------------------------------------------------------------------


@dataclass
class TakeItem:
    """One projection item.

    ``name`` with columns None ⇒ the whole component (node or edge);
    columns ``["*"]`` ⇒ all columns of a node; otherwise the listed columns.
    """

    name: str
    columns: Optional[List[str]] = None

    def to_sql(self) -> str:
        if self.columns is None:
            return self.name
        return f"{self.name}({', '.join(self.columns)})"


@dataclass
class TakeAll:
    """``TAKE *`` — every component of the OUT OF result."""

    def to_sql(self) -> str:
        return "*"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class XNFQuery:
    """The CO constructor, used for queries and CO-level manipulation.

    ``action`` is ``TAKE`` (produce a CO), ``DELETE`` (remove the target
    CO's tuples from their base tables) or ``UPDATE`` (apply SET lists to a
    node's base rows — our extension of the paper's "update ... available at
    the CO level").
    """

    components: List[Component]
    restrictions: List[Restriction] = field(default_factory=list)
    take: Union[TakeAll, List[TakeItem], None] = None
    action: str = "TAKE"
    update_node: Optional[str] = None
    update_assignments: List[Tuple[str, sql_ast.Expr]] = field(default_factory=list)

    def to_sql(self) -> str:
        parts = ["OUT OF " + ", ".join(c.to_sql() for c in self.components)]
        if self.restrictions:
            parts.append(
                "WHERE " + " AND ".join(r.to_sql() for r in self.restrictions)
            )
        if self.action == "TAKE":
            if isinstance(self.take, TakeAll) or self.take is None:
                parts.append("TAKE *")
            else:
                parts.append("TAKE " + ", ".join(t.to_sql() for t in self.take))
        elif self.action == "DELETE":
            parts.append("DELETE *")
        elif self.action == "UPDATE":
            sets = ", ".join(
                f"{col} = {expr.to_sql()}" for col, expr in self.update_assignments
            )
            parts.append(f"UPDATE {self.update_node} SET {sets}")
        return "\n".join(parts)


@dataclass
class CreateXNFView:
    name: str
    query: XNFQuery

    def to_sql(self) -> str:
        return f"CREATE VIEW {self.name} AS\n{self.query.to_sql()}"


@dataclass
class DropXNFView:
    name: str
    if_exists: bool = False

    def to_sql(self) -> str:
        exists = "IF EXISTS " if self.if_exists else ""
        return f"DROP VIEW {exists}{self.name}"


XNFStatement = Union[XNFQuery, CreateXNFView, DropXNFView]
