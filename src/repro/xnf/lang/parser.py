"""Parser for the XNF language.

Subclasses the SQL parser, so everything inside component queries and
predicates is ordinary SQL; on top it adds

* the ``OUT OF … TAKE`` constructor with node, relationship and view-ref
  components,
* ``SUCH THAT`` node and edge restrictions,
* path expressions (``d->employment->(Xemp e WHERE …)->Xproj``) as primary
  expressions, including ``EXISTS <path>`` and role-qualified steps
  (``manages[reports_to]``),
* CO-level ``DELETE`` / ``UPDATE`` tails and ``CREATE VIEW … AS OUT OF …``.

Hyphenated identifiers (``ALL-DEPS``) are enabled, matching the paper's
notation; inside XNF text write subtraction with surrounding spaces.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.relational.sql import ast as sql_ast
from repro.relational.sql.lexer import EOF, IDENT, OP
from repro.relational.sql.parser import RESERVED, SQLParser
from repro.xnf.lang import xast


class XNFParser(SQLParser):
    """Recursive-descent parser for XNF statements."""

    hyphen_idents = True

    # -- statements -------------------------------------------------------------

    def parse_xnf_statements(self) -> List[xast.XNFStatement]:
        statements: List[xast.XNFStatement] = []
        while self.peek().kind != EOF:
            if self.accept_op(";"):
                continue
            statements.append(self.parse_xnf_statement())
            if self.peek().kind != EOF:
                self.expect_op(";")
        return statements

    def parse_xnf_statement(self) -> xast.XNFStatement:
        if self.at_keyword("CREATE"):
            self.advance()
            self.expect_keyword("VIEW")
            name = self.expect_ident("view name")
            self.expect_keyword("AS")
            query = self.parse_xnf_query()
            return xast.CreateXNFView(name, query)
        if self.at_keyword("DROP"):
            self.advance()
            self.expect_keyword("VIEW")
            if_exists = False
            if self.accept_keyword("IF"):
                self.expect_keyword("EXISTS")
                if_exists = True
            name = self.expect_ident("view name")
            return xast.DropXNFView(name, if_exists)
        if self.at_keyword("OUT"):
            return self.parse_xnf_query()
        raise self.error("expected OUT OF, CREATE VIEW, or DROP VIEW")

    # -- the CO constructor -------------------------------------------------------

    def parse_xnf_query(self) -> xast.XNFQuery:
        self.expect_keyword("OUT")
        self.expect_keyword("OF")
        components = [self._parse_component()]
        while self.accept_op(","):
            components.append(self._parse_component())
        restrictions: List[xast.Restriction] = []
        if self.accept_keyword("WHERE"):
            restrictions.append(self._parse_restriction())
            while self._at_restriction_separator():
                self.expect_keyword("AND")
                restrictions.append(self._parse_restriction())
        return self._parse_tail(components, restrictions)

    def _parse_tail(
        self,
        components: List[xast.Component],
        restrictions: List[xast.Restriction],
    ) -> xast.XNFQuery:
        if self.accept_keyword("TAKE"):
            if self.accept_op("*"):
                return xast.XNFQuery(components, restrictions, xast.TakeAll())
            items = [self._parse_take_item()]
            while self.accept_op(","):
                items.append(self._parse_take_item())
            return xast.XNFQuery(components, restrictions, items)
        if self.accept_keyword("DELETE"):
            self.accept_op("*")
            return xast.XNFQuery(components, restrictions, None, action="DELETE")
        if self.accept_keyword("UPDATE"):
            node = self.expect_ident("node name")
            self.expect_keyword("SET")
            assignments: List[Tuple[str, sql_ast.Expr]] = []
            while True:
                column = self.expect_ident("column name")
                self.expect_op("=")
                assignments.append((column, self.parse_expr()))
                if not self.accept_op(","):
                    break
            return xast.XNFQuery(
                components,
                restrictions,
                None,
                action="UPDATE",
                update_node=node,
                update_assignments=assignments,
            )
        raise self.error("expected TAKE, DELETE, or UPDATE")

    def _parse_take_item(self) -> xast.TakeItem:
        name = self.expect_ident("component name")
        columns: Optional[List[str]] = None
        if self.accept_op("("):
            if self.accept_op("*"):
                columns = ["*"]
            else:
                columns = [self.expect_ident("column name")]
                while self.accept_op(","):
                    columns.append(self.expect_ident("column name"))
            self.expect_op(")")
        return xast.TakeItem(name, columns)

    # -- components -----------------------------------------------------------------

    def _parse_component(self) -> xast.Component:
        name = self.expect_ident("component name")
        if not self.accept_keyword("AS"):
            return xast.ViewRef(name)
        if self.accept_op("("):
            if self.at_keyword("RELATE"):
                component = self._parse_relate(name)
                self.expect_op(")")
                return component
            query = self.parse_query()
            self.expect_op(")")
            return xast.NodeDef(name, query=query)
        table = self.expect_ident("table name")
        return xast.NodeDef(name, table=table)

    def _parse_relate(self, name: str) -> xast.RelationshipDef:
        self.expect_keyword("RELATE")
        parent = self.expect_ident("parent node")
        parent_role = self._maybe_role()
        self.expect_op(",")
        child = self.expect_ident("child node")
        child_role = self._maybe_role()
        extra_partners: List[Tuple[str, Optional[str]]] = []
        while self.accept_op(","):
            partner = self.expect_ident("child node")
            extra_partners.append((partner, self._maybe_role()))
        attributes: List[Tuple[str, sql_ast.Expr]] = []
        using: List[xast.UsingTable] = []
        predicate: Optional[sql_ast.Expr] = None
        if self.accept_keyword("WITH"):
            self.expect_keyword("ATTRIBUTES")
            attributes.append(self._parse_attribute())
            while self.accept_op(","):
                attributes.append(self._parse_attribute())
        if self.accept_keyword("USING"):
            using.append(self._parse_using_table())
            while self.accept_op(","):
                using.append(self._parse_using_table())
        if self.accept_keyword("WHERE"):
            predicate = self.parse_expr()
        return xast.RelationshipDef(
            name,
            parent,
            child,
            predicate,
            attributes,
            using,
            parent_role,
            child_role,
            extra_partners,
        )

    def _maybe_role(self) -> Optional[str]:
        tok = self.peek()
        if tok.kind == IDENT and tok.upper() not in RESERVED:
            # e.g. "RELATE Xemp manager, Xemp report" — role names follow
            # the partner table directly.
            nxt = self.peek(1)
            if nxt.kind == OP and nxt.text in (",", ")"):
                return self.advance().text
            if nxt.kind == IDENT and nxt.upper() in ("WITH", "USING", "WHERE"):
                return self.advance().text
        return None

    def _parse_attribute(self) -> Tuple[str, sql_ast.Expr]:
        expr = self.parse_expr()
        name = None
        if self.accept_keyword("AS"):
            name = self.expect_ident("attribute name")
        elif isinstance(expr, sql_ast.ColumnRef):
            name = expr.column
        if name is None:
            raise self.error("relationship attribute needs AS <name>")
        return name, expr

    def _parse_using_table(self) -> xast.UsingTable:
        table = self.expect_ident("table name")
        alias = table
        tok = self.peek()
        if tok.kind == IDENT and tok.upper() not in RESERVED:
            alias = self.advance().text
        return xast.UsingTable(table, alias)

    # -- restrictions -------------------------------------------------------------

    def _parse_restriction(self) -> xast.Restriction:
        name = self.expect_ident("node or relationship name")
        if self.accept_op("("):
            parent_alias = self.expect_ident("parent alias")
            self.expect_op(",")
            child_alias = self.expect_ident("child alias")
            self.expect_op(")")
            self._expect_such_that()
            predicate = self._parse_restriction_predicate()
            return xast.EdgeRestriction(name, parent_alias, child_alias, predicate)
        alias = None
        tok = self.peek()
        if tok.kind == IDENT and tok.upper() not in ("SUCH",):
            alias = self.advance().text
        self._expect_such_that()
        predicate = self._parse_restriction_predicate()
        return xast.NodeRestriction(name, alias, predicate)

    def _expect_such_that(self) -> None:
        self.expect_keyword("SUCH")
        self.expect_keyword("THAT")

    def _parse_restriction_predicate(self) -> sql_ast.Expr:
        """Parse a predicate, stopping before ``AND <next restriction>``."""
        left = self._parse_not()
        while True:
            if self.at_keyword("OR"):
                self.advance()
                right = self._parse_restriction_predicate()
                left = sql_ast.BinaryOp("OR", left, right)
                continue
            if self.at_keyword("AND") and not self._restriction_follows(1):
                self.advance()
                right = self._parse_not()
                left = sql_ast.BinaryOp("AND", left, right)
                continue
            return left

    def _at_restriction_separator(self) -> bool:
        return self.at_keyword("AND") and self._restriction_follows(1)

    def _restriction_follows(self, offset: int) -> bool:
        """Do the tokens at *offset* look like ``name [alias] SUCH THAT`` or
        ``name (a, b) SUCH THAT``?"""
        tok = self.peek(offset)
        if tok.kind != IDENT:
            return False
        nxt = self.peek(offset + 1)
        if nxt.kind == IDENT and nxt.upper() == "SUCH":
            return True
        if nxt.kind == IDENT and self.peek(offset + 2).kind == IDENT and self.peek(
            offset + 2
        ).upper() == "SUCH":
            return True
        if nxt.kind == OP and nxt.text == "(":
            # name ( a , b ) SUCH
            if (
                self.peek(offset + 2).kind == IDENT
                and self.peek(offset + 3).kind == OP
                and self.peek(offset + 3).text == ","
                and self.peek(offset + 4).kind == IDENT
                and self.peek(offset + 5).kind == OP
                and self.peek(offset + 5).text == ")"
                and self.peek(offset + 6).kind == IDENT
                and self.peek(offset + 6).upper() == "SUCH"
            ):
                return True
        return False

    # -- path expressions inside predicates ----------------------------------------

    def parse_primary(self) -> sql_ast.Expr:
        tok = self.peek()
        if tok.kind == IDENT and tok.upper() == "EXISTS":
            nxt = self.peek(1)
            if nxt.kind == IDENT:  # EXISTS <path>, not EXISTS (subquery)
                self.advance()
                path = self._parse_path_expr()
                return sql_ast.FuncCall("EXISTS", [path])
        if (
            tok.kind == IDENT
            and tok.upper() not in RESERVED
            and self.peek(1).kind == OP
            and self.peek(1).text == "->"
        ):
            return self._parse_path_expr()
        return super().parse_primary()

    def _parse_path_expr(self) -> xast.PathExpr:
        start = self.expect_ident("path start")
        steps: List[xast.PathStep] = []
        while self.accept_op("->"):
            steps.append(self._parse_path_step())
        if not steps:
            raise self.error("path expression needs at least one -> step")
        return xast.PathExpr(start, steps)

    def _parse_path_step(self) -> xast.PathStep:
        if self.accept_op("("):
            name = self.expect_ident("node name")
            alias = None
            tok = self.peek()
            if tok.kind == IDENT and tok.upper() != "WHERE":
                alias = self.advance().text
            self.expect_keyword("WHERE")
            predicate = self.parse_expr()
            self.expect_op(")")
            return xast.PathStep(name, alias, predicate)
        name = self.expect_ident("relationship or node name")
        role = None
        if self.accept_op("["):
            role = self.expect_ident("role name")
            self.expect_op("]")
        return xast.PathStep(name, role=role)


def parse_xnf(source: str) -> xast.XNFStatement:
    """Parse exactly one XNF statement."""
    parser = XNFParser(source)
    statements = parser.parse_xnf_statements()
    if len(statements) != 1:
        raise ParseError(f"expected one XNF statement, found {len(statements)}")
    return statements[0]


def parse_xnf_statements(source: str) -> List[xast.XNFStatement]:
    return XNFParser(source).parse_xnf_statements()
