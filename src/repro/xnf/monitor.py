"""SYS_MONITOR: the built-in self-monitoring Composite Object.

The engine watches itself with its own abstraction: SYS_MONITOR is an
ordinary XNF view ``OUT OF`` the SYS_* virtual tables (statement stats
joined to their trace spans, spans related to their child spans), so the
same path expressions applications use on business COs answer questions
like *"which operator dominated my slowest query?"*::

    co = session.query("OUT OF SYS_MONITOR TAKE *")
    worst = max(co.node("STATEMENTS"), key=lambda t: t["mean_ms"])
    for span in co.path(worst, "CALLS->SUBSPANS[callee]"):
        print(span["name"], span["duration_ms"])

Both components are query-defined (SELECTs over SYS tables), so the
instantiation pipeline materialises each one ONCE into a scratch table
before the reachability fixpoint runs — the monitor observes a stable
snapshot instead of chasing its own footprints.
"""

from __future__ import annotations

from repro.xnf.lang.parser import parse_xnf_statements
from repro.xnf.views import resolve

#: Name under which the monitor view is registered.
MONITOR_VIEW_NAME = "SYS_MONITOR"

#: XNF source of the built-in monitor.  STATEMENTS is the sole root;
#: CALLS fans out to each statement's spans by fingerprint and SUBSPANS
#: (a cyclic self-edge, so path steps must name a role, e.g.
#: ``SUBSPANS[callee]``) walks down the span tree.
MONITOR_VIEW_SQL = """
CREATE VIEW SYS_MONITOR AS
  OUT OF
    STATEMENTS AS (SELECT * FROM SYS_STAT_STATEMENTS),
    SPANS AS (SELECT * FROM SYS_TRACE_SPANS),
    CALLS AS (RELATE STATEMENTS, SPANS
              WHERE STATEMENTS.fingerprint = SPANS.fingerprint),
    SUBSPANS AS (RELATE SPANS caller, SPANS callee
                 WHERE callee.parent_span_id = caller.span_id)
  TAKE *
"""


def install_monitor(session) -> bool:
    """Register the SYS_MONITOR view on *session* (idempotent).

    Returns True when the view is (now) present.  Silently skips when the
    underlying database lacks the SYS virtual tables (e.g. a stripped-down
    catalog in tests) so sessions never fail to construct over them.
    """
    if session.views.get(MONITOR_VIEW_NAME) is not None:
        return True
    catalog = session.db.catalog
    is_virtual = getattr(catalog, "is_virtual", None)
    if is_virtual is None or not is_virtual("SYS_STAT_STATEMENTS"):
        return False
    statement = parse_xnf_statements(MONITOR_VIEW_SQL)[0]
    # Same eager validation as XNFSession.execute()'s CREATE VIEW path.
    resolve(statement.query, session.views, MONITOR_VIEW_NAME)
    session.views.create(MONITOR_VIEW_NAME, statement.query)
    return True
