"""Materialized composite-object views (CO snapshots).

The paper's footnote in section 5: "Base (materialized) relationships are
part of XNF but not reported here due to space limitation."  This module
supplies that unreported piece in its natural generalisation: a whole CO
view can be *materialized* — its instance stored back into base tables
(one table per node, one link table per relationship, keyed by surrogate
row ids) — and later re-loaded into a cache without re-running the view's
derivation joins or the reachability fixpoint.

This is the CO analogue of a relational materialized view:

* :func:`materialize` — instantiate a view once and persist the instance,
* :func:`load` — rebuild a :class:`COCache` from the stored tables
  (surrogate-key equi-joins only; reachability holds by construction),
* :func:`refresh` — re-derive from the current base data and swap contents.

Surrogate keys make the stored form NULL-safe: a connection between tuples
with NULL key columns survives materialisation, which a value-based link
table could not guarantee (NULL never equi-joins).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import XNFError
from repro.relational.catalog import Column
from repro.relational.engine import Database
from repro.relational.types import INTEGER
from repro.relational.sql import ast as sql_ast
from repro.xnf.schema import COSchema, EdgeSchema, NodeSchema
from repro.xnf.semantic_rewrite import COInstance, _infer_type

#: surrogate-key column added to every materialized node table
RID_COLUMN = "xnf_rid"

_snapshot_ids = itertools.count(1)


@dataclass
class MaterializedCOView:
    """Handle to a stored CO snapshot."""

    name: str
    source_view: str
    node_tables: Dict[str, str] = field(default_factory=dict)
    edge_tables: Dict[str, str] = field(default_factory=dict)
    node_columns: Dict[str, List[str]] = field(default_factory=dict)
    edge_attribute_names: Dict[str, List[str]] = field(default_factory=dict)
    roots: List[str] = field(default_factory=list)
    tuple_count: int = 0
    connection_count: int = 0


def store_instance(
    db: Database, name: str, source_view: str, instance: COInstance
) -> MaterializedCOView:
    """Persist *instance* into base tables; returns the snapshot handle."""
    handle = MaterializedCOView(name, source_view)
    handle.roots = instance.schema.roots()
    for edge in instance.schema.edges.values():
        if not edge.is_binary:
            raise XNFError(
                f"snapshot of n-ary relationship {edge.name!r} is not "
                "supported"
            )
    rid_maps: Dict[str, Dict[tuple, int]] = {}
    for node_name, rows in instance.rows.items():
        columns = instance.columns[node_name]
        if any(col.upper() == RID_COLUMN.upper() for col in columns):
            raise XNFError(
                f"node {node_name} already has a {RID_COLUMN} column"
            )
        table_name = f"{name}_{node_name}".upper()
        column_defs = [Column(RID_COLUMN, INTEGER, nullable=False)]
        column_defs.extend(
            Column(col, _infer_type(rows, pos), nullable=True)
            for pos, col in enumerate(columns)
        )
        table = db.catalog.create_table(table_name, column_defs)
        table.add_index(f"idx_{table_name}_rid", [RID_COLUMN], unique=True)
        rid_map: Dict[tuple, int] = {}
        tagged: List[tuple] = []
        for rid, row in enumerate(rows, start=1):
            tagged.append((rid,) + row)
            rid_map[row] = rid
        table.insert_many(tagged)
        table.analyze()
        rid_maps[node_name] = rid_map
        handle.node_tables[node_name] = table_name
        handle.node_columns[node_name] = list(columns)
        handle.tuple_count += len(rows)

    for edge_name, connections in instance.connections.items():
        edge = instance.schema.edges[edge_name]
        attr_names = edge.attribute_names()
        table_name = f"{name}_{edge_name}".upper()
        column_defs = [
            Column("parent_rid", INTEGER, nullable=False),
            Column("child_rid", INTEGER, nullable=False),
        ]
        attr_rows = [attrs for _, _, attrs in connections]
        for pos, attr in enumerate(attr_names):
            column_defs.append(
                Column(attr, _infer_type(attr_rows, pos), nullable=True)
            )
        table = db.catalog.create_table(table_name, column_defs)
        table.add_index(f"idx_{table_name}_p", ["parent_rid"])
        table.add_index(f"idx_{table_name}_c", ["child_rid"])
        parent_map = rid_maps[edge.parent]
        child_map = rid_maps[edge.child]
        table.insert_many([
            (parent_map[parent_row], child_map[child_rows[0]]) + attrs
            for parent_row, child_rows, attrs in connections
        ])
        table.analyze()
        handle.edge_tables[edge_name] = table_name
        handle.edge_attribute_names[edge_name] = attr_names
        handle.connection_count += len(connections)
    return handle


def snapshot_schema(handle: MaterializedCOView, schema: COSchema) -> COSchema:
    """A CO definition over the snapshot tables.

    Node queries select the data columns *plus* the surrogate key (hidden
    from the application by a projection); relationships join purely on
    surrogate keys through the stored link tables.
    """
    result = COSchema(handle.name)
    for node_name, table_name in handle.node_tables.items():
        columns = handle.node_columns[node_name]
        # Reference the snapshot table directly (trivial node: no copy, and
        # generated SQL can use the surrogate-key indexes); the projection
        # hides the surrogate key from the application.
        node = NodeSchema(node_name, table=table_name)
        original = schema.nodes[node_name]
        node.projection = (
            list(original.projection) if original.projection else list(columns)
        )
        result.add_node(node)
    for edge_name, table_name in handle.edge_tables.items():
        original = schema.edges[edge_name]
        link_alias = "l"
        predicate: sql_ast.Expr = sql_ast.BinaryOp(
            "AND",
            sql_ast.BinaryOp(
                "=",
                sql_ast.ColumnRef(original.parent_binding, RID_COLUMN),
                sql_ast.ColumnRef(link_alias, "parent_rid"),
            ),
            sql_ast.BinaryOp(
                "=",
                sql_ast.ColumnRef(original.child_binding, RID_COLUMN),
                sql_ast.ColumnRef(link_alias, "child_rid"),
            ),
        )
        attributes = [
            (attr, sql_ast.ColumnRef(link_alias, attr))
            for attr in handle.edge_attribute_names[edge_name]
        ]
        from repro.xnf.lang import xast

        result.add_edge(
            EdgeSchema(
                edge_name,
                original.parent,
                original.child,
                predicate,
                attributes,
                [xast.UsingTable(table_name, link_alias)],
                original.parent_role,
                original.child_role,
            )
        )
    return result


def load_stored_instance(
    db: Database, handle: MaterializedCOView, schema: COSchema
) -> COInstance:
    """Rebuild the CO instance directly from the snapshot tables.

    The stored instance is *closed* under reachability by construction, so
    no derivation joins and no fixpoint are needed: one scan per node table
    plus one scan per link table reconstructs tuples and connections.  This
    is the fast path that makes materialized CO views pay off.
    """
    snap_schema = snapshot_schema(handle, schema)
    instance = COInstance(snap_schema)
    rid_rows: Dict[str, Dict[int, tuple]] = {}
    for node_name, table_name in handle.node_tables.items():
        table = db.catalog.get_table(table_name)
        columns = table.column_names()  # RID_COLUMN first, then data
        rows: List[tuple] = []
        by_rid: Dict[int, tuple] = {}
        for _, row in table.scan():
            rows.append(row)
            by_rid[row[0]] = row
        instance.columns[node_name] = columns
        instance.rows[node_name] = rows
        rid_rows[node_name] = by_rid
        instance.stats.queries_issued += 1
    for edge_name, table_name in handle.edge_tables.items():
        edge = snap_schema.edges[edge_name]
        table = db.catalog.get_table(table_name)
        connections = []
        parents = rid_rows[edge.parent]
        children = rid_rows[edge.child]
        for _, row in table.scan():
            parent_rid, child_rid = row[0], row[1]
            connections.append(
                (parents[parent_rid], (children[child_rid],), tuple(row[2:]))
            )
        instance.connections[edge_name] = connections
        instance.stats.queries_issued += 1
    return instance


def drop_snapshot(db: Database, handle: MaterializedCOView) -> None:
    for table_name in list(handle.node_tables.values()) + list(
        handle.edge_tables.values()
    ):
        db.catalog.drop_table(table_name, if_exists=True)
