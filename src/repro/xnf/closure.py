"""Closure property and the query classification of Fig. 6.

The paper's classification scheme:

1. **NF → XNF** — the CO constructor over regular tables,
2. **XNF → XNF** — the CO constructor over XNF views (COs in, CO out),
3. **XNF → NF** — a CO component consumed as a regular table,
4. **NF → NF** — plain SQL.

Types 1, 2 and 4 are recognised syntactically by :func:`classify`.
Type 3 is a bridge the API provides: :func:`materialize_node` turns a node
of a loaded CO back into a base table that any SQL query can reference —
closing the loop ("closure property gives the advantage of using the same
query language on base data as well as on derived data").
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional, Union

from repro.errors import ParseError, XNFError
from repro.relational.catalog import Column
from repro.relational.engine import Database
from repro.xnf.cache import COCache
from repro.xnf.lang import xast
from repro.xnf.lang.parser import parse_xnf_statements
from repro.relational.sql.parser import parse_statements as parse_sql_statements
from repro.xnf.semantic_rewrite import _infer_type


class QueryClass(enum.Enum):
    """The four query classes of Fig. 6."""

    NF_TO_XNF = 1
    XNF_TO_XNF = 2
    XNF_TO_NF = 3
    NF_TO_NF = 4


def classify(source: Union[str, xast.XNFStatement]) -> QueryClass:
    """Classify a statement per Fig. 6.

    A statement that parses as XNF is type 1 when it assembles its CO purely
    from node/relationship definitions, and type 2 when it builds on XNF
    views.  Plain SQL is type 4.  (Type 3 — consuming a CO as a table — is
    an API operation, :func:`materialize_node`, not a syntax form.)
    """
    statement = source
    if isinstance(source, str):
        statement = _parse_any(source)
        if statement is None:
            return QueryClass.NF_TO_NF
    query = statement.query if isinstance(statement, xast.CreateXNFView) else statement
    if isinstance(query, xast.XNFQuery):
        if any(isinstance(c, xast.ViewRef) for c in query.components):
            return QueryClass.XNF_TO_XNF
        return QueryClass.NF_TO_XNF
    return QueryClass.NF_TO_NF


def _parse_any(source: str) -> Optional[xast.XNFStatement]:
    stripped = source.lstrip().upper()
    if stripped.startswith("OUT"):
        return parse_xnf_statements(source)[0]
    if stripped.startswith("CREATE VIEW"):
        try:
            statements = parse_xnf_statements(source)
            if isinstance(statements[0], xast.CreateXNFView) and isinstance(
                statements[0].query, xast.XNFQuery
            ):
                return statements[0]
        except ParseError:
            pass
    try:
        parse_sql_statements(source)
        return None  # valid plain SQL
    except ParseError:
        return parse_xnf_statements(source)[0]


_materialize_ids = itertools.count(1)


def materialize_node(
    db: Database, cache: COCache, node: str, table_name: Optional[str] = None
) -> str:
    """Type-3 bridge: store a CO node's visible tuples as a base table.

    Returns the table name; the caller may then reference it from any SQL
    query (XNF → NF closure).
    """
    rows = [cached.values() for cached in cache.node(node)]
    columns = cache.visible_columns(node)
    if not columns:
        raise XNFError(f"node {node!r} has no visible columns")
    name = table_name or f"CO_{node}_{next(_materialize_ids)}".upper()
    column_defs = [
        Column(col, _infer_type(rows, pos), nullable=True)
        for pos, col in enumerate(columns)
    ]
    table = db.catalog.create_table(name, column_defs)
    table.insert_many(rows)
    return table.name
