"""SQL/XNF: the composite-object layer — the paper's contribution.

Modules, following the paper's own decomposition:

* :mod:`~repro.xnf.lang` — the XNF language (section 3): ``OUT OF … TAKE``
  CO constructor, ``RELATE`` relationship constructor, SUCH THAT node/edge
  restrictions, structural projection, path expressions, CO views, CO DML.
* :mod:`~repro.xnf.schema` — CO schema graphs: nodes, directed edges,
  roots, recursion, schema sharing, well-formedness (section 2).
* :mod:`~repro.xnf.views` — resolution of OUT OF clauses against the XNF
  view catalog into a self-contained CO definition (sections 3.2–3.4).
* :mod:`~repro.xnf.semantic_rewrite` — the *XNF semantic rewrite* of
  section 4.3: one generated SQL query per node and per edge, with common
  subexpressions materialised, and a semi-naive fixpoint for recursive COs.
* :mod:`~repro.xnf.stream` — the heterogeneous answer stream.
* :mod:`~repro.xnf.cache`, :mod:`~repro.xnf.cursors`,
  :mod:`~repro.xnf.paths` — the application cache: pointer-linked tuples,
  independent/dependent cursors, path-expression navigation (sections 3.5,
  3.7, 4.2).
* :mod:`~repro.xnf.restrict` — instance-level restriction evaluation for
  predicates containing path expressions.
* :mod:`~repro.xnf.manipulate` — udi-operations and connect/disconnect
  with propagation to base tables (section 3.7).
* :mod:`~repro.xnf.closure` — the four query classes of Fig. 6.
* :mod:`~repro.xnf.api` — :class:`~repro.xnf.api.XNFSession`, the public
  entry point.
"""

__all__ = ["XNFSession"]


def __getattr__(name: str):
    if name == "XNFSession":
        from repro.xnf.api import XNFSession

        return XNFSession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
