"""Cursors over the CO cache (sections 3.7 and 4.2).

Two kinds, exactly as the paper defines them:

* an **independent cursor** browses all tuples of one node;
* a **dependent cursor** is bound to another cursor through a path
  expression — opening it "gives only access to those employee tuples which
  are reachable from the department the cursor aDept currently points to".

Cursors are also Python iterables, so ``for emp in co.cursor("Xemp")``
works; ``fetch()`` / ``close()`` mirror the embedded-SQL style API of the
paper.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import CursorError, PathError
from repro.xnf.cache import CachedTuple, COCache
from repro.xnf.lang import xast
from repro.xnf.lang.parser import XNFParser
from repro.xnf.paths import evaluate_path


def parse_path_steps(path: str) -> List[xast.PathStep]:
    """Parse a path fragment like ``employment->Xemp->projmanagement``."""
    parser = XNFParser(f"__start__->{path}")
    expr = parser._parse_path_expr()
    if parser.peek().kind != "EOF":
        raise PathError(f"trailing input after path {path!r}")
    return expr.steps


class Cursor:
    """Common cursor behaviour: open/fetch/close and iteration."""

    def __init__(self, cache: COCache):
        self.cache = cache
        self._tuples: List[CachedTuple] = []
        self._position = -1
        self._open = False

    # -- the embedded-SQL-style interface ------------------------------------------

    def open(self) -> "Cursor":
        self._tuples = self._compute_tuples()
        self._position = -1
        self._open = True
        return self

    def fetch(self) -> Optional[CachedTuple]:
        """Advance and return the next tuple, or None when exhausted."""
        if not self._open:
            raise CursorError("fetch on a closed cursor")
        while self._position + 1 < len(self._tuples):
            self._position += 1
            cached = self._tuples[self._position]
            if cached.alive:
                return cached
        return None

    @property
    def current(self) -> Optional[CachedTuple]:
        if not self._open or self._position < 0:
            return None
        if self._position >= len(self._tuples):
            return None
        cached = self._tuples[self._position]
        return cached if cached.alive else None

    def rewind(self) -> None:
        if not self._open:
            raise CursorError("rewind on a closed cursor")
        self._position = -1

    def close(self) -> None:
        self._open = False
        self._tuples = []
        self._position = -1

    def __iter__(self) -> Iterator[CachedTuple]:
        if not self._open:
            self.open()
        while True:
            cached = self.fetch()
            if cached is None:
                return
            yield cached

    def __enter__(self) -> "Cursor":
        return self.open()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- subclass hook ---------------------------------------------------------------

    def _compute_tuples(self) -> List[CachedTuple]:
        raise NotImplementedError


class IndependentCursor(Cursor):
    """Browses all live tuples of one node."""

    def __init__(self, cache: COCache, node: str):
        super().__init__(cache)
        if node not in cache.tuples:
            raise CursorError(f"unknown node {node!r}")
        self.node = node

    def _compute_tuples(self) -> List[CachedTuple]:
        return self.cache.node(self.node)

    def __repr__(self) -> str:
        return f"IndependentCursor({self.node})"


class DependentCursor(Cursor):
    """Bound to a parent cursor through a path expression.

    Reopening after the parent cursor moves re-evaluates the path from the
    parent's new position; :meth:`refresh` is a convenience for that.
    """

    def __init__(self, cache: COCache, parent: Cursor, path: str):
        super().__init__(cache)
        self.parent = parent
        self.path_text = path
        self.steps = parse_path_steps(path)

    def _compute_tuples(self) -> List[CachedTuple]:
        anchor = self.parent.current
        if anchor is None:
            raise CursorError(
                "dependent cursor opened while its parent cursor is not "
                "positioned on a tuple"
            )
        path = xast.PathExpr(anchor.node, self.steps)
        return evaluate_path(self.cache, path, {anchor.node: anchor, "__anchor__": anchor})

    def refresh(self) -> "DependentCursor":
        """Re-open against the parent cursor's current position."""
        self.open()
        return self

    def __repr__(self) -> str:
        return f"DependentCursor({self.path_text})"
