"""Public API: :class:`XNFSession` and :class:`CompositeObject`.

This is the "XNF Application Language Interface" of Fig. 7: applications
hand XNF text to the session, receive a :class:`CompositeObject` whose
cache they browse with cursors and path expressions, manipulate its tuples
and relationships, and share the underlying relational database with plain
SQL applications (which need no change whatsoever).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Union

from repro.errors import XNFError
from repro.relational.engine import Database
from repro.xnf import closure as closure_mod
from repro.xnf.cache import CachedTuple, COCache, Connection
from repro.xnf.cursors import DependentCursor, IndependentCursor
from repro.xnf.lang import xast
from repro.xnf.lang.parser import parse_xnf_statements
from repro.xnf.manipulate import Manipulator
from repro.xnf.monitor import install_monitor
from repro.xnf.paths import evaluate_path
from repro.xnf.restrict import apply_instance_restrictions
from repro.xnf.semantic_rewrite import InstantiationStats, XNFCompiler
from repro.xnf.views import XNFViewCatalog, apply_take, resolve


class CompositeObject:
    """A loaded composite object: cache + cursors + manipulation."""

    def __init__(self, session: "XNFSession", cache: COCache):
        self.session = session
        self.cache = cache
        self.manipulator = Manipulator(
            session.db, cache, deferred=session.deferred_propagation
        )

    # -- structure ---------------------------------------------------------------

    @property
    def schema(self):
        return self.cache.schema

    def nodes(self) -> List[str]:
        return self.cache.node_names()

    def edges(self) -> List[str]:
        return self.cache.edge_names()

    def node(self, name: str) -> List[CachedTuple]:
        return self.cache.node(name)

    def connections(self, edge: str) -> List[Connection]:
        return self.cache.connections_of(edge)

    def find(self, node: str, **criteria: Any) -> Optional[CachedTuple]:
        return self.cache.find(node, **criteria)

    def find_all(self, node: str, **criteria: Any) -> List[CachedTuple]:
        return self.cache.find_all(node, **criteria)

    def summary(self) -> str:
        return self.cache.summary()

    # -- navigation ---------------------------------------------------------------

    def cursor(self, node: str) -> IndependentCursor:
        """Open an independent cursor on a node."""
        return self.cache.cursor(node).open()  # type: ignore[return-value]

    def dependent_cursor(self, parent_cursor, path: str) -> DependentCursor:
        """Open a cursor bound to *parent_cursor* through *path*."""
        return self.cache.dependent_cursor(parent_cursor, path).open()  # type: ignore[return-value]

    def path(
        self, start: Union[CachedTuple, str], path_text: str
    ) -> List[CachedTuple]:
        """Evaluate a path expression; *start* is a tuple or a node name."""
        from repro.xnf.cursors import parse_path_steps

        steps = parse_path_steps(path_text)
        if isinstance(start, CachedTuple):
            expr = xast.PathExpr(start.node, steps)
            return evaluate_path(self.cache, expr, {start.node: start})
        expr = xast.PathExpr(start, steps)
        return evaluate_path(self.cache, expr)

    # -- manipulation (section 3.7) ---------------------------------------------------

    def update(self, cached: CachedTuple, **changes: Any) -> None:
        self.manipulator.update(cached, changes)

    def delete(self, cached: CachedTuple) -> None:
        self.manipulator.delete(cached)

    def insert(self, node: str, **values: Any) -> CachedTuple:
        return self.manipulator.insert(node, values)

    def connect(
        self,
        edge: str,
        parent: CachedTuple,
        child: CachedTuple,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Connection:
        return self.manipulator.connect(edge, parent, child, attributes)

    def disconnect(self, conn: Connection) -> None:
        self.manipulator.disconnect(conn)

    def flush(self) -> int:
        """Apply deferred base-table propagation; returns statements run."""
        return self.manipulator.flush()

    # -- closure (type-3 queries) --------------------------------------------------------

    def to_table(self, node: str, table_name: Optional[str] = None) -> str:
        """Materialise a node as a base table for plain SQL (XNF → NF)."""
        return closure_mod.materialize_node(
            self.session.db, self.cache, node, table_name
        )

    def __repr__(self) -> str:
        return (
            f"CompositeObject({self.schema.name or '<anonymous>'}: "
            f"{self.cache.total_tuples()} tuples, "
            f"{self.cache.total_connections()} connections)"
        )


class XNFSession:
    """An XNF session over a relational database.

    Parameters
    ----------
    db:
        The shared relational database (plain SQL applications keep using
        it directly — Fig. 7's shared-database architecture).
    reuse_common:
        Materialise node candidate sets once and share them across the
        generated queries (paper section 4.3); disable for the E3 ablation.
    semi_naive:
        Evaluate recursive reachability semi-naively; disable for the E6
        ablation (full re-join per round).
    deferred_propagation:
        Queue manipulation propagation until ``CompositeObject.flush()``.
    max_rounds / max_rows / timeout_s:
        Execution guards on the reachability fixpoint: a recursive CO that
        exceeds any of them aborts with
        :class:`~repro.errors.ResourceExhaustedError`, leaving the catalog,
        scratch-table pool and plan cache consistent.  ``None`` disables a
        guard.
    """

    def __init__(
        self,
        db: Database,
        reuse_common: bool = True,
        semi_naive: bool = True,
        deferred_propagation: bool = False,
        max_rounds: Optional[int] = None,
        max_rows: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ):
        self.db = db
        self.views = XNFViewCatalog()
        self.reuse_common = reuse_common
        self.semi_naive = semi_naive
        self.deferred_propagation = deferred_propagation
        self.max_rounds = max_rounds
        self.max_rows = max_rows
        self.timeout_s = timeout_s
        self.last_stats: Optional[InstantiationStats] = None
        # name -> (handle, resolved source schema); see materialize_view()
        self._snapshots: Dict[str, tuple] = {}
        # Built-in self-monitoring CO over the SYS_* tables (no-op when the
        # database's catalog lacks them).
        install_monitor(self)

    # -- statement execution -------------------------------------------------------

    def execute(
        self, source: Union[str, xast.XNFStatement]
    ) -> Union[CompositeObject, int, None]:
        """Execute one XNF statement.

        Returns a :class:`CompositeObject` for TAKE queries, the affected
        tuple count for CO-level DELETE/UPDATE, and None for view DDL.
        """
        statements = (
            parse_xnf_statements(source) if isinstance(source, str) else [source]
        )
        if len(statements) != 1:
            raise XNFError("execute() takes exactly one XNF statement")
        statement = statements[0]
        if isinstance(statement, xast.CreateXNFView):
            # Validate eagerly: resolving catches unknown views/components.
            resolve(statement.query, self.views, statement.name)
            self.views.create(statement.name, statement.query)
            return None
        if isinstance(statement, xast.DropXNFView):
            self.views.drop(statement.name, statement.if_exists)
            return None
        assert isinstance(statement, xast.XNFQuery)
        if statement.action == "TAKE":
            return self._run_take(statement)
        if statement.action == "DELETE":
            return self._run_co_delete(statement)
        if statement.action == "UPDATE":
            return self._run_co_update(statement)
        raise XNFError(f"unknown XNF action {statement.action!r}")

    def query(self, source: Union[str, xast.XNFQuery]) -> CompositeObject:
        result = self.execute(source)
        if not isinstance(result, CompositeObject):
            raise XNFError("query() expects a TAKE query")
        return result

    def create_view(self, source: str) -> None:
        statement = parse_xnf_statements(source)[0]
        if not isinstance(statement, xast.CreateXNFView):
            raise XNFError("create_view() expects CREATE VIEW ... AS OUT OF ...")
        self.execute(statement)

    def classify(self, source: Union[str, xast.XNFStatement]) -> closure_mod.QueryClass:
        """Fig. 6 query classification."""
        return closure_mod.classify(source)

    def explain_analyze(self, source: str) -> str:
        """Run a TAKE query instrumented and render its full span tree.

        The rendering shows the XNF pipeline end to end: one span per
        reachability fixpoint round (with its delta-row count), every
        generated SQL statement with its per-operator actual row counts
        (the engine's analyze mode compiles them uncached and
        instrumented), aggregated per-stage timings, and the plan-cache
        counters.
        """
        db = self.db
        start = time.perf_counter()
        statements = parse_xnf_statements(source)
        parse_s = time.perf_counter() - start
        if len(statements) != 1 or not isinstance(statements[0], xast.XNFQuery):
            raise XNFError("explain_analyze() expects a single TAKE query")
        saved = (db.tracer.enabled, db.analyze_statements, db.tracer.sample_rate)
        db.tracer.enabled = True
        db.analyze_statements = True
        db.tracer.sample_rate = 1.0
        try:
            # Capture the take's spans under our own wrapper rather than
            # reading tracer.last_trace afterwards: when an outer span is
            # already open (the wire server's wire.<op> statement span),
            # the take's spans are children of it and no new root would
            # complete.  The wrapper subtree is the trace either way.
            db.tracer.force_sample()
            begin = time.perf_counter()
            with db.tracer.span("xnf.explain_analyze") as wrapper:
                if not wrapper.sampled:  # adopted an unsampled context
                    wrapper.sampled = True
                    wrapper.annotate(sampled="late")
                self._run_take(statements[0])
            total_s = time.perf_counter() - begin
        finally:
            db.tracer.enabled, db.analyze_statements, db.tracer.sample_rate = saved
        trace = wrapper
        stages = {"parse": parse_s}
        for name in ("build_qgm", "rewrite", "optimize", "execute"):
            stages[name] = sum(span.duration_s for span in trace.find(name))
        lines = trace.render().splitlines()
        lines.append(
            "stages: "
            + " ".join(f"{k}={v * 1e3:.3f}ms" for k, v in stages.items())
        )
        lines.append(
            f"fixpoint rounds: {len(trace.find('xnf.fixpoint.round'))}  "
            f"total: {total_s * 1e3:.3f}ms"
        )
        stats = db.plan_cache.stats()
        lines.append(
            "plan cache: hits=%d misses=%d invalidations=%d entries=%d"
            % (
                stats["hits"],
                stats["misses"],
                stats["invalidations"],
                stats["entries"],
            )
        )
        return "\n".join(lines)

    def describe(self, source: str) -> str:
        """Resolve a query and render its CO schema graph."""
        statement = parse_xnf_statements(source)[0]
        query = (
            statement.query
            if isinstance(statement, xast.CreateXNFView)
            else statement
        )
        schema = resolve(query, self.views)
        return schema.describe()

    # -- materialized CO views (the paper's footnote-1 extension) ------------------

    def materialize_view(
        self, view_name: str, snapshot_name: Optional[str] = None
    ):
        """Instantiate an XNF view once and persist its instance.

        Returns a :class:`~repro.xnf.materialize.MaterializedCOView`
        handle.  :meth:`load_snapshot` then rebuilds the CO from the stored
        tables with cheap surrogate-key joins — no view derivation, no
        reachability fixpoint.
        """
        from repro.xnf import materialize as mat

        stored = self.views.get(view_name)
        if stored is None:
            raise XNFError(f"unknown XNF view {view_name!r}")
        schema = resolve(stored, self.views, view_name)
        compiler = XNFCompiler(
            self.db,
            reuse_common=self.reuse_common,
            semi_naive=self.semi_naive,
            max_rounds=self.max_rounds,
            max_rows=self.max_rows,
            timeout_s=self.timeout_s,
        )
        instance = compiler.instantiate(schema)
        self.last_stats = compiler.stats
        name = (snapshot_name or f"SNAP_{view_name}").upper().replace("-", "_")
        if name in self._snapshots:
            raise XNFError(f"snapshot {name} already exists")
        handle = mat.store_instance(self.db, name, view_name, instance)
        self._snapshots[name] = (handle, schema)
        return handle

    def load_snapshot(self, name: str) -> CompositeObject:
        """Rebuild a CO from a snapshot's stored tables.

        The stored instance is closed under reachability, so loading is one
        scan per stored table — no derivation joins, no fixpoint."""
        from repro.xnf import materialize as mat

        handle, schema = self._get_snapshot(name)
        instance = mat.load_stored_instance(self.db, handle, schema)
        self.last_stats = instance.stats
        return CompositeObject(self, COCache.load(instance))

    def refresh_snapshot(self, name: str):
        """Re-derive the snapshot from the current base data."""
        from repro.xnf import materialize as mat

        handle, schema = self._get_snapshot(name)
        mat.drop_snapshot(self.db, handle)
        del self._snapshots[handle.name]
        return self.materialize_view(handle.source_view, handle.name)

    def drop_snapshot(self, name: str) -> None:
        from repro.xnf import materialize as mat

        handle, _ = self._get_snapshot(name)
        mat.drop_snapshot(self.db, handle)
        del self._snapshots[handle.name]

    def snapshots(self) -> List[str]:
        return sorted(self._snapshots)

    def _get_snapshot(self, name: str):
        entry = self._snapshots.get(name.upper().replace("-", "_"))
        if entry is None:
            raise XNFError(f"unknown snapshot {name!r}")
        return entry

    # -- internals -------------------------------------------------------------------

    def _instantiate(self, query: xast.XNFQuery) -> COCache:
        schema = resolve(query, self.views)
        compiler = XNFCompiler(
            self.db,
            reuse_common=self.reuse_common,
            semi_naive=self.semi_naive,
            max_rounds=self.max_rounds,
            max_rows=self.max_rows,
            timeout_s=self.timeout_s,
        )
        instance = compiler.instantiate(schema)
        self.last_stats = compiler.stats
        cache = COCache.load(instance)
        if schema.instance_restrictions:
            apply_instance_restrictions(cache, schema.instance_restrictions)
        pending_take = getattr(schema, "pending_take", None)
        if pending_take is not None:
            projected = apply_take(schema, pending_take)
            projected.validate()
            cache.project(projected)
        return cache

    def _run_take(self, query: xast.XNFQuery) -> CompositeObject:
        cache = self._instantiate(query)
        return CompositeObject(self, cache)

    def _run_co_delete(self, query: xast.XNFQuery) -> int:
        """CO deletion (section 3.7): remove the target CO's tuples and
        connections from their base tables."""
        co = CompositeObject(self, self._instantiate(query))
        manipulator = co.manipulator
        removed = 0
        # Link rows of M:N relationships go first.
        for edge_name in co.edges():
            if manipulator.edge_info(edge_name).kind == "mn":
                for conn in co.connections(edge_name):
                    manipulator.disconnect(conn)
        for node_name in co.nodes():
            info = manipulator.node_info(node_name)
            if not info.updatable:
                raise XNFError(
                    f"CO DELETE: node {node_name} is not updatable ({info.reason})"
                )
            for cached in list(co.node(node_name)):
                where = manipulator._match_predicate(info, cached)
                from repro.relational.sql import ast as sql_ast

                manipulator._emit(sql_ast.DeleteStmt(info.base_table, where))
                co.cache.remove_tuple(cached)
                removed += 1
        if self.deferred_propagation:
            manipulator.flush()
        return removed

    def _run_co_update(self, query: xast.XNFQuery) -> int:
        from repro.xnf.paths import eval_instance_expr

        co = CompositeObject(self, self._instantiate(query))
        node = query.update_node
        if node not in co.cache.tuples:
            raise XNFError(f"CO UPDATE: unknown node {node!r}")
        updated = 0
        for cached in list(co.node(node)):
            changes = {}
            for column, expr in query.update_assignments:
                bindings = {node: cached}
                changes[column] = eval_instance_expr(expr, bindings, co.cache)
            co.manipulator.update(cached, changes)
            updated += 1
        if self.deferred_propagation:
            co.manipulator.flush()
        return updated
