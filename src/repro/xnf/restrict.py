"""Instance-level restriction evaluation.

SUCH THAT predicates that contain path expressions (section 3.5's queries)
cannot be folded into the generated SQL — they quantify over the CO's own
instance.  They are therefore evaluated against the loaded cache: failing
tuples/connections are removed, then the reachability constraint is
re-enforced, exactly the semantics the paper walks through for Fig. 5.
"""

from __future__ import annotations

from typing import List

from repro.errors import XNFError
from repro.xnf.cache import COCache
from repro.xnf.lang import xast
from repro.xnf.paths import eval_instance_expr


def apply_instance_restrictions(
    cache: COCache, restrictions: List[xast.Restriction]
) -> int:
    """Apply path-bearing restrictions to *cache* in place.

    All predicates are evaluated against the *unrestricted* instance first
    (simultaneous semantics — a department dropped by one restriction still
    counts inside another restriction's COUNT), then the survivors are
    committed and reachability is recomputed.  Returns tuples dropped.
    """
    doomed_tuples = []
    doomed_connections = []
    for restriction in restrictions:
        if isinstance(restriction, xast.NodeRestriction):
            alias = restriction.alias or restriction.node
            for cached in cache.node(restriction.node):
                bindings = {alias: cached, restriction.node: cached}
                if (
                    eval_instance_expr(restriction.predicate, bindings, cache)
                    is not True
                ):
                    doomed_tuples.append(cached)
        elif isinstance(restriction, xast.EdgeRestriction):
            edge = cache.schema.edges.get(restriction.edge)
            if edge is not None and not edge.is_binary:
                raise XNFError(
                    "edge restriction on n-ary relationship "
                    f"{restriction.edge!r} is not supported"
                )
            for conn in cache.connections_of(restriction.edge):
                bindings = {
                    restriction.parent_alias: conn.parent,
                    restriction.child_alias: conn.child,
                }
                predicate = _substitute_attrs(restriction, conn)
                if eval_instance_expr(predicate, bindings, cache) is not True:
                    doomed_connections.append(conn)
        else:  # pragma: no cover
            raise XNFError(f"unknown restriction {restriction!r}")
    for conn in doomed_connections:
        conn.alive = False
    dropped = 0
    for cached in doomed_tuples:
        if cached.alive:
            cache.remove_tuple(cached)
            dropped += 1
    dropped += cache.recompute_reachability()
    return dropped


def _substitute_attrs(restriction: xast.EdgeRestriction, conn):
    """Replace references to connection attributes by their values."""
    from repro.relational.sql import ast as sql_ast

    if not conn.attributes:
        return restriction.predicate

    def rewrite(expr):
        if isinstance(expr, sql_ast.ColumnRef):
            if expr.table is None and expr.column in conn.attributes:
                return sql_ast.Literal(conn.attributes[expr.column])
            if (
                expr.table is not None
                and expr.table.upper() == restriction.edge.upper()
                and expr.column in conn.attributes
            ):
                return sql_ast.Literal(conn.attributes[expr.column])
            return expr
        if isinstance(expr, sql_ast.BinaryOp):
            return sql_ast.BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, sql_ast.UnaryOp):
            return sql_ast.UnaryOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, sql_ast.IsNull):
            return sql_ast.IsNull(rewrite(expr.operand), expr.negated)
        if isinstance(expr, sql_ast.Between):
            return sql_ast.Between(
                rewrite(expr.operand),
                rewrite(expr.low),
                rewrite(expr.high),
                expr.negated,
            )
        if isinstance(expr, sql_ast.InList):
            return sql_ast.InList(
                rewrite(expr.operand),
                [rewrite(i) for i in expr.items],
                expr.negated,
            )
        if isinstance(expr, sql_ast.FuncCall):
            return sql_ast.FuncCall(
                expr.name,
                [rewrite(a) for a in expr.args],
                distinct=expr.distinct,
                star=expr.star,
            )
        return expr

    return rewrite(restriction.predicate)
