"""The heterogeneous answer stream.

Section 4.3: "Regular output processing of SQL is modified to allow
generation of a heterogeneous set of tuples in the answer set (generation
of tuples belonging to different nodes and relationships)" — and parent
tuples are sent to the output as soon as they are computed.

:func:`heterogeneous_stream` linearises a :class:`COInstance` into exactly
that: tagged items, node tuples in parent-before-child (BFS from the roots)
order, each node's connections following its tuples, so a single pass is
enough to build the cache's pointer structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Tuple, Union

from repro.xnf.semantic_rewrite import COInstance

#: stream item kinds
TUPLE = "tuple"
CONNECTION = "connection"
SCHEMA = "schema"


@dataclass(frozen=True)
class SchemaItem:
    """Header item: component layout, sent before any data."""

    kind: str
    component: str
    columns: Tuple[str, ...]


@dataclass(frozen=True)
class TupleItem:
    component: str
    row: Tuple[Any, ...]


@dataclass(frozen=True)
class ConnectionItem:
    component: str
    parent_row: Tuple[Any, ...]
    #: one row per child partner (a 1-tuple for binary relationships)
    child_rows: Tuple[Tuple[Any, ...], ...]
    attributes: Tuple[Any, ...]

    @property
    def child_row(self) -> Tuple[Any, ...]:
        """Convenience accessor for binary relationships."""
        return self.child_rows[0]


StreamItem = Union[SchemaItem, TupleItem, ConnectionItem]


def heterogeneous_stream(instance: COInstance) -> Iterator[StreamItem]:
    """Linearise *instance* into a tagged stream.

    Order: schema headers, then nodes in BFS order from the roots (parents
    before children, so the cache can wire pointers as connections arrive),
    each followed by the connections of the edges arriving *into* the nodes
    already emitted.
    """
    schema = instance.schema
    for name in schema.nodes:
        yield SchemaItem("node", name, tuple(instance.columns[name]))
    for edge in schema.edges.values():
        yield SchemaItem(
            "edge", edge.name, tuple(name for name, _ in edge.attributes)
        )

    emitted: List[str] = []
    remaining = set(schema.nodes)
    frontier = [name for name in schema.roots() if name in remaining]
    emitted_edges = set()
    while frontier or remaining:
        if not frontier:  # disconnected or cyclic leftovers
            frontier = [next(iter(remaining))]
        next_frontier: List[str] = []
        for name in frontier:
            if name not in remaining:
                continue
            remaining.discard(name)
            emitted.append(name)
            for row in instance.rows[name]:
                yield TupleItem(name, row)
            for edge in schema.edges.values():
                if edge.name in emitted_edges:
                    continue
                partners_pending = edge.parent in remaining or any(
                    child in remaining for child in edge.child_names()
                )
                if not partners_pending:
                    emitted_edges.add(edge.name)
                    for parent_row, child_rows, attrs in instance.connections[
                        edge.name
                    ]:
                        yield ConnectionItem(
                            edge.name, parent_row, child_rows, attrs
                        )
            for edge in schema.edges.values():
                if edge.parent == name:
                    for child in edge.child_names():
                        if child in remaining:
                            next_frontier.append(child)
        frontier = next_frontier
