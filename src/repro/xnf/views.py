"""Resolution of OUT OF clauses into composite-object schemas.

Implements sections 3.1–3.4: assembling a CO from node / relationship
definitions and references to existing XNF views (views over views),
classifying SUCH THAT restrictions into schema-pushable ones (folded into
the component derivations, like the paper's translation does) and
instance-level ones (predicates with path expressions, evaluated against
the instantiated CO), and applying the TAKE structural projection.

Projection semantics follow Fig. 5 exactly: components are removed *before*
reachability is evaluated ("project p1 is not in the result since it is not
reachable anymore"), and edges whose partner tables are projected away are
discarded implicitly (well-formedness).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import SchemaGraphError, XNFError
from repro.relational.sql import ast as sql_ast
from repro.xnf.lang import xast
from repro.xnf.schema import COSchema, EdgeSchema, NodeSchema


class XNFViewCatalog:
    """Registry of named XNF views (CO views, section 3.2)."""

    def __init__(self):
        self._views: Dict[str, xast.XNFQuery] = {}

    def create(self, name: str, query: xast.XNFQuery) -> None:
        key = name.upper()
        if key in self._views:
            raise SchemaGraphError(f"XNF view {name} already exists")
        self._views[key] = query

    def drop(self, name: str, if_exists: bool = False) -> None:
        key = name.upper()
        if key not in self._views:
            if if_exists:
                return
            raise SchemaGraphError(f"no XNF view named {name}")
        del self._views[key]

    def get(self, name: str) -> Optional[xast.XNFQuery]:
        return self._views.get(name.upper())

    def names(self) -> List[str]:
        return sorted(self._views)


def contains_path(expr: sql_ast.Expr) -> bool:
    """True if *expr* contains a path expression anywhere."""
    return any(
        isinstance(node, xast.PathExpr) for node in sql_ast.walk_expr(expr)
    )


def resolve(
    query: xast.XNFQuery,
    views: XNFViewCatalog,
    name: str = "",
    _depth: int = 0,
) -> COSchema:
    """Flatten *query* into a self-contained :class:`COSchema`.

    View references pull in the full (restricted, projected) definition of
    the referenced view; restrictions and TAKE of *query* then apply on top,
    which is exactly the layered-abstraction story of section 3.2.
    """
    if _depth > 32:
        raise SchemaGraphError("XNF view nesting too deep (cycle?)")
    schema = COSchema(name)
    for component in query.components:
        if isinstance(component, xast.ViewRef):
            stored = views.get(component.name)
            if stored is None:
                raise SchemaGraphError(f"unknown XNF view {component.name!r}")
            inner = resolve(stored, views, component.name, _depth + 1)
            _merge(schema, inner)
        elif isinstance(component, xast.NodeDef):
            schema.add_node(
                NodeSchema(component.name, component.query, component.table)
            )
        elif isinstance(component, xast.RelationshipDef):
            schema.add_edge(
                EdgeSchema(
                    component.name,
                    component.parent,
                    component.child,
                    component.predicate,
                    list(component.attributes),
                    list(component.using),
                    component.parent_role,
                    component.child_role,
                    list(component.extra_partners),
                )
            )
        else:  # pragma: no cover
            raise XNFError(f"unknown component {component!r}")

    for restriction in query.restrictions:
        _apply_restriction(schema, restriction)

    take = query.take
    if take is None or isinstance(take, xast.TakeAll):
        schema.validate()
        return schema
    if schema.instance_restrictions:
        # Projection must wait until the instance-level restrictions have
        # been evaluated against the full CO; record it for the API layer.
        schema.pending_take = take  # type: ignore[attr-defined]
        schema.validate()
        return schema
    projected = apply_take(schema, take)
    projected.validate()
    return projected


def _merge(schema: COSchema, inner: COSchema) -> None:
    for node in inner.nodes.values():
        schema.add_node(node.copy())
    for edge in inner.edges.values():
        schema.add_edge(edge.copy())
    schema.instance_restrictions.extend(inner.instance_restrictions)


def _apply_restriction(schema: COSchema, restriction: xast.Restriction) -> None:
    if contains_path(restriction.predicate):
        _check_restriction_target(schema, restriction)
        schema.instance_restrictions.append(restriction)
        return
    if isinstance(restriction, xast.NodeRestriction):
        node = schema.nodes.get(restriction.node)
        if node is None:
            raise SchemaGraphError(
                f"restriction on unknown node {restriction.node!r}"
            )
        alias = restriction.alias or restriction.node
        node.restrictions.append((alias, restriction.predicate))
        return
    edge = schema.edges.get(restriction.edge)
    if edge is None:
        raise SchemaGraphError(
            f"restriction on unknown relationship {restriction.edge!r}"
        )
    if not edge.is_binary:
        raise SchemaGraphError(
            f"edge restriction on n-ary relationship {edge.name!r} is not "
            "supported: restrict the partner nodes instead"
        )
    rewritten = _rewrite_edge_restriction(edge, restriction)
    edge.predicate = (
        rewritten
        if edge.predicate is None
        else sql_ast.BinaryOp("AND", edge.predicate, rewritten)
    )


def _check_restriction_target(
    schema: COSchema, restriction: xast.Restriction
) -> None:
    if isinstance(restriction, xast.NodeRestriction):
        if restriction.node not in schema.nodes:
            raise SchemaGraphError(
                f"restriction on unknown node {restriction.node!r}"
            )
    else:
        if restriction.edge not in schema.edges:
            raise SchemaGraphError(
                f"restriction on unknown relationship {restriction.edge!r}"
            )


def _rewrite_edge_restriction(
    edge: EdgeSchema, restriction: xast.EdgeRestriction
) -> sql_ast.Expr:
    """Map the restriction's (parent, child) aliases onto the edge bindings
    and substitute relationship-attribute references by their defining
    expressions."""
    attr_map = dict(edge.attributes)
    alias_map = {
        restriction.parent_alias.upper(): edge.parent_binding,
        restriction.child_alias.upper(): edge.child_binding,
    }

    def rewrite(expr: sql_ast.Expr) -> sql_ast.Expr:
        if isinstance(expr, sql_ast.ColumnRef):
            if expr.table is None and expr.column in attr_map:
                return attr_map[expr.column]
            if expr.table is not None:
                upper = expr.table.upper()
                if upper in alias_map:
                    return sql_ast.ColumnRef(alias_map[upper], expr.column)
                if upper == edge.name.upper() and expr.column in attr_map:
                    return attr_map[expr.column]
            return expr
        if isinstance(expr, sql_ast.Literal):
            return expr
        if isinstance(expr, sql_ast.BinaryOp):
            return sql_ast.BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, sql_ast.UnaryOp):
            return sql_ast.UnaryOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, sql_ast.IsNull):
            return sql_ast.IsNull(rewrite(expr.operand), expr.negated)
        if isinstance(expr, sql_ast.Between):
            return sql_ast.Between(
                rewrite(expr.operand),
                rewrite(expr.low),
                rewrite(expr.high),
                expr.negated,
            )
        if isinstance(expr, sql_ast.InList):
            return sql_ast.InList(
                rewrite(expr.operand),
                [rewrite(item) for item in expr.items],
                expr.negated,
            )
        if isinstance(expr, sql_ast.FuncCall):
            return sql_ast.FuncCall(
                expr.name,
                [rewrite(arg) for arg in expr.args],
                distinct=expr.distinct,
                star=expr.star,
            )
        if isinstance(expr, sql_ast.Case):
            return sql_ast.Case(
                [(rewrite(c), rewrite(r)) for c, r in expr.whens],
                rewrite(expr.else_result) if expr.else_result is not None else None,
            )
        return expr

    return rewrite(restriction.predicate)


def apply_take(
    schema: COSchema, take: Union[xast.TakeAll, List[xast.TakeItem]]
) -> COSchema:
    """Structural projection: keep the listed components.

    Relationships survive only when both partner tables survive
    (well-formedness — the paper's implicit discard of 'ownership' once
    Xproj is gone).  Node column lists become presentation projections.
    """
    if isinstance(take, xast.TakeAll):
        return schema
    result = COSchema(schema.name)
    taken_nodes: Dict[str, Optional[List[str]]] = {}
    taken_edges: List[str] = []
    for item in take:
        if item.name in schema.nodes:
            columns = item.columns
            if columns == ["*"]:
                columns = None
            taken_nodes[item.name] = columns
        elif item.name in schema.edges:
            taken_edges.append(item.name)
        else:
            raise SchemaGraphError(f"TAKE of unknown component {item.name!r}")
    for name, columns in taken_nodes.items():
        node = schema.nodes[name].copy()
        if columns is not None:
            node.projection = columns
        result.nodes[name] = node
    for name in taken_edges:
        edge = schema.edges[name]
        partners_present = edge.parent in taken_nodes and all(
            child in taken_nodes for child in edge.child_names()
        )
        if partners_present:
            result.edges[name] = edge.copy()
        # else: implicit discard (partner table projected away)
    result.instance_restrictions = []
    return result
