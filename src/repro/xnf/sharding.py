"""Scatter/gather execution of XNF generated queries over sharded tables.

The semantic rewrite produces one query per node/edge (see
``semantic_rewrite.py``); when such a query reads a
:class:`~repro.relational.catalog.ShardedTable`, this module

* **scatters** a node's candidate query across the table's shard views —
  skipping shards whose partition bounds / zone maps prove the query's
  restriction predicate unsatisfiable there (the work reduction that makes
  partitioned extraction pay off on a single core), running the remaining
  per-shard queries on a thread pool when no ambient transaction pins the
  calling thread's snapshot, and gathering results in shard order so the
  row order matches the facade's chained scan exactly;
* **partitions** semi-naive fixpoint deltas by the partition key of the
  edge's USING table, materialising one ``XNF_DELTA_<node>_S<i>`` scratch
  worktable per shard and skipping shards whose delta partition is empty —
  the per-round delta exchange of partition-aware reachability.

Both transformations are pure work-splitting: a scatter is a union of
disjoint shard reads and a delta partition is a partition of the join's
outer side, so results are identical to the unsharded plan (the equivalence
suite asserts bit-identical instances).
"""

from __future__ import annotations

import copy
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.relational.catalog import ShardedTable
from repro.relational.sql import ast as sql_ast
from repro.xnf.schema import EdgeSchema

Row = Tuple[Any, ...]

#: Deltas below this size ride the single facade query instead of being
#: partitioned: the per-bucket scratch-table materialisation and query
#: planning are pure overhead when the child join index-probes the USING
#: table anyway (probing the facade index with partition i's keys touches
#: only shard i's entries by construction), and only sizeable deltas
#: amortise the exchange.
MIN_PARTITION_DELTA_ROWS = 256

#: (low, low_inclusive, high, high_inclusive); None bound = unbounded
_Interval = Tuple[Any, bool, Any, bool]


# -- locating the sharded table in a generated query ---------------------------


def _collect_named_tables(ref: Any, out: List[sql_ast.NamedTable]) -> None:
    if isinstance(ref, sql_ast.NamedTable):
        out.append(ref)
    elif isinstance(ref, sql_ast.Join):
        _collect_named_tables(ref.left, out)
        _collect_named_tables(ref.right, out)
    elif isinstance(ref, sql_ast.DerivedTable):
        _query_named_tables(ref.subquery, out)


def _query_named_tables(query: Any, out: List[sql_ast.NamedTable]) -> None:
    if isinstance(query, sql_ast.SetOpStmt):
        _query_named_tables(query.left, out)
        _query_named_tables(query.right, out)
        return
    if isinstance(query, sql_ast.SelectStmt):
        for ref in query.from_tables:
            _collect_named_tables(ref, out)


def _enclosing_select(
    query: Any, target: sql_ast.NamedTable
) -> Optional[sql_ast.SelectStmt]:
    """The SelectStmt whose FROM list (directly) holds *target*."""
    if isinstance(query, sql_ast.SetOpStmt):
        return _enclosing_select(query.left, target) or _enclosing_select(
            query.right, target
        )
    if not isinstance(query, sql_ast.SelectStmt):
        return None
    for ref in query.from_tables:
        if ref is target:
            return query
        if isinstance(ref, sql_ast.DerivedTable):
            found = _enclosing_select(ref.subquery, target)
            if found is not None:
                return found
    return None


def find_scatter_target(
    db: Any, query: Any
) -> Optional[Tuple[ShardedTable, sql_ast.NamedTable]]:
    """The single sharded base table a query reads, if there is exactly one.

    Queries touching zero or several sharded tables fall back to the facade
    path (always correct — the facade scan chains the shards anyway).
    """
    refs: List[sql_ast.NamedTable] = []
    _query_named_tables(query, refs)
    hits = [
        (table, ref)
        for ref in refs
        for table in (db.catalog.tables.get(ref.name.upper()),)
        if isinstance(table, ShardedTable)
    ]
    if len(hits) != 1:
        return None
    return hits[0]


# -- zone-map / partition-bound pruning ----------------------------------------


def _conjuncts(expr: Any) -> List[Any]:
    if isinstance(expr, sql_ast.BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr] if expr is not None else []


def _column_pos(
    table: ShardedTable, binding: str, ref: Any
) -> Optional[int]:
    if not isinstance(ref, sql_ast.ColumnRef):
        return None
    if ref.table is not None and ref.table.upper() != binding.upper():
        return None
    positions = table.column_positions
    for candidate in (ref.column, ref.column.lower(), ref.column.upper()):
        pos = positions.get(candidate)
        if pos is not None:
            return pos
    return None


def _literal(expr: Any) -> Tuple[bool, Any]:
    if isinstance(expr, sql_ast.Literal):
        return True, expr.value
    return False, None


def _intersect(a: Optional[_Interval], b: Optional[_Interval]) -> Optional[_Interval]:
    if a is None:
        return b
    if b is None:
        return a
    lo, lo_inc, hi, hi_inc = a
    blo, blo_inc, bhi, bhi_inc = b
    if blo is not None and (lo is None or blo > lo or (blo == lo and not blo_inc)):
        lo, lo_inc = blo, blo_inc
    if bhi is not None and (hi is None or bhi < hi or (bhi == hi and not bhi_inc)):
        hi, hi_inc = bhi, bhi_inc
    return lo, lo_inc, hi, hi_inc


def _interval_empty(interval: _Interval) -> bool:
    lo, lo_inc, hi, hi_inc = interval
    if lo is None or hi is None:
        return False
    if lo > hi:
        return True
    return lo == hi and not (lo_inc and hi_inc)


def _contains(interval: _Interval, value: Any) -> bool:
    lo, lo_inc, hi, hi_inc = interval
    if lo is not None and (value < lo or (value == lo and not lo_inc)):
        return False
    if hi is not None and (value > hi or (value == hi and not hi_inc)):
        return False
    return True


def _comparison_satisfiable(op: str, interval: _Interval, value: Any) -> bool:
    """Can any point of *interval* satisfy ``col <op> value``?"""
    lo, lo_inc, hi, hi_inc = interval
    if op == "=":
        return _contains(interval, value)
    if op == "<":
        return lo is None or lo < value
    if op == "<=":
        return lo is None or lo < value or (lo == value and lo_inc)
    if op == ">":
        return hi is None or hi > value
    if op == ">=":
        return hi is None or hi > value or (hi == value and hi_inc)
    return True  # <>, LIKE, arithmetic … — never prune on these


def _shard_interval(
    table: ShardedTable, shard_id: int, pos: int
) -> Optional[Tuple[str, Optional[_Interval]]]:
    """What shard *shard_id* can hold in column *pos*.

    Returns ``("empty", None)`` when the shard provably holds no non-NULL
    value in the column (prunable for any NULL-rejecting predicate),
    ``("range", interval)`` when bounded, or None when nothing is known.
    """
    spec = table.partition
    zone = table.heap.zone_maps[shard_id]
    kind, payload = zone.classify(pos)
    if kind == "empty":
        return "empty", None
    interval: Optional[_Interval] = None
    if kind == "range":
        lo, hi = payload
        interval = (lo, True, hi, True)
    if spec.kind == "range" and pos == spec.column_pos:
        low, high = spec.range_of(shard_id)
        interval = _intersect(interval, (low, True, high, False))
    if interval is None:
        return None
    return "range", interval


def shard_may_match(
    table: ShardedTable,
    shard_id: int,
    conjuncts: List[Any],
    binding: str,
) -> bool:
    """False only when some conjunct provably matches nothing on the shard."""
    for conjunct in conjuncts:
        pos: Optional[int] = None
        verdict: Optional[bool] = None
        try:
            if isinstance(conjunct, sql_ast.BinaryOp):
                op = conjunct.op
                pos = _column_pos(table, binding, conjunct.left)
                ok, value = _literal(conjunct.right)
                if pos is None or not ok:
                    # literal OP column — mirror the operator
                    pos = _column_pos(table, binding, conjunct.right)
                    ok, value = _literal(conjunct.left)
                    op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
                if pos is None or not ok or value is None:
                    continue
                known = _shard_interval(table, shard_id, pos)
                if known is None:
                    continue
                if known[0] == "empty":
                    verdict = False
                else:
                    verdict = _comparison_satisfiable(op, known[1], value)
            elif isinstance(conjunct, sql_ast.Between) and not conjunct.negated:
                pos = _column_pos(table, binding, conjunct.operand)
                lo_ok, lo = _literal(conjunct.low)
                hi_ok, hi = _literal(conjunct.high)
                if pos is None or not lo_ok or not hi_ok:
                    continue
                known = _shard_interval(table, shard_id, pos)
                if known is None:
                    continue
                if known[0] == "empty":
                    verdict = False
                else:
                    narrowed = _intersect(known[1], (lo, True, hi, True))
                    verdict = narrowed is None or not _interval_empty(narrowed)
            elif isinstance(conjunct, sql_ast.InList) and not conjunct.negated:
                pos = _column_pos(table, binding, conjunct.operand)
                values = []
                for item in conjunct.items:
                    ok, value = _literal(item)
                    if not ok:
                        values = None
                        break
                    values.append(value)
                if pos is None or values is None:
                    continue
                known = _shard_interval(table, shard_id, pos)
                if known is None:
                    continue
                if known[0] == "empty":
                    verdict = False
                else:
                    verdict = any(
                        value is not None and _contains(known[1], value)
                        for value in values
                    )
            else:
                continue
        except TypeError:
            continue  # incomparable values: never prune on a guess
        if verdict is False:
            return False
    return True


# -- candidate scatter ---------------------------------------------------------


def _rewrite_for_shard(
    query: Any, target_name: str, view_name: str
) -> Any:
    """Deep-copy *query* with its (single) reference to *target_name*
    retargeted at *view_name*; the original binding is preserved via an
    alias so column qualifiers keep resolving."""
    clone = copy.deepcopy(query)
    refs: List[sql_ast.NamedTable] = []
    _query_named_tables(clone, refs)
    for ref in refs:
        if ref.name.upper() == target_name.upper():
            if ref.alias is None:
                ref.alias = ref.name
            ref.name = view_name
            return clone
    raise AssertionError(f"no reference to {target_name} in scattered query")


def scatter_candidates(
    db: Any, query: Any
) -> Optional[Tuple[Optional[List[str]], List[Row], Dict[int, int], int]]:
    """Run a candidate query shard-wise, pruning non-matching shards.

    Returns ``(columns, rows, rows_per_shard, shards_pruned)`` with rows in
    shard order, or None when the query does not read exactly one sharded
    table (caller falls back to the facade plan).  ``columns`` is None when
    every shard was pruned (no query ran to report a header).
    """
    hit = find_scatter_target(db, query)
    if hit is None:
        return None
    table, ref = hit
    binding = ref.alias or ref.name
    select = _enclosing_select(query, ref)
    conjuncts = _conjuncts(select.where) if select is not None else []
    shard_ids = [
        shard_id
        for shard_id in range(table.partition.num_shards)
        if shard_may_match(table, shard_id, conjuncts, binding)
    ]
    pruned = table.partition.num_shards - len(shard_ids)
    if pruned:
        db.metrics.inc("xnf.scatter.pruned", pruned)
    if not shard_ids:
        return None, [], {}, pruned
    queries = [
        _rewrite_for_shard(query, table.name, table.shard_view_name(shard_id))
        for shard_id in shard_ids
    ]
    db.metrics.inc("xnf.scatter.queries", len(queries))
    # Hand the calling thread's trace context to each scatter worker
    # explicitly: worker threads have fresh thread-local span stacks, so
    # without the handoff every per-shard span would be an orphaned root
    # instead of a child of the statement span.
    tracer = db.tracer
    context = tracer.current_context()

    def run_shard(shard_id: int, shard_query: Any) -> Any:
        with tracer.adopt(context):
            with tracer.span("xnf.scatter.shard", shard=shard_id) as span:
                result = db.execute_ast(shard_query)
                span.annotate(rows=len(result.rows))
                return result

    if len(queries) > 1 and not db.in_transaction:
        # Autocommit reads carry no ambient snapshot into worker threads,
        # so each per-shard query resolves exactly like a serial autocommit
        # statement would.  Inside a transaction the snapshot is pinned to
        # the calling thread: run serially to preserve it.
        with ThreadPoolExecutor(
            max_workers=len(queries), thread_name_prefix="xnf-scatter"
        ) as pool:
            results = list(pool.map(run_shard, shard_ids, queries))
    else:
        results = [
            run_shard(shard_id, shard_query)
            for shard_id, shard_query in zip(shard_ids, queries)
        ]
    columns = results[0].columns
    rows: List[Row] = []
    per_shard: Dict[int, int] = {}
    for shard_id, result in zip(shard_ids, results):
        per_shard[shard_id] = len(result.rows)
        rows.extend(result.rows)
    return columns, rows, per_shard, pruned


# -- fixpoint delta partitioning -----------------------------------------------


def delta_partition_plan(
    db: Any, edge: EdgeSchema, parent_columns: List[str]
) -> Optional[Tuple[ShardedTable, int]]:
    """Whether *edge*'s reachability join can exchange partitioned deltas.

    Applies when the edge joins the parent delta to exactly one sharded
    USING table on that table's partition key: rows of delta partition i
    can then only join shard i's rows, so partitioning the delta by the
    same routing function and skipping empty partitions is a no-op
    semantically.  Returns ``(using_table, parent_column_pos)`` — the
    position of the parent-side join column in *parent_columns*.
    """
    sharded = [
        (u, table)
        for u in edge.using
        for table in (db.catalog.tables.get(u.table.upper()),)
        if isinstance(table, ShardedTable)
    ]
    if len(sharded) != 1:
        return None
    using, table = sharded[0]
    spec = table.partition
    parent_binding = edge.parent_binding.upper()
    using_binding = (using.alias or using.table).upper()
    positions = {name.upper(): pos for pos, name in enumerate(parent_columns)}
    for conjunct in _conjuncts(edge.predicate):
        if not (isinstance(conjunct, sql_ast.BinaryOp) and conjunct.op == "="):
            continue
        for left, right in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if not (
                isinstance(left, sql_ast.ColumnRef)
                and isinstance(right, sql_ast.ColumnRef)
            ):
                continue
            if (
                left.table is not None
                and left.table.upper() == using_binding
                and left.column.upper() == spec.column.upper()
                and right.table is not None
                and right.table.upper() == parent_binding
            ):
                pos = positions.get(right.column.upper())
                if pos is not None:
                    return table, pos
    return None


def partition_delta(
    table: ShardedTable, pos: int, parent_rows: List[Row]
) -> Dict[int, List[Row]]:
    """Bucket delta rows by the using table's routing of their join key."""
    route_value = table.partition.route_value
    buckets: Dict[int, List[Row]] = {}
    for row in parent_rows:
        buckets.setdefault(route_value(row[pos]), []).append(row)
    return buckets
