"""The XNF application cache: pointer-linked composite-object tuples.

Section 4.2: "The XNF cache uses virtual memory pointers to link the tuples
of an XNF structure.  As a result, the browsing is very fast. ... the access
to the cache does not require any inter-process communication."

Here the "virtual memory pointers" are Python object references:
:class:`CachedTuple` objects hold per-relationship lists of
:class:`Connection` objects, so crossing a relationship is a list traversal
— no SQL, no engine, no parsing.  ``navigations`` counts pointer hops for
the OO1-style benchmark (experiment E1).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import XNFError
from repro.xnf.schema import COSchema
from repro.xnf.semantic_rewrite import COInstance
from repro.xnf.stream import (
    ConnectionItem,
    SchemaItem,
    TupleItem,
    heterogeneous_stream,
)

Row = Tuple[Any, ...]


class CachedTuple:
    """One component tuple in the cache."""

    __slots__ = ("node", "_values", "_cache", "children", "parents", "alive")

    def __init__(self, node: str, values: Row, cache: "COCache"):
        self.node = node
        self._values = list(values)
        self._cache = cache
        #: edge name -> connections where this tuple is the parent
        self.children: Dict[str, List["Connection"]] = {}
        #: edge name -> connections where this tuple is the child
        self.parents: Dict[str, List["Connection"]] = {}
        self.alive = True

    # -- column access -----------------------------------------------------------

    def __getitem__(self, column: str) -> Any:
        position = self._cache.position(self.node, column)
        return self._values[position]

    def get(self, column: str, default: Any = None) -> Any:
        try:
            return self[column]
        except XNFError:
            return default

    def raw(self, column: str) -> Any:
        """Column access ignoring presentation projection.

        The manipulation layer needs full rows to match base tuples even
        when a TAKE projection hides columns from the application."""
        return self._values[self._cache.raw_position(self.node, column)]

    def values(self) -> Row:
        """Visible column values (after presentation projection)."""
        visible = self._cache.visible_columns(self.node)
        full = self._cache.columns[self.node]
        if visible == full:
            return tuple(self._values)
        return tuple(self[column] for column in visible)

    def full_values(self) -> Row:
        return tuple(self._values)

    def as_dict(self) -> Dict[str, Any]:
        return {column: self[column] for column in self._cache.visible_columns(self.node)}

    # -- navigation (pointer dereferencing) ----------------------------------------

    def related(
        self,
        edge_name: str,
        direction: str = "auto",
        slot: Optional[int] = None,
    ) -> List["CachedTuple"]:
        """Cross a relationship; direction inferred from this tuple's role.

        ``direction`` may be ``"children"``, ``"parents"``, or ``"auto"``
        (resolve by which side of the edge this node is on; ambiguous for
        cyclic relationships, which require an explicit direction).
        For n-ary relationships, ``slot`` selects one child partner
        position (0 = the first child); None yields all child partners.
        """
        edge = self._cache.schema.edges.get(edge_name)
        if edge is None:
            raise XNFError(f"unknown relationship {edge_name!r}")
        if direction == "auto":
            is_parent = edge.parent == self.node
            is_child = self.node in edge.child_names()
            if is_parent and is_child:
                raise XNFError(
                    f"relationship {edge_name!r} is cyclic on {self.node}; "
                    "specify direction='children' or 'parents'"
                )
            if is_parent:
                direction = "children"
            elif is_child:
                direction = "parents"
            else:
                raise XNFError(
                    f"{self.node} is not a partner of relationship {edge_name!r}"
                )
        self._cache.navigations += 1
        if direction == "children":
            result = []
            for conn in self.children.get(edge_name, ()):
                if not conn.alive:
                    continue
                partners = conn.child_partners()
                if slot is not None:
                    partners = partners[slot : slot + 1]
                result.extend(p for p in partners if p.alive)
            return result
        return [
            conn.parent
            for conn in self.parents.get(edge_name, ())
            if conn.alive and conn.parent.alive
        ]

    def connections(self, edge_name: str) -> List["Connection"]:
        """All live connections of this tuple for one relationship."""
        result = [
            conn for conn in self.children.get(edge_name, ()) if conn.alive
        ]
        result.extend(
            conn for conn in self.parents.get(edge_name, ()) if conn.alive
        )
        return result

    def __repr__(self) -> str:
        values = ", ".join(repr(v) for v in self.values())
        return f"{self.node}({values})"


class Connection:
    """One relationship instance linking a parent with its child tuple(s).

    Binary relationships have exactly one child (``.child``); n-ary ones
    carry further partners in ``extra_children`` and expose all of them via
    :meth:`child_partners`.
    """

    __slots__ = ("edge", "parent", "child", "extra_children", "attributes", "alive")

    def __init__(
        self,
        edge: str,
        parent: CachedTuple,
        child: CachedTuple,
        attributes: Dict[str, Any],
        extra_children: Optional[List[CachedTuple]] = None,
    ):
        self.edge = edge
        self.parent = parent
        self.child = child
        self.extra_children = list(extra_children or [])
        self.attributes = attributes
        self.alive = True

    def child_partners(self) -> List[CachedTuple]:
        return [self.child] + self.extra_children

    def partners_alive(self) -> bool:
        return self.parent.alive and all(
            c.alive for c in self.child_partners()
        )

    def __getitem__(self, name: str) -> Any:
        try:
            return self.attributes[name]
        except KeyError:
            raise XNFError(
                f"relationship {self.edge!r} has no attribute {name!r}"
            ) from None

    def __repr__(self) -> str:
        attrs = f" {self.attributes}" if self.attributes else ""
        return f"{self.edge}({self.parent!r} -> {self.child!r}){attrs}"


class COCache:
    """A loaded composite object: tuples, connections, navigation, cursors."""

    def __init__(self, schema: COSchema):
        self.schema = schema
        self.columns: Dict[str, List[str]] = {}
        self.projections: Dict[str, Optional[List[str]]] = {
            name: node.projection for name, node in schema.nodes.items()
        }
        self.edge_attributes: Dict[str, List[str]] = {}
        self.tuples: Dict[str, List[CachedTuple]] = {
            name: [] for name in schema.nodes
        }
        self.edge_connections: Dict[str, List[Connection]] = {
            name: [] for name in schema.edges
        }
        self._index: Dict[Tuple[str, Row], CachedTuple] = {}
        self._positions: Dict[str, Dict[str, int]] = {}
        # Lazy per-column lookup indexes: (node, COLUMN) -> value -> tuples.
        # Buckets may contain stale entries (dead or re-valued tuples);
        # lookups re-validate, so correctness never depends on eager upkeep.
        self._column_indexes: Dict[Tuple[str, str], Dict[Any, List[CachedTuple]]] = {}
        #: pointer hops performed (benchmark counter)
        self.navigations = 0

    # -- loading ---------------------------------------------------------------------

    @classmethod
    def load(cls, instance: COInstance) -> "COCache":
        """Build the cache by consuming the heterogeneous answer stream."""
        cache = cls(instance.schema)
        for item in heterogeneous_stream(instance):
            cache.consume(item)
        return cache

    def consume(self, item) -> None:
        if isinstance(item, SchemaItem):
            if item.kind == "node":
                self.columns[item.component] = list(item.columns)
                self._positions[item.component] = {
                    col: pos for pos, col in enumerate(item.columns)
                }
            else:
                self.edge_attributes[item.component] = list(item.columns)
            return
        if isinstance(item, TupleItem):
            self._add_tuple(item.component, item.row)
            return
        if isinstance(item, ConnectionItem):
            edge = self._edge(item.component)
            parent = self._index.get((edge.parent, item.parent_row))
            children = [
                self._index.get((child_name, child_row))
                for child_name, child_row in zip(
                    edge.child_names(), item.child_rows
                )
            ]
            if parent is None or any(child is None for child in children):
                raise XNFError(
                    f"connection of {item.component!r} references a tuple "
                    "missing from the stream"
                )
            attr_names = self.edge_attributes.get(item.component, [])
            attributes = dict(zip(attr_names, item.attributes))
            self.add_connection(
                item.component, parent, children[0], attributes, children[1:]
            )
            return
        raise XNFError(f"unknown stream item {item!r}")

    def _edge(self, name: str):
        edge = self.schema.edges.get(name)
        if edge is None:
            raise XNFError(f"unknown relationship {name!r}")
        return edge

    def _add_tuple(self, node: str, row: Row) -> CachedTuple:
        cached = CachedTuple(node, row, self)
        self.tuples[node].append(cached)
        self._index[(node, row)] = cached
        self._index_tuple(cached)
        return cached

    def add_connection(
        self,
        edge_name: str,
        parent: CachedTuple,
        child: CachedTuple,
        attributes: Optional[Dict[str, Any]] = None,
        extra_children: Optional[List[CachedTuple]] = None,
    ) -> Connection:
        conn = Connection(edge_name, parent, child, attributes or {}, extra_children)
        self.edge_connections[edge_name].append(conn)
        parent.children.setdefault(edge_name, []).append(conn)
        for partner in conn.child_partners():
            partner.parents.setdefault(edge_name, []).append(conn)
        return conn

    # -- schema/metadata access ----------------------------------------------------------

    def position(self, node: str, column: str) -> int:
        positions = self._positions.get(node)
        if positions is None:
            raise XNFError(f"unknown node {node!r}")
        visible = self.visible_columns(node)
        for name, pos in positions.items():
            if name.upper() == column.upper():
                if not any(v.upper() == column.upper() for v in visible):
                    raise XNFError(
                        f"column {column!r} of {node} is projected away"
                    )
                return pos
        raise XNFError(f"node {node!r} has no column {column!r}")

    def raw_position(self, node: str, column: str) -> int:
        positions = self._positions.get(node)
        if positions is None:
            raise XNFError(f"unknown node {node!r}")
        for name, pos in positions.items():
            if name.upper() == column.upper():
                return pos
        raise XNFError(f"node {node!r} has no column {column!r}")

    def visible_columns(self, node: str) -> List[str]:
        projection = self.projections.get(node)
        if projection is None:
            return self.columns.get(node, [])
        return projection

    def node_names(self) -> List[str]:
        return list(self.tuples)

    def edge_names(self) -> List[str]:
        return list(self.edge_connections)

    # -- retrieval ----------------------------------------------------------------------

    def node(self, name: str) -> List[CachedTuple]:
        """Live tuples of a node, in load order."""
        if name not in self.tuples:
            raise XNFError(f"unknown node {name!r}")
        return [t for t in self.tuples[name] if t.alive]

    def connections_of(self, edge_name: str) -> List[Connection]:
        if edge_name not in self.edge_connections:
            raise XNFError(f"unknown relationship {edge_name!r}")
        return [
            conn
            for conn in self.edge_connections[edge_name]
            if conn.alive and conn.partners_alive()
        ]

    def find(self, node: str, **criteria: Any) -> Optional[CachedTuple]:
        """First live tuple of *node* matching all column=value criteria."""
        matches = self.find_all(node, **criteria)
        return matches[0] if matches else None

    def find_all(self, node: str, **criteria: Any) -> List[CachedTuple]:
        if node not in self.tuples:
            raise XNFError(f"unknown node {node!r}")
        if len(criteria) == 1:
            column, value = next(iter(criteria.items()))
            bucket = self._column_index(node, column).get(value, ())
            return [
                cached
                for cached in bucket
                if cached.alive and cached[column] == value
            ]
        return [
            cached
            for cached in self.node(node)
            if all(cached[col] == val for col, val in criteria.items())
        ]

    def _column_index(
        self, node: str, column: str
    ) -> Dict[Any, List[CachedTuple]]:
        """In-memory lookup structure (the cache-side analogue of an index)."""
        self.position(node, column)  # validates name and visibility
        key = (node, column.upper())
        index = self._column_indexes.get(key)
        if index is None:
            index = {}
            for cached in self.tuples[node]:
                index.setdefault(cached[column], []).append(cached)
            self._column_indexes[key] = index
        return index

    def _index_tuple(self, cached: CachedTuple) -> None:
        """Register *cached* in any existing column indexes of its node."""
        for (node, column), index in self._column_indexes.items():
            if node == cached.node:
                index.setdefault(cached[column], []).append(cached)

    # -- cursors (section 3.7) -------------------------------------------------------------

    def cursor(self, node: str) -> "IndependentCursor":
        from repro.xnf.cursors import IndependentCursor

        return IndependentCursor(self, node)

    def dependent_cursor(self, parent_cursor, path: str) -> "DependentCursor":
        from repro.xnf.cursors import DependentCursor

        return DependentCursor(self, parent_cursor, path)

    # -- maintenance used by restriction / projection / manipulation -------------------------

    def reindex(self, cached: CachedTuple, old_values: Row) -> None:
        self._index.pop((cached.node, old_values), None)
        self._index[(cached.node, cached.full_values())] = cached
        # Stale column-index buckets are tolerated (lookups re-validate);
        # the tuple just needs to be findable under its new values.
        self._index_tuple(cached)

    def remove_tuple(self, cached: CachedTuple) -> None:
        """Kill a tuple and every connection attached to it."""
        cached.alive = False
        for conns in cached.children.values():
            for conn in conns:
                conn.alive = False
        for conns in cached.parents.values():
            for conn in conns:
                conn.alive = False
        self._index.pop((cached.node, cached.full_values()), None)

    def recompute_reachability(self) -> int:
        """Re-enforce the reachability constraint over live tuples.

        Returns the number of tuples dropped.  Used after instance-level
        restrictions and structural projection (Fig. 5: "project p1 is not
        in the result since it is not reachable anymore").
        """
        reached: set = set()
        frontier: List[CachedTuple] = []
        for root in self.schema.roots():
            for cached in self.node(root):
                reached.add(id(cached))
                frontier.append(cached)
        while frontier:
            current = frontier.pop()
            for edge_name, conns in current.children.items():
                if edge_name not in self.schema.edges:
                    continue
                for conn in conns:
                    if not conn.alive:
                        continue
                    for partner in conn.child_partners():
                        if partner.alive and id(partner) not in reached:
                            reached.add(id(partner))
                            frontier.append(partner)
        dropped = 0
        for name in self.tuples:
            for cached in self.tuples[name]:
                if cached.alive and id(cached) not in reached:
                    self.remove_tuple(cached)
                    dropped += 1
        return dropped

    def project(self, schema: COSchema) -> None:
        """Apply a structural projection: *schema* is the projected schema."""
        for name in list(self.tuples):
            if name not in schema.nodes:
                for cached in self.tuples[name]:
                    cached.alive = False
                del self.tuples[name]
        for name in list(self.edge_connections):
            if name not in schema.edges:
                for conn in self.edge_connections[name]:
                    conn.alive = False
                del self.edge_connections[name]
        self.schema = schema
        self.projections = {
            name: node.projection for name, node in schema.nodes.items()
        }
        self.recompute_reachability()

    # -- reporting -------------------------------------------------------------------------

    def summary(self) -> str:
        lines = [f"CO {self.schema.name or '<anonymous>'}:"]
        for name in self.tuples:
            lines.append(f"  {name}: {len(self.node(name))} tuples")
        for name in self.edge_connections:
            lines.append(f"  {name}: {len(self.connections_of(name))} connections")
        return "\n".join(lines)

    def total_tuples(self) -> int:
        return sum(len(self.node(name)) for name in self.tuples)

    def total_connections(self) -> int:
        return sum(len(self.connections_of(name)) for name in self.edge_connections)
