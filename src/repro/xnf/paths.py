"""Path expressions over the CO cache (section 3.5).

A path expression denotes a subset of the tuples of its target node: all
tuples reachable from the start tuple(s) through the named relationships,
with qualified steps filtering along the way.  "We view a path expression
to be a table" — :func:`evaluate_path` returns the tuple list, and the
instance-expression evaluator below supports ``COUNT(<path>)`` and
``EXISTS <path>`` plus ordinary SQL operators with full 3-valued logic,
which is what SUCH THAT predicates over paths need (the paper's queries in
section 3.5).

Relationships may be traversed in either direction (section 2): the
direction of each step is inferred from the side of the relationship the
current tuples are on, with role names (``manages[reports_to]``)
disambiguating cyclic relationships.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import PathError, XNFError
from repro.relational.sql import ast as sql_ast
from repro.relational.types import (
    sql_arith,
    sql_compare,
    sql_like,
    tv_and,
    tv_not,
    tv_or,
)
from repro.xnf.cache import CachedTuple, COCache
from repro.xnf.lang import xast

#: Bindings of tuple variables visible to a predicate: alias -> CachedTuple.
Bindings = Dict[str, CachedTuple]


def evaluate_path(
    cache: COCache,
    path: xast.PathExpr,
    bindings: Optional[Bindings] = None,
) -> List[CachedTuple]:
    """Evaluate *path* against *cache*.

    The start resolves first against *bindings* (a tuple variable bound by
    an enclosing SUCH THAT), then as a node name (the path then ranges over
    every live tuple of that node).
    """
    bindings = bindings or {}
    start = _resolve_start(cache, path.start, bindings)
    current = start
    for step in path.steps:
        current = _apply_step(cache, current, step, bindings)
        if not current:
            return []
    return current


def _resolve_start(
    cache: COCache, start: str, bindings: Bindings
) -> List[CachedTuple]:
    for alias, cached in bindings.items():
        if alias.upper() == start.upper():
            return [cached] if cached.alive else []
    for node in cache.node_names():
        if node.upper() == start.upper():
            return cache.node(node)
    raise PathError(
        f"path start {start!r} is neither a bound tuple variable nor a node"
    )


def _apply_step(
    cache: COCache,
    current: List[CachedTuple],
    step: xast.PathStep,
    bindings: Bindings,
) -> List[CachedTuple]:
    name_upper = step.name.upper()
    node_name = next(
        (n for n in cache.node_names() if n.upper() == name_upper), None
    )
    edge = next(
        (e for e in cache.schema.edges.values() if e.name.upper() == name_upper),
        None,
    )
    if edge is not None:
        targets = _traverse_edge(current, edge, step.role, cache)
    elif node_name is not None:
        # A node step validates/filters the current position.
        targets = [t for t in current if t.node == node_name]
    else:
        raise PathError(f"unknown path step {step.name!r}")
    targets = _dedupe(targets)
    if step.predicate is not None:
        alias = step.alias or (node_name or step.name)
        filtered = []
        for cached in targets:
            local = dict(bindings)
            local[alias] = cached
            local[cached.node] = cached
            if eval_instance_expr(step.predicate, local, cache) is True:
                filtered.append(cached)
        targets = filtered
    return targets


def _traverse_edge(
    current: List[CachedTuple],
    edge,
    role: Optional[str],
    cache: COCache,
) -> List[CachedTuple]:
    results: List[CachedTuple] = []
    for cached in current:
        direction, slot = _direction(cached, edge, role)
        results.extend(cached.related(edge.name, direction, slot))
    return results


def _direction(
    cached: CachedTuple, edge, role: Optional[str]
) -> Tuple[str, Optional[int]]:
    """Traversal direction and, for child-bound steps, the partner slot.

    A role naming one child partner of an n-ary relationship selects
    exactly that slot; without a role, all child partners are yielded.
    """
    if role is not None:
        child_roles = [edge.child_role] + [
            r for _, r in getattr(edge, "extra_partners", [])
        ]
        for slot, child_role in enumerate(child_roles):
            if child_role and role.upper() == child_role.upper():
                return "children", slot
        if edge.parent_role and role.upper() == edge.parent_role.upper():
            return "parents", None
        raise PathError(
            f"role {role!r} does not name a partner of relationship "
            f"{edge.name!r}"
        )
    is_parent = edge.parent == cached.node
    is_child = cached.node in edge.child_names()
    if is_parent and is_child:
        raise PathError(
            f"cyclic relationship {edge.name!r}: use a role name to pick "
            "the traversal direction"
        )
    if is_parent:
        return "children", None
    if is_child:
        return "parents", None
    raise PathError(
        f"cannot traverse {edge.name!r} from a {cached.node} tuple"
    )


def _dedupe(tuples: List[CachedTuple]) -> List[CachedTuple]:
    seen: set = set()
    result: List[CachedTuple] = []
    for cached in tuples:
        if id(cached) not in seen:
            seen.add(id(cached))
            result.append(cached)
    return result


# ---------------------------------------------------------------------------
# Instance-level expression evaluation (SUCH THAT with path expressions)
# ---------------------------------------------------------------------------


def eval_instance_expr(
    expr: sql_ast.Expr, bindings: Bindings, cache: COCache
) -> Any:
    """Evaluate a restriction predicate against cache tuples.

    Supports the SQL expression vocabulary with 3VL, plus ``COUNT(<path>)``
    and ``EXISTS <path>``.  Column references resolve through *bindings*
    (qualified by alias, or unqualified when unambiguous).
    """
    if isinstance(expr, sql_ast.Literal):
        return expr.value
    if isinstance(expr, sql_ast.ColumnRef):
        return _resolve_column(expr, bindings)
    if isinstance(expr, xast.PathExpr):
        raise PathError(
            f"path expression {expr.to_sql()} must appear inside COUNT() or "
            "EXISTS"
        )
    if isinstance(expr, sql_ast.BinaryOp):
        if expr.op == "AND":
            return tv_and(
                eval_instance_expr(expr.left, bindings, cache),
                eval_instance_expr(expr.right, bindings, cache),
            )
        if expr.op == "OR":
            return tv_or(
                eval_instance_expr(expr.left, bindings, cache),
                eval_instance_expr(expr.right, bindings, cache),
            )
        left = eval_instance_expr(expr.left, bindings, cache)
        right = eval_instance_expr(expr.right, bindings, cache)
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            return sql_compare(expr.op, left, right)
        if expr.op == "LIKE":
            return sql_like(left, right)
        return sql_arith(expr.op, left, right)
    if isinstance(expr, sql_ast.UnaryOp):
        value = eval_instance_expr(expr.operand, bindings, cache)
        if expr.op == "NOT":
            return tv_not(value)
        return None if value is None else -value
    if isinstance(expr, sql_ast.IsNull):
        value = eval_instance_expr(expr.operand, bindings, cache)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, sql_ast.Between):
        value = eval_instance_expr(expr.operand, bindings, cache)
        low = eval_instance_expr(expr.low, bindings, cache)
        high = eval_instance_expr(expr.high, bindings, cache)
        result = tv_and(
            sql_compare(">=", value, low), sql_compare("<=", value, high)
        )
        return tv_not(result) if expr.negated else result
    if isinstance(expr, sql_ast.InList):
        value = eval_instance_expr(expr.operand, bindings, cache)
        result: Optional[bool] = False
        for item in expr.items:
            candidate = eval_instance_expr(item, bindings, cache)
            result = tv_or(result, sql_compare("=", value, candidate))
            if result is True:
                break
        return tv_not(result) if expr.negated else result
    if isinstance(expr, sql_ast.FuncCall):
        return _eval_func(expr, bindings, cache)
    if isinstance(expr, sql_ast.Case):
        for cond, result_expr in expr.whens:
            if eval_instance_expr(cond, bindings, cache) is True:
                return eval_instance_expr(result_expr, bindings, cache)
        if expr.else_result is not None:
            return eval_instance_expr(expr.else_result, bindings, cache)
        return None
    raise XNFError(f"unsupported expression in SUCH THAT: {expr.to_sql()}")


def _eval_func(expr: sql_ast.FuncCall, bindings: Bindings, cache: COCache) -> Any:
    if expr.args and isinstance(expr.args[0], xast.PathExpr):
        path = expr.args[0]
        targets = evaluate_path(cache, path, bindings)
        if expr.name == "COUNT":
            return len(targets)
        if expr.name == "EXISTS":
            return bool(targets)
        raise XNFError(
            f"{expr.name} over a path expression is not supported "
            "(use COUNT or EXISTS)"
        )
    args = [eval_instance_expr(arg, bindings, cache) for arg in expr.args]
    name = expr.name
    if name == "ABS":
        return None if args[0] is None else abs(args[0])
    if name == "LOWER":
        return None if args[0] is None else str(args[0]).lower()
    if name == "UPPER":
        return None if args[0] is None else str(args[0]).upper()
    if name == "LENGTH":
        return None if args[0] is None else len(str(args[0]))
    if name == "COALESCE":
        for value in args:
            if value is not None:
                return value
        return None
    raise XNFError(f"unsupported function {name} in SUCH THAT")


def _resolve_column(ref: sql_ast.ColumnRef, bindings: Bindings) -> Any:
    if ref.table is not None:
        for alias, cached in bindings.items():
            if alias.upper() == ref.table.upper():
                return cached[ref.column]
        raise XNFError(f"unbound tuple variable {ref.table!r}")
    matches = []
    for cached in _unique_tuples(bindings):
        try:
            matches.append(cached[ref.column])
        except XNFError:
            continue
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise XNFError(f"cannot resolve column {ref.column!r} in SUCH THAT")
    raise XNFError(f"ambiguous column {ref.column!r} in SUCH THAT")


def _unique_tuples(bindings: Bindings) -> List[CachedTuple]:
    seen: set = set()
    result: List[CachedTuple] = []
    for cached in bindings.values():
        if id(cached) not in seen:
            seen.add(id(cached))
            result.append(cached)
    return result
