"""Composite-object schemas: nodes, directed edges, well-formedness.

Section 2 of the paper: a CO is a collection of named component tables and
relationships; tables and relationships form the nodes and edges of a
directed graph.  This module holds the *resolved definition* of a CO — what
remains after OUT OF components and view references are flattened
(:mod:`repro.xnf.views`) — plus the structural classification used
throughout the paper: root tables, recursion, schema sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.errors import SchemaGraphError
from repro.relational.sql import ast as sql_ast
from repro.xnf.lang import xast


@dataclass
class NodeSchema:
    """One component table of a CO.

    ``query``/``table`` describe how candidates are derived from the
    relational database (the view paradigm of section 2).  ``restrictions``
    are schema-pushable SUCH THAT predicates — each a (alias, predicate)
    pair, AND-composed by wrapping the candidate query.  ``projection`` is
    presentation-level: internally the full column set is kept so edge
    predicates and update propagation keep working.
    """

    name: str
    query: Optional[sql_ast.Query] = None
    table: Optional[str] = None
    restrictions: List[Tuple[str, sql_ast.Expr]] = field(default_factory=list)
    projection: Optional[List[str]] = None

    def copy(self) -> "NodeSchema":
        return NodeSchema(
            self.name,
            self.query,
            self.table,
            list(self.restrictions),
            list(self.projection) if self.projection is not None else None,
        )


@dataclass
class EdgeSchema:
    """One relationship of a CO, directed parent → child table(s).

    Binary in the common case; n-ary relationships (section 2: "in a
    general setting we allow for n-ary relationships") carry their second
    and further child partners in ``extra_partners``.
    """

    name: str
    parent: str
    child: str
    predicate: Optional[sql_ast.Expr] = None
    attributes: List[Tuple[str, sql_ast.Expr]] = field(default_factory=list)
    using: List[xast.UsingTable] = field(default_factory=list)
    parent_role: Optional[str] = None
    child_role: Optional[str] = None
    extra_partners: List[Tuple[str, Optional[str]]] = field(default_factory=list)

    @property
    def parent_binding(self) -> str:
        """Alias under which the parent appears in generated SQL."""
        return self.parent_role or self.parent

    @property
    def child_binding(self) -> str:
        return self.child_role or self.child

    @property
    def is_binary(self) -> bool:
        return not self.extra_partners

    def child_names(self) -> List[str]:
        """All child partner tables, in declaration order."""
        return [self.child] + [name for name, _ in self.extra_partners]

    def child_bindings(self) -> List[str]:
        return [self.child_binding] + [
            role or name for name, role in self.extra_partners
        ]

    def attribute_names(self) -> List[str]:
        return [name for name, _ in self.attributes]

    def copy(self) -> "EdgeSchema":
        return EdgeSchema(
            self.name,
            self.parent,
            self.child,
            self.predicate,
            list(self.attributes),
            list(self.using),
            self.parent_role,
            self.child_role,
            list(self.extra_partners),
        )


class COSchema:
    """A resolved composite-object definition."""

    def __init__(self, name: str = ""):
        self.name = name
        self.nodes: Dict[str, NodeSchema] = {}
        self.edges: Dict[str, EdgeSchema] = {}
        #: restrictions whose predicates contain path expressions; they are
        #: evaluated against the instantiated CO (see repro.xnf.restrict).
        self.instance_restrictions: List[xast.Restriction] = []

    # -- construction -----------------------------------------------------------

    def add_node(self, node: NodeSchema) -> None:
        if node.name in self.nodes or node.name in self.edges:
            raise SchemaGraphError(f"duplicate component name {node.name!r}")
        self.nodes[node.name] = node

    def add_edge(self, edge: EdgeSchema) -> None:
        if edge.name in self.nodes or edge.name in self.edges:
            raise SchemaGraphError(f"duplicate component name {edge.name!r}")
        self.edges[edge.name] = edge

    def copy(self, name: str = "") -> "COSchema":
        clone = COSchema(name or self.name)
        for node in self.nodes.values():
            clone.nodes[node.name] = node.copy()
        for edge in self.edges.values():
            clone.edges[edge.name] = edge.copy()
        clone.instance_restrictions = list(self.instance_restrictions)
        return clone

    # -- well-formedness (section 2) ------------------------------------------------

    def validate(self) -> None:
        """Enforce CO well-formedness.

        Every relationship's partner tables must be component tables of this
        very CO, and the CO must have at least one root table — otherwise
        the reachability constraint makes every instance empty.
        """
        for edge in self.edges.values():
            for endpoint in [edge.parent] + edge.child_names():
                if endpoint not in self.nodes:
                    raise SchemaGraphError(
                        f"relationship {edge.name!r} references {endpoint!r}, "
                        "which is not a component table of this CO"
                    )
            bindings = [edge.parent_binding] + edge.child_bindings()
            if len(set(b.upper() for b in bindings)) != len(bindings):
                raise SchemaGraphError(
                    f"relationship {edge.name!r} relates the same table "
                    "more than once: give each partner a distinct role name"
                )
        if self.nodes and not self.roots():
            raise SchemaGraphError(
                "composite object has no root table: every component has an "
                "incoming relationship, so no tuple satisfies reachability"
            )

    # -- structural classification ------------------------------------------------------

    def graph(self) -> "nx.MultiDiGraph":
        """The schema graph: nodes + one arc per relationship."""
        g = nx.MultiDiGraph()
        g.add_nodes_from(self.nodes)
        for edge in self.edges.values():
            for child in edge.child_names():
                g.add_edge(edge.parent, child, key=f"{edge.name}:{child}")
        return g

    def roots(self) -> List[str]:
        """Component tables with no incoming relationship (root tables)."""
        children = {
            child
            for edge in self.edges.values()
            for child in edge.child_names()
        }
        return [name for name in self.nodes if name not in children]

    def is_recursive(self) -> bool:
        """True iff the schema graph contains a cycle (section 2)."""
        try:
            nx.find_cycle(self.graph())
            return True
        except nx.NetworkXNoCycle:
            return False

    def shared_nodes(self) -> List[str]:
        """Nodes with ≥2 incoming edges (schema sharing, section 2)."""
        incoming: Dict[str, int] = {name: 0 for name in self.nodes}
        for edge in self.edges.values():
            for child in edge.child_names():
                incoming[child] += 1
        return [name for name, count in incoming.items() if count >= 2]

    def edges_from(self, parent: str) -> List[EdgeSchema]:
        return [e for e in self.edges.values() if e.parent == parent]

    def edges_to(self, child: str) -> List[EdgeSchema]:
        return [e for e in self.edges.values() if child in e.child_names()]

    def describe(self) -> str:
        """Readable schema-graph dump, in the style of the paper's Fig. 1."""
        lines = [f"Composite Object {self.name or '<anonymous>'}"]
        roots = set(self.roots())
        for name in self.nodes:
            marker = " (root)" if name in roots else ""
            lines.append(f"  node {name}{marker}")
        for edge in self.edges.values():
            attrs = (
                f" with attributes ({', '.join(edge.attribute_names())})"
                if edge.attributes
                else ""
            )
            targets = ", ".join(edge.child_names())
            lines.append(
                f"  edge {edge.name}: {edge.parent} -> {targets}{attrs}"
            )
        flags = []
        if self.is_recursive():
            flags.append("recursive")
        if self.shared_nodes():
            flags.append(f"schema-shared ({', '.join(self.shared_nodes())})")
        if flags:
            lines.append("  [" + ", ".join(flags) + "]")
        return "\n".join(lines)
