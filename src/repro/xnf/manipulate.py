"""Manipulation operations with propagation to base tables (section 3.7).

The paper's update philosophy, implemented rule for rule:

* nodes are regular views: simple single-table derivations are updatable,
  aggregation/joins/DISTINCT make a node read-only;
* columns that define relationships are updated only through
  connect/disconnect;
* a relationship defined by a foreign key disconnects by **nullifying the
  foreign key** and connects by setting it;
* an M:N relationship built from a base table (USING) disconnects by
  **deleting the corresponding link row** and connects by inserting one;
* deleting a tuple deletes the base row and disconnects the relationship
  instances directly attached to it — nothing cascades further;
* all udi-operations maintain the cache and propagate to the base tables
  (immediately, or queued until :meth:`Manipulator.flush` when the
  manipulator is created ``deferred=True`` — the [KDG87]-style batched
  propagation measured by experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import UpdatabilityError, XNFError
from repro.relational.engine import Database
from repro.relational.sql import ast as sql_ast
from repro.xnf.cache import CachedTuple, COCache, Connection
from repro.xnf.schema import EdgeSchema, NodeSchema


@dataclass
class NodeUpdatability:
    updatable: bool
    base_table: Optional[str] = None
    column_map: Dict[str, str] = field(default_factory=dict)  # node col -> base col
    reason: str = ""


@dataclass
class EdgeUpdatability:
    kind: str  # 'fk', 'mn', or 'readonly'
    parent_col: Optional[str] = None  # node-level column on the parent side
    child_col: Optional[str] = None  # node-level column on the child side
    link_table: Optional[str] = None
    parent_link_col: Optional[str] = None  # link-table column matched to parent
    child_link_col: Optional[str] = None
    attr_cols: Dict[str, str] = field(default_factory=dict)  # attr -> link col
    reason: str = ""


# ---------------------------------------------------------------------------
# Updatability analysis
# ---------------------------------------------------------------------------


def analyze_node(node: NodeSchema, db: Database) -> NodeUpdatability:
    """Derive the view-update mapping of a node, per section 3.7."""
    if node.table is not None:
        table = db.catalog.get_table(node.table)
        return NodeUpdatability(
            True, table.name, {col: col for col in table.column_names()}
        )
    query = node.query
    if not isinstance(query, sql_ast.SelectStmt):
        return NodeUpdatability(False, reason="set operations are read-only")
    if query.distinct:
        return NodeUpdatability(False, reason="DISTINCT loses row identity")
    if query.group_by or any(
        sql_ast.contains_aggregate(item.expr) for item in query.select_items
    ):
        return NodeUpdatability(False, reason="aggregation is read-only")
    if len(query.from_tables) != 1 or not isinstance(
        query.from_tables[0], sql_ast.NamedTable
    ):
        return NodeUpdatability(False, reason="joins/derived tables are read-only")
    base_ref = query.from_tables[0]
    if not db.catalog.has_table(base_ref.name):
        return NodeUpdatability(False, reason=f"{base_ref.name} is not a base table")
    table = db.catalog.get_table(base_ref.name)
    binding = (base_ref.alias or base_ref.name).upper()
    column_map: Dict[str, str] = {}
    for item in query.select_items:
        if isinstance(item.expr, sql_ast.Star):
            if item.expr.table is not None and item.expr.table.upper() != binding:
                return NodeUpdatability(False, reason="star over unknown alias")
            for col in table.column_names():
                column_map[col] = col
        elif isinstance(item.expr, sql_ast.ColumnRef):
            ref = item.expr
            if ref.table is not None and ref.table.upper() != binding:
                return NodeUpdatability(False, reason="column of unknown alias")
            base_col = table.column(ref.column).name
            column_map[item.alias or ref.column] = base_col
        else:
            return NodeUpdatability(
                False, reason=f"computed column {item.expr.to_sql()} is read-only"
            )
    return NodeUpdatability(True, table.name, column_map)


def analyze_edge(edge: EdgeSchema, db: Database) -> EdgeUpdatability:
    """Classify a relationship as FK-based, M:N link-table, or read-only."""
    if not edge.is_binary:
        return EdgeUpdatability(
            "readonly", reason="n-ary relationships are manipulated "
            "through their base tables"
        )
    conjuncts = sql_ast.conjuncts(edge.predicate)
    parent_b = edge.parent_binding.upper()
    child_b = edge.child_binding.upper()
    if not edge.using:
        if len(conjuncts) != 1:
            return EdgeUpdatability(
                "readonly", reason="FK relationships need a single equality"
            )
        pair = _eq_columns(conjuncts[0])
        if pair is None:
            return EdgeUpdatability("readonly", reason="non-equality predicate")
        (t1, c1), (t2, c2) = pair
        if t1.upper() == parent_b and t2.upper() == child_b:
            return EdgeUpdatability("fk", parent_col=c1, child_col=c2)
        if t1.upper() == child_b and t2.upper() == parent_b:
            return EdgeUpdatability("fk", parent_col=c2, child_col=c1)
        return EdgeUpdatability("readonly", reason="predicate not parent=child")
    if len(edge.using) != 1:
        return EdgeUpdatability("readonly", reason="multiple USING tables")
    link = edge.using[0]
    if not db.catalog.has_table(link.table):
        return EdgeUpdatability("readonly", reason=f"{link.table} not a base table")
    link_b = link.alias.upper()
    parent_pair = child_pair = None
    for conjunct in conjuncts:
        pair = _eq_columns(conjunct)
        if pair is None:
            return EdgeUpdatability("readonly", reason="non-equality predicate")
        (t1, c1), (t2, c2) = pair
        sides = {t1.upper(): c1, t2.upper(): c2}
        if parent_b in sides and link_b in sides:
            parent_pair = (sides[parent_b], sides[link_b])
        elif child_b in sides and link_b in sides:
            child_pair = (sides[child_b], sides[link_b])
        else:
            return EdgeUpdatability("readonly", reason="predicate shape unsupported")
    if parent_pair is None or child_pair is None:
        return EdgeUpdatability("readonly", reason="incomplete link predicates")
    attr_cols: Dict[str, str] = {}
    for name, expr in edge.attributes:
        if (
            isinstance(expr, sql_ast.ColumnRef)
            and expr.table is not None
            and expr.table.upper() == link_b
        ):
            attr_cols[name] = expr.column
    return EdgeUpdatability(
        "mn",
        parent_col=parent_pair[0],
        child_col=child_pair[0],
        link_table=link.table.upper(),
        parent_link_col=parent_pair[1],
        child_link_col=child_pair[1],
        attr_cols=attr_cols,
    )


def _eq_columns(expr: sql_ast.Expr):
    if not (isinstance(expr, sql_ast.BinaryOp) and expr.op == "="):
        return None
    left, right = expr.left, expr.right
    if isinstance(left, sql_ast.ColumnRef) and isinstance(right, sql_ast.ColumnRef):
        if left.table is None or right.table is None:
            return None
        return (left.table, left.column), (right.table, right.column)
    return None


# ---------------------------------------------------------------------------
# The manipulator
# ---------------------------------------------------------------------------


class Manipulator:
    """udi-operations and connect/disconnect on a loaded CO."""

    def __init__(self, db: Database, cache: COCache, deferred: bool = False):
        self.db = db
        self.cache = cache
        self.deferred = deferred
        self._pending: List[sql_ast.Statement] = []
        self._node_info: Dict[str, NodeUpdatability] = {}
        self._edge_info: Dict[str, EdgeUpdatability] = {}
        self.operations = 0

    # -- metadata ------------------------------------------------------------------

    def node_info(self, node_name: str) -> NodeUpdatability:
        info = self._node_info.get(node_name)
        if info is None:
            node = self.cache.schema.nodes.get(node_name)
            if node is None:
                raise XNFError(f"unknown node {node_name!r}")
            info = analyze_node(node, self.db)
            self._node_info[node_name] = info
        return info

    def edge_info(self, edge_name: str) -> EdgeUpdatability:
        info = self._edge_info.get(edge_name)
        if info is None:
            edge = self.cache.schema.edges.get(edge_name)
            if edge is None:
                raise XNFError(f"unknown relationship {edge_name!r}")
            info = analyze_edge(edge, self.db)
            self._edge_info[edge_name] = info
        return info

    def relationship_columns(self, node_name: str) -> set:
        """Node columns that define relationships (update via connect only)."""
        columns = set()
        for edge in self.cache.schema.edges.values():
            info = self.edge_info(edge.name)
            if info.kind == "fk":
                if edge.child == node_name and info.child_col:
                    columns.add(info.child_col.upper())
                if edge.parent == node_name and info.parent_col:
                    columns.add(info.parent_col.upper())
        return columns

    # -- udi operations ---------------------------------------------------------------

    def update(self, cached: CachedTuple, changes: Dict[str, Any]) -> None:
        """Update a tuple's columns; propagates to the base table."""
        info = self._require_updatable(cached.node)
        blocked = self.relationship_columns(cached.node)
        for column in changes:
            if column.upper() in blocked:
                raise UpdatabilityError(
                    f"column {column} of {cached.node} defines a relationship; "
                    "use connect/disconnect instead"
                )
            if column not in info.column_map:
                raise UpdatabilityError(
                    f"column {column} of {cached.node} does not map to a "
                    "base-table column"
                )
        old_values = cached.full_values()
        where = self._match_predicate(info, cached)
        assignments = [
            (info.column_map[col], sql_ast.Literal(val))
            for col, val in changes.items()
        ]
        self._emit(sql_ast.UpdateStmt(info.base_table, assignments, where))
        for col, val in changes.items():
            cached._values[self.cache.raw_position(cached.node, col)] = val
        self.cache.reindex(cached, old_values)
        self.operations += 1

    def delete(self, cached: CachedTuple) -> None:
        """Delete a tuple: disconnect attached relationship instances, then
        remove the base row (the paper's two-part delete semantics)."""
        info = self._require_updatable(cached.node)
        for edge_name in list(cached.children) + list(cached.parents):
            for conn in list(cached.connections(edge_name)):
                # FK disconnect would nullify the very row being deleted —
                # skip the base write when the FK lives on the deleted side.
                edge_info = self.edge_info(edge_name)
                if edge_info.kind == "fk" and conn.child is cached:
                    conn.alive = False
                    continue
                self.disconnect(conn)
        where = self._match_predicate(info, cached)
        self._emit(sql_ast.DeleteStmt(info.base_table, where))
        self.cache.remove_tuple(cached)
        self.operations += 1

    def insert(self, node_name: str, values: Dict[str, Any]) -> CachedTuple:
        """Insert a new tuple into a node (and its base table)."""
        info = self._require_updatable(node_name)
        columns = self.cache.columns[node_name]
        row = tuple(values.get(col) for col in columns)
        base_cols = []
        base_exprs = []
        for col, val in zip(columns, row):
            base_col = info.column_map.get(col)
            if base_col is None:
                if val is not None:
                    raise UpdatabilityError(
                        f"column {col} of {node_name} is not insertable"
                    )
                continue
            base_cols.append(base_col)
            base_exprs.append(sql_ast.Literal(val))
        self._emit(sql_ast.InsertStmt(info.base_table, base_cols, rows=[base_exprs]))
        cached = self.cache._add_tuple(node_name, row)
        self.operations += 1
        return cached

    # -- connect / disconnect --------------------------------------------------------------

    def connect(
        self,
        edge_name: str,
        parent: CachedTuple,
        child: CachedTuple,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Connection:
        edge = self.cache.schema.edges.get(edge_name)
        if edge is None:
            raise XNFError(f"unknown relationship {edge_name!r}")
        if parent.node != edge.parent or child.node != edge.child:
            raise UpdatabilityError(
                f"connect on {edge_name} expects ({edge.parent}, {edge.child}) "
                f"tuples, got ({parent.node}, {child.node})"
            )
        info = self.edge_info(edge_name)
        attributes = attributes or {}
        if info.kind == "fk":
            child_info = self._require_updatable(child.node)
            fk_base_col = child_info.column_map.get(info.child_col)
            if fk_base_col is None:
                raise UpdatabilityError(
                    f"FK column {info.child_col} is not updatable on {child.node}"
                )
            value = parent.raw(info.parent_col)
            old_values = child.full_values()
            where = self._match_predicate(child_info, child)
            self._emit(
                sql_ast.UpdateStmt(
                    child_info.base_table,
                    [(fk_base_col, sql_ast.Literal(value))],
                    where,
                )
            )
            child._values[self.cache.raw_position(child.node, info.child_col)] = value
            self.cache.reindex(child, old_values)
        elif info.kind == "mn":
            link = self.db.catalog.get_table(info.link_table)
            columns = [info.parent_link_col, info.child_link_col]
            exprs = [
                sql_ast.Literal(parent.raw(info.parent_col)),
                sql_ast.Literal(child.raw(info.child_col)),
            ]
            for attr, value in attributes.items():
                link_col = info.attr_cols.get(attr)
                if link_col is None:
                    raise UpdatabilityError(
                        f"attribute {attr} of {edge_name} does not map to a "
                        "link-table column"
                    )
                columns.append(link_col)
                exprs.append(sql_ast.Literal(value))
            self._emit(sql_ast.InsertStmt(link.name, columns, rows=[exprs]))
        else:
            raise UpdatabilityError(
                f"relationship {edge_name} is not updatable: {info.reason}"
            )
        conn = self.cache.add_connection(edge_name, parent, child, attributes)
        self.operations += 1
        return conn

    def disconnect(self, conn: Connection) -> None:
        info = self.edge_info(conn.edge)
        if info.kind == "fk":
            child_info = self._require_updatable(conn.child.node)
            fk_base_col = child_info.column_map.get(info.child_col)
            old_values = conn.child.full_values()
            where = self._match_predicate(child_info, conn.child)
            self._emit(
                sql_ast.UpdateStmt(
                    child_info.base_table,
                    [(fk_base_col, sql_ast.Literal(None))],
                    where,
                )
            )
            position = self.cache.raw_position(conn.child.node, info.child_col)
            conn.child._values[position] = None
            self.cache.reindex(conn.child, old_values)
        elif info.kind == "mn":
            predicates: List[sql_ast.Expr] = [
                _eq_or_null(info.parent_link_col, conn.parent.raw(info.parent_col)),
                _eq_or_null(info.child_link_col, conn.child.raw(info.child_col)),
            ]
            for attr, value in conn.attributes.items():
                link_col = info.attr_cols.get(attr)
                if link_col is not None:
                    predicates.append(_eq_or_null(link_col, value))
            self._emit(
                sql_ast.DeleteStmt(info.link_table, sql_ast.conjoin(predicates))
            )
        else:
            raise UpdatabilityError(
                f"relationship {conn.edge} is not updatable: {info.reason}"
            )
        conn.alive = False
        self.operations += 1

    # -- deferred propagation -----------------------------------------------------------------

    def flush(self) -> int:
        """Apply queued base-table changes (deferred mode); returns count."""
        applied = len(self._pending)
        if not self._pending:
            return 0
        self.db.begin()
        try:
            for stmt in self._pending:
                self.db.execute_ast(stmt)
        except Exception:
            self.db.rollback()
            raise
        self.db.commit()
        self._pending.clear()
        return applied

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- helpers ---------------------------------------------------------------------------------

    def _require_updatable(self, node_name: str) -> NodeUpdatability:
        info = self.node_info(node_name)
        if not info.updatable:
            raise UpdatabilityError(
                f"node {node_name} is not updatable: {info.reason}"
            )
        return info

    def _match_predicate(
        self, info: NodeUpdatability, cached: CachedTuple
    ) -> sql_ast.Expr:
        """WHERE clause matching the base row of *cached*: PK if available,
        else every mapped column (NULL-safe)."""
        table = self.db.catalog.get_table(info.base_table)
        pk_cols = [col.name for col in table.columns if col.primary_key]
        reverse = {base: node for node, base in info.column_map.items()}
        use_cols = (
            pk_cols
            if pk_cols and all(base in reverse for base in pk_cols)
            else list(info.column_map.values())
        )
        predicates = [
            _eq_or_null(base_col, cached.raw(reverse[base_col])) for base_col in use_cols
        ]
        predicate = sql_ast.conjoin(predicates)
        assert predicate is not None
        return predicate

    def _emit(self, stmt: sql_ast.Statement) -> None:
        if self.deferred:
            self._pending.append(stmt)
        else:
            self.db.execute_ast(stmt)


def _eq_or_null(column: str, value: Any) -> sql_ast.Expr:
    ref = sql_ast.ColumnRef(None, column)
    if value is None:
        return sql_ast.IsNull(ref)
    return sql_ast.BinaryOp("=", ref, sql_ast.Literal(value))
