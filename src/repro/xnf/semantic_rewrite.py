"""The XNF semantic rewrite: composite objects → generated SQL.

Section 4.3 of the paper: "we formulate one query for each node or
relationship output of an XNF query, observing XNF semantics such as
reachability.  These queries typically use common subqueries to avoid
unnecessary redundant computations.  For instance, when we generate the
tuples of a parent node, we output them, and also use them again to find
the tuples of the associated children."

Concretely:

* each node's *candidate set* (its defining query, with schema-pushable
  SUCH THAT restrictions folded in) is materialised **once** into a
  temporary table and reused by every relationship that touches the node —
  the common-subexpression sharing the paper describes (ablation: pass
  ``reuse_common=False`` to recompute the defining query at every use,
  experiment E3);
* reachability is evaluated as a **semi-naive fixpoint** of generated
  parent⋈child SQL queries — one round for hierarchical COs, ``depth``
  rounds for recursive ones (ablation: ``semi_naive=False`` re-joins the
  full reachable set each round, experiment E6);
* finally one SQL query per relationship produces the connection instances
  (parent row, child row, attribute values).

Every generated query runs through the unmodified engine pipeline
(QGM → rewrite → optimizer → executor), which is the paper's architectural
point: the relational machinery is reused wholesale.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import CatalogError, ResourceExhaustedError, TypeCheckError
from repro.relational.catalog import Column, Table
from repro.relational.engine import Database
from repro.relational.sql import ast as sql_ast
from repro.relational.types import BOOLEAN, FLOAT, INTEGER, SQLType, VARCHAR
from repro.xnf import sharding
from repro.xnf.schema import COSchema, EdgeSchema, NodeSchema

Row = Tuple[Any, ...]

_temp_ids = itertools.count(1)


@dataclass
class InstantiationStats:
    """Measurements of one CO instantiation (benchmarks read these)."""

    iterations: int = 0
    queries_issued: int = 0
    candidate_queries_run: int = 0
    temp_tables_created: int = 0


@dataclass
class COInstance:
    """The instance level of a CO: reachable tuples plus connections."""

    schema: COSchema
    columns: Dict[str, List[str]] = field(default_factory=dict)
    rows: Dict[str, List[Row]] = field(default_factory=dict)
    #: edge name -> list of (parent_row, child_rows, attribute_values);
    #: child_rows is a tuple with one row per child partner (one for binary
    #: relationships, more for n-ary ones).
    connections: Dict[str, List[Tuple[Row, Tuple[Row, ...], Row]]] = field(
        default_factory=dict
    )
    stats: InstantiationStats = field(default_factory=InstantiationStats)

    def total_tuples(self) -> int:
        return sum(len(rows) for rows in self.rows.values())

    def total_connections(self) -> int:
        return sum(len(conns) for conns in self.connections.values())


class XNFCompiler:
    """Instantiates a :class:`COSchema` against a relational database."""

    def __init__(
        self,
        db: Database,
        reuse_common: bool = True,
        semi_naive: bool = True,
        max_rounds: Optional[int] = None,
        max_rows: Optional[int] = None,
        timeout_s: Optional[float] = None,
        scatter: bool = True,
    ):
        self.db = db
        self.reuse_common = reuse_common
        self.semi_naive = semi_naive
        #: scatter/gather over sharded tables (see repro.xnf.sharding): node
        #: candidate queries run per shard with bound/zone-map pruning, and
        #: fixpoint deltas are partitioned by the USING table's partition
        #: key.  No-op on databases without sharded tables; ``False`` forces
        #: the facade plans (the equivalence ablation).
        self.scatter = scatter
        #: component name -> shard id -> rows that shard fed into the
        #: instance (reported to SYS_CO_STATS as kind="shard" rows)
        self.shard_stats: Dict[str, Dict[int, int]] = {}
        #: execution guards: abort a runaway reachability fixpoint (cyclic
        #: recursive COs can otherwise expand without bound) with
        #: ResourceExhaustedError.  None disables a guard.
        self.max_rounds = max_rounds
        self.max_rows = max_rows
        self.timeout_s = timeout_s
        #: scratch worktables currently attached to the catalog (name -> Table)
        self._attached: Dict[str, Table] = {}
        #: uniquely-named fallback tables (name collided with a user object);
        #: these are dropped, not pooled, on release
        self._fallback: set = set()
        self.stats = InstantiationStats()

    # -- public ------------------------------------------------------------------

    def instantiate(self, schema: COSchema) -> COInstance:
        self._current_schema = schema
        schema.validate()
        self.db.metrics.inc("xnf.fixpoint.instantiations")
        started = time.perf_counter()
        # Scratch worktables use stable names (for plan-cache fingerprint
        # reuse), so extractions on one Database must not interleave:
        # serialize them.  Base-table reads inside the fixpoint still
        # resolve through the caller's ambient MVCC snapshot, so a CO
        # extraction inside a transaction is snapshot-consistent while
        # writers proceed concurrently.
        with self.db.xnf_mutex:
            with self.db.tracer.span(
                "xnf.instantiate", co=schema.name or "<anonymous>"
            ) as span:
                try:
                    instance = self._instantiate(schema)
                finally:
                    self._release_temp_tables()
                span.annotate(
                    rounds=self.stats.iterations,
                    tuples=instance.total_tuples(),
                    connections=instance.total_connections(),
                )
                self._record_co_stats(
                    schema, instance, time.perf_counter() - started
                )
                return instance

    def _record_co_stats(
        self, schema: COSchema, instance: COInstance, duration_s: float
    ) -> None:
        """Report node/edge cardinalities and the fixpoint profile to the
        engine's CO-stats registry (surfaced as ``SYS_CO_STATS``)."""
        registry = getattr(self.db, "co_stats", None)
        if registry is None:
            return
        registry.record(
            schema.name or "<anonymous>",
            {name: len(rows) for name, rows in instance.rows.items()},
            {name: len(conns) for name, conns in instance.connections.items()},
            self.stats.iterations,
            self.stats.queries_issued,
            duration_s,
            shards=self.shard_stats or None,
        )

    # -- candidate sets ------------------------------------------------------------

    def candidate_query(self, node: NodeSchema) -> sql_ast.Query:
        """The node's defining query with pushed restrictions wrapped in."""
        if node.table is not None:
            query: sql_ast.Query = sql_ast.SelectStmt(
                [sql_ast.SelectItem(sql_ast.Star())],
                [sql_ast.NamedTable(node.table, node.name)],
            )
        else:
            assert node.query is not None
            query = node.query
        for alias, predicate in node.restrictions:
            query = sql_ast.SelectStmt(
                [sql_ast.SelectItem(sql_ast.Star())],
                [sql_ast.DerivedTable(query, alias)],
                where=predicate,
            )
        return query

    def _run_candidates(self, node: NodeSchema) -> Tuple[List[str], List[Row]]:
        query = self.candidate_query(node)
        if self.scatter:
            scattered = sharding.scatter_candidates(self.db, query)
            if scattered is not None:
                columns, rows, per_shard, _pruned = scattered
                self.stats.queries_issued += len(per_shard)
                self.stats.candidate_queries_run += 1
                if per_shard:
                    sink = self.shard_stats.setdefault(node.name, {})
                    for shard_id, count in per_shard.items():
                        sink[shard_id] = sink.get(shard_id, 0) + count
                if columns is None:
                    # every shard was pruned; derive the header statically
                    columns = self._node_columns(node)
                return columns, list(dict.fromkeys(rows))
        result = self.db.execute_ast(query)
        self.stats.queries_issued += 1
        self.stats.candidate_queries_run += 1
        unique: Dict[Row, None] = dict.fromkeys(result.rows)
        return result.columns, list(unique)

    def _node_columns(self, node: NodeSchema) -> List[str]:
        """Column names of a node without running its query."""
        if node.table is not None and not node.restrictions:
            return self.db.catalog.get_table(node.table).column_names()
        box = self.db.builder.build_query(self.candidate_query(node))
        return box.output_columns()

    @staticmethod
    def _is_trivial(node: NodeSchema) -> bool:
        """A bare base-table node: referenced directly in generated SQL,
        so the optimizer can use the base table's indexes."""
        return node.table is not None and not node.restrictions

    # -- the main algorithm -------------------------------------------------------------

    def _instantiate(self, schema: COSchema) -> COInstance:
        instance = COInstance(schema, stats=self.stats)
        # Column layouts are derived without executing anything; node
        # queries run lazily — roots eagerly (their rows seed reachability),
        # non-root candidate sets only when (and if) an edge needs them.
        columns: Dict[str, List[str]] = {}
        for name, node in schema.nodes.items():
            columns[name] = self._node_columns(node)
            instance.columns[name] = columns[name]
        candidate_tables: Dict[str, str] = {}

        # Reachability: ordered sets per node, seeded from the root tables.
        reachable: Dict[str, Dict[Row, None]] = {
            name: {} for name in schema.nodes
        }
        roots = schema.roots()
        delta: Dict[str, Dict[Row, None]] = {name: {} for name in schema.nodes}
        for root in roots:
            _, rows = self._run_candidates(schema.nodes[root])
            for row in rows:
                reachable[root][row] = None
                delta[root][row] = None

        edges = list(schema.edges.values())
        tracer = self.db.tracer
        metrics = self.db.metrics
        fixpoint_start = time.perf_counter()
        while any(delta.values()):
            self._check_guards(reachable, fixpoint_start)
            self.stats.iterations += 1
            with tracer.span(
                "xnf.fixpoint.round", round=self.stats.iterations
            ) as round_span:
                new_delta: Dict[str, Dict[Row, None]] = {
                    name: {} for name in schema.nodes
                }
                for edge in edges:
                    source = (
                        delta[edge.parent]
                        if self.semi_naive
                        else reachable[edge.parent]
                    )
                    if not source:
                        continue
                    derived = self._derive_children(
                        edge, columns, candidate_tables, list(source)
                    )
                    for child_name, rows in derived.items():
                        target = reachable[child_name]
                        pending = new_delta[child_name]
                        for row in rows:
                            if row not in target and row not in pending:
                                pending[row] = None
                for name, rows in new_delta.items():
                    reachable[name].update(rows)
                delta = new_delta
                delta_rows = sum(len(rows) for rows in delta.values())
                round_span.annotate(delta_rows=delta_rows)
                metrics.inc("xnf.fixpoint.rounds")
                metrics.inc("xnf.fixpoint.delta_rows", delta_rows)

        for name in schema.nodes:
            instance.rows[name] = list(reachable[name])

        # Connection instances: one query per relationship over the
        # materialised reachable sets (another shared subexpression).
        reachable_tables: Dict[str, str] = {}
        for edge in edges:
            with tracer.span("xnf.connections", edge=edge.name) as span:
                instance.connections[edge.name] = self._derive_connections(
                    edge, instance, reachable_tables
                )
                span.annotate(rows=len(instance.connections[edge.name]))
        return instance

    def _check_guards(
        self, reachable: Dict[str, Dict[Row, None]], started: float
    ) -> None:
        """Abort a runaway fixpoint before the next round starts.

        Raised between rounds, so the catalog, the scratch-table pool and
        the plan cache are never left mid-mutation: ``instantiate``'s
        ``finally`` clause releases the worktables exactly as it does after
        a successful run.
        """
        if self.max_rounds is not None and self.stats.iterations >= self.max_rounds:
            self.db.metrics.inc("xnf.fixpoint.guard_trips")
            raise ResourceExhaustedError(
                f"XNF fixpoint exceeded {self.max_rounds} rounds "
                "(recursive CO did not converge)"
            )
        if self.max_rows is not None:
            total = sum(len(rows) for rows in reachable.values())
            if total > self.max_rows:
                self.db.metrics.inc("xnf.fixpoint.guard_trips")
                raise ResourceExhaustedError(
                    f"XNF fixpoint exceeded {self.max_rows} reachable rows "
                    f"(got {total})"
                )
        if (
            self.timeout_s is not None
            and time.perf_counter() - started > self.timeout_s
        ):
            self.db.metrics.inc("xnf.fixpoint.guard_trips")
            raise ResourceExhaustedError(
                f"XNF fixpoint exceeded timeout of {self.timeout_s}s"
            )

    # -- generated queries ------------------------------------------------------------

    def _derive_children(
        self,
        edge: EdgeSchema,
        columns: Dict[str, List[str]],
        candidate_tables: Dict[str, str],
        parent_rows: List[Row],
    ) -> Dict[str, List[Row]]:
        """SQL for: children of *parent_rows* via *edge* (reachability join).

        One generated query per child partner (one for a binary edge); every
        query joins the delta with *all* child partners plus the USING
        tables, because the relationship predicate mentions all of them.

        When the edge joins the delta to a sharded USING table on its
        partition key and the delta is large enough to amortise the split
        (:data:`sharding.MIN_PARTITION_DELTA_ROWS`), the delta is
        partitioned by that key instead (``repro.xnf.sharding``): one
        ``XNF_DELTA_<node>_S<i>`` worktable per shard with a non-empty
        partition, empty partitions skipped — the per-round delta exchange
        of partition-aware reachability.
        """
        partition_plan = (
            sharding.delta_partition_plan(self.db, edge, columns[edge.parent])
            if self.scatter
            and len(parent_rows) >= sharding.MIN_PARTITION_DELTA_ROWS
            else None
        )
        if partition_plan is not None:
            return self._derive_children_partitioned(
                edge, columns, candidate_tables, parent_rows, partition_plan
            )
        delta_table = self._materialize(
            f"DELTA_{edge.parent}", columns[edge.parent], parent_rows
        )
        return self._run_child_queries(edge, candidate_tables, delta_table)

    def _child_queries(
        self,
        edge: EdgeSchema,
        candidate_tables: Dict[str, str],
        delta_table: str,
    ) -> List[Tuple[str, sql_ast.SelectStmt]]:
        """Build one reachability query per child partner of *edge*.

        Always runs on the instantiating thread: ``_node_reference`` may
        materialise candidate worktables (a catalog mutation), which must
        never race between shard workers.
        """
        from_tables: List[sql_ast.TableRef] = [
            sql_ast.NamedTable(delta_table, edge.parent_binding),
        ]
        for child_name, binding in zip(edge.child_names(), edge.child_bindings()):
            from_tables.append(
                self._node_reference(child_name, candidate_tables, binding)
            )
        from_tables.extend(
            sql_ast.NamedTable(u.table, u.alias) for u in edge.using
        )
        return [
            (
                child_name,
                sql_ast.SelectStmt(
                    [sql_ast.SelectItem(sql_ast.Star(binding))],
                    list(from_tables),
                    where=edge.predicate,
                    distinct=True,
                ),
            )
            for child_name, binding in zip(
                edge.child_names(), edge.child_bindings()
            )
        ]

    def _run_child_queries(
        self,
        edge: EdgeSchema,
        candidate_tables: Dict[str, str],
        delta_table: str,
        derived: Optional[Dict[str, List[Row]]] = None,
    ) -> Dict[str, List[Row]]:
        if derived is None:
            derived = {}
        for child_name, query in self._child_queries(
            edge, candidate_tables, delta_table
        ):
            result = self.db.execute_ast(query)
            self.stats.queries_issued += 1
            derived.setdefault(child_name, []).extend(result.rows)
        return derived

    def _derive_children_partitioned(
        self,
        edge: EdgeSchema,
        columns: Dict[str, List[str]],
        candidate_tables: Dict[str, str],
        parent_rows: List[Row],
        partition_plan: Tuple[Any, int],
    ) -> Dict[str, List[Row]]:
        using_table, key_pos = partition_plan
        buckets = sharding.partition_delta(using_table, key_pos, parent_rows)
        skipped = using_table.partition.num_shards - len(buckets)
        if skipped:
            self.db.metrics.inc("xnf.scatter.delta_skipped", skipped)
        sink = self.shard_stats.setdefault(edge.name, {})
        # Materialise every shard delta and build its queries up front on
        # this thread (worktable and candidate materialisation mutate the
        # catalog); only the built queries fan out to workers below.
        jobs: List[Tuple[int, List[Tuple[str, sql_ast.SelectStmt]]]] = []
        for shard_id in sorted(buckets):
            rows = buckets[shard_id]
            sink[shard_id] = sink.get(shard_id, 0) + len(rows)
            delta_table = self._materialize(
                f"DELTA_{edge.parent}_S{shard_id}", columns[edge.parent], rows
            )
            jobs.append(
                (shard_id, self._child_queries(edge, candidate_tables, delta_table))
            )
        db = self.db
        tracer = db.tracer
        # Explicit trace handoff (as in sharding.scatter_candidates): the
        # per-shard delta spans must parent under the statement span even
        # when opened on a pool worker's fresh thread-local stack.
        context = tracer.current_context()

        def run_shard(
            job: Tuple[int, List[Tuple[str, sql_ast.SelectStmt]]]
        ) -> List[Tuple[str, List[Row]]]:
            shard_id, queries = job
            with tracer.adopt(context):
                with tracer.span("xnf.delta.shard", shard=shard_id) as span:
                    out = [
                        (child_name, db.execute_ast(query).rows)
                        for child_name, query in queries
                    ]
                    span.annotate(rows=sum(len(r) for _, r in out))
                    return out

        if len(jobs) > 1 and not db.in_transaction:
            # Same snapshot reasoning as scatter_candidates: autocommit
            # reads resolve on each worker exactly as a serial autocommit
            # statement would; a pinned transaction snapshot keeps the
            # whole exchange on the calling thread instead.
            with ThreadPoolExecutor(
                max_workers=len(jobs), thread_name_prefix="xnf-scatter"
            ) as pool:
                partials = list(pool.map(run_shard, jobs))
        else:
            partials = [run_shard(job) for job in jobs]
        derived: Dict[str, List[Row]] = {}
        for (_, queries), partial in zip(jobs, partials):
            self.stats.queries_issued += len(queries)
            for child_name, rows in partial:
                derived.setdefault(child_name, []).extend(rows)
        return derived

    def _derive_connections(
        self,
        edge: EdgeSchema,
        instance: COInstance,
        reachable_tables: Dict[str, str],
    ) -> List[Tuple[Row, Tuple[Row, ...], Row]]:
        parent_table = self._reachable_table(edge.parent, instance, reachable_tables)
        select_items = [sql_ast.SelectItem(sql_ast.Star(edge.parent_binding))]
        from_tables: List[sql_ast.TableRef] = [
            sql_ast.NamedTable(parent_table, edge.parent_binding),
        ]
        child_names = edge.child_names()
        child_bindings = edge.child_bindings()
        for child_name, binding in zip(child_names, child_bindings):
            child_table = self._reachable_table(
                child_name, instance, reachable_tables
            )
            select_items.append(sql_ast.SelectItem(sql_ast.Star(binding)))
            from_tables.append(sql_ast.NamedTable(child_table, binding))
        for attr_name, attr_expr in edge.attributes:
            select_items.append(sql_ast.SelectItem(attr_expr, attr_name))
        from_tables.extend(
            sql_ast.NamedTable(u.table, u.alias) for u in edge.using
        )
        query = sql_ast.SelectStmt(
            select_items, from_tables, where=edge.predicate, distinct=True
        )
        result = self.db.execute_ast(query)
        self.stats.queries_issued += 1
        parent_width = len(instance.columns[edge.parent])
        child_widths = [len(instance.columns[name]) for name in child_names]
        connections: List[Tuple[Row, Tuple[Row, ...], Row]] = []
        for row in result.rows:
            child_rows = []
            offset = parent_width
            for width in child_widths:
                child_rows.append(row[offset : offset + width])
                offset += width
            connections.append((row[:parent_width], tuple(child_rows), row[offset:]))
        return connections

    def _node_reference(
        self,
        node_name: str,
        candidate_tables: Dict[str, str],
        binding: str,
    ) -> sql_ast.TableRef:
        """Reference a node's candidate set in a generated query.

        With common-subexpression reuse this is the materialised temp table;
        without it the node's defining query is inlined and recomputed."""
        node = self._current_schema.nodes[node_name]
        if self._is_trivial(node):
            # Bare base table: reference it directly so the plan optimizer
            # can pick its indexes (both modes — there is nothing to share).
            return sql_ast.NamedTable(node.table, binding)
        if self.reuse_common:
            table = candidate_tables.get(node_name)
            if table is None:
                columns, rows = self._run_candidates(node)
                table = self._materialize(f"CAND_{node_name}", columns, rows)
                candidate_tables[node_name] = table
            return sql_ast.NamedTable(table, binding)
        # Without reuse, the node's defining query is rebuilt and re-run at
        # every use — the ablation's whole point (experiment E3).
        self.stats.candidate_queries_run += 1
        return sql_ast.DerivedTable(self.candidate_query(node), binding)

    def _reachable_table(
        self,
        node_name: str,
        instance: COInstance,
        reachable_tables: Dict[str, str],
    ) -> str:
        table = reachable_tables.get(node_name)
        if table is None:
            table = self._materialize(
                f"REACH_{node_name}",
                instance.columns[node_name],
                instance.rows[node_name],
            )
            reachable_tables[node_name] = table
        return table

    # -- temp-table plumbing ----------------------------------------------------------
    #
    # Worktables get *stable* names (XNF_DELTA_<node>, XNF_CAND_<node>,
    # XNF_REACH_<node>) so that the generated per-round / per-refresh SQL has
    # an identical fingerprint every time and re-hits the engine's plan
    # cache.  The Table objects themselves are recycled: refills go through
    # ``Table.truncate()`` (no catalog version bump — compiled plans bind the
    # Table object and stay valid) and, between instantiations, the tables
    # are parked in ``Database.scratch_tables`` via ``detach_scratch`` /
    # ``attach_scratch`` so the catalog looks clean while extractions are
    # not running.

    def _materialize(
        self, prefix: str, columns: Sequence[str], rows: List[Row]
    ) -> str:
        name = f"XNF_{prefix}".upper()
        table = self._acquire_scratch(name, columns, rows)
        self.stats.temp_tables_created += 1
        return table.name

    def _acquire_scratch(
        self, name: str, columns: Sequence[str], rows: List[Row]
    ) -> Table:
        catalog = self.db.catalog
        table = self._attached.get(name)
        if table is None:
            pooled = self.db.scratch_tables.get(name)
            if pooled is not None and not catalog.has_table(name):
                del self.db.scratch_tables[name]
                catalog.attach_scratch(pooled)
                table = self._attached[name] = pooled
        if table is not None:
            same_layout = [c.upper() for c in table.column_names()] == [
                str(c).upper() for c in columns
            ]
            if same_layout:
                try:
                    table.truncate()
                    table.insert_many(rows)
                    return table
                except TypeCheckError:
                    pass  # column types drifted; rebuild below
            # Layout changed: rebuild under the same name.  drop_table bumps
            # the catalog version, correctly invalidating plans compiled
            # against the old layout.
            self._attached.pop(name, None)
            catalog.drop_table(name, if_exists=True)
        column_defs = [
            Column(col, _infer_type(rows, pos), nullable=True)
            for pos, col in enumerate(columns)
        ]
        try:
            table = catalog.create_table(name, column_defs)
        except CatalogError:
            # The stable name collides with a user table/view: fall back to a
            # uniquified throwaway (dropped, not pooled, on release).
            name = f"{name}_{next(_temp_ids)}"
            table = catalog.create_table(name, column_defs)
            self._fallback.add(name)
        table.insert_many(rows)
        self._attached[name] = table
        return table

    def _release_temp_tables(self) -> None:
        for name, table in list(self._attached.items()):
            if name in self._fallback:
                self.db.catalog.drop_table(name, if_exists=True)
            else:
                detached = self.db.catalog.detach_scratch(name)
                if detached is not None:
                    detached.truncate()
                    self.db.scratch_tables[name] = detached
        self._attached.clear()
        self._fallback.clear()


def instantiate(
    db: Database,
    schema: COSchema,
    reuse_common: bool = True,
    semi_naive: bool = True,
) -> COInstance:
    """Instantiate *schema* against *db*; see :class:`XNFCompiler`."""
    compiler = XNFCompiler(db, reuse_common=reuse_common, semi_naive=semi_naive)
    return compiler.instantiate(schema)


def _infer_type(rows: List[Row], position: int) -> SQLType:
    for row in rows:
        value = row[position]
        if value is None:
            continue
        if isinstance(value, bool):
            return BOOLEAN
        if isinstance(value, int):
            return INTEGER
        if isinstance(value, float):
            return FLOAT
        if isinstance(value, str):
            return VARCHAR()
    return VARCHAR()
