"""CAD-style design database for the working-set experiments.

Section 1 of the paper: "design applications ... often work on a
well-specified set of data, called working set, such as a particular
version of a document ... loading a working set translates into a data
extraction where on average one tuple out of 10000 to 100000 is selected".

The generator builds DOCUMENT / VERSION / COMPONENT / SUBCOMP tables whose
total size scales with *num_documents*, while a *working set* — one
document version with its components and subcomponents — stays a fixed,
small size.  :data:`WORKING_SET_CO` extracts exactly that working set as a
composite object; the benchmark sweeps the database size and measures the
set-oriented extraction against a navigational one-query-per-tuple loader.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.relational.engine import Database
from repro.xnf.api import CompositeObject, XNFSession

COMPONENTS_PER_VERSION = 20
SUBCOMPS_PER_COMPONENT = 4
VERSIONS_PER_DOCUMENT = 3


def build_design_database(
    num_documents: int, seed: int = 11, **db_kwargs
) -> Database:
    """DOCUMENT(1) -< VERSION(3) -< COMPONENT(20) -< SUBCOMP(4 each)."""
    db = Database(**db_kwargs)
    db.execute_script(
        """
        CREATE TABLE DOCUMENT (did INTEGER PRIMARY KEY, dname VARCHAR,
                               owner VARCHAR);
        CREATE TABLE VERSION (vid INTEGER PRIMARY KEY, vdid INTEGER,
                              vnum INTEGER, state VARCHAR);
        CREATE TABLE COMPONENT (cid INTEGER PRIMARY KEY, cvid INTEGER,
                                ckind VARCHAR, weight FLOAT);
        CREATE TABLE SUBCOMP (sid INTEGER PRIMARY KEY, scid INTEGER,
                              material VARCHAR, cost FLOAT);
        """
    )
    rng = random.Random(seed)
    documents = db.catalog.get_table("DOCUMENT")
    versions = db.catalog.get_table("VERSION")
    components = db.catalog.get_table("COMPONENT")
    subcomps = db.catalog.get_table("SUBCOMP")
    vid = cid = sid = 0
    for did in range(1, num_documents + 1):
        documents.insert((did, f"doc{did}", f"owner{did % 17}"))
        for vnum in range(1, VERSIONS_PER_DOCUMENT + 1):
            vid += 1
            versions.insert(
                (vid, did, vnum, rng.choice(["draft", "released", "frozen"]))
            )
            for _ in range(COMPONENTS_PER_VERSION):
                cid += 1
                components.insert(
                    (cid, vid, rng.choice(["wing", "panel", "rib", "spar"]),
                     float(rng.randint(1, 500)))
                )
                for _ in range(SUBCOMPS_PER_COMPONENT):
                    sid += 1
                    subcomps.insert(
                        (sid, cid, rng.choice(["alu", "steel", "cfrp"]),
                         float(rng.randint(1, 100)))
                    )
    db.execute(
        "CREATE INDEX idx_version_doc ON VERSION (vdid); "
        "CREATE INDEX idx_component_ver ON COMPONENT (cvid); "
        "CREATE INDEX idx_subcomp_comp ON SUBCOMP (scid); "
        "ANALYZE"
    )
    return db


def total_tuples(num_documents: int) -> int:
    per_doc = 1 + VERSIONS_PER_DOCUMENT * (
        1 + COMPONENTS_PER_VERSION * (1 + SUBCOMPS_PER_COMPONENT)
    )
    return num_documents * per_doc


def working_set_co(document_id: int, version_num: int) -> str:
    """The XNF query extracting one document version's working set."""
    return f"""
    OUT OF
     Xdoc AS (SELECT * FROM DOCUMENT WHERE did = {document_id}),
     Xver AS (SELECT * FROM VERSION WHERE vnum = {version_num}),
     Xcomp AS COMPONENT,
     Xsub AS SUBCOMP,
     has_version AS (RELATE Xdoc, Xver WHERE Xdoc.did = Xver.vdid),
     has_component AS (RELATE Xver, Xcomp WHERE Xver.vid = Xcomp.cvid),
     has_subcomp AS (RELATE Xcomp, Xsub WHERE Xcomp.cid = Xsub.scid)
    TAKE *
    """


def extract_working_set(
    session: XNFSession, document_id: int, version_num: int = 1
) -> CompositeObject:
    """Set-oriented extraction: one XNF query, optimizer-planned."""
    return session.query(working_set_co(document_id, version_num))


def extract_working_set_navigational(
    db: Database, document_id: int, version_num: int = 1
) -> Tuple[int, int]:
    """Baseline: tuple-at-a-time extraction with one query per step.

    This is what an application without the CO facility does: fetch the
    document, then its version, then loop over components, then over each
    component's subcomponents.  Returns (tuples_fetched, queries_issued).
    """
    queries = 0
    fetched = 0
    doc = db.execute(f"SELECT * FROM DOCUMENT WHERE did = {document_id}")
    queries += 1
    fetched += len(doc.rows)
    version_rows = db.execute(
        f"SELECT * FROM VERSION WHERE vdid = {document_id} "
        f"AND vnum = {version_num}"
    )
    queries += 1
    fetched += len(version_rows.rows)
    for version in version_rows.rows:
        comp_rows = db.execute(
            f"SELECT * FROM COMPONENT WHERE cvid = {version[0]}"
        )
        queries += 1
        fetched += len(comp_rows.rows)
        for comp in comp_rows.rows:
            sub_rows = db.execute(
                f"SELECT * FROM SUBCOMP WHERE scid = {comp[0]}"
            )
            queries += 1
            fetched += len(sub_rows.rows)
    return fetched, queries
