"""Cattell OO1-style parts/connections workload.

Section 4.2 of the paper grounds its performance claim in "Cattell's
benchmark" [Gr91]: the OO1 (Sun/Cattell "engineering database") benchmark —
N parts, exactly 3 outgoing connections per part (90% to *nearby* parts),
and three operations:

* **lookup** — fetch 1000 random parts by id,
* **traversal** — from a random part, follow connections to depth 7
  (counting a part once per arrival, i.e. 3^7 visits in the classic form —
  we report both raw visits and distinct parts),
* **insert** — add 100 parts plus their 3 connections each.

The generator builds PART and CONN base tables; the CO view over them
(:data:`PARTS_CO`) gives the XNF cache its pointer structure, with the
cyclic relationship carried by role names.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.relational.engine import Database
from repro.xnf.api import CompositeObject, XNFSession

#: fraction of connections targeting parts with nearby ids (OO1 locality)
NEARBY_FRACTION = 0.9
NEARBY_WINDOW = 0.01  # +-1% of N
CONNECTIONS_PER_PART = 3


def build_parts_database(
    num_parts: int, seed: int = 42, shards: int = 0, **db_kwargs
) -> Database:
    """Create PART/CONN tables with the OO1 shape.

    ``shards >= 2`` repartitions PART (range on ``x`` — part coordinates are
    uniform on [0, 99999], so equal-width split points balance the shards)
    and CONN (hash on ``cfrom``, the reachability join key) *before* loading
    any rows, so the bulk load itself routes through the shards.
    """
    db = Database(**db_kwargs)
    db.execute_script(
        """
        CREATE TABLE DESIGNLIB (lid INTEGER PRIMARY KEY, lname VARCHAR);
        CREATE TABLE PART (pid INTEGER PRIMARY KEY, ptype VARCHAR,
                           x INTEGER, y INTEGER, lib INTEGER);
        CREATE TABLE CONN (cfrom INTEGER, cto INTEGER, ctype VARCHAR,
                           clength INTEGER);
        """
    )
    if shards >= 2:
        db.repartition(
            "PART",
            shards,
            kind="range",
            column="x",
            bounds=[(i * 100000) // shards for i in range(1, shards)],
        )
        db.repartition("CONN", shards, kind="hash", column="cfrom")
    db.execute("INSERT INTO DESIGNLIB VALUES (1, 'main-library')")
    part_table = db.catalog.get_table("PART")
    conn_table = db.catalog.get_table("CONN")
    rng = random.Random(seed)
    # Bulk-load: append_rows pins pages batch-at-a-time (and, when sharded,
    # buckets per shard so each shard's pages fill contiguously).
    part_table.insert_many(
        [
            (pid, f"part-type{rng.randint(0, 9)}", rng.randint(0, 99999),
             rng.randint(0, 99999), 1)
            for pid in range(1, num_parts + 1)
        ]
    )
    conn_table.insert_many(generate_connections(num_parts, rng))
    db.execute(
        "CREATE INDEX idx_conn_from ON CONN (cfrom); "
        "CREATE INDEX idx_conn_to ON CONN (cto); "
        "ANALYZE"
    )
    return db


def generate_connections(
    num_parts: int, rng: random.Random
) -> List[Tuple[int, int, str, int]]:
    window = max(1, int(num_parts * NEARBY_WINDOW))
    rows: List[Tuple[int, int, str, int]] = []
    for cfrom in range(1, num_parts + 1):
        for _ in range(CONNECTIONS_PER_PART):
            if rng.random() < NEARBY_FRACTION:
                cto = cfrom + rng.randint(-window, window)
                cto = min(max(cto, 1), num_parts)
            else:
                cto = rng.randint(1, num_parts)
            rows.append(
                (cfrom, cto, f"conn-type{rng.randint(0, 9)}", rng.randint(0, 99))
            )
    return rows


#: CO over the whole parts database.  The design library is the root table
#: (reachability needs one); 'connects' is cyclic on Xpart, hence the roles.
PARTS_CO = """
OUT OF
 Xlib AS DESIGNLIB,
 Xpart AS PART,
 contains AS (RELATE Xlib, Xpart WHERE Xlib.lid = Xpart.lib),
 connects AS (RELATE Xpart source, Xpart target
              WITH ATTRIBUTES c.ctype AS ctype, c.clength AS clength
              USING CONN c
              WHERE source.pid = c.cfrom AND target.pid = c.cto)
TAKE *
"""


def load_parts_co(session: XNFSession) -> CompositeObject:
    """Extract the full parts CO into the cache."""
    return session.query(PARTS_CO)


# ---------------------------------------------------------------------------
# The three OO1 operations, in each access style
# ---------------------------------------------------------------------------


def lookup_cache(co: CompositeObject, part_ids: List[int]) -> int:
    """OO1 lookup via the cache index."""
    found = 0
    for pid in part_ids:
        if co.find("Xpart", pid=pid) is not None:
            found += 1
    return found


def lookup_sql(db: Database, part_ids: List[int]) -> int:
    """OO1 lookup via one SQL query per part (the paper's 'regular SQL
    DBMS interface' baseline)."""
    found = 0
    for pid in part_ids:
        if db.execute(f"SELECT * FROM PART WHERE pid = {pid}").rows:
            found += 1
    return found


def traverse_cache(co: CompositeObject, start_pid: int, depth: int = 7) -> int:
    """Depth-d traversal counting raw visits, via cache pointers."""
    start = co.find("Xpart", pid=start_pid)
    if start is None:
        return 0
    visits = 0

    def recurse(part, remaining: int) -> None:
        nonlocal visits
        visits += 1
        if remaining == 0:
            return
        for conn in part.children.get("connects", ()):  # one hop per connection
            if conn.alive and conn.child.alive:
                part._cache.navigations += 1
                recurse(conn.child, remaining - 1)

    recurse(start, depth)
    return visits


def traverse_sql(db: Database, start_pid: int, depth: int = 7) -> int:
    """Depth-d traversal issuing one SQL query per visited part."""
    visits = 0

    def recurse(pid: int, remaining: int) -> None:
        nonlocal visits
        visits += 1
        if remaining == 0:
            return
        result = db.execute(f"SELECT cto FROM CONN WHERE cfrom = {pid}")
        for (cto,) in result.rows:
            recurse(cto, remaining - 1)

    recurse(start_pid, depth)
    return visits


def traverse_setwise_sql(db: Database, start_pid: int, depth: int = 7) -> int:
    """Depth-d traversal with one set-oriented SQL query per *level* —
    the relational engine's best effort without a cache."""
    frontier = [start_pid]
    visits = 1
    for _ in range(depth):
        ids = ", ".join(str(pid) for pid in frontier)
        result = db.execute(f"SELECT cto FROM CONN WHERE cfrom IN ({ids})")
        frontier = [row[0] for row in result.rows]
        visits += len(frontier)
        if not frontier:
            break
    return visits


def insert_parts_sql(db: Database, start_id: int, count: int, rng: random.Random) -> None:
    """OO1 insert: *count* new parts with 3 connections each, via SQL."""
    for offset in range(count):
        pid = start_id + offset
        db.execute(
            f"INSERT INTO PART VALUES ({pid}, 'part-type0', "
            f"{rng.randint(0, 99999)}, {rng.randint(0, 99999)}, 0)"
        )
        for _ in range(CONNECTIONS_PER_PART):
            target = rng.randint(1, start_id - 1)
            db.execute(
                f"INSERT INTO CONN VALUES ({pid}, {target}, 'conn-type0', "
                f"{rng.randint(0, 99)})"
            )


def insert_parts_cache(
    co: CompositeObject, start_id: int, count: int, rng: random.Random
) -> None:
    """OO1 insert through the CO manipulation API (cache + propagation)."""
    for offset in range(count):
        pid = start_id + offset
        part = co.insert(
            "Xpart",
            pid=pid,
            ptype="part-type0",
            x=rng.randint(0, 99999),
            y=rng.randint(0, 99999),
            lib=1,
        )
        for _ in range(CONNECTIONS_PER_PART):
            target = co.find("Xpart", pid=rng.randint(1, start_id - 1))
            if target is not None:
                co.connect("connects", part, target)
