"""Workload generators for examples, tests and benchmarks.

* :mod:`~repro.workloads.company` — the paper's running example: the
  company database of Figs 1–5 in both representations of Fig. 2 (implicit
  foreign keys and explicit link tables), plus a size-scalable generator.
* :mod:`~repro.workloads.oo1` — a Cattell OO1-style parts/connections
  database (the benchmark the paper cites for its orders-of-magnitude
  claim), with the standard lookup/traversal/insert operations.
* :mod:`~repro.workloads.design` — a CAD-flavoured design database with
  documents, versions and components for the working-set extraction
  experiment (section 1's 1-in-10⁴…10⁵ selectivity scenario).
"""

from repro.workloads import company, design, oo1

__all__ = ["company", "design", "oo1"]
