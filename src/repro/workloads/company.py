"""The paper's company database (Figs 1–5) and its XNF views.

Two fixed instances:

* :func:`figure1_database` — DEPT/EMP/PROJ/SKILLS with the exact tuples of
  Fig. 1 (d1–d3, e1–e6, p1–p2, s1–s5; e3 and s2 deliberately unreachable),
* :func:`figure4_database` — the recursive scenario of Figs 3–5
  (membership with a percentage attribute, projmanagement closing the
  cycle, and p1 unreachable once 'ownership' is projected away),

plus :func:`scaled_database`, a size-parameterised version for benchmarks,
and :func:`create_paper_views` which installs ALL-DEPS, ALL-DEPS-ORG and
EXT-ALL-DEPS-ORG exactly as sections 3.2–3.4 define them.

:func:`cdb2_database` builds the alternative representation of Fig. 2
(EMPLOYMENT stored in an explicit DEPTEMP table) — the point being that the
same CO abstraction is derived from either representation.
"""

from __future__ import annotations

import random

from repro.relational.engine import Database
from repro.xnf.api import XNFSession

_SCHEMA = """
CREATE TABLE DEPT (dno INTEGER PRIMARY KEY, dname VARCHAR, loc VARCHAR,
                   budget FLOAT, dmgrno INTEGER);
CREATE TABLE EMP (eno INTEGER PRIMARY KEY, ename VARCHAR, sal FLOAT,
                  edno INTEGER, descr VARCHAR);
CREATE TABLE PROJ (pno INTEGER PRIMARY KEY, pname VARCHAR, budget FLOAT,
                   pdno INTEGER, pmgrno INTEGER);
CREATE TABLE SKILLS (sno INTEGER PRIMARY KEY, sname VARCHAR);
CREATE TABLE EMPSKILL (eseno INTEGER, essno INTEGER);
CREATE TABLE PROJSKILL (pspno INTEGER, pssno INTEGER);
CREATE TABLE EMPPROJ (epeno INTEGER, eppno INTEGER, percentage FLOAT);
"""


def empty_company_database(**db_kwargs) -> Database:
    """The company schema with no rows."""
    db = Database(**db_kwargs)
    db.execute_script(_SCHEMA)
    return db


def figure1_database(**db_kwargs) -> Database:
    """The exact instance of Fig. 1.

    Reachability from the root DEPT must exclude employee e3 (employed by
    no department) and skill s2 (possessed/needed by nobody reachable);
    skill s3 is instance-shared by e2, e4 and project p1.
    """
    db = empty_company_database(**db_kwargs)
    db.execute(
        "INSERT INTO DEPT VALUES (1,'d1','NY',1000.0,NULL),"
        "(2,'d2','SF',2000.0,NULL),(3,'d3','NY',500.0,NULL)"
    )
    db.execute(
        "INSERT INTO EMP VALUES (1,'e1',100.0,1,'staff'),(2,'e2',200.0,1,'staff'),"
        "(3,'e3',300.0,NULL,'staff'),(4,'e4',400.0,2,'staff'),"
        "(5,'e5',500.0,2,'staff'),(6,'e6',600.0,2,'mgr')"
    )
    db.execute(
        "INSERT INTO PROJ VALUES (1,'p1',50.0,1,NULL),(2,'p2',60.0,2,NULL)"
    )
    db.execute(
        "INSERT INTO SKILLS VALUES (1,'s1'),(2,'s2'),(3,'s3'),(4,'s4'),(5,'s5')"
    )
    db.execute("INSERT INTO EMPSKILL VALUES (1,1),(2,3),(4,3),(5,4)")
    db.execute("INSERT INTO PROJSKILL VALUES (1,3),(2,5)")
    db.execute("ANALYZE")
    return db


FIGURE1_CO = """
OUT OF
 Xdept AS DEPT,
 Xemp AS EMP,
 Xproj AS PROJ,
 Xskill AS SKILLS,
 employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno),
 ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno),
 empproperty AS (RELATE Xemp, Xskill USING EMPSKILL es
                 WHERE Xemp.eno = es.eseno AND Xskill.sno = es.essno),
 projproperty AS (RELATE Xproj, Xskill USING PROJSKILL ps
                  WHERE Xproj.pno = ps.pspno AND Xskill.sno = ps.pssno)
TAKE *
"""


def figure4_database(**db_kwargs) -> Database:
    """The instance behind Figs 3–5.

    Two departments (dNY in New York, dSF in San Francisco); p1 is owned by
    dSF and managed by nobody, so the Fig. 5 query (restrict to NY, project
    away 'ownership') must drop it as unreachable.
    """
    db = empty_company_database(**db_kwargs)
    db.execute(
        "INSERT INTO DEPT VALUES (1,'dNY','NY',1000.0,NULL),"
        "(2,'dSF','SF',2000.0,NULL)"
    )
    db.execute(
        "INSERT INTO EMP VALUES (1,'e1',100.0,1,'staff'),(2,'e2',200.0,1,'staff'),"
        "(3,'e3',300.0,2,'mgr'),(4,'e4',400.0,2,'staff')"
    )
    db.execute(
        "INSERT INTO PROJ VALUES (1,'p1',10.0,2,NULL),(2,'p2',20.0,1,1),"
        "(3,'p3',30.0,1,2),(4,'p4',40.0,2,3)"
    )
    db.execute(
        "INSERT INTO EMPPROJ VALUES (3,2,50.0),(4,2,25.0),(4,4,100.0)"
    )
    db.execute("ANALYZE")
    return db


def create_paper_views(session: XNFSession) -> None:
    """Install ALL-DEPS / ALL-DEPS-ORG / EXT-ALL-DEPS-ORG (sections 3.2–3.4)."""
    session.create_view(
        """
        CREATE VIEW ALL-DEPS AS
        OUT OF Xdept AS DEPT, Xemp AS EMP, Xproj AS PROJ,
          employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno),
          ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno)
        TAKE *
        """
    )
    session.create_view(
        """
        CREATE VIEW ALL-DEPS-ORG AS
        OUT OF ALL-DEPS,
          membership AS (RELATE Xproj, Xemp
            WITH ATTRIBUTES ep.percentage
            USING EMPPROJ ep
            WHERE Xproj.pno = ep.eppno AND Xemp.eno = ep.epeno)
        TAKE *
        """
    )
    session.create_view(
        """
        CREATE VIEW EXT-ALL-DEPS-ORG AS
        OUT OF ALL-DEPS-ORG,
          projmanagement AS (RELATE Xemp, Xproj WHERE Xemp.eno = Xproj.pmgrno)
        TAKE *
        """
    )


def cdb2_database(**db_kwargs) -> Database:
    """Fig. 2's second representation: EMPLOYMENT as an explicit table.

    Same logical content as :func:`figure1_database` for DEPT/EMP, but the
    association lives in DEPTEMP instead of an EMP foreign key.
    """
    db = Database(**db_kwargs)
    db.execute_script(
        """
        CREATE TABLE DEPT (dno INTEGER PRIMARY KEY, dname VARCHAR,
                           loc VARCHAR, budget FLOAT);
        CREATE TABLE EMP (eno INTEGER PRIMARY KEY, ename VARCHAR, sal FLOAT);
        CREATE TABLE DEPTEMP (dedno INTEGER, deeno INTEGER, since INTEGER);
        """
    )
    db.execute(
        "INSERT INTO DEPT VALUES (1,'d1','NY',1000.0),(2,'d2','SF',2000.0),"
        "(3,'d3','NY',500.0)"
    )
    db.execute(
        "INSERT INTO EMP VALUES (1,'e1',100.0),(2,'e2',200.0),(3,'e3',300.0),"
        "(4,'e4',400.0),(5,'e5',500.0),(6,'e6',600.0)"
    )
    db.execute(
        "INSERT INTO DEPTEMP VALUES (1,1,1990),(1,2,1991),(2,4,1989),"
        "(2,5,1992),(2,6,1988)"
    )
    db.execute("ANALYZE")
    return db


def scaled_database(
    departments: int = 20,
    employees_per_dept: int = 10,
    projects_per_dept: int = 3,
    skills: int = 50,
    seed: int = 7,
    **db_kwargs,
) -> Database:
    """A size-parameterised company database for benchmarks."""
    rng = random.Random(seed)
    db = empty_company_database(**db_kwargs)
    locations = ["NY", "SF", "LA", "CHI", "AUS"]
    eno = pno = 0
    dept_rows, emp_rows, proj_rows = [], [], []
    empproj_rows, empskill_rows, projskill_rows = [], [], []
    for dno in range(1, departments + 1):
        dept_rows.append(
            (dno, f"d{dno}", locations[dno % len(locations)],
             float(rng.randint(100, 10000)), None)
        )
        dept_emps = []
        for _ in range(employees_per_dept):
            eno += 1
            dept_emps.append(eno)
            emp_rows.append(
                (eno, f"e{eno}", float(rng.randint(10, 500)), dno,
                 rng.choice(["staff", "mgr", "contractor"]))
            )
            for _ in range(rng.randint(0, 3)):
                empskill_rows.append((eno, rng.randint(1, skills)))
        for _ in range(projects_per_dept):
            pno += 1
            manager = rng.choice(dept_emps) if dept_emps else None
            proj_rows.append(
                (pno, f"p{pno}", float(rng.randint(10, 1000)), dno, manager)
            )
            for member in rng.sample(dept_emps, min(3, len(dept_emps))):
                empproj_rows.append((member, pno, float(rng.randint(5, 100))))
            for _ in range(rng.randint(0, 2)):
                projskill_rows.append((pno, rng.randint(1, skills)))
    _bulk_insert(db, "DEPT", dept_rows)
    _bulk_insert(db, "EMP", emp_rows)
    _bulk_insert(db, "PROJ", proj_rows)
    _bulk_insert(db, "SKILLS", [(i, f"s{i}") for i in range(1, skills + 1)])
    _bulk_insert(db, "EMPSKILL", empskill_rows)
    _bulk_insert(db, "PROJSKILL", projskill_rows)
    _bulk_insert(db, "EMPPROJ", empproj_rows)
    db.execute(
        "CREATE INDEX idx_emp_edno ON EMP (edno); "
        "CREATE INDEX idx_proj_pdno ON PROJ (pdno); "
        "CREATE INDEX idx_proj_pmgrno ON PROJ (pmgrno); "
        "CREATE INDEX idx_empproj_eno ON EMPPROJ (epeno); "
        "CREATE INDEX idx_empproj_pno ON EMPPROJ (eppno); "
        "ANALYZE"
    )
    return db


def _bulk_insert(db: Database, table_name: str, rows) -> None:
    """Direct bulk load through the catalog (skips SQL text round trips)."""
    table = db.catalog.get_table(table_name)
    for row in rows:
        table.insert(row)
