"""Asyncio wire server: many network clients, one shared Database.

:class:`XNFServer` is the network front door of the paper's Fig. 7
architecture: every accepted connection becomes a *wire session* with its
own :class:`~repro.relational.engine.Session` (transaction state, per-
session statement timeout) and its own lazily-created
:class:`~repro.xnf.api.XNFSession` (CO extraction, views, SYS_MONITOR),
all over one shared :class:`Database` — so thousands of clients each pull
small composite-object working sets out of the same relational store.

Concurrency model: the event loop owns all socket IO; every blocking
database call runs on a bounded thread pool, and the engine's thread-local
session state is made connection-local by running each call inside the
connection's ``Session._activate()`` swap (one frame at a time per
connection, so a session's statements never run concurrently with each
other).  Under MVCC mode each statement picks up its ambient snapshot
exactly as in-process callers do.

Failure surface: every error a statement raises crosses the wire as a
typed error frame (see :mod:`repro.server.protocol`) and the connection
keeps serving; only *protocol* errors (garbage bytes, oversized length
prefixes) close the offending connection — and never anyone else's.
Admission control is two-layered: the server refuses connections past
``max_connections`` with a retryable
:class:`~repro.errors.AdmissionError` frame, and the database's own
``max_concurrent_txns`` ceiling surfaces per-statement the same way.

Shutdown is graceful: the listener closes first, idle connections are
disconnected, in-flight statements get ``drain_timeout_s`` to finish (each
receives its response before its connection closes), and the thread pool
drains before :meth:`stop` returns.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import (
    AdmissionError,
    AuthError,
    CursorError,
    ExecutionError,
    HandleEvictedError,
    ReproError,
    ServerShutdownError,
    SQLError,
)
from repro.obs.profile import build_profile
from repro.obs.trace import FRESH_CONTEXT, TraceContext
from repro.relational.engine import Database, Result, Session
from repro.server import protocol
from repro.server.protocol import ProtocolError
from repro.xnf.api import CompositeObject, XNFSession

#: default cap on rows returned inline by QUERY/EXECUTE before the rest
#: spills into a server-side fetch cursor
DEFAULT_FETCH_SIZE = 4096


class _LRUHandles:
    """Bounded, LRU-ordered id → handle map for per-connection server state.

    The wire protocol hands out integer handles (prepared statements, fetch
    cursors, composite objects, CO cursors) that live until the client closes
    them — so a sloppy or long-lived client used to grow these maps without
    bound.  Each map now caps at ``cap`` entries; inserting past the cap
    evicts the least recently used handle (``on_evict`` does the per-kind
    bookkeeping).  Evicted ids are remembered so a later access raises a
    typed, **non-retryable** :class:`~repro.errors.HandleEvictedError`
    (which survives the wire roundtrip) instead of the generic "unknown
    handle" — the client learns it must re-create the handle, not retry.
    """

    def __init__(
        self,
        kind: str,
        cap: int,
        on_evict: Optional[Callable[[int, Any], None]] = None,
    ):
        self.kind = kind
        self.cap = max(1, int(cap))
        self.on_evict = on_evict
        self.evictions = 0
        self._items: "OrderedDict[int, Any]" = OrderedDict()
        self._evicted: set = set()

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: int) -> bool:
        return key in self._items

    def __setitem__(self, key: int, value: Any) -> None:
        self._items[key] = value
        self._items.move_to_end(key)
        while len(self._items) > self.cap:
            old_key, old_value = self._items.popitem(last=False)
            self._evicted.add(old_key)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(old_key, old_value)

    def get(self, key: Any) -> Optional[Any]:
        """Fetch + LRU-touch; raises HandleEvictedError for evicted ids."""
        value = self._items.get(key)
        if value is None:
            self.raise_if_evicted(key)
            return None
        self._items.move_to_end(key)
        return value

    def pop(self, key: Any, default: Any = None) -> Any:
        """Plain removal (explicit close) — does NOT mark the id evicted."""
        return self._items.pop(key, default)

    def evict(self, key: int) -> None:
        """Forced eviction (cascade): removes, remembers, runs on_evict."""
        value = self._items.pop(key, _ABSENT)
        if value is _ABSENT:
            return
        self._evicted.add(key)
        self.evictions += 1
        if self.on_evict is not None:
            self.on_evict(key, value)

    def raise_if_evicted(self, key: Any) -> None:
        if key in self._evicted:
            raise HandleEvictedError(
                f"{self.kind} {key!r} was evicted by the session handle cap; "
                f"re-create it (the handle cannot be replayed)"
            )

    def items(self) -> List[Tuple[int, Any]]:
        return list(self._items.items())

    def clear(self) -> None:
        self._items.clear()
        self._evicted.clear()


_ABSENT = object()


class _WireConnection:
    """Server-side state of one client connection."""

    def __init__(self, server: "XNFServer", reader, writer, stats):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.stats = stats  # WireSessionStats row behind SYS_SESSIONS
        self.session: Session = server.db.connect()
        self.session.statement_timeout_s = server.statement_timeout_s
        #: wire-session attribution: statements run through this session
        #: stamp its id into SYS_STAT_STATEMENTS and the slow-query log
        self.session.session_id = stats.session_id
        self.authed = server.auth_token is None
        self.busy = False
        self.closing = False
        #: per-frame distributed-trace state (frames are serial per
        #: connection): the incoming TraceContext and the op name, set by
        #: dispatch() and consumed by run_db()
        self._frame_trace: Optional[TraceContext] = None
        self._frame_op: Optional[str] = None
        #: profile of the last frame that ran database work (PROFILE op)
        self.last_profile: Optional[Dict[str, Any]] = None
        self._xnf: Optional[XNFSession] = None
        self._ids = itertools.count(1)
        cap = server.max_session_handles
        self.prepared = _LRUHandles(
            "prepared statement", cap, self._evicted_handle
        )
        #: result-set cursors: id -> {"columns": [...], "rows": [...]}
        self.cursors = _LRUHandles("fetch cursor", cap, self._evicted_cursor)
        self.cos = _LRUHandles("composite object", cap, self._evicted_co)
        #: CO cursors: id -> (co_id, IndependentCursor)
        self.co_cursors = _LRUHandles("CO cursor", cap, self._evicted_cursor)

    # -- handle eviction bookkeeping ------------------------------------------

    def _evicted_handle(self, handle_id: int, value: Any) -> None:
        self.server.db.network.inc("handles_evicted")

    def _evicted_cursor(self, handle_id: int, value: Any) -> None:
        self.stats.record(cursors_open=-1)
        self.server.db.network.inc("handles_evicted")

    def _evicted_co(self, co_id: int, value: Any) -> None:
        self.stats.record(cos_open=-1)
        self.server.db.network.inc("handles_evicted")
        # A CO's cursors are useless without it: cascade the eviction so a
        # later CO_FETCH reports "evicted", not a dangling cursor.
        for cid, (owner, _) in self.co_cursors.items():
            if owner == co_id:
                self.co_cursors.evict(cid)

    # -- helpers --------------------------------------------------------------

    @property
    def xnf(self) -> XNFSession:
        """The connection's XNF session, created on first XNF frame (its
        constructor installs the SYS_MONITOR CO, which costs a few
        statements — pure-SQL clients never pay it)."""
        if self._xnf is None:
            self._xnf = self.server.xnf_session_factory(self.server.db)
        return self._xnf

    def next_id(self) -> int:
        return next(self._ids)

    async def run_db(self, fn: Callable[[], Any]) -> Any:
        """Run blocking database work on the pool, inside this session.

        Distributed tracing: the frame's :class:`TraceContext` (or
        ``FRESH_CONTEXT`` when the client sent none) rides in on
        ``session.trace_context`` so ``Session._activate`` adopts it on
        the pool worker before the statement runs; the whole call is
        wrapped in a ``wire.<op>`` span — the server-side root that
        parents every engine/XNF/shard span — and its completed tree is
        aggregated into the connection's last profile (``PROFILE`` op),
        including the admission/queue wait measured from frame dispatch
        to worker start.
        """
        session = self.session
        db = self.server.db
        tracer = db.tracer
        session.trace_context = self._frame_trace or FRESH_CONTEXT
        op_name = self._frame_op or "db"
        submitted = time.perf_counter()

        def call():
            queue_wait_s = time.perf_counter() - submitted
            with session._activate():
                retry_base = db._retry_wait_s
                conflicts_base = db.txn_manager.locks.conflicts
                span = tracer.span(f"wire.{op_name}", session=session.session_id)
                try:
                    with span:
                        return fn()
                finally:
                    if tracer.enabled:
                        self.last_profile = build_profile(
                            span,
                            queue_wait_s=queue_wait_s,
                            retry_wait_s=db._retry_wait_s - retry_base,
                            lock_conflicts=(
                                db.txn_manager.locks.conflicts - conflicts_base
                            ),
                        )

        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(self.server._executor, call)
        finally:
            session.trace_context = None

    def _result_payload(
        self, result: Result, max_rows: Optional[int]
    ) -> Dict[str, Any]:
        """Build a QUERY/EXECUTE response, spilling long results into a
        FETCH cursor."""
        rows = result.rows
        limit = max_rows if max_rows is not None else self.server.fetch_size
        payload = protocol.ok(
            columns=result.columns, rowcount=result.rowcount
        )
        if limit is not None and len(rows) > limit:
            cursor_id = self.next_id()
            self.cursors[cursor_id] = {
                "columns": result.columns,
                "rows": rows[limit:],
            }
            self.stats.record(cursors_open=1)
            payload["rows"] = rows[:limit]
            payload["more"] = True
            payload["cursor"] = cursor_id
        else:
            payload["rows"] = rows
            payload["more"] = False
        self.stats.record(rows_sent=len(payload["rows"]))
        return payload

    # -- frame dispatch -------------------------------------------------------

    async def dispatch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        op = payload.get("op")
        if not isinstance(op, str):
            raise ProtocolError("frame lacks an 'op' field")
        handler = getattr(self, f"op_{op.lower()}", None)
        if handler is None:
            raise SQLError(f"unknown op {op!r}")
        if not self.authed and op.upper() not in ("AUTH", "CLOSE", "PING"):
            raise AuthError("authentication required (send AUTH first)")
        # Per-frame trace state (frames are serial on this connection): a
        # malformed 'trace' field decodes to None — a fresh server-side
        # trace — never an error (the field is additive in protocol v1).
        self._frame_op = op.lower()
        self._frame_trace = TraceContext.from_wire(payload.get("trace"))
        return await handler(payload)

    async def op_auth(self, payload) -> Dict[str, Any]:
        token = payload.get("token")
        if self.server.auth_token is not None and token != self.server.auth_token:
            raise AuthError("bad auth token")
        self.authed = True
        return protocol.ok()

    async def op_ping(self, payload) -> Dict[str, Any]:
        return protocol.ok(time_s=time.time())

    async def op_query(self, payload) -> Dict[str, Any]:
        sql = payload.get("sql")
        if not isinstance(sql, str):
            raise SQLError("QUERY frame lacks 'sql'")
        self.stats.record(statements=1)
        result = await self.run_db(lambda: self.server.db.execute(sql))
        self.stats.in_txn = self.session.in_transaction
        return self._result_payload(result, payload.get("max_rows"))

    async def op_prepare(self, payload) -> Dict[str, Any]:
        sql = payload.get("sql")
        if not isinstance(sql, str):
            raise SQLError("PREPARE frame lacks 'sql'")
        prepared = await self.run_db(lambda: self.server.db.prepare(sql))
        stmt_id = self.next_id()
        self.prepared[stmt_id] = prepared
        return protocol.ok(stmt=stmt_id, n_params=prepared.n_params)

    async def op_execute(self, payload) -> Dict[str, Any]:
        prepared = self.prepared.get(payload.get("stmt"))
        if prepared is None:
            raise SQLError(f"unknown prepared statement {payload.get('stmt')!r}")
        params = payload.get("params") or []
        if not isinstance(params, list):
            raise SQLError("EXECUTE 'params' must be a list")
        self.stats.record(statements=1)
        result = await self.run_db(lambda: prepared.execute(params))
        self.stats.in_txn = self.session.in_transaction
        return self._result_payload(result, payload.get("max_rows"))

    async def op_fetch(self, payload) -> Dict[str, Any]:
        cursor = self.cursors.get(payload.get("cursor"))
        if cursor is None:
            raise CursorError(f"unknown fetch cursor {payload.get('cursor')!r}")
        n = int(payload.get("n") or self.server.fetch_size or DEFAULT_FETCH_SIZE)
        rows = cursor["rows"][:n]
        del cursor["rows"][:n]
        more = bool(cursor["rows"])
        if not more:  # exhausted cursors close themselves
            self.cursors.pop(payload.get("cursor"), None)
            self.stats.record(cursors_open=-1)
        self.stats.record(rows_sent=len(rows))
        return protocol.ok(columns=cursor["columns"], rows=rows, more=more)

    # -- XNF / composite objects ---------------------------------------------

    async def op_xnf(self, payload) -> Dict[str, Any]:
        text = payload.get("text")
        if not isinstance(text, str):
            raise SQLError("XNF frame lacks 'text'")
        self.stats.record(statements=1)
        result = await self.run_db(lambda: self.xnf.execute(text))
        self.stats.in_txn = self.session.in_transaction
        if isinstance(result, CompositeObject):
            co_id = self.next_id()
            self.cos[co_id] = result
            self.stats.record(cos_open=1)
            return protocol.ok(
                co=co_id,
                nodes={name: len(result.node(name)) for name in result.nodes()},
                edges={
                    name: len(result.connections(name))
                    for name in result.edges()
                },
            )
        if isinstance(result, int):
            return protocol.ok(rowcount=result)
        return protocol.ok()

    async def op_xnf_explain(self, payload) -> Dict[str, Any]:
        text = payload.get("text")
        if not isinstance(text, str):
            raise SQLError("XNF_EXPLAIN frame lacks 'text'")
        self.stats.record(statements=1)
        rendered = await self.run_db(lambda: self.xnf.explain_analyze(text))
        return protocol.ok(text=rendered)

    def _co(self, payload) -> CompositeObject:
        co = self.cos.get(payload.get("co"))
        if co is None:
            raise CursorError(f"unknown composite object {payload.get('co')!r}")
        return co

    async def op_co_cursor(self, payload) -> Dict[str, Any]:
        co = self._co(payload)
        node = payload.get("node")
        cursor = co.cursor(node)
        cursor_id = self.next_id()
        self.co_cursors[cursor_id] = (payload.get("co"), cursor)
        self.stats.record(cursors_open=1)
        return protocol.ok(cursor=cursor_id, node=node)

    async def op_co_fetch(self, payload) -> Dict[str, Any]:
        entry = self.co_cursors.get(payload.get("cursor"))
        if entry is None:
            raise CursorError(f"unknown CO cursor {payload.get('cursor')!r}")
        _, cursor = entry
        n = int(payload.get("n") or 100)
        rows = []
        more = True
        for _ in range(n):
            cached = cursor.fetch()
            if cached is None:
                more = False
                self.co_cursors.pop(payload.get("cursor"), None)
                self.stats.record(cursors_open=-1)
                break
            rows.append(cached.as_dict())
        self.stats.record(rows_sent=len(rows))
        return protocol.ok(rows=rows, more=more)

    async def op_co_path(self, payload) -> Dict[str, Any]:
        co = self._co(payload)
        path = payload.get("path")
        start = payload.get("start")
        criteria = payload.get("criteria") or {}
        if not isinstance(path, str) or not isinstance(start, str):
            raise SQLError("CO_PATH frame needs 'start' (node) and 'path'")

        def evaluate():
            if criteria:
                anchor = co.find(start, **criteria)
                if anchor is None:
                    raise ExecutionError(
                        f"CO_PATH: no {start} tuple matches {criteria!r}"
                    )
                return co.path(anchor, path)
            return co.path(start, path)

        tuples = await self.run_db(evaluate)
        rows = [{"node": t.node, "values": t.as_dict()} for t in tuples]
        self.stats.record(rows_sent=len(rows))
        return protocol.ok(rows=rows)

    async def op_co_close(self, payload) -> Dict[str, Any]:
        co_id = payload.get("co")
        if self.cos.pop(co_id, None) is None:
            self.cos.raise_if_evicted(co_id)
            raise CursorError(f"unknown composite object {co_id!r}")
        self.stats.record(cos_open=-1)
        stale = [cid for cid, (owner, _) in self.co_cursors.items() if owner == co_id]
        for cid in stale:
            self.co_cursors.pop(cid)
        if stale:
            self.stats.record(cursors_open=-len(stale))
        return protocol.ok()

    # -- observability --------------------------------------------------------

    async def op_profile(self, payload) -> Dict[str, Any]:
        """Profile of this connection's last database-running frame: the
        structured time breakdown built from its ``wire.<op>`` span tree
        (queue wait, pipeline stages, per-shard scatter/delta durations,
        retry wait).  Pure in-memory read — never dispatched to the pool."""
        return protocol.ok(profile=self.last_profile)

    # -- session options ------------------------------------------------------

    async def op_set(self, payload) -> Dict[str, Any]:
        option = payload.get("option")
        value = payload.get("value")
        if option == "statement_timeout_s":
            self.session.statement_timeout_s = (
                None if value is None else float(value)
            )
            return protocol.ok(option=option, value=value)
        raise SQLError(f"unknown session option {option!r}")

    async def op_close(self, payload) -> Dict[str, Any]:
        self.closing = True
        return protocol.ok(goodbye=True)

    # -- teardown -------------------------------------------------------------

    def release(self) -> None:
        """Drop per-connection engine state (rolls back an open txn)."""
        if self.session.in_transaction:
            try:
                with self.session._activate():
                    self.server.db.rollback()
            except ReproError:
                pass
        self.prepared.clear()
        self.cursors.clear()
        self.co_cursors.clear()
        self.cos.clear()


class XNFServer:
    """Asyncio socket server multiplexing wire sessions over one Database."""

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 64,
        auth_token: Optional[str] = None,
        statement_timeout_s: Optional[float] = None,
        fetch_size: Optional[int] = DEFAULT_FETCH_SIZE,
        drain_timeout_s: float = 10.0,
        max_session_handles: int = 256,
        xnf_session_factory: Callable[[Database], XNFSession] = XNFSession,
    ):
        self.db = db
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.auth_token = auth_token
        self.statement_timeout_s = statement_timeout_s
        self.fetch_size = fetch_size
        self.drain_timeout_s = drain_timeout_s
        #: per-kind cap on a connection's live handles (prepared statements,
        #: fetch cursors, COs, CO cursors); LRU-evicted past the cap
        self.max_session_handles = max_session_handles
        self.xnf_session_factory = xnf_session_factory
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._draining = False
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(4, min(max_connections, 64)),
            thread_name_prefix="xnf-wire",
        )

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "XNFServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight statements."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Disconnect idle connections now; they are blocked in a frame read.
        for conn in list(self._connections):
            if not conn.busy:
                conn.writer.close()
        deadline = time.monotonic() + self.drain_timeout_s
        while self._connections and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        # Anything still here exceeded the drain budget: cut it off.
        for conn in list(self._connections):
            conn.writer.close()
        while self._connections:
            await asyncio.sleep(0.01)
        self._executor.shutdown(wait=True)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- per-connection protocol loop ----------------------------------------

    async def _refuse(self, writer, exc: ReproError) -> None:
        self.db.network.inc("connections_refused")
        try:
            await self._write(writer, protocol.err_frame(exc))
        except (ConnectionError, OSError):
            pass
        writer.close()

    async def _write(self, writer, payload: Dict[str, Any]) -> None:
        data = protocol.encode_frame(payload)
        writer.write(data)
        await writer.drain()
        self.db.network.inc("frames_out")
        self.db.network.inc("bytes_out", len(data))

    async def _read_frame(self, reader) -> Optional[Dict[str, Any]]:
        """Read one request frame; None on clean EOF."""
        try:
            header = await reader.readexactly(4)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean disconnect between frames
            raise ProtocolError(
                f"connection closed mid-prefix ({len(exc.partial)}/4 bytes)"
            ) from None
        length = protocol.decode_length(header)
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(
                f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
            ) from None
        self.db.network.inc("frames_in")
        self.db.network.inc("bytes_in", 4 + length)
        return protocol.decode_body(body)

    async def _handle(self, reader, writer) -> None:
        network = self.db.network
        if self._draining:
            await self._refuse(writer, ServerShutdownError("server is draining"))
            return
        if len(self._connections) >= self.max_connections:
            await self._refuse(
                writer,
                AdmissionError(
                    f"connection limit of {self.max_connections} reached; "
                    "back off and retry"
                ),
            )
            return
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "<unknown>"
        stats = self.db.wire_sessions.register(peer)
        conn = _WireConnection(self, reader, writer, stats)
        self._connections.add(conn)
        network.inc("connections_opened")
        network.inc("connections_active")
        try:
            await self._write(writer, protocol.hello_payload(
                stats.session_id, self.db.mvcc is not None
            ))
            await self._serve_connection(conn)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass  # client went away (or shutdown cancelled us) mid-write
        finally:
            conn.release()
            self._connections.discard(conn)
            self.db.wire_sessions.unregister(stats)
            network.dec("connections_active")
            writer.close()

    async def _serve_connection(self, conn: _WireConnection) -> None:
        network = self.db.network
        while True:
            try:
                payload = await self._read_frame(conn.reader)
            except ProtocolError as exc:
                # The byte stream is unsynchronized: answer (best-effort)
                # and close THIS connection; every other session keeps going.
                network.inc("protocol_errors")
                conn.stats.record(errors=1)
                try:
                    await self._write(conn.writer, protocol.err_frame(exc))
                except (ConnectionError, OSError):
                    pass
                return
            if payload is None:
                return
            conn.busy = True
            conn.stats.touch("running")
            try:
                response = await conn.dispatch(payload)
            except ProtocolError as exc:
                network.inc("protocol_errors")
                conn.stats.record(errors=1)
                try:
                    await self._write(conn.writer, protocol.err_frame(exc))
                except (ConnectionError, OSError):
                    pass
                return
            except ReproError as exc:
                response = protocol.err_frame(exc)
                network.inc("errors_sent")
                conn.stats.record(errors=1)
                if getattr(exc, "retryable", False):
                    network.inc("retryable_errors_sent")
                    conn.stats.record(retryable_errors=1)
            except Exception as exc:  # bug shield: isolate, don't crash
                response = protocol.err_frame(
                    ExecutionError(f"internal server error: {exc!r}")
                )
                network.inc("errors_sent")
                conn.stats.record(errors=1)
            finally:
                conn.busy = False
                conn.stats.touch("idle")
            await self._write(conn.writer, response)
            if conn.closing:
                return
            if self._draining:
                # Drain semantics: the in-flight statement got its answer;
                # now the connection ends (clients reconnect elsewhere).
                return


class ServerThread:
    """Run an :class:`XNFServer` on a dedicated event-loop thread.

    The blocking-world adapter for tests, benchmarks and the CI smoke
    script: ``start()`` returns once the port is bound, ``stop()`` runs the
    graceful drain and joins the thread.  Usable as a context manager.
    """

    def __init__(self, db: Database, **kwargs: Any):
        self.server = XNFServer(db, **kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._stop_requested: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="xnf-server-loop", daemon=True
        )
        self._thread.start()
        self._started.wait(10)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        if not self._started.is_set():
            raise RuntimeError("server did not start within 10s")
        return self

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop_requested = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._started.set()
                raise
            self._started.set()
            await self._stop_requested.wait()
            await self.server.stop()

        try:
            asyncio.run(main())
        except BaseException:
            if not self._started.is_set():
                self._started.set()

    def stop(self) -> None:
        if self._thread is None or self._loop is None:
            return
        loop, event = self._loop, self._stop_requested
        if event is not None:
            loop.call_soon_threadsafe(event.set)
        self._thread.join(self.server.drain_timeout_s + 30)
        if self._thread.is_alive():  # pragma: no cover - drain wedged
            raise RuntimeError("server thread did not stop")
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
