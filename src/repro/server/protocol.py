"""The XNF wire protocol: length-prefixed JSON frames.

A frame is a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON encoding one object.  Requests carry an ``"op"`` field
(AUTH, QUERY, PREPARE, EXECUTE, FETCH, XNF, XNF_EXPLAIN, CO_CURSOR,
CO_FETCH, CO_PATH, CO_CLOSE, SET, PING, PROFILE, CLOSE); responses carry
``"ok": true`` plus op-specific fields, or ``"ok": false`` plus an
``"error"`` object.

Distributed tracing (additive in protocol v1): a request may carry a
``"trace"`` object — ``{"id": <trace_id>, "span": <parent span id>,
"sampled": <bool>}``, the wire form of
:class:`repro.obs.trace.TraceContext` — which the server adopts so its
spans for that statement share the client's trace id.  Servers ignore a
malformed trace field (it decodes to a fresh trace, never an error), and
clients that never send one observe the exact v1 behaviour.  ``PROFILE``
returns the structured time breakdown of the connection's last
database-running frame (see :mod:`repro.obs.profile`).

The error object serializes the typed taxonomy of :mod:`repro.errors`
losslessly enough for client-side retry loops to behave exactly like
in-process :meth:`Database.run_retryable`:

========== =========================================================
``type``    exception class name (``SerializationError``, …)
``message`` the server-side message
``retryable`` the taxonomy's retry contract, instance-level overrides
            included (transient vs. persistent :class:`IOFaultError`)
``backoff_s`` the class's suggested initial backoff (None if n/a)
``transient`` / ``line`` / ``column``  optional detail fields
========== =========================================================

:func:`rehydrate_error` reverses :func:`error_payload`: the client raises
an instance of the *same* exception class (``isinstance`` checks and the
``retryable`` / ``backoff_hint_s`` attributes survive the round trip), or
:class:`RemoteServerError` for a type the client build does not know.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Type

from repro.errors import ReproError, SQLError

#: bump when the frame vocabulary changes incompatibly
PROTOCOL_VERSION = 1

#: refuse frames larger than this (a wild length prefix is junk, not a
#: request; reading it would balloon memory before failing anyway)
MAX_FRAME_BYTES = 8 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(SQLError):
    """Malformed frame: bad length prefix, truncated body, invalid JSON,
    or a body that is not a JSON object.  The stream is unsynchronized
    after one of these, so the connection must close."""


class RemoteServerError(SQLError):
    """An error type reported by the server that this client cannot map
    onto a local exception class (``retryable``/``backoff_hint_s`` still
    carry the server's values)."""


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialize one frame (length prefix + JSON body)."""
    body = json.dumps(payload, separators=(",", ":"), default=str).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(body)) + body


def decode_length(header: bytes) -> int:
    """Parse and validate the 4-byte length prefix."""
    if len(header) != 4:
        raise ProtocolError(f"truncated length prefix ({len(header)} bytes)")
    (length,) = _LENGTH.unpack(header)
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return length


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse a frame body into its JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


# -- error taxonomy over the wire ---------------------------------------------

def _error_types() -> Dict[str, Type[ReproError]]:
    """Every concrete exception class of the taxonomy, by name."""
    out: Dict[str, Type[ReproError]] = {}

    def walk(cls: Type[ReproError]) -> None:
        out[cls.__name__] = cls
        for sub in cls.__subclasses__():
            walk(sub)

    walk(ReproError)
    return out


ERROR_TYPES = _error_types()


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """Serialize *exc* into the wire error object."""
    payload: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
        "retryable": bool(getattr(exc, "retryable", False)),
        "backoff_s": getattr(exc, "backoff_hint_s", None),
    }
    for attr in ("transient", "line", "column"):
        value = getattr(exc, attr, None)
        if value is not None:
            payload[attr] = value
    return payload


def rehydrate_error(payload: Dict[str, Any]) -> ReproError:
    """Rebuild the server's exception from its wire error object.

    The instance is created without running the class's ``__init__`` (the
    taxonomy's constructors take heterogeneous arguments), then the retry
    metadata is restored explicitly — so ``retryable`` and
    ``backoff_hint_s`` survive byte-for-byte, including instance-level
    overrides like a persistent :class:`~repro.errors.IOFaultError`.
    """
    cls = ERROR_TYPES.get(payload.get("type", ""))
    message = payload.get("message", "unknown server error")
    if cls is None or not issubclass(cls, ReproError):
        err: ReproError = RemoteServerError(message)
    else:
        err = cls.__new__(cls)
        Exception.__init__(err, message)
    err.retryable = bool(payload.get("retryable", False))
    err.backoff_hint_s = payload.get("backoff_s")
    for attr in ("transient", "line", "column"):
        if attr in payload:
            setattr(err, attr, payload[attr])
    #: marks errors that crossed the wire (diagnostics, tests)
    err.remote = True  # type: ignore[attr-defined]
    return err


def hello_payload(session_id: int, mvcc: bool) -> Dict[str, Any]:
    return {
        "ok": True,
        "server": "repro-xnf",
        "protocol": PROTOCOL_VERSION,
        "session": session_id,
        "mvcc": mvcc,
    }


def ok(**fields: Any) -> Dict[str, Any]:
    fields["ok"] = True
    return fields


def err_frame(exc: BaseException) -> Dict[str, Any]:
    return {"ok": False, "error": error_payload(exc)}


# -- blocking frame IO (client side, fuzz tests) ------------------------------

def read_exact(sock, n: int) -> bytes:
    """Read exactly *n* bytes from a blocking socket (raises on EOF)."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock) -> Dict[str, Any]:
    """Read one frame from a blocking socket."""
    length = decode_length(read_exact(sock, 4))
    return decode_body(read_exact(sock, length))


def write_frame(sock, payload: Dict[str, Any]) -> int:
    """Write one frame to a blocking socket; returns bytes sent."""
    data = encode_frame(payload)
    sock.sendall(data)
    return len(data)


__all__ = [
    "ERROR_TYPES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteServerError",
    "decode_body",
    "decode_length",
    "encode_frame",
    "err_frame",
    "error_payload",
    "hello_payload",
    "ok",
    "read_exact",
    "read_frame",
    "rehydrate_error",
    "write_frame",
]
