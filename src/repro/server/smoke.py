"""Server smoke check: ``python -m repro.server.smoke``.

Boots a wire server over the demo database, drives a scripted REPL
session across loopback (DDL + queries + an E1 composite-object
extraction), provokes and retries a genuine MVCC serialization conflict
through the wire error frames, then shuts down gracefully and asserts no
wire session leaked (``SYS_SESSIONS`` must be empty and the network
counters must balance).  Exit code 0 means every stage passed — CI runs
this as the ``server-smoke`` job.
"""

from __future__ import annotations

import io
import sys
import threading

from repro.errors import SerializationError
from repro.client.client import WireClient
from repro.client.repl import Repl
from repro.server.bootstrap import demo_database
from repro.server.server import ServerThread
from repro.workloads.company import FIGURE1_CO

REPL_SCRIPT = """
CREATE TABLE SMOKE (k INTEGER PRIMARY KEY, v VARCHAR);
INSERT INTO SMOKE VALUES (1, 'hello'), (2, 'world');
SELECT k, v FROM SMOKE ORDER BY k;
EXPLAIN SELECT dname, loc FROM DEPT WHERE loc = 'NY';
SELECT COUNT(*) FROM SYS_SESSIONS;
\\timeout 30
\\q
"""


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}", flush=True)
    if not condition:
        raise SystemExit(f"smoke check failed: {label}")


def scripted_repl(port: int) -> None:
    print("* scripted REPL session", flush=True)
    out = io.StringIO()
    with WireClient(port=port) as client:
        Repl(client, out=out).run(io.StringIO(REPL_SCRIPT))
    transcript = out.getvalue()
    sys.stdout.write(transcript)
    check("error:" not in transcript, "REPL transcript has no errors")
    check("hello" in transcript and "world" in transcript,
          "DDL + INSERT + SELECT round-tripped")
    check("SeqScan" in transcript, "EXPLAIN passthrough rendered a plan")


def composite_object(port: int) -> None:
    print("* E1 composite-object extraction over the wire", flush=True)
    with WireClient(port=port) as client:
        co = client.take(FIGURE1_CO)
        check(co.nodes.get("Xdept") == 3, "Xdept has the 3 Fig. 1 departments")
        check(co.nodes.get("Xemp") == 5, "e3 (employed by nobody) excluded")
        emps = co.path("Xdept", "employment", dname="d2")
        check(len(emps) == 3, "path d2 -> employment finds e4, e5, e6")
        cursor = co.cursor("Xskill")
        names = sorted(row["sname"] for row in cursor)
        check("s2" not in names, "unreachable skill s2 excluded")
        co.close()


def retryable_conflict(port: int) -> None:
    """Two wire sessions race an UPDATE on the same row: first committer
    wins, the loser sees a retryable SerializationError *over the wire*
    and succeeds via the client-side retry loop."""
    print("* retryable serialization conflict across two wire sessions",
          flush=True)
    with WireClient(port=port) as a, WireClient(port=port) as b:
        a.execute("CREATE TABLE COUNTERS (id INTEGER PRIMARY KEY, n INTEGER)")
        a.execute("INSERT INTO COUNTERS VALUES (1, 0)")
        a.begin()
        b.begin()
        a.execute("UPDATE COUNTERS SET n = n + 1 WHERE id = 1")
        a.commit()
        # b's snapshot predates a's commit: first committer wins.
        try:
            b.execute("UPDATE COUNTERS SET n = n + 10 WHERE id = 1")
            raise SystemExit("smoke check failed: conflict never surfaced")
        except SerializationError as err:
            check(err.retryable, "conflict arrived retryable over the wire")
            check(getattr(err, "remote", False), "error was rehydrated")
            check(err.backoff_hint_s == SerializationError.backoff_hint_s,
                  "backoff hint survived serialization")
        b.rollback()

        def attempt():
            b.begin()
            b.execute("UPDATE COUNTERS SET n = n + 10 WHERE id = 1")
            b.commit()

        b.run_retryable(attempt)
        final = a.execute("SELECT n FROM COUNTERS WHERE id = 1").scalar()
        check(final == 11, f"both increments applied (n = {final})")


def concurrent_sessions(port: int, fan_out: int = 8) -> None:
    print(f"* {fan_out} concurrent wire sessions", flush=True)
    errors: list = []

    def worker(idx: int) -> None:
        try:
            with WireClient(port=port) as client:
                count = client.execute(
                    "SELECT COUNT(*) FROM PART"
                ).scalar()
                assert count and count > 0
        except Exception as exc:  # noqa: BLE001 - collected and reported
            errors.append((idx, exc))

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(fan_out)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    check(not errors, f"all {fan_out} sessions succeeded ({errors!r})")


def main() -> int:
    db = demo_database(mvcc=True)
    with ServerThread(db, max_connections=32) as server:
        port = server.port
        print(f"server on 127.0.0.1:{port}", flush=True)
        scripted_repl(port)
        composite_object(port)
        retryable_conflict(port)
        concurrent_sessions(port)

        with WireClient(port=port) as client:
            live = client.execute("SELECT COUNT(*) FROM SYS_SESSIONS").scalar()
            check(live == 1, "only the inspecting session is live")

    print("* graceful shutdown", flush=True)
    check(len(db.wire_sessions) == 0, "no leaked sessions after shutdown")
    counters = db.network.snapshot()
    check(counters["connections_active"] == 0, "connections_active drained to 0")
    check(counters["connections_opened"] >= 12, "all sessions were counted")
    check(db.execute("SELECT COUNT(*) FROM SYS_SESSIONS").scalar() == 0,
          "SYS_SESSIONS is empty after shutdown")
    print("server smoke: all checks passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
