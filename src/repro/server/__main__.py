"""``python -m repro.server`` — boot a wire server over a demo database.

The demo instance carries the Fig. 1 company tables (E1), a reports-to
STAFF chain (E6) and the OO1 parts graph, so a REPL or benchmark client
can exercise every workload the repo measures.  ``--empty`` starts from a
blank database instead (DDL over the wire).
"""

from __future__ import annotations

import argparse
import asyncio
import signal

from repro.relational.engine import Database
from repro.server.bootstrap import demo_database
from repro.server.server import XNFServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a repro database over the XNF wire protocol.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7474,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--max-connections", type=int, default=64)
    parser.add_argument("--auth-token", default=None,
                        help="require AUTH with this token before queries")
    parser.add_argument("--statement-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="default per-session statement timeout")
    parser.add_argument("--no-mvcc", action="store_true",
                        help="run with two-phase locking instead of MVCC")
    parser.add_argument("--empty", action="store_true",
                        help="start with a blank database (no demo tables)")
    parser.add_argument("--max-concurrent-txns", type=int, default=None,
                        help="database admission-control ceiling")
    return parser


async def serve(args: argparse.Namespace) -> None:
    db_kwargs = {
        "mvcc": not args.no_mvcc,
        "max_concurrent_txns": args.max_concurrent_txns,
    }
    db = Database(**db_kwargs) if args.empty else demo_database(**db_kwargs)
    server = XNFServer(
        db,
        args.host,
        args.port,
        max_connections=args.max_connections,
        auth_token=args.auth_token,
        statement_timeout_s=args.statement_timeout,
    )
    await server.start()
    mode = "2PL" if args.no_mvcc else "MVCC"
    print(f"repro-xnf server listening on {server.address} "
          f"({mode}, max {args.max_connections} connections)", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loop
            pass
    await stop.wait()
    print("draining connections ...", flush=True)
    await server.stop()
    print("server stopped", flush=True)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(serve(args))
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
