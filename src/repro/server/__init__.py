"""Wire server: network access to the shared database (Fig. 7, networked).

:mod:`repro.server.protocol` defines the length-prefixed JSON frame format
and the lossless error-taxonomy serialization; :mod:`repro.server.server`
runs the asyncio listener that multiplexes wire sessions over one
:class:`~repro.relational.engine.Database`.  ``python -m repro.server``
boots a demo instance; :mod:`repro.client` is the matching client/REPL.
"""

from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteServerError,
)
from repro.server.server import DEFAULT_FETCH_SIZE, ServerThread, XNFServer

__all__ = [
    "DEFAULT_FETCH_SIZE",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteServerError",
    "ServerThread",
    "XNFServer",
]
