"""Demo/benchmark database behind ``python -m repro.server``.

One Database carrying all three workload families the server benchmarks
exercise, so a single listener can serve them concurrently:

* the paper's Fig. 1 company instance (E1: ``FIGURE1_CO`` extraction),
* a reports-to STAFF chain (E6: recursive CO fixpoint),
* the OO1 parts/connections graph (per-step SQL traversal).
"""

from __future__ import annotations

import random

from repro.relational.engine import Database
from repro.workloads.company import figure1_database
from repro.workloads.oo1 import generate_connections

#: E6 CO over the STAFF chain (same shape as benchmarks/bench_recursive_co)
STAFF_CO = """
OUT OF
  Xroot AS (SELECT * FROM STAFF WHERE mgrno IS NULL),
  Xemp AS STAFF,
  heads AS (RELATE Xroot, Xemp WHERE Xroot.eno = Xemp.eno),
  manages AS (RELATE Xemp manager, Xemp report
              WHERE manager.eno = report.mgrno)
TAKE *
"""

STAFF_WIDTH = 4  # employees per level of the reports-to chain


def add_staff_chain(db: Database, depth: int = 8) -> None:
    """Install the E6 reports-to chain (root + WIDTH per level)."""
    db.execute("CREATE TABLE STAFF (eno INTEGER PRIMARY KEY, mgrno INTEGER)")
    table = db.catalog.get_table("STAFF")
    eno = 1
    table.insert((eno, None))
    previous_level = [1]
    for _ in range(depth - 1):
        level = []
        for manager in previous_level[:1]:
            for _ in range(STAFF_WIDTH):
                eno += 1
                table.insert((eno, manager))
                level.append(eno)
        previous_level = level
    db.execute("CREATE INDEX idx_staff_mgr ON STAFF (mgrno)")


def add_parts_graph(db: Database, num_parts: int = 200, seed: int = 42) -> None:
    """Install the OO1 parts graph (DESIGNLIB/PART/CONN + indexes)."""
    db.execute_script(
        """
        CREATE TABLE DESIGNLIB (lid INTEGER PRIMARY KEY, lname VARCHAR);
        CREATE TABLE PART (pid INTEGER PRIMARY KEY, ptype VARCHAR,
                           x INTEGER, y INTEGER, lib INTEGER);
        CREATE TABLE CONN (cfrom INTEGER, cto INTEGER, ctype VARCHAR,
                           clength INTEGER);
        """
    )
    db.execute("INSERT INTO DESIGNLIB VALUES (1, 'main-library')")
    part_table = db.catalog.get_table("PART")
    conn_table = db.catalog.get_table("CONN")
    rng = random.Random(seed)
    for pid in range(1, num_parts + 1):
        part_table.insert(
            (pid, f"part-type{rng.randint(0, 9)}", rng.randint(0, 99999),
             rng.randint(0, 99999), 1)
        )
    for row in generate_connections(num_parts, rng):
        conn_table.insert(row)
    db.execute(
        "CREATE INDEX idx_conn_from ON CONN (cfrom); "
        "CREATE INDEX idx_conn_to ON CONN (cto)"
    )


def demo_database(
    staff_depth: int = 8, num_parts: int = 200, **db_kwargs
) -> Database:
    """Company Fig. 1 + STAFF chain + OO1 parts in one Database."""
    db = figure1_database(**db_kwargs)
    add_staff_chain(db, staff_depth)
    add_parts_graph(db, num_parts)
    db.execute("ANALYZE")
    return db
