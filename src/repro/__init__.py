"""repro — a full reproduction of SQL/XNF (Mitschang et al., ICDE 1993).

Two layers:

* :mod:`repro.relational` — a Starburst-like relational engine built from
  scratch (storage, indexes, SQL, QGM, rewrite, optimizer, executor,
  transactions), and
* :mod:`repro.xnf` — the paper's contribution: the XNF composite-object
  language, its semantic rewrite into SQL, the application-side CO cache
  with cursors and path expressions, and update propagation.

Quick start::

    from repro import Database, XNFSession

    db = Database()
    db.execute("CREATE TABLE DEPT (dno INTEGER PRIMARY KEY, loc VARCHAR)")
    ...
    session = XNFSession(db)
    co = session.query('''
        OUT OF Xdept AS (SELECT * FROM DEPT WHERE loc = 'NY'),
               Xemp AS EMP,
               employment AS (RELATE Xdept, Xemp
                              WHERE Xdept.dno = Xemp.edno)
        TAKE *
    ''')
    for dept in co.cursor("Xdept"):
        for emp in co.cursor("Xemp", depends_on=dept, via="employment"):
            ...
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["Database", "XNFSession", "ReproError", "__version__"]


def __getattr__(name: str):
    if name == "Database":
        from repro.relational.engine import Database

        return Database
    if name == "XNFSession":
        from repro.xnf.api import XNFSession

        return XNFSession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
