"""Per-statement profiles: a structured time breakdown of one trace tree.

:func:`build_profile` walks a completed root span (typically the wire
server's ``wire.<op>`` span, or the engine's ``statement`` span) and
aggregates it into a small JSON-ready dict:

* ``stages`` — the statement pipeline (parse, build_qgm, rewrite,
  optimize, execute) in milliseconds, plus the batch count when the
  vectorized executor ran;
* ``scatter`` / ``delta`` — per-shard durations of the XNF scatter/
  gather and partitioned-delta fixpoint stages, keyed by shard id, with
  a ``skew`` ratio (slowest shard over mean) exposing stragglers;
* ``queue_wait_ms`` / ``retry_wait_ms`` / ``lock_conflicts`` — the
  server-side admission/queue wait before the statement ran, time slept
  in transparent IO/serialization retries, and no-wait lock conflicts
  hit while it ran (passed in by the caller; spans cannot see them).

The wire server builds one per dispatched frame (``PROFILE`` op), the
REPL renders it via ``\\profile``, and :func:`render_profile` gives the
human-readable form.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .trace import Span

#: statement-pipeline span names rolled up into the ``stages`` breakdown
PIPELINE_STAGES = ("parse", "build_qgm", "rewrite", "optimize", "execute")


def _ms(seconds: float) -> float:
    return round(seconds * 1e3, 4)


def build_profile(
    root: Optional[Span],
    queue_wait_s: Optional[float] = None,
    retry_wait_s: Optional[float] = None,
    lock_conflicts: Optional[int] = None,
) -> Optional[Dict[str, Any]]:
    """Aggregate *root*'s tree into a per-statement profile dict."""
    if root is None or root.span_id == 0:  # missing or NULL_SPAN
        return None
    stages: Dict[str, float] = {}
    scatter: Dict[int, float] = {}
    delta: Dict[int, float] = {}
    batches = 0
    rounds = 0
    rows: Optional[int] = None
    error: Optional[str] = None
    for span in root.walk():
        dur = span.duration_s
        name = span.name
        if name in PIPELINE_STAGES:
            stages[name] = stages.get(name, 0.0) + dur
        elif name == "xnf.scatter.shard":
            shard = span._attrs.get("shard", -1) if span._attrs else -1
            scatter[shard] = scatter.get(shard, 0.0) + dur
        elif name == "xnf.delta.shard":
            shard = span._attrs.get("shard", -1) if span._attrs else -1
            delta[shard] = delta.get(shard, 0.0) + dur
        elif name == "xnf.fixpoint.round":
            rounds += 1
        if span._attrs:
            batches += span._attrs.get("batches") or 0
            if error is None and "error" in span._attrs:
                error = str(span._attrs["error"])
    if root._attrs:
        rows = root._attrs.get("rows")
    profile: Dict[str, Any] = {
        "op": root.name,
        "trace_id": root.trace_id,
        "span_id": root.span_id,
        "sampled": bool(root.sampled),
        "total_ms": _ms(root.duration_s),
        "stages": {name: _ms(s) for name, s in stages.items()},
    }
    if queue_wait_s is not None:
        profile["queue_wait_ms"] = _ms(queue_wait_s)
    if retry_wait_s:
        profile["retry_wait_ms"] = _ms(retry_wait_s)
    if lock_conflicts:
        profile["lock_conflicts"] = lock_conflicts
    if batches:
        profile["execute_batches"] = batches
    if rounds:
        profile["fixpoint_rounds"] = rounds
    if rows is not None:
        profile["rows"] = rows
    if error is not None:
        profile["error"] = error
    for key, shards in (("scatter", scatter), ("delta", delta)):
        if not shards:
            continue
        durations = {shard: _ms(s) for shard, s in sorted(shards.items())}
        mean = sum(shards.values()) / len(shards)
        profile[key] = {
            "shards": durations,
            "skew": round(max(shards.values()) / mean, 3) if mean > 0 else 1.0,
        }
    return profile


def render_profile(profile: Optional[Dict[str, Any]]) -> str:
    """Human-readable rendering of :func:`build_profile` output."""
    if not profile:
        return "no profile recorded (run a statement first)"
    lines: List[str] = [
        f"{profile.get('op', '?')}  trace_id={profile.get('trace_id', 0)}  "
        f"total {profile.get('total_ms', 0.0):.3f} ms"
    ]
    if "queue_wait_ms" in profile:
        lines.append(f"  queue wait   {profile['queue_wait_ms']:9.3f} ms")
    for stage in PIPELINE_STAGES:
        stage_ms = profile.get("stages", {}).get(stage)
        if stage_ms is not None:
            lines.append(f"  {stage:<12} {stage_ms:9.3f} ms")
    if "execute_batches" in profile:
        lines.append(f"  batches      {profile['execute_batches']:9d}")
    if "retry_wait_ms" in profile:
        lines.append(f"  retry wait   {profile['retry_wait_ms']:9.3f} ms")
    if "lock_conflicts" in profile:
        lines.append(f"  lock conflicts {profile['lock_conflicts']:7d}")
    if "fixpoint_rounds" in profile:
        lines.append(f"  fixpoint rounds {profile['fixpoint_rounds']:6d}")
    for key in ("scatter", "delta"):
        section = profile.get(key)
        if not section:
            continue
        lines.append(f"  {key} (skew {section.get('skew', 1.0):.2f}x):")
        for shard, shard_ms in section.get("shards", {}).items():
            lines.append(f"    shard {shard}: {shard_ms:9.3f} ms")
    if "rows" in profile:
        lines.append(f"  rows         {profile['rows']:9d}")
    if "error" in profile:
        lines.append(f"  error        {profile['error']}")
    if not profile.get("sampled", True):
        lines.append("  (unsampled: child spans suppressed)")
    return "\n".join(lines)
