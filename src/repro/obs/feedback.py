"""Estimate-vs-actual cardinality feedback.

``EXPLAIN ANALYZE`` (and analyze-mode execution) walks the instrumented
plan and records, per access path, the optimizer's row estimate against
the measured per-loop actual plus the q-error
``max(est/actual, actual/est)``.  ``SYS_STAT_ESTIMATES`` exposes the
registry; when ``Database(optimizer_feedback=True)``, the planner consults
it at re-planning time and substitutes the observed cardinality for its
selectivity guess (classic "learned" selectivity correction, keyed by the
*normalized* predicate so literal-differing statements share feedback).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Tuple

#: exponential-moving-average weight for repeated observations of one key
_ALPHA = 0.5


def q_error(est_rows: float, actual_rows: float) -> float:
    """Symmetric multiplicative estimation error, floored at one row."""
    est = max(float(est_rows), 1.0)
    actual = max(float(actual_rows), 1.0)
    return max(est / actual, actual / est)


class EstimateFeedback:
    """One (source table, normalized predicate) feedback cell."""

    __slots__ = (
        "source", "operator", "predicate", "est_rows", "actual_rows",
        "q_error", "samples",
    )

    def __init__(self, source: str, operator: str, predicate: str):
        self.source = source
        self.operator = operator
        self.predicate = predicate
        self.est_rows = 0.0
        self.actual_rows = 0.0
        self.q_error = 1.0
        self.samples = 0


class FeedbackRegistry:
    """Bounded, thread-safe store of estimate-vs-actual observations."""

    def __init__(self, capacity: int = 512):
        self.capacity = capacity
        self._cells: "OrderedDict[Tuple[str, str], EstimateFeedback]" = OrderedDict()
        self._lock = threading.Lock()
        self.evicted = 0

    def record(
        self,
        source: str,
        operator: str,
        predicate: str,
        est_rows: float,
        actual_rows: float,
    ) -> EstimateFeedback:
        key = (source, predicate)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                if len(self._cells) >= self.capacity:
                    self._cells.popitem(last=False)
                    self.evicted += 1
                cell = self._cells[key] = EstimateFeedback(source, operator, predicate)
                cell.actual_rows = float(actual_rows)
            else:
                self._cells.move_to_end(key)
                cell.actual_rows += _ALPHA * (float(actual_rows) - cell.actual_rows)
                cell.operator = operator
            cell.est_rows = float(est_rows)
            cell.q_error = q_error(est_rows, cell.actual_rows)
            cell.samples += 1
            return cell

    def lookup_rows(self, source: str, predicate: str) -> Optional[float]:
        """Observed cardinality for a (table, normalized predicate), if any."""
        with self._lock:
            cell = self._cells.get((source, predicate))
            return None if cell is None else cell.actual_rows

    def entries(self) -> List[EstimateFeedback]:
        with self._lock:
            return list(self._cells.values())

    def rows_snapshot(self) -> List[Tuple]:
        """``SYS_STAT_ESTIMATES`` rows."""
        return [
            (
                cell.source,
                cell.operator,
                cell.predicate,
                round(cell.est_rows, 2),
                round(cell.actual_rows, 2),
                round(cell.q_error, 3),
                cell.samples,
            )
            for cell in self.entries()
        ]

    def clear(self) -> None:
        with self._lock:
            self._cells.clear()
            self.evicted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._cells)
