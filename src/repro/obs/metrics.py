"""Process-wide metrics registry: counters, gauges, histograms.

Subsystems either own plain integer counters that
``Database.metrics_snapshot()`` pulls (buffer pool, WAL, lock manager,
transaction manager, plan cache — their counters predate this module) or
push into a :class:`MetricsRegistry` (XNF fixpoint rounds/delta rows,
statement latencies, slow-query count).  A registry snapshot is a plain
nested dict, cheap to JSON-serialize and to diff in tests.

Histograms keep count/sum/min/max plus fixed log-scale buckets — enough
to read p50/p99-ish shape without unbounded memory.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Union


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value


#: Histogram bucket upper bounds, in seconds, log-spaced 100µs → 10s.
DEFAULT_BUCKETS = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0,
)


class Histogram:
    """count/sum/min/max plus fixed cumulative-style buckets."""

    __slots__ = ("count", "total", "minimum", "maximum", "bounds", "buckets")

    def __init__(self, bounds: tuple = DEFAULT_BUCKETS):
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.bounds = bounds
        self.buckets: List[int] = [0] * (len(bounds) + 1)  # +1 overflow

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        # first bucket whose upper bound is >= value; past-the-end is the
        # overflow bucket
        self.buckets[bisect_left(self.bounds, value)] += 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.minimum,
            "max": self.maximum,
            "mean": round(self.total / self.count, 6) if self.count else None,
            "buckets": {
                (f"le_{bound}" if idx < len(self.bounds) else "overflow"): n
                for idx, (bound, n) in enumerate(
                    zip(self.bounds + (float("inf"),), self.buckets)
                )
                if n
            },
        }


class MetricsRegistry:
    """Named metric store with get-or-create accessors.

    Names are dotted (``xnf.fixpoint.rounds``); :meth:`snapshot` returns
    them flat so callers can group or prefix-filter as they like.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    # -- convenience write paths --------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: Union[int, float]) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- read side -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[name] = histogram.snapshot()
        return out

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
