"""Process-wide metrics registry: counters, gauges, histograms.

Subsystems either own plain integer counters that
``Database.metrics_snapshot()`` pulls (buffer pool, WAL, lock manager,
transaction manager, plan cache — their counters predate this module) or
push into a :class:`MetricsRegistry` (XNF fixpoint rounds/delta rows,
statement latencies, slow-query count).  A registry snapshot is a plain
nested dict, cheap to JSON-serialize and to diff in tests.

Histograms keep count/sum/min/max plus fixed log-scale buckets — enough
to read p50/p99-ish shape without unbounded memory.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Union


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value


#: Histogram bucket upper bounds, in seconds, log-spaced 100µs → 10s.
DEFAULT_BUCKETS = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0,
)


class Histogram:
    """count/sum/min/max plus fixed cumulative-style buckets."""

    __slots__ = ("count", "total", "minimum", "maximum", "bounds", "buckets")

    def __init__(self, bounds: tuple = DEFAULT_BUCKETS):
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.bounds = bounds
        self.buckets: List[int] = [0] * (len(bounds) + 1)  # +1 overflow

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        # first bucket whose upper bound is >= value; past-the-end is the
        # overflow bucket
        self.buckets[bisect_left(self.bounds, value)] += 1

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile (0 < q <= 1) from the cumulative buckets.

        Linear interpolation inside the bucket that crosses the target rank,
        clamped to the exact observed [min, max] so single-observation and
        overflow cases stay honest.
        """
        if not self.count or self.minimum is None or self.maximum is None:
            return None
        target = q * self.count
        cumulative = 0
        for idx, n in enumerate(self.buckets):
            if not n:
                continue
            if cumulative + n >= target:
                lower = self.bounds[idx - 1] if idx > 0 else 0.0
                upper = self.bounds[idx] if idx < len(self.bounds) else self.maximum
                value = lower + (upper - lower) * ((target - cumulative) / n)
                return min(max(value, self.minimum), self.maximum)
            cumulative += n
        return self.maximum

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.minimum,
            "max": self.maximum,
            "mean": round(self.total / self.count, 6) if self.count else None,
            "p50": _rounded(self.quantile(0.50)),
            "p95": _rounded(self.quantile(0.95)),
            "p99": _rounded(self.quantile(0.99)),
            "buckets": {
                (f"le_{bound}" if idx < len(self.bounds) else "overflow"): n
                for idx, (bound, n) in enumerate(
                    zip(self.bounds + (float("inf"),), self.buckets)
                )
                if n
            },
        }


def _rounded(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 6)


class MetricsRegistry:
    """Named metric store with get-or-create accessors.

    Names are dotted (``xnf.fixpoint.rounds``); :meth:`snapshot` returns
    them flat so callers can group or prefix-filter as they like.

    Thread-safe and bounded: every accessor and convenience write path
    takes one re-entrant lock, and at most *max_metrics* distinct names
    are retained — past the cap, new names get a detached metric object
    (writes to it are legal no-ops from the registry's point of view) and
    ``dropped`` counts how many were turned away.
    """

    def __init__(self, max_metrics: int = 1024) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.RLock()
        self.max_metrics = max_metrics
        self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._gauges) + len(self._histograms)

    def _at_capacity(self) -> bool:
        total = len(self._counters) + len(self._gauges) + len(self._histograms)
        return total >= self.max_metrics

    # -- get-or-create -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                if self._at_capacity():
                    self.dropped += 1
                    return Counter()
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                if self._at_capacity():
                    self.dropped += 1
                    return Gauge()
                metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                if self._at_capacity():
                    self.dropped += 1
                    return Histogram()
                metric = self._histograms[name] = Histogram()
            return metric

    # -- convenience write paths --------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counter(name).inc(amount)

    def set(self, name: str, value: Union[int, float]) -> None:
        with self._lock:
            self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.histogram(name).observe(value)

    # -- read side -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            out: Dict[str, Any] = {}
            for name, counter in self._counters.items():
                out[name] = counter.value
            for name, gauge in self._gauges.items():
                out[name] = gauge.value
            for name, histogram in self._histograms.items():
                out[name] = histogram.snapshot()
            return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self.dropped = 0
