"""Wire-server observability: frame/byte counters and live session rows.

Both registries live on every :class:`~repro.relational.engine.Database`
(``db.network`` and ``db.wire_sessions``) so the ``SYS_STAT_NETWORK`` and
``SYS_SESSIONS`` virtual tables are installable at construction time; an
embedded database that never starts a server simply reports zero counters
and no sessions.  The server (:mod:`repro.server`) increments the counters
from its event loop and registers one :class:`WireSessionStats` per
accepted connection; statement workers update their own session's row from
worker threads, hence the locking.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Tuple

#: counter names in SYS_STAT_NETWORK column order
NETWORK_COUNTER_KEYS = (
    "connections_opened",
    "connections_active",
    "connections_refused",
    "frames_in",
    "frames_out",
    "bytes_in",
    "bytes_out",
    "errors_sent",
    "retryable_errors_sent",
    "protocol_errors",
)


class NetworkStats:
    """Thread-safe frame/byte counters for the wire server."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {key: 0 for key in NETWORK_COUNTER_KEYS}

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def dec(self, name: str, amount: int = 1) -> None:
        self.inc(name, -amount)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)


class WireSessionStats:
    """One live wire session's row behind ``SYS_SESSIONS``."""

    __slots__ = (
        "session_id", "peer", "state", "statements", "rows_sent", "errors",
        "retryable_errors", "cos_open", "cursors_open", "in_txn",
        "connected_at", "last_activity", "_lock",
    )

    def __init__(self, session_id: int, peer: str):
        self.session_id = session_id
        self.peer = peer
        self.state = "idle"
        self.statements = 0
        self.rows_sent = 0
        self.errors = 0
        self.retryable_errors = 0
        self.cos_open = 0
        self.cursors_open = 0
        self.in_txn = False
        self.connected_at = time.monotonic()
        self.last_activity = self.connected_at
        self._lock = threading.Lock()

    def touch(self, state: str) -> None:
        with self._lock:
            self.state = state
            self.last_activity = time.monotonic()

    def record(self, **deltas: int) -> None:
        """Add *deltas* to the named integer counters."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)
            self.last_activity = time.monotonic()

    def row(self) -> Tuple:
        with self._lock:
            now = time.monotonic()
            return (
                self.session_id,
                self.peer,
                self.state,
                self.statements,
                self.rows_sent,
                self.errors,
                self.retryable_errors,
                self.cos_open,
                self.cursors_open,
                self.in_txn,
                round((now - self.connected_at) * 1e3, 3),
                round((now - self.last_activity) * 1e3, 3),
            )


class WireSessionRegistry:
    """Thread-safe registry of live wire sessions (``SYS_SESSIONS``)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: Dict[int, WireSessionStats] = {}
        self._ids = 0
        #: lifetime totals survive session unregistration
        self.total_registered = 0

    def register(self, peer: str) -> WireSessionStats:
        with self._lock:
            self._ids += 1
            self.total_registered += 1
            stats = WireSessionStats(self._ids, peer)
            self._sessions[stats.session_id] = stats
            return stats

    def unregister(self, stats: WireSessionStats) -> None:
        with self._lock:
            self._sessions.pop(stats.session_id, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def rows_snapshot(self) -> List[Tuple]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [stats.row() for stats in sessions]
