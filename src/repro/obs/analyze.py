"""Operator-level instrumentation behind EXPLAIN ANALYZE.

:func:`instrument_plan` walks a compiled plan's operator tree and shadows
each operator instance's ``rows`` method with a counting/timing wrapper.
Because the engine compiles EXPLAIN ANALYZE plans *outside* the plan cache
(instrumented operators must never leak into cached, shared plans), the
instance-level shadowing is safe: the instrumented tree is executed once,
rendered, and discarded.

Recorded per operator:

* ``rows_out`` — rows the operator produced (over all invocations; a
  correlated subplan runs once per outer row and the counts accumulate);
* ``loops``   — number of times the operator was (re-)opened;
* ``time_s``  — cumulative wall time spent *inside* the operator and its
  subtree (inclusive, like PostgreSQL's ``actual time``);
* ``batches`` — for vectorized (``Vec*``) operators, the number of column
  batches produced; ``rows_out`` then counts the batches' active rows.

Vectorized operators are instrumented at their ``batches`` method rather
than ``rows`` — wrapping both would double-count, since ``VecOp.rows`` is
defined over ``batches``.

``rows in`` for the renderer is simply the children's ``rows_out``.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.relational.executor.operators import PlanOp
from repro.relational.executor.vectorized import VecOp


class OpStats:
    """Execution counters of one plan operator instance."""

    __slots__ = ("op", "rows_out", "loops", "time_s", "batches")

    def __init__(self, op: PlanOp):
        self.op = op
        self.rows_out = 0
        self.loops = 0
        self.time_s = 0.0
        self.batches = 0


def instrument_plan(root: PlanOp) -> Dict[int, OpStats]:
    """Shadow every operator's ``rows`` with a counting wrapper.

    Returns ``{id(op): OpStats}`` for the renderer.  The wrapper times
    each ``next()`` of the underlying iterator, so an operator's time is
    inclusive of its children (which are themselves wrapped — their time
    is the inner share).
    """
    stats: Dict[int, OpStats] = {}

    def wrap(op: PlanOp) -> None:
        if id(op) in stats:
            return
        st = stats[id(op)] = OpStats(op)
        if isinstance(op, VecOp):
            # Vectorized operators produce batches; `VecOp.rows` iterates
            # `self.batches`, so shadowing the instance's `batches` also
            # counts consumption through the row interface — exactly once.
            inner_batches = op.batches  # bound method, captured first

            def counted_batches(env, _inner=inner_batches, _st=st):
                _st.loops += 1
                begin = time.perf_counter()
                iterator = iter(_inner(env))
                _st.time_s += time.perf_counter() - begin
                while True:
                    begin = time.perf_counter()
                    try:
                        batch = next(iterator)
                    except StopIteration:
                        _st.time_s += time.perf_counter() - begin
                        return
                    _st.time_s += time.perf_counter() - begin
                    _st.batches += 1
                    _st.rows_out += batch.num_active
                    yield batch

            op.batches = counted_batches  # type: ignore[method-assign]
        else:
            inner = op.rows  # bound method, captured before shadowing

            def counted_rows(env, _inner=inner, _st=st):
                _st.loops += 1
                begin = time.perf_counter()
                iterator = iter(_inner(env))
                _st.time_s += time.perf_counter() - begin
                while True:
                    begin = time.perf_counter()
                    try:
                        row = next(iterator)
                    except StopIteration:
                        _st.time_s += time.perf_counter() - begin
                        return
                    _st.time_s += time.perf_counter() - begin
                    _st.rows_out += 1
                    yield row

            op.rows = counted_rows  # type: ignore[method-assign]
        for child in op.children():
            wrap(child)

    wrap(root)
    return stats


def render_analyzed(root: PlanOp, stats: Dict[int, OpStats], indent: int = 0) -> str:
    """The plan tree annotated with actual row counts and times."""
    st = stats.get(id(root))
    if st is None:
        annotation = "  (not executed)"
    else:
        rows_in = sum(
            stats[id(child)].rows_out
            for child in root.children()
            if id(child) in stats
        )
        parts = [f"rows={st.rows_out}"]
        if root.children():
            parts.append(f"rows_in={rows_in}")
        parts.append(f"loops={st.loops}")
        parts.append(f"time={st.time_s * 1e3:.3f}ms")
        if st.batches:
            parts.append(f"batches={st.batches}")
            parts.append(f"fill={st.rows_out / st.batches:.1f}")
        annotation = "  (" + ", ".join(parts) + ")"
    lines = ["  " * indent + root.label + annotation]
    lines.extend(
        render_analyzed(child, stats, indent + 1) for child in root.children()
    )
    return "\n".join(lines)
