"""Observability: span tracing, metrics, EXPLAIN ANALYZE, slow-query log.

The paper's Fig. 7/8 pipeline (XNF parse → QGM → semantic rewrite → SQL
operators) is a multi-stage translation whose cost structure is invisible
without instrumentation.  This package supplies the substrate every perf
PR measures against:

* :mod:`repro.obs.trace` — a lightweight span tracer threaded through
  ``Database.execute`` → parse → QGM build → rewrite → optimize →
  executor, and through the XNF reachability fixpoint (one span per
  round).  Each statement leaves a structured span tree in
  ``Database.tracer.last_trace``.
* :mod:`repro.obs.metrics` — process-wide counters / gauges / histograms;
  ``Database.metrics_snapshot()`` merges them with the storage, WAL, lock,
  transaction, fixpoint and plan-cache counters.
* :mod:`repro.obs.analyze` — operator-level instrumentation behind
  ``EXPLAIN ANALYZE`` (rows in/out and cumulative time per plan operator).
* :mod:`repro.obs.slowlog` — a threshold-configurable slow-query log with
  the statement's span tree attached.
* :mod:`repro.obs.statements` — bounded per-fingerprint statement stats
  (calls, latency quantiles, plan-cache hits) behind
  ``SYS_STAT_STATEMENTS``.
* :mod:`repro.obs.feedback` — estimate-vs-actual cardinality feedback with
  q-errors (``SYS_STAT_ESTIMATES``), optionally consulted by the planner.
* :mod:`repro.obs.costats` — per-CO instantiation cardinalities and
  fixpoint profiles (``SYS_CO_STATS``).
* :mod:`repro.obs.export` — JSONL trace exporter (one root span per line,
  batched writes, trace ids stitch client- and server-side records).
* :mod:`repro.obs.network` — wire-server frame/byte counters and live
  session rows (``SYS_STAT_NETWORK`` / ``SYS_SESSIONS``).
* :mod:`repro.obs.profile` — per-statement profiles aggregated from one
  trace tree (pipeline stages, queue/retry waits, per-shard durations),
  behind the ``PROFILE`` wire op and the ``\\profile`` REPL command.
"""

from repro.obs.analyze import OpStats, instrument_plan, render_analyzed
from repro.obs.costats import COStat, COStatsRegistry
from repro.obs.export import JsonlTraceExporter
from repro.obs.feedback import EstimateFeedback, FeedbackRegistry, q_error
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.network import NetworkStats, WireSessionRegistry, WireSessionStats
from repro.obs.profile import build_profile, render_profile
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.statements import StatementStat, StatementStatsRegistry
from repro.obs.trace import FRESH_CONTEXT, NULL_SPAN, Span, TraceContext, Tracer

__all__ = [
    "COStat",
    "COStatsRegistry",
    "Counter",
    "EstimateFeedback",
    "FRESH_CONTEXT",
    "FeedbackRegistry",
    "Gauge",
    "Histogram",
    "JsonlTraceExporter",
    "MetricsRegistry",
    "NULL_SPAN",
    "NetworkStats",
    "WireSessionRegistry",
    "WireSessionStats",
    "OpStats",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "StatementStat",
    "StatementStatsRegistry",
    "TraceContext",
    "Tracer",
    "build_profile",
    "instrument_plan",
    "q_error",
    "render_analyzed",
    "render_profile",
]
