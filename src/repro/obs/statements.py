"""Per-statement cumulative statistics, keyed by normalized fingerprint.

The engine records one entry per executed statement into a bounded,
thread-safe registry; ``SYS_STAT_STATEMENTS`` is a live view over it.
Statements that differ only in WHERE/JOIN literals share a fingerprint
(the plan-cache normalizer produces it), so the registry aggregates the
way pg_stat_statements does: per *statement shape*, not per SQL text.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram


class StatementStat:
    """Cumulative counters for one statement fingerprint."""

    __slots__ = (
        "fingerprint", "calls", "errors", "total_s", "rows",
        "plan_cache_hits", "latency", "last_session_id", "last_trace_id",
    )

    def __init__(self, fingerprint: str):
        self.fingerprint = fingerprint
        self.calls = 0
        self.errors = 0
        self.total_s = 0.0
        self.rows = 0
        self.plan_cache_hits = 0
        self.latency = Histogram()
        #: wire-session attribution: the last session/trace that ran this
        #: fingerprint (None for purely in-process statements), so
        #: SYS_SESSIONS joins to per-statement stats.
        self.last_session_id: Optional[int] = None
        self.last_trace_id: Optional[int] = None

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


class StatementStatsRegistry:
    """Bounded LRU map fingerprint → :class:`StatementStat`.

    Thread-safe (one lock per record), bounded at *capacity* fingerprints
    with least-recently-updated eviction; ``evicted`` counts casualties so
    a snapshot can say how much history was shed.
    """

    def __init__(self, capacity: int = 512, enabled: bool = True):
        self.capacity = capacity
        self.enabled = enabled
        self._stats: "OrderedDict[str, StatementStat]" = OrderedDict()
        self._lock = threading.Lock()
        self.evicted = 0

    def record(
        self,
        fingerprint: str,
        elapsed_s: float,
        rows: int = 0,
        cache_hit: bool = False,
        error: bool = False,
        session_id: Optional[int] = None,
        trace_id: Optional[int] = None,
    ) -> None:
        if not self.enabled:
            return
        with self._lock:
            stats = self._stats
            stat = stats.get(fingerprint)
            if stat is None:
                if len(stats) >= self.capacity:
                    stats.popitem(last=False)
                    self.evicted += 1
                stat = stats[fingerprint] = StatementStat(fingerprint)
            elif len(stats) >= self.capacity:
                # Refresh recency only once the registry is full: below
                # capacity nothing can be evicted, so the move_to_end per
                # record would be pure hot-path overhead.
                stats.move_to_end(fingerprint)
            stat.calls += 1
            stat.total_s += elapsed_s
            stat.rows += rows
            if cache_hit:
                stat.plan_cache_hits += 1
            if error:
                stat.errors += 1
            if session_id is not None:
                stat.last_session_id = session_id
            if trace_id is not None:
                stat.last_trace_id = trace_id
            stat.latency.observe(elapsed_s)

    def get(self, fingerprint: str) -> Optional[StatementStat]:
        with self._lock:
            return self._stats.get(fingerprint)

    def entries(self) -> List[StatementStat]:
        with self._lock:
            return list(self._stats.values())

    def rows_snapshot(self) -> List[Tuple]:
        """``SYS_STAT_STATEMENTS`` rows: one per tracked fingerprint."""
        out: List[Tuple] = []
        for stat in self.entries():
            quantiles: Dict[str, Optional[float]] = {
                q: stat.latency.quantile(p)
                for q, p in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))
            }
            out.append((
                stat.fingerprint,
                stat.calls,
                stat.errors,
                stat.rows,
                stat.plan_cache_hits,
                round(stat.total_s * 1e3, 4),
                round(stat.mean_s * 1e3, 4),
                _ms(quantiles["p50"]),
                _ms(quantiles["p95"]),
                _ms(quantiles["p99"]),
                _ms(stat.latency.maximum),
                stat.last_session_id,
                stat.last_trace_id,
            ))
        return out

    def clear(self) -> None:
        with self._lock:
            self._stats.clear()
            self.evicted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds * 1e3, 4)
