"""Lightweight span tracer for the statement pipeline.

A :class:`Span` records one stage of work — name, wall time, and a small
attribute dict (rows, plan-cache hit/miss, fixpoint round number, …) —
plus its child spans, forming a tree per executed statement.  The
:class:`Tracer` keeps a stack of open spans; the engine, the XNF compiler
and the executor open spans around their stages, and whatever is on top of
the stack becomes the parent of the next span.

Tracing is cheap (two ``perf_counter`` calls and a list append per span;
no per-row work) and on by default.  ``Tracer(enabled=False)`` — or
``Database(tracing=False)`` — degrades every ``span()`` call to a shared
no-op span so the hot path pays a single attribute check.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

#: process-wide span id sequence (0 is reserved for the shared null span)
_SPAN_IDS = itertools.count(1)


class Span:
    """One timed stage with attributes and children.

    A span doubles as its own context manager (closing it pops it off the
    owning tracer's stack); the attribute dict is allocated lazily so the
    per-span cost on the traced hot path stays at two ``perf_counter``
    calls and a couple of list operations.
    """

    __slots__ = (
        "name", "_attrs", "start_s", "end_s", "_children", "_tracer", "span_id"
    )

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self._attrs = attrs
        self.start_s = time.perf_counter()
        self.end_s: Optional[float] = None
        # Child list and attribute dict are allocated lazily: most spans are
        # leaves with no attributes, and span creation sits on the per-
        # statement hot path whose overhead budget is gated in CI.
        self._children: Optional[List["Span"]] = None
        self._tracer: Optional["Tracer"] = None
        self.span_id = next(_SPAN_IDS)

    @property
    def attrs(self) -> Dict[str, Any]:
        if self._attrs is None:
            self._attrs = {}
        return self._attrs

    @property
    def children(self) -> List["Span"]:
        if self._children is None:
            self._children = []
        return self._children

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s

    def finish(self) -> "Span":
        if self.end_s is None:
            self.end_s = time.perf_counter()
        return self

    def annotate(self, **attrs: Any) -> "Span":
        if self._attrs is None:
            self._attrs = attrs
        else:
            self._attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.annotate(error=type(exc).__name__)
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    # -- introspection -------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self._children or ():
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """All spans named *name* in this subtree, pre-order."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation of the span tree."""
        out: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "duration_ms": round(self.duration_s * 1e3, 4),
        }
        if self._attrs:
            out["attrs"] = dict(self._attrs)
        if self._children:
            out["children"] = [child.to_dict() for child in self._children]
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render(self, indent: int = 0) -> str:
        """Indented one-line-per-span rendering (EXPLAIN ANALYZE uses it).

        A ``detail`` attribute (the instrumented operator tree the engine
        attaches in analyze mode) is multiline: it is emitted indented
        below the span's own line instead of inline.
        """
        detail = self._attrs.get("detail") if self._attrs else None
        attrs = " ".join(
            f"{k}={v}" for k, v in (self._attrs or {}).items() if k != "detail"
        )
        line = "  " * indent + (
            f"{self.name}  {self.duration_s * 1e3:.3f} ms"
            + (f"  [{attrs}]" if attrs else "")
        )
        lines = [line]
        if detail is not None:
            pad = "  " * (indent + 1)
            lines.extend(pad + extra for extra in str(detail).splitlines())
        lines.extend(child.render(indent + 1) for child in self._children or ())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms, {self.attrs})"


class _NullSpan(Span):
    """Shared do-nothing span handed out when tracing is disabled."""

    def __init__(self) -> None:
        super().__init__("<disabled>")
        self.end_s = self.start_s
        self.span_id = 0

    def annotate(self, **attrs: Any) -> "Span":
        return self

    def finish(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Stack-based span collector; one tree per top-level operation.

    The root span of the most recently finished tree is kept in
    :attr:`last_trace`; a bounded history of recent roots is in
    :attr:`recent` (newest last).
    """

    def __init__(self, enabled: bool = True, history: int = 16):
        self.enabled = enabled
        self.history = history
        # Each thread gets its own span stack so concurrent sessions build
        # independent trees instead of parenting into each other's spans.
        # last_trace/recent stay shared (guarded by _history_mutex).
        self._local = threading.local()
        self._history_mutex = threading.Lock()
        self.last_trace: Optional[Span] = None
        self.recent: List[Span] = []
        #: optional sink with an ``export(span)`` method, called once per
        #: completed *root* span (e.g. :class:`repro.obs.JsonlTraceExporter`)
        self.exporter: Optional[Any] = None
        self.export_failures = 0

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a child span of whatever span is currently on the stack.

        The returned span is a context manager; leaving the ``with`` block
        finishes it (annotating the exception type if one is unwinding).
        """
        if not self.enabled:
            return NULL_SPAN
        span = Span(name, attrs or None)
        span._tracer = self
        stack = self._stack
        if stack:
            parent = stack[-1]
            if parent._children is None:
                parent._children = [span]
            else:
                parent._children.append(span)
        stack.append(span)
        return span

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op when idle)."""
        if self._stack:
            self._stack[-1].annotate(**attrs)

    def _pop(self, span: Span) -> None:
        span.finish()
        # Tolerate a stack disturbed by an exception unwinding several
        # spans at once: pop down to (and including) the span being closed.
        stack = self._stack
        while stack:
            top = stack.pop()
            top.finish()
            if top is span:
                break
        if not stack:
            with self._history_mutex:
                self.last_trace = span
                self.recent.append(span)
                if len(self.recent) > self.history:
                    del self.recent[: len(self.recent) - self.history]
            if self.exporter is not None:
                # An exporter IO error must not fail the traced statement.
                try:
                    self.exporter.export(span)
                except Exception:
                    self.export_failures += 1
