"""Lightweight span tracer for the statement pipeline.

A :class:`Span` records one stage of work — name, wall time, and a small
attribute dict (rows, plan-cache hit/miss, fixpoint round number, …) —
plus its child spans, forming a tree per executed statement.  The
:class:`Tracer` keeps a stack of open spans; the engine, the XNF compiler
and the executor open spans around their stages, and whatever is on top of
the stack becomes the parent of the next span.

Tracing is cheap (two ``perf_counter`` calls and a list append per span;
no per-row work) and on by default.  ``Tracer(enabled=False)`` — or
``Database(tracing=False)`` — degrades every ``span()`` call to a shared
no-op span so the hot path pays a single attribute check.

Distributed tracing
-------------------

Span stacks are thread-local, so any span opened on a different thread
(a wire-server worker, a shard scatter worker) would normally start a
fresh, *orphaned* tree.  A :class:`TraceContext` carries (trace id,
parent span id, sampling decision) across that boundary explicitly:

* ``tracer.current_context()`` captures the calling thread's innermost
  open span as a handoff context;
* ``tracer.adopt(ctx)`` installs it on the worker thread, so the next
  root span opened there parents under the captured span (same thread
  tree when the context's span object is local, id-linked when the
  context crossed the wire);
* ``TraceContext.to_wire()`` / ``from_wire()`` serialize the context
  into protocol frames so client- and server-side trees share one
  trace id.

Root spans that still complete unparented on a known worker-pool thread
are counted in :attr:`Tracer.orphans` (and the ``trace.orphan_spans``
metric) — zero is the healthy steady state.

Head-based sampling: :attr:`Tracer.sample_rate` decides at root-span
creation whether the tree is recorded; unsampled roots suppress all
child spans (near-zero cost) and are dropped on completion unless they
erred or ran longer than :attr:`Tracer.slow_sample_s` (always-sample on
slow/error, annotated ``sampled=late``).
"""

from __future__ import annotations

import itertools
import json
import os
import random
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

#: process-wide span id sequence (0 is reserved for the shared null span)
_SPAN_IDS = itertools.count(1)

# Span creation sits on the per-statement hot path whose overhead budget
# is gated in CI: bind the two C functions it calls as module globals so
# each span pays two LOAD_GLOBALs instead of module-attribute lookups.
_perf_counter = time.perf_counter
_get_ident = threading.get_ident

#: trace ids are (random 16-bit process tag << 32) | counter so ids minted
#: by separate processes (a WireClient and a remote server, say) do not
#: collide when their JSONL exports are merged for stitching.
_TRACE_IDS = itertools.count(1)
_TRACE_TAG = int.from_bytes(os.urandom(2), "big") << 32


def _next_trace_id() -> int:
    return _TRACE_TAG | next(_TRACE_IDS)


#: thread-name prefixes of the pools whose workers must receive an
#: explicit TraceContext handoff; a root span completing on one of these
#: without an adopted context is an orphan (checked once per root).
_WORKER_THREAD_PREFIXES = ("ThreadPoolExecutor", "xnf-wire", "xnf-scatter")


class TraceContext:
    """A portable parent reference: trace id + parent span id + sampling.

    ``span`` holds the live parent :class:`Span` when the context stays
    in-process (scatter/gather handoff) so the worker's subtree links
    straight into the parent tree; it is ``None`` when the context
    crossed the wire, in which case the adopting root span becomes a
    local root that shares the remote trace id.
    """

    __slots__ = ("trace_id", "span_id", "sampled", "span")

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        sampled: bool = True,
        span: Optional["Span"] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled
        self.span = span

    def to_wire(self) -> Dict[str, Any]:
        return {"id": self.trace_id, "span": self.span_id, "sampled": self.sampled}

    @classmethod
    def from_wire(cls, payload: Any) -> Optional["TraceContext"]:
        """Tolerant decode of a frame's ``trace`` field (None on junk)."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("id")
        span_id = payload.get("span")
        if not isinstance(trace_id, int) or trace_id <= 0:
            return None
        if not isinstance(span_id, int) or span_id < 0:
            return None
        return cls(trace_id, span_id, bool(payload.get("sampled", True)))

    def __repr__(self) -> str:
        return (
            f"TraceContext(trace_id={self.trace_id}, span_id={self.span_id}, "
            f"sampled={self.sampled}, local={self.span is not None})"
        )


#: marker for "intentionally a fresh trace" — adopting it documents that
#: no parent exists (e.g. a wire frame without a trace field) so the
#: resulting root is *not* counted as an orphan.
FRESH_CONTEXT = TraceContext(0, 0)


class Span:
    """One timed stage with attributes and children.

    A span doubles as its own context manager (closing it pops it off the
    owning tracer's stack); the attribute dict is allocated lazily so the
    per-span cost on the traced hot path stays at two ``perf_counter``
    calls and a couple of list operations.
    """

    __slots__ = (
        "name", "_attrs", "start_s", "end_s", "_children", "_tracer",
        "span_id", "trace_id", "parent_id", "sampled", "thread_id",
    )

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self._attrs = attrs
        self.start_s = _perf_counter()
        self.end_s: Optional[float] = None
        # Child list and attribute dict are allocated lazily: most spans are
        # leaves with no attributes, and span creation sits on the per-
        # statement hot path whose overhead budget is gated in CI.
        self._children: Optional[List["Span"]] = None
        self._tracer: Optional["Tracer"] = None
        self.span_id = next(_SPAN_IDS)
        self.trace_id = 0
        #: parent span id — set only across thread/wire boundaries; the
        #: in-stack tree carries parentage structurally.
        self.parent_id: Optional[int] = None
        self.sampled = True
        self.thread_id = _get_ident()

    @property
    def attrs(self) -> Dict[str, Any]:
        if self._attrs is None:
            self._attrs = {}
        return self._attrs

    @property
    def children(self) -> List["Span"]:
        if self._children is None:
            self._children = []
        return self._children

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else _perf_counter()
        return end - self.start_s

    def finish(self) -> "Span":
        if self.end_s is None:
            self.end_s = _perf_counter()
        return self

    def annotate(self, **attrs: Any) -> "Span":
        if self._attrs is None:
            self._attrs = attrs
        else:
            self._attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.annotate(error=type(exc).__name__)
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    # -- introspection -------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self._children or ():
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """All spans named *name* in this subtree, pre-order."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation of the span tree."""
        out: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "duration_ms": round(self.duration_s * 1e3, 4),
        }
        if self.trace_id:
            out["trace_id"] = self.trace_id
        if self.parent_id is not None:
            out["parent_span_id"] = self.parent_id
        if self._attrs:
            out["attrs"] = dict(self._attrs)
        if self._children:
            out["children"] = [child.to_dict() for child in self._children]
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render(self, indent: int = 0) -> str:
        """Indented one-line-per-span rendering (EXPLAIN ANALYZE uses it).

        A ``detail`` attribute (the instrumented operator tree the engine
        attaches in analyze mode) is multiline: it is emitted indented
        below the span's own line instead of inline.
        """
        detail = self._attrs.get("detail") if self._attrs else None
        attrs = " ".join(
            f"{k}={v}" for k, v in (self._attrs or {}).items() if k != "detail"
        )
        line = "  " * indent + (
            f"{self.name}  {self.duration_s * 1e3:.3f} ms"
            + (f"  [{attrs}]" if attrs else "")
        )
        lines = [line]
        if detail is not None:
            pad = "  " * (indent + 1)
            lines.extend(pad + extra for extra in str(detail).splitlines())
        lines.extend(child.render(indent + 1) for child in self._children or ())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms, {self.attrs})"


class _NullSpan(Span):
    """Shared do-nothing span handed out when tracing is disabled."""

    def __init__(self) -> None:
        super().__init__("<disabled>")
        self.end_s = self.start_s
        self.span_id = 0

    def annotate(self, **attrs: Any) -> "Span":
        return self

    def finish(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Stack-based span collector; one tree per top-level operation.

    The root span of the most recently finished tree is kept in
    :attr:`last_trace`; a bounded history of recent roots is in
    :attr:`recent` (newest last).
    """

    def __init__(
        self,
        enabled: bool = True,
        history: int = 16,
        sample_rate: float = 1.0,
        slow_sample_s: Optional[float] = None,
    ):
        self.enabled = enabled
        self.history = history
        #: head-based sampling probability for new roots (1.0 = trace all);
        #: adopted contexts carry their own decision instead.
        self.sample_rate = sample_rate
        #: unsampled roots slower than this are kept anyway (None = never)
        self.slow_sample_s = slow_sample_s
        # Each thread gets its own span stack so concurrent sessions build
        # independent trees instead of parenting into each other's spans.
        # Cross-thread work must hand its parent over explicitly via
        # current_context()/adopt().  last_trace/recent stay shared
        # (guarded by _history_mutex).
        self._local = threading.local()
        self._history_mutex = threading.Lock()
        self.last_trace: Optional[Span] = None
        self.recent: List[Span] = []
        #: optional sink with an ``export(span)`` method, called once per
        #: completed *root* span (e.g. :class:`repro.obs.JsonlTraceExporter`)
        self.exporter: Optional[Any] = None
        self.export_failures = 0
        #: root spans that completed on a worker-pool thread without an
        #: adopted TraceContext — each one is a tree SYS_MONITOR cannot
        #: reach from its statement.  Healthy steady state: zero.
        self.orphans = 0
        #: roots dropped by head-based sampling (not slow, no error)
        self.sampled_out = 0
        #: optional MetricsRegistry mirror for the orphan counter
        self.metrics: Optional[Any] = None
        # deterministic sampling stream: overhead benches and tests get
        # reproducible keep/drop sequences for a given rate
        self._rng = random.Random(0x5EED)

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a child span of whatever span is currently on the stack.

        The returned span is a context manager; leaving the ``with`` block
        finishes it (annotating the exception type if one is unwinding).
        On an empty stack the new span becomes a root: it adopts the
        thread's installed :class:`TraceContext` if one is present, else
        mints a fresh trace id and takes the head-based sampling decision.
        """
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack
        if stack:
            if not stack[0].sampled:
                return NULL_SPAN  # unsampled tree: suppress children
            span = Span(name, attrs or None)
            span._tracer = self
            span.trace_id = stack[0].trace_id
            parent = stack[-1]
            if parent._children is None:
                parent._children = [span]
            else:
                parent._children.append(span)
            stack.append(span)
            return span
        span = Span(name, attrs or None)
        span._tracer = self
        inherited = getattr(self._local, "inherited", None)
        if inherited is not None and inherited.trace_id:
            span.trace_id = inherited.trace_id
            span.parent_id = inherited.span_id
            span.sampled = inherited.sampled
            if inherited.span is not None:
                # Local cross-thread handoff: link straight into the
                # parent tree (its children list was materialized by
                # current_context(); list.append is atomic under the GIL).
                inherited.span.children.append(span)
        else:
            span.trace_id = _next_trace_id()
            rate = self.sample_rate
            span.sampled = rate >= 1.0 or self._rng.random() < rate
        stack.append(span)
        return span

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def current_context(self) -> Optional[TraceContext]:
        """Capture the innermost open span as a cross-thread handoff.

        Returns None when nothing is open and nothing was adopted (the
        worker will then mint a fresh trace — or be counted as an orphan
        if it never adopts at all).
        """
        stack = self._stack
        if not stack:
            inherited = getattr(self._local, "inherited", None)
            if inherited is not None and inherited.trace_id:
                return inherited
            return None
        top = stack[-1]
        # Materialize the children list now, on the owning thread, so
        # concurrent workers only ever append to an existing list.
        _ = top.children
        return TraceContext(stack[0].trace_id, top.span_id, stack[0].sampled, top)

    def force_sample(self) -> None:
        """Late-sample the currently open tree.

        EXPLAIN ANALYZE exists to be read: if head-based sampling (or an
        adopted unsampled context) suppressed the open root, flip it so
        the subtree about to run records normally.  No-op when nothing is
        open or the root is already sampled.
        """
        stack = self._stack
        if stack and not stack[0].sampled:
            stack[0].sampled = True
            stack[0].annotate(sampled="late")

    def adopt(self, context: Optional[TraceContext]) -> "_Adopt":
        """Install *context* as the parent for root spans on this thread.

        ``adopt(None)`` installs :data:`FRESH_CONTEXT` — an explicit "new
        trace starts here" marker that suppresses orphan accounting (use
        it when there is genuinely no parent, e.g. a wire frame from a
        non-tracing client).
        """
        return _Adopt(self, context if context is not None else FRESH_CONTEXT)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op when idle)."""
        if self._stack:
            self._stack[-1].annotate(**attrs)

    def _pop(self, span: Span) -> None:
        span.finish()
        # Tolerate a stack disturbed by an exception unwinding several
        # spans at once: pop down to (and including) the span being closed.
        stack = self._stack
        while stack:
            top = stack.pop()
            top.finish()
            if top is span:
                break
        if stack:
            return
        inherited = getattr(self._local, "inherited", None)
        if inherited is not None and inherited.span is not None:
            # Linked child of a live parent tree on another thread: the
            # parent root's completion records and exports the whole tree.
            return
        if inherited is None:
            # A root finished on a pool worker with no explicit handoff:
            # SYS_MONITOR's statement->spans path cannot reach this tree.
            # The thread-name probe is cached per thread (names are fixed
            # at pool-worker creation) — this branch runs once per root.
            is_worker = getattr(self._local, "is_worker", None)
            if is_worker is None:
                is_worker = threading.current_thread().name.startswith(
                    _WORKER_THREAD_PREFIXES
                )
                self._local.is_worker = is_worker
            if is_worker:
                self.orphans += 1
                if self.metrics is not None:
                    self.metrics.inc("trace.orphan_spans")
        if not span.sampled:
            erred = bool(span._attrs) and "error" in span._attrs
            slow = (
                self.slow_sample_s is not None
                and span.duration_s >= self.slow_sample_s
            )
            if not (erred or slow):
                self.sampled_out += 1
                return
            span.annotate(sampled="late")
        with self._history_mutex:
            self.last_trace = span
            self.recent.append(span)
            if len(self.recent) > self.history:
                del self.recent[: len(self.recent) - self.history]
        if self.exporter is not None:
            # An exporter IO error must not fail the traced statement —
            # and a misbehaving exporter that runs statements itself must
            # not recurse into another export (non-re-entrant guard).
            if getattr(self._local, "exporting", False):
                return
            self._local.exporting = True
            try:
                self.exporter.export(span)
            except Exception:
                self.export_failures += 1
            finally:
                self._local.exporting = False


class _Adopt:
    """Context manager installing/restoring a thread's inherited context."""

    __slots__ = ("_tracer", "_context", "_saved")

    def __init__(self, tracer: Tracer, context: TraceContext):
        self._tracer = tracer
        self._context = context

    def __enter__(self) -> TraceContext:
        local = self._tracer._local
        self._saved = getattr(local, "inherited", None)
        local.inherited = self._context
        return self._context

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._local.inherited = self._saved
        return False
