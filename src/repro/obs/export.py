"""JSONL trace exporter: one completed root span tree per line.

Attach to a tracer (``db.tracer.exporter = JsonlTraceExporter(path)``)
and every finished top-level statement span is appended to *path* as a
single JSON object — the standard "newline-delimited traces" shape that
log shippers and ``jq`` both understand.  Export errors never propagate
into the traced statement (the tracer counts them instead).
"""

from __future__ import annotations

import threading
from typing import IO, Optional, Union


class JsonlTraceExporter:
    """Append ``span.to_dict()`` as one JSON line per root span."""

    def __init__(self, path: Union[str, "IO[str]"]):
        self._lock = threading.Lock()
        self.exported = 0
        if hasattr(path, "write"):
            self.path: Optional[str] = None
            self._fh: Optional[IO[str]] = path  # caller-owned stream
            self._owns_fh = False
        else:
            self.path = str(path)
            self._fh = None
            self._owns_fh = True

    def export(self, span) -> None:
        line = span.to_json() + "\n"
        with self._lock:
            if self._fh is None:
                if not self._owns_fh:
                    return  # closed caller-owned stream
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line)
            self._fh.flush()
            self.exported += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and self._owns_fh:
                self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceExporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
