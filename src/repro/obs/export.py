"""JSONL trace exporter: one completed root span tree per line.

Attach to a tracer (``db.tracer.exporter = JsonlTraceExporter(path)``)
and every finished top-level statement span is appended to *path* as a
single JSON object — the standard "newline-delimited traces" shape that
log shippers and ``jq`` both understand.  Export errors never propagate
into the traced statement (the tracer counts them instead).

Writes are buffered: serialized lines accumulate under the lock and hit
the file handle only every ``batch_size`` spans (or on an explicit
:meth:`flush` / :meth:`close`), so the per-statement cost on the traced
hot path is one ``json.dumps`` and a list append, not a syscall.  Each
exported line carries the span's ``trace_id``, which is what stitches a
client-side record to the server-side record of the same statement.
"""

from __future__ import annotations

import threading
from typing import IO, List, Optional, Union


class JsonlTraceExporter:
    """Append ``span.to_dict()`` as one JSON line per root span."""

    def __init__(self, path: Union[str, "IO[str]"], batch_size: int = 16):
        self._lock = threading.Lock()
        self.exported = 0
        #: lines buffered per write; 1 restores write-through behaviour
        self.batch_size = max(1, batch_size)
        self._buffer: List[str] = []
        if hasattr(path, "write"):
            self.path: Optional[str] = None
            self._fh: Optional[IO[str]] = path  # caller-owned stream
            self._owns_fh = False
        else:
            self.path = str(path)
            self._fh = None
            self._owns_fh = True

    def export(self, span) -> None:
        line = span.to_json() + "\n"
        with self._lock:
            self._buffer.append(line)
            self.exported += 1
            if len(self._buffer) >= self.batch_size:
                self._drain()

    def flush(self) -> None:
        """Write any buffered lines and flush the underlying handle."""
        with self._lock:
            self._drain()

    def _drain(self) -> None:
        # caller holds self._lock
        if self._fh is None:
            if not self._owns_fh:
                self._buffer.clear()
                return  # closed caller-owned stream: drop, never raise late
            if self.path is None or not self._buffer:
                return
            self._fh = open(self.path, "a", encoding="utf-8")
        if self._buffer:
            self._fh.write("".join(self._buffer))
            self._buffer.clear()
        self._fh.flush()

    def close(self) -> None:
        with self._lock:
            try:
                self._drain()
            finally:
                if self._fh is not None and self._owns_fh:
                    self._fh.close()
                self._fh = None

    def __enter__(self) -> "JsonlTraceExporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
