"""Slow-query log: statements over a wall-time threshold, spans attached."""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional


@dataclass
class SlowQuery:
    """One logged statement."""

    sql: str
    duration_s: float
    #: span tree of the statement (Span.to_dict() form), when tracing was on
    trace: Optional[Dict[str, Any]] = None
    attrs: Dict[str, Any] = field(default_factory=dict)


class SlowQueryLog:
    """Bounded log of statements slower than *threshold_s*.

    ``threshold_s=None`` disables logging entirely (the default);
    ``threshold_s=0.0`` logs every statement, which the tests use.
    """

    def __init__(self, threshold_s: Optional[float] = None, capacity: int = 128):
        self.threshold_s = threshold_s
        self.capacity = capacity
        self._entries: Deque[SlowQuery] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.total_logged = 0
        #: entries pushed out of the ring by newer ones (bounded-log accounting)
        self.evicted = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_s is not None

    def maybe_record(
        self,
        sql: str,
        duration_s: float,
        trace: Optional[Dict[str, Any]] = None,
        **attrs: Any,
    ) -> bool:
        if self.threshold_s is None or duration_s < self.threshold_s:
            return False
        entry = SlowQuery(sql, duration_s, trace, dict(attrs))
        with self._lock:
            if len(self._entries) == self.capacity:
                self.evicted += 1
            self._entries.append(entry)
            self.total_logged += 1
        return True

    def entries(self) -> List[SlowQuery]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
