"""Slow-query log: statements over a wall-time threshold, spans attached."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional


@dataclass
class SlowQuery:
    """One logged statement."""

    sql: str
    duration_s: float
    #: span tree of the statement (Span.to_dict() form), when tracing was on
    trace: Optional[Dict[str, Any]] = None
    attrs: Dict[str, Any] = field(default_factory=dict)


class SlowQueryLog:
    """Bounded log of statements slower than *threshold_s*.

    ``threshold_s=None`` disables logging entirely (the default);
    ``threshold_s=0.0`` logs every statement, which the tests use.
    """

    def __init__(self, threshold_s: Optional[float] = None, capacity: int = 128):
        self.threshold_s = threshold_s
        self._entries: Deque[SlowQuery] = deque(maxlen=capacity)
        self.total_logged = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_s is not None

    def maybe_record(
        self,
        sql: str,
        duration_s: float,
        trace: Optional[Dict[str, Any]] = None,
        **attrs: Any,
    ) -> bool:
        if self.threshold_s is None or duration_s < self.threshold_s:
            return False
        self._entries.append(SlowQuery(sql, duration_s, trace, dict(attrs)))
        self.total_logged += 1
        return True

    def entries(self) -> List[SlowQuery]:
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
