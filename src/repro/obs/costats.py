"""Per-Composite-Object instantiation statistics.

The XNF compiler reports every instantiation here: node and edge
cardinalities of the produced instance, fixpoint rounds, generated
queries issued, and wall time.  ``SYS_CO_STATS`` flattens the registry
into one row per CO component, which is what makes the paper's closure
property self-applicable — a CO over the stats of COs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple


class COStat:
    """Latest instantiation profile of one CO schema."""

    __slots__ = (
        "name", "instantiations", "rounds", "queries", "duration_s",
        "nodes", "edges", "shards",
    )

    def __init__(self, name: str):
        self.name = name
        self.instantiations = 0
        self.rounds = 0
        self.queries = 0
        self.duration_s = 0.0
        self.nodes: Dict[str, int] = {}
        self.edges: Dict[str, int] = {}
        #: component name -> shard id -> rows that shard contributed (only
        #: filled when the extraction ran sharded scatter/gather; skew shows
        #: up as imbalance between the per-shard cardinalities)
        self.shards: Dict[str, Dict[int, int]] = {}


class COStatsRegistry:
    """Bounded, thread-safe map of CO name → latest instantiation stats."""

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._stats: "OrderedDict[str, COStat]" = OrderedDict()
        self._lock = threading.Lock()
        self.evicted = 0

    def record(
        self,
        name: str,
        node_counts: Dict[str, int],
        edge_counts: Dict[str, int],
        rounds: int,
        queries: int,
        duration_s: float,
        shards: Optional[Dict[str, Dict[int, int]]] = None,
    ) -> None:
        key = name.upper()
        with self._lock:
            stat = self._stats.get(key)
            if stat is None:
                if len(self._stats) >= self.capacity:
                    self._stats.popitem(last=False)
                    self.evicted += 1
                stat = self._stats[key] = COStat(key)
            else:
                self._stats.move_to_end(key)
            stat.instantiations += 1
            stat.rounds = rounds
            stat.queries = queries
            stat.duration_s = duration_s
            stat.nodes = dict(node_counts)
            stat.edges = dict(edge_counts)
            stat.shards = (
                {component: dict(per_shard) for component, per_shard in shards.items()}
                if shards
                else {}
            )

    def entries(self) -> List[COStat]:
        with self._lock:
            return list(self._stats.values())

    def rows_snapshot(self) -> List[Tuple]:
        """``SYS_CO_STATS`` rows: one per CO component (node or edge)."""
        out: List[Tuple] = []
        for stat in self.entries():
            duration_ms = round(stat.duration_s * 1e3, 4)
            for node, cardinality in stat.nodes.items():
                out.append((
                    stat.name, node, "node", cardinality,
                    stat.rounds, stat.queries, duration_ms, stat.instantiations,
                ))
            for edge, cardinality in stat.edges.items():
                out.append((
                    stat.name, edge, "edge", cardinality,
                    stat.rounds, stat.queries, duration_ms, stat.instantiations,
                ))
            for component, per_shard in stat.shards.items():
                for shard_id, cardinality in sorted(per_shard.items()):
                    out.append((
                        stat.name, f"{component}#s{shard_id}", "shard", cardinality,
                        stat.rounds, stat.queries, duration_ms, stat.instantiations,
                    ))
        return out

    def clear(self) -> None:
        with self._lock:
            self._stats.clear()
            self.evicted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)
