"""Wire-protocol client: blocking API plus an interactive REPL.

:class:`WireClient` mirrors the in-process surface — ``execute`` /
``prepare`` / ``take`` / ``run_retryable`` — over a socket, raising the
same typed exceptions (see :mod:`repro.server.protocol`).  ``python -m
repro.client`` starts the REPL.
"""

from repro.client.client import (
    RemoteCO,
    RemoteCOCursor,
    RemotePrepared,
    WireClient,
    WireResult,
    connect,
)

__all__ = [
    "RemoteCO",
    "RemoteCOCursor",
    "RemotePrepared",
    "WireClient",
    "WireResult",
    "connect",
]
