"""Blocking wire-protocol client.

:class:`WireClient` is the client half of :mod:`repro.server`: one TCP
connection, one wire session (its own transaction state and statement
timeout on the server).  Every request raises the *same* typed exception
an in-process caller would see — the server serializes its error taxonomy
and :func:`~repro.server.protocol.rehydrate_error` rebuilds the class, its
``retryable`` flag and its ``backoff_hint_s`` — so
:meth:`WireClient.run_retryable` behaves exactly like
:meth:`Database.run_retryable` across the network: roll back, back off
(seeded from the server's hint), re-run on a fresh snapshot.

With ``tracing=True`` the client opens a ``client.<op>`` span around every
round trip and injects its :class:`~repro.obs.trace.TraceContext` into the
frame, so the server's spans for that statement share the client's trace
id — one trace follows the statement from the client through the server
into every shard worker.  :meth:`WireClient.profile` fetches the server's
structured time breakdown of the session's last statement.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CursorError, ReproError
from repro.obs.trace import TraceContext, Tracer
from repro.server import protocol


class WireResult:
    """Result set of one remote statement.

    Small results arrive inline; long ones stream through a server-side
    fetch cursor that :meth:`rows` / iteration drain transparently.
    """

    def __init__(self, client: "WireClient", payload: Dict[str, Any]):
        self._client = client
        self.columns: List[str] = payload.get("columns") or []
        self.rowcount: int = payload.get("rowcount", 0)
        self._rows: List[Tuple[Any, ...]] = [
            tuple(row) for row in payload.get("rows") or []
        ]
        self._cursor: Optional[int] = payload.get("cursor")
        self._more: bool = bool(payload.get("more"))

    def rows(self) -> List[Tuple[Any, ...]]:
        """All rows (drains the server-side cursor if one is open)."""
        while self._more:
            self._fetch_more()
        return self._rows

    def _fetch_more(self) -> None:
        payload = self._client.request(op="FETCH", cursor=self._cursor)
        self._rows.extend(tuple(row) for row in payload.get("rows") or [])
        self._more = bool(payload.get("more"))

    def scalar(self) -> Any:
        rows = self.rows()
        return rows[0][0] if rows else None

    def first(self) -> Optional[Tuple[Any, ...]]:
        rows = self.rows()
        return rows[0] if rows else None

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows())

    def __len__(self) -> int:
        return len(self.rows())


class RemotePrepared:
    """Handle on a server-side prepared statement."""

    def __init__(self, client: "WireClient", stmt_id: int, n_params: int):
        self._client = client
        self.stmt_id = stmt_id
        self.n_params = n_params

    def execute(self, params: Sequence[Any] = ()) -> WireResult:
        payload = self._client.request(
            op="EXECUTE", stmt=self.stmt_id, params=list(params)
        )
        return WireResult(self._client, payload)


class RemoteCOCursor:
    """Client handle on a server-side independent CO cursor."""

    def __init__(self, client: "WireClient", cursor_id: int, node: str):
        self._client = client
        self.cursor_id = cursor_id
        self.node = node
        self._buffer: List[Dict[str, Any]] = []
        self._exhausted = False

    def fetch(self) -> Optional[Dict[str, Any]]:
        """Next tuple as a dict, or None at end of set."""
        if not self._buffer and not self._exhausted:
            payload = self._client.request(
                op="CO_FETCH", cursor=self.cursor_id, n=100
            )
            self._buffer.extend(payload.get("rows") or [])
            self._exhausted = not payload.get("more", False)
        if self._buffer:
            return self._buffer.pop(0)
        return None

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        while True:
            row = self.fetch()
            if row is None:
                return
            yield row


class RemoteCO:
    """Client handle on a composite object held open in the wire session."""

    def __init__(self, client: "WireClient", payload: Dict[str, Any]):
        self._client = client
        self.co_id: int = payload["co"]
        #: node name -> tuple count (as extracted)
        self.nodes: Dict[str, int] = payload.get("nodes") or {}
        #: edge name -> connection count
        self.edges: Dict[str, int] = payload.get("edges") or {}
        self._closed = False

    def cursor(self, node: str) -> RemoteCOCursor:
        payload = self._client.request(op="CO_CURSOR", co=self.co_id, node=node)
        return RemoteCOCursor(self._client, payload["cursor"], node)

    def path(
        self, start: str, path: str, **criteria: Any
    ) -> List[Dict[str, Any]]:
        """Evaluate a path expression server-side.

        ``criteria`` anchor the start: ``co.path("Xdept", "employment",
        dname="d1")`` navigates from the department named d1.
        """
        payload = self._client.request(
            op="CO_PATH", co=self.co_id, start=start, path=path,
            criteria=criteria or None,
        )
        return payload.get("rows") or []

    def close(self) -> None:
        if not self._closed:
            self._client.request(op="CO_CLOSE", co=self.co_id)
            self._closed = True

    def __enter__(self) -> "RemoteCO":
        return self

    def __exit__(self, *exc_info: object) -> None:
        try:
            self.close()
        except (ReproError, OSError):
            pass


class WireClient:
    """One blocking connection to an :class:`~repro.server.XNFServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7474,
        *,
        auth_token: Optional[str] = None,
        connect_timeout_s: float = 10.0,
        io_timeout_s: Optional[float] = 120.0,
        tracing: bool = False,
        trace_sample_rate: float = 1.0,
    ):
        #: client-side span tracer; off by default so the plain client
        #: pays nothing.  Attach a JsonlTraceExporter to stitch the
        #: client's records with the server's on trace_id.
        self.tracer = Tracer(enabled=tracing, sample_rate=trace_sample_rate)
        self.sock = socket.create_connection((host, port), connect_timeout_s)
        self.sock.settimeout(io_timeout_s)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello = protocol.read_frame(self.sock)
        if not hello.get("ok"):
            # the server refused admission before the session existed
            self.sock.close()
            raise protocol.rehydrate_error(hello.get("error") or {})
        self.server_info = hello
        self.session_id: int = hello.get("session", -1)
        self.mvcc: bool = bool(hello.get("mvcc"))
        self._closed = False
        if auth_token is not None:
            self.request(op="AUTH", token=auth_token)

    # -- framing --------------------------------------------------------------

    def request(self, **payload: Any) -> Dict[str, Any]:
        """Send one frame, await its response; raise on error frames.

        When tracing is on, the round trip runs inside a ``client.<op>``
        span whose context is injected into the frame's ``trace`` field,
        so server-side spans parent under it (by id, across the wire).
        """
        if self._closed:
            raise CursorError("client connection is closed")
        if not self.tracer.enabled:
            return self._roundtrip(payload)
        op = str(payload.get("op") or "frame").lower()
        with self.tracer.span(f"client.{op}", session=self.session_id) as span:
            if span.span_id and span.trace_id:
                payload["trace"] = TraceContext(
                    span.trace_id, span.span_id, span.sampled
                ).to_wire()
            return self._roundtrip(payload)

    def _roundtrip(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        protocol.write_frame(self.sock, payload)
        response = protocol.read_frame(self.sock)
        if not response.get("ok"):
            raise protocol.rehydrate_error(response.get("error") or {})
        return response

    # -- SQL ------------------------------------------------------------------

    def execute(self, sql: str, max_rows: Optional[int] = None) -> WireResult:
        payload: Dict[str, Any] = {"op": "QUERY", "sql": sql}
        if max_rows is not None:
            payload["max_rows"] = max_rows
        return WireResult(self, self.request(**payload))

    def prepare(self, sql: str) -> RemotePrepared:
        payload = self.request(op="PREPARE", sql=sql)
        return RemotePrepared(self, payload["stmt"], payload.get("n_params", 0))

    def begin(self) -> None:
        self.execute("BEGIN")

    def commit(self) -> None:
        self.execute("COMMIT")

    def rollback(self) -> None:
        self.execute("ROLLBACK")

    # -- XNF ------------------------------------------------------------------

    def take(self, text: str) -> RemoteCO:
        """Run an XNF TAKE query; the CO stays open in the wire session."""
        payload = self.request(op="XNF", text=text)
        if "co" not in payload:
            raise CursorError("XNF statement did not produce a composite object")
        return RemoteCO(self, payload)

    def xnf(self, text: str) -> Dict[str, Any]:
        """Run any XNF statement; returns the raw response payload."""
        return self.request(op="XNF", text=text)

    def explain_analyze(self, text: str) -> str:
        return self.request(op="XNF_EXPLAIN", text=text)["text"]

    # -- session options ------------------------------------------------------

    def set_statement_timeout(self, seconds: Optional[float]) -> None:
        self.request(op="SET", option="statement_timeout_s", value=seconds)

    def ping(self) -> float:
        return float(self.request(op="PING")["time_s"])

    # -- observability ---------------------------------------------------------

    def profile(self) -> Optional[Dict[str, Any]]:
        """Structured time breakdown of this session's last statement.

        Returns the server-built profile (queue wait, pipeline stages,
        per-shard scatter durations + skew, MVCC retry wait, …) or None
        when the server has not run a statement for this session yet or
        has tracing disabled.  Render it with
        :func:`repro.obs.render_profile`.
        """
        return self.request(op="PROFILE").get("profile")

    # -- retry loop (mirrors Database.run_retryable) ---------------------------

    def run_retryable(
        self,
        fn,
        *,
        retries: int = 5,
        backoff_s: Optional[float] = None,
        max_backoff_s: float = 0.25,
        jitter: float = 0.5,
        rng: Optional[random.Random] = None,
    ) -> Any:
        """Run *fn* retrying retryable wire errors with backoff + jitter.

        Same contract as :meth:`Database.run_retryable`, driven by the
        retry metadata the server serialized: when *backoff_s* is None or
        non-positive the first delay is the error's own ``backoff_hint_s``
        (an :class:`AdmissionError`'s 20 ms vs. a conflict's 2 ms), then
        doubles.  A caller-supplied ``backoff_s=0`` used to stick at zero
        forever (``0 * 2 == 0``) and busy-spin through every retry; it now
        re-arms from the hint like ``None``.  The post-jitter sleep is
        clamped so *max_backoff_s* really is the maximum (jitter could
        previously overshoot it by up to 50%).  Any open remote transaction
        is rolled back before each retry so every attempt starts on a fresh
        snapshot.
        """
        rng = rng if rng is not None else random.Random()
        delay = backoff_s
        for attempt in range(retries + 1):
            try:
                return fn()
            except ReproError as err:
                if not getattr(err, "retryable", False):
                    raise
                try:
                    self.rollback()
                except (ReproError, OSError):
                    pass
                if attempt >= retries:
                    raise
                if delay is None or delay <= 0:
                    delay = getattr(err, "backoff_hint_s", None) or 0.002
                sleep_s = min(delay, max_backoff_s) * (1.0 + jitter * rng.random())
                sleep_s = min(sleep_s, max_backoff_s)
                if sleep_s > 0:
                    time.sleep(sleep_s)
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.request(op="CLOSE")
        except (ReproError, OSError):
            pass
        self._closed = True
        self.sock.close()

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def connect(host: str = "127.0.0.1", port: int = 7474, **kwargs: Any) -> WireClient:
    """Convenience constructor mirroring ``Database.connect``."""
    return WireClient(host, port, **kwargs)
