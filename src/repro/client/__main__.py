"""``python -m repro.client`` — the wire-protocol REPL."""

from repro.client.repl import main

if __name__ == "__main__":
    raise SystemExit(main())
