"""Interactive REPL over the wire protocol (``python -m repro.client``).

Reads statements from stdin (scriptable: pipe a file in), sends them to a
:class:`~repro.server.XNFServer` and pretty-prints results.  SQL and
``EXPLAIN`` / ``EXPLAIN ANALYZE`` pass straight through the server's SQL
entry point; statements starting with ``OUT OF`` run as XNF TAKE queries
(the extracted CO is summarized and kept open as ``\\co N``); ``XNF
EXPLAIN ANALYZE <take-query>`` renders the server-side span tree.

Dot commands::

    \\co N node      open a cursor on node of CO N and print its tuples
    \\path N node path [col=value]   evaluate a path expression on CO N
    \\close N        release CO N
    \\timeout S      set this session's statement timeout (- to clear)
    \\retry <sql>    run one statement under the client retry loop
    \\profile        time breakdown of this session's last statement
    \\q              quit
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.client.client import RemoteCO, WireClient
from repro.obs.profile import render_profile


def _render_rows(columns: List[str], rows: List[tuple], limit: int = 50) -> str:
    header = list(columns)
    body = [
        ["NULL" if v is None else str(v) for v in row] for row in rows[:limit]
    ]
    widths = [len(h) for h in header]
    for row in body:
        for idx, cell in enumerate(row):
            if idx < len(widths):
                widths[idx] = max(widths[idx], len(cell))
            else:
                widths.append(len(cell))

    def fmt(cells: List[str]) -> str:
        return " | ".join(
            cell.ljust(widths[idx]) for idx, cell in enumerate(cells)
        )

    lines = []
    if header:
        lines.append(fmt(header))
        lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in body)
    if len(rows) > limit:
        lines.append(f"... ({len(rows) - limit} more rows)")
    return "\n".join(lines)


class Repl:
    def __init__(self, client: WireClient, out=None):
        self.client = client
        self.out = out if out is not None else sys.stdout
        self.cos: Dict[int, RemoteCO] = {}
        self._next_co = 1

    def emit(self, text: str) -> None:
        print(text, file=self.out, flush=True)

    # -- statement dispatch ---------------------------------------------------

    def handle(self, line: str) -> bool:
        """Process one input line; returns False to quit."""
        stmt = line.strip().rstrip(";")
        if not stmt:
            return True
        try:
            if stmt.startswith("\\"):
                return self._dot_command(stmt)
            upper = stmt.upper()
            if upper.startswith("XNF EXPLAIN ANALYZE"):
                self.emit(self.client.explain_analyze(stmt[len("XNF EXPLAIN ANALYZE"):]))
            elif upper.startswith("OUT OF"):
                self._take(stmt)
            else:
                # plain SQL — including the engine's own EXPLAIN [ANALYZE]
                result = self.client.execute(stmt)
                if result.columns:
                    self.emit(_render_rows(result.columns, result.rows()))
                    self.emit(f"({len(result)} rows)")
                else:
                    self.emit(f"ok ({result.rowcount} rows affected)")
        except ReproError as err:
            retry = " [retryable]" if getattr(err, "retryable", False) else ""
            self.emit(f"error: {type(err).__name__}: {err}{retry}")
        return True

    def _take(self, stmt: str) -> None:
        co = self.client.take(stmt)
        handle = self._next_co
        self._next_co += 1
        self.cos[handle] = co
        nodes = ", ".join(f"{n}:{c}" for n, c in sorted(co.nodes.items()))
        edges = ", ".join(f"{e}:{c}" for e, c in sorted(co.edges.items()))
        self.emit(f"CO {handle} open — nodes [{nodes}] edges [{edges}]")

    # -- dot commands ---------------------------------------------------------

    def _co(self, token: str) -> RemoteCO:
        co = self.cos.get(int(token))
        if co is None:
            raise ReproError(f"no open CO {token} (see \\co output)")
        return co

    def _dot_command(self, stmt: str) -> bool:
        parts = stmt.split()
        cmd = parts[0]
        if cmd in ("\\q", "\\quit"):
            return False
        if cmd == "\\co" and len(parts) >= 3:
            co = self._co(parts[1])
            rows = list(co.cursor(parts[2]))
            if rows:
                columns = list(rows[0].keys())
                self.emit(_render_rows(
                    columns, [tuple(r.get(c) for c in columns) for r in rows]
                ))
            self.emit(f"({len(rows)} tuples)")
        elif cmd == "\\path" and len(parts) >= 4:
            co = self._co(parts[1])
            criteria: Dict[str, Any] = {}
            for extra in parts[4:]:
                key, _, value = extra.partition("=")
                criteria[key] = value
            rows = co.path(parts[2], parts[3], **criteria)
            for row in rows:
                self.emit(f"{row['node']}: {row['values']}")
            self.emit(f"({len(rows)} tuples)")
        elif cmd == "\\close" and len(parts) == 2:
            self._co(parts[1]).close()
            del self.cos[int(parts[1])]
            self.emit("closed")
        elif cmd == "\\timeout" and len(parts) == 2:
            value: Optional[float] = (
                None if parts[1] == "-" else float(parts[1])
            )
            self.client.set_statement_timeout(value)
            self.emit(f"statement_timeout_s = {value}")
        elif cmd == "\\retry" and len(parts) >= 2:
            sql = stmt[len("\\retry"):].strip()
            result = self.client.run_retryable(lambda: self.client.execute(sql))
            self.emit(f"ok ({result.rowcount} rows affected)")
        elif cmd == "\\profile" and len(parts) == 1:
            profile = self.client.profile()
            if profile is None:
                self.emit("no profile yet (run a statement first)")
            else:
                self.emit(render_profile(profile))
        else:
            self.emit(f"unknown command {stmt!r} (\\q quits)")
        return True

    def run(self, stream) -> None:
        interactive = stream is sys.stdin and stream.isatty()
        if interactive:
            info = self.client.server_info
            self.emit(
                f"connected to {info.get('server')} protocol "
                f"{info.get('protocol')} (session {self.client.session_id}, "
                f"{'MVCC' if self.client.mvcc else '2PL'}) — \\q quits"
            )
        while True:
            if interactive:
                print("xnf> ", end="", file=self.out, flush=True)
            line = stream.readline()
            if not line:
                break
            if not self.handle(line):
                break


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.client",
        description="Interactive REPL for a repro XNF wire server.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7474)
    parser.add_argument("--auth-token", default=None)
    args = parser.parse_args(argv)
    try:
        client = WireClient(args.host, args.port, auth_token=args.auth_token)
    except (ReproError, OSError) as err:
        print(f"cannot connect to {args.host}:{args.port}: {err}",
              file=sys.stderr)
        return 1
    with client:
        Repl(client).run(sys.stdin)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
