"""SYS_* virtual system tables: live telemetry as ordinary relations.

``install_sys_tables(db)`` registers read-only :class:`VirtualTable`\\ s
whose providers snapshot the engine's registries at *scan* time — so the
same cached plan re-reads live data on every execution (the plan cache
marks such plans volatile purely for accounting; see ``CacheEntry``).
Because they resolve through ``Catalog.get_table`` like any base table,
SYS tables can be JOINed, aggregated, filtered, ANALYZEd and used inside
XNF composite objects (the built-in ``SYS_MONITOR`` CO does exactly that).

The catalog of tables:

======================  =====================================================
``SYS_STAT_STATEMENTS``  per-fingerprint calls / latency quantiles / rows /
                         plan-cache hits
``SYS_STAT_TABLES``      base-table cardinalities, pages, index counts
``SYS_STAT_INDEXES``     index kind / uniqueness / key columns
``SYS_STAT_BUFFER``      buffer-pool counters (one wide row)
``SYS_STAT_WAL``         WAL counters incl. torn-flush repairs (one row)
``SYS_STAT_LOCKS``       lock-manager counters incl. per-mode held (one row)
``SYS_LOCK_HOLDERS``     point-in-time (table, txn, mode) lock grants
``SYS_SNAPSHOTS``        active MVCC snapshots + version-store / conflict /
                         vacuum counters (one counter-only row when idle)
``SYS_TRACE_SPANS``      flattened recent span trees with parent_span_id
``SYS_CO_STATS``         per-CO node/edge cardinalities + fixpoint profile
``SYS_STAT_ESTIMATES``   optimizer estimate vs. actual rows with q-error
``SYS_SESSIONS``         live wire-server sessions (state, statements,
                         open COs/cursors, age/idle)
``SYS_STAT_NETWORK``     wire-server frame/byte/error counters (one row)
``SYS_SHARDS``           per-shard rows/pages + partition-key range of every
                         sharded table (skew is the row-count imbalance)
======================  =====================================================
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Sequence, Tuple

from repro.relational.catalog import Column, ShardedTable, VirtualTable
from repro.relational.types import BOOLEAN, FLOAT, INTEGER, VARCHAR

#: every installed system-table name (also the drop-protection set)
SYS_TABLE_NAMES = (
    "SYS_STAT_STATEMENTS",
    "SYS_STAT_TABLES",
    "SYS_STAT_INDEXES",
    "SYS_STAT_BUFFER",
    "SYS_STAT_WAL",
    "SYS_STAT_LOCKS",
    "SYS_LOCK_HOLDERS",
    "SYS_SNAPSHOTS",
    "SYS_TRACE_SPANS",
    "SYS_CO_STATS",
    "SYS_STAT_ESTIMATES",
    "SYS_SESSIONS",
    "SYS_STAT_NETWORK",
    "SYS_SHARDS",
)


def _columns(*specs: Tuple[str, Any]) -> List[Column]:
    return [Column(name, sql_type) for name, sql_type in specs]


def _statements_provider(db) -> Callable[[], Iterable[Tuple]]:
    return db.statement_stats.rows_snapshot


def _tables_provider(db) -> Callable[[], Iterable[Tuple]]:
    def provider() -> List[Tuple]:
        catalog = db.catalog
        return [
            (
                table.name,
                table.heap.row_count,
                table.heap.num_pages(),
                len(table.indexes),
                table.stats.analyzed,
                catalog.object_version(table.name),
            )
            for table in catalog.tables.values()
            # shard views are an implementation detail of their parent;
            # SYS_SHARDS carries the per-shard numbers
            if not table.is_shard_view
        ]
    return provider


def _shards_provider(db) -> Callable[[], Iterable[Tuple]]:
    def provider() -> List[Tuple]:
        out: List[Tuple] = []
        for table in db.catalog.tables.values():
            if not isinstance(table, ShardedTable):
                continue
            spec = table.partition
            for shard_id, shard in enumerate(table.heap.shards):
                bounds = table.heap.zone_maps[shard_id].bounds_for(
                    spec.column_pos
                )
                out.append((
                    table.name,
                    shard_id,
                    spec.kind,
                    spec.column,
                    shard.row_count,
                    shard.num_pages(),
                    None if bounds is None else str(bounds[0]),
                    None if bounds is None else str(bounds[1]),
                ))
        return out
    return provider


def _indexes_provider(db) -> Callable[[], Iterable[Tuple]]:
    def provider() -> List[Tuple]:
        out: List[Tuple] = []
        for table in db.catalog.tables.values():
            if table.is_shard_view:
                continue
            for index in table.indexes.values():
                kind = type(index).__name__.replace("Index", "").lower()
                out.append((
                    table.name,
                    index.name,
                    kind,
                    bool(index.unique),
                    ",".join(index.column_names),
                ))
        return out
    return provider


def _wide_row_provider(metrics_fn, keys: Sequence[str]) -> Callable[[], List[Tuple]]:
    def provider() -> List[Tuple]:
        snapshot = metrics_fn()
        return [tuple(snapshot.get(key) for key in keys)]
    return provider


_BUFFER_KEYS = (
    "capacity", "hits", "misses", "hit_rate", "evictions", "pins",
    "resident_pages", "pinned_pages",
)
_WAL_KEYS = (
    "flushes", "dropped_flushes", "torn_flushes", "torn_repairs",
    "records_flushed", "bytes_flushed", "stable_lsn", "stable_records",
    "tail_records",
)
_LOCK_KEYS = (
    "acquisitions", "conflicts", "held", "s_held", "x_held", "tables_locked",
)

#: MVCC counter columns shared by every SYS_SNAPSHOTS row
_SNAPSHOT_COUNTER_KEYS = (
    "oldest_read_ts", "commit_clock", "versioned_rows", "version_images",
    "max_chain_len", "vacuum_runs", "versions_pruned", "entries_dropped",
    "serialization_conflicts",
)


def _lock_holders_provider(db) -> Callable[[], Iterable[Tuple]]:
    def provider() -> List[Tuple]:
        return db.txn_manager.locks.holders_snapshot()
    return provider


def _snapshots_provider(db) -> Callable[[], Iterable[Tuple]]:
    """One row per active snapshot; a single NULL-txn row when idle (or
    when MVCC is off) so the shared counters are always queryable."""
    def provider() -> List[Tuple]:
        mv = db.mvcc
        manager = db.txn_manager
        if mv is None:
            counters = tuple(0 for _ in _SNAPSHOT_COUNTER_KEYS)
            return [
                (None, None)
                + counters
                + (manager.admission_rejects, _retry_count(db))
            ]
        stats = mv.metrics()
        counters = tuple(stats.get(key) for key in _SNAPSHOT_COUNTER_KEYS)
        tail = (manager.admission_rejects, _retry_count(db))
        active = sorted(
            mv.snapshots.active_snapshots(), key=lambda s: s.snap_id
        )
        if not active:
            return [(None, None) + counters + tail]
        return [
            (snap.owner or None, snap.read_ts) + counters + tail
            for snap in active
        ]
    return provider


def _retry_count(db) -> int:
    return db.metrics.counter("txn.retries").value


def _spans_provider(db) -> Callable[[], Iterable[Tuple]]:
    def provider() -> List[Tuple]:
        out: List[Tuple] = []

        def emit(span, trace_id: int, parent_id, depth: int) -> None:
            attrs = span._attrs or {}
            out.append((
                trace_id,
                span.span_id,
                parent_id,
                span.name,
                depth,
                round(span.duration_s * 1e3, 4),
                attrs.get("rows"),
                attrs.get("fingerprint"),
                str(attrs["plan_cache"]) if "plan_cache" in attrs else None,
                str(attrs["error"]) if "error" in attrs else None,
                attrs.get("executor"),
                attrs.get("batches"),
                span.thread_id,
                attrs.get("shard"),
            ))
            for child in span.children:
                emit(child, trace_id, span.span_id, depth + 1)

        for root in list(db.tracer.recent):
            # A root adopted from a remote TraceContext keeps the remote
            # trace id and parent span id, so client- and server-side rows
            # join on trace_id; purely local roots fall back to their own
            # span id (pre-distributed-tracing behaviour).
            emit(root, root.trace_id or root.span_id, root.parent_id, 0)
        return out
    return provider


def _co_stats_provider(db) -> Callable[[], Iterable[Tuple]]:
    return db.co_stats.rows_snapshot


def _estimates_provider(db) -> Callable[[], Iterable[Tuple]]:
    return db.feedback.rows_snapshot


def _wire_sessions_provider(db) -> Callable[[], Iterable[Tuple]]:
    return db.wire_sessions.rows_snapshot


_NETWORK_KEYS = (
    "connections_opened", "connections_active", "connections_refused",
    "frames_in", "frames_out", "bytes_in", "bytes_out",
    "errors_sent", "retryable_errors_sent", "protocol_errors",
)


def build_sys_tables(db) -> List[VirtualTable]:
    """Construct (but do not register) every SYS virtual table for *db*."""
    return [
        VirtualTable(
            "SYS_STAT_STATEMENTS",
            _columns(
                ("fingerprint", VARCHAR()),
                ("calls", INTEGER),
                ("errors", INTEGER),
                ("rows_returned", INTEGER),
                ("plan_cache_hits", INTEGER),
                ("total_ms", FLOAT),
                ("mean_ms", FLOAT),
                ("p50_ms", FLOAT),
                ("p95_ms", FLOAT),
                ("p99_ms", FLOAT),
                ("max_ms", FLOAT),
                ("last_session_id", INTEGER),
                ("last_trace_id", INTEGER),
            ),
            _statements_provider(db),
        ),
        VirtualTable(
            "SYS_STAT_TABLES",
            _columns(
                ("table_name", VARCHAR()),
                ("row_count", INTEGER),
                ("page_count", INTEGER),
                ("index_count", INTEGER),
                ("analyzed", BOOLEAN),
                ("version", INTEGER),
            ),
            _tables_provider(db),
        ),
        VirtualTable(
            "SYS_STAT_INDEXES",
            _columns(
                ("table_name", VARCHAR()),
                ("index_name", VARCHAR()),
                ("kind", VARCHAR()),
                ("is_unique", BOOLEAN),
                ("key_columns", VARCHAR()),
            ),
            _indexes_provider(db),
        ),
        VirtualTable(
            "SYS_STAT_BUFFER",
            _columns(
                ("capacity", INTEGER),
                ("hits", INTEGER),
                ("misses", INTEGER),
                ("hit_rate", FLOAT),
                ("evictions", INTEGER),
                ("pins", INTEGER),
                ("resident_pages", INTEGER),
                ("pinned_pages", INTEGER),
            ),
            _wide_row_provider(db.buffer_pool.metrics, _BUFFER_KEYS),
        ),
        VirtualTable(
            "SYS_STAT_WAL",
            _columns(
                ("flushes", INTEGER),
                ("dropped_flushes", INTEGER),
                ("torn_flushes", INTEGER),
                ("torn_repairs", INTEGER),
                ("records_flushed", INTEGER),
                ("bytes_flushed", INTEGER),
                ("stable_lsn", INTEGER),
                ("stable_records", INTEGER),
                ("tail_records", INTEGER),
            ),
            _wide_row_provider(lambda: db.txn_manager.wal.metrics(), _WAL_KEYS),
        ),
        VirtualTable(
            "SYS_STAT_LOCKS",
            _columns(
                ("acquisitions", INTEGER),
                ("conflicts", INTEGER),
                ("held", INTEGER),
                ("s_held", INTEGER),
                ("x_held", INTEGER),
                ("tables_locked", INTEGER),
            ),
            _wide_row_provider(lambda: db.txn_manager.locks.metrics(), _LOCK_KEYS),
        ),
        VirtualTable(
            "SYS_LOCK_HOLDERS",
            _columns(
                ("table_name", VARCHAR()),
                ("txn_id", INTEGER),
                ("mode", VARCHAR()),
            ),
            _lock_holders_provider(db),
        ),
        VirtualTable(
            "SYS_SNAPSHOTS",
            _columns(
                ("txn_id", INTEGER),
                ("read_ts", INTEGER),
                ("oldest_read_ts", INTEGER),
                ("commit_clock", INTEGER),
                ("versioned_rows", INTEGER),
                ("version_images", INTEGER),
                ("max_chain_len", INTEGER),
                ("vacuum_runs", INTEGER),
                ("versions_pruned", INTEGER),
                ("entries_dropped", INTEGER),
                ("serialization_conflicts", INTEGER),
                ("admission_rejects", INTEGER),
                ("retries", INTEGER),
            ),
            _snapshots_provider(db),
        ),
        VirtualTable(
            "SYS_TRACE_SPANS",
            _columns(
                ("trace_id", INTEGER),
                ("span_id", INTEGER),
                ("parent_span_id", INTEGER),
                ("name", VARCHAR()),
                ("depth", INTEGER),
                ("duration_ms", FLOAT),
                ("row_count", INTEGER),
                ("fingerprint", VARCHAR()),
                ("plan_cache", VARCHAR()),
                ("error", VARCHAR()),
                ("executor", VARCHAR()),
                ("batches", INTEGER),
                ("thread", INTEGER),
                ("shard", INTEGER),
            ),
            _spans_provider(db),
        ),
        VirtualTable(
            "SYS_CO_STATS",
            _columns(
                ("co_name", VARCHAR()),
                ("component", VARCHAR()),
                ("kind", VARCHAR()),
                ("cardinality", INTEGER),
                ("rounds", INTEGER),
                ("queries", INTEGER),
                ("duration_ms", FLOAT),
                ("instantiations", INTEGER),
            ),
            _co_stats_provider(db),
        ),
        VirtualTable(
            "SYS_STAT_ESTIMATES",
            _columns(
                ("source", VARCHAR()),
                ("operator", VARCHAR()),
                ("predicate", VARCHAR()),
                ("est_rows", FLOAT),
                ("actual_rows", FLOAT),
                ("q_error", FLOAT),
                ("samples", INTEGER),
            ),
            _estimates_provider(db),
        ),
        VirtualTable(
            "SYS_SESSIONS",
            _columns(
                ("session_id", INTEGER),
                ("peer", VARCHAR()),
                ("state", VARCHAR()),
                ("statements", INTEGER),
                ("rows_sent", INTEGER),
                ("errors", INTEGER),
                ("retryable_errors", INTEGER),
                ("cos_open", INTEGER),
                ("cursors_open", INTEGER),
                ("in_txn", BOOLEAN),
                ("age_ms", FLOAT),
                ("idle_ms", FLOAT),
            ),
            _wire_sessions_provider(db),
        ),
        VirtualTable(
            "SYS_STAT_NETWORK",
            _columns(
                ("connections_opened", INTEGER),
                ("connections_active", INTEGER),
                ("connections_refused", INTEGER),
                ("frames_in", INTEGER),
                ("frames_out", INTEGER),
                ("bytes_in", INTEGER),
                ("bytes_out", INTEGER),
                ("errors_sent", INTEGER),
                ("retryable_errors_sent", INTEGER),
                ("protocol_errors", INTEGER),
            ),
            _wide_row_provider(db.network.snapshot, _NETWORK_KEYS),
        ),
        VirtualTable(
            "SYS_SHARDS",
            _columns(
                ("table_name", VARCHAR()),
                ("shard", INTEGER),
                ("kind", VARCHAR()),
                ("partition_column", VARCHAR()),
                ("row_count", INTEGER),
                ("page_count", INTEGER),
                ("min_key", VARCHAR()),
                ("max_key", VARCHAR()),
            ),
            _shards_provider(db),
        ),
    ]


def install_sys_tables(db) -> None:
    """Register the SYS tables on *db*'s catalog (idempotent)."""
    catalog = db.catalog
    for table in build_sys_tables(db):
        if not catalog.is_virtual(table.name):
            catalog.register_virtual(table)
