"""Database engine facade.

:class:`Database` wires the full pipeline of Fig. 8 of the paper (minus the
XNF stages, which :mod:`repro.xnf` adds on top):

    parse → QGM build → query rewrite → plan optimization → execution

and owns the shared substrate: disk, buffer pool, catalog, transaction
manager.  Per-stage wall-clock timings of the last statement are kept in
``last_timings`` for the pipeline benchmark (experiment F8).
"""

from __future__ import annotations

import contextlib
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    CatalogError,
    ExecutionError,
    IOFaultError,
    ReproError,
    ResourceExhaustedError,
    SQLError,
    SimulatedCrash,
    TransactionError,
)
from repro.obs.analyze import instrument_plan, render_analyzed
from repro.obs.costats import COStatsRegistry
from repro.obs.feedback import FeedbackRegistry
from repro.obs.metrics import MetricsRegistry
from repro.obs.network import NetworkStats, WireSessionRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.statements import StatementStatsRegistry
from repro.obs.trace import TraceContext, Tracer
from repro.relational.catalog import Catalog, Column, ShardedTable, Table
from repro.relational.storage.sharded import PartitionSpec
from repro.relational.executor.exprs import PlanContext
from repro.relational.executor.operators import SeqScan
from repro.relational.executor.vectorized import VecOp
from repro.relational.optimizer.planner import CompiledPlan, Planner
from repro.relational.plancache import (
    CacheEntry,
    NormalizedStatement,
    PlanCache,
    normalize_statement,
    referenced_objects,
)
from repro.relational.qgm.build import QGMBuilder
from repro.relational.qgm.model import Box
from repro.relational.rewrite import Rewriter
from repro.relational.sql import ast
from repro.relational.sql.parser import parse_statements
from repro.relational.storage import BufferPool, DiskManager
from repro.relational.systables import install_sys_tables
from repro.relational.txn.locks import LockMode
from repro.relational.txn.manager import (
    IsolationLevel,
    Transaction,
    TransactionManager,
)
from repro.relational.txn.mvcc import MVCCController, set_ambient_snapshot
from repro.relational.txn.wal import WriteAheadLog
from repro.relational.types import type_from_name


@dataclass
class Result:
    """Outcome of one statement."""

    columns: List[str] = field(default_factory=list)
    rows: List[Tuple[Any, ...]] = field(default_factory=list)
    rowcount: int = 0

    def scalar(self) -> Any:
        """First column of the first row (None when empty)."""
        if self.rows:
            return self.rows[0][0]
        return None

    def first(self) -> Optional[Tuple[Any, ...]]:
        return self.rows[0] if self.rows else None

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def pretty(self, max_rows: int = 20) -> str:
        """Simple aligned-text rendering for examples and demos."""
        header = self.columns or []
        body = [
            ["NULL" if v is None else str(v) for v in row]
            for row in self.rows[:max_rows]
        ]
        widths = [len(h) for h in header]
        for row in body:
            for idx, cell in enumerate(row):
                if idx < len(widths):
                    widths[idx] = max(widths[idx], len(cell))
                else:
                    widths.append(len(cell))
        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(
                cell.ljust(widths[idx]) for idx, cell in enumerate(cells)
            )
        lines = []
        if header:
            lines.append(fmt(header))
            lines.append("-+-".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in body)
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


class Session:
    """A connection with its own transaction state over a shared Database.

    Sessions may interleave cooperatively on one thread — the setting where
    the no-wait lock manager surfaces conflicts as immediate
    :class:`DeadlockError`\\ s — or run one-session-per-thread against a
    shared Database (the Database's transaction pointer is thread-local).
    Under MVCC mode reads never block on writers; see the README cookbook
    for the multi-threaded pattern.  Used to demonstrate the isolation
    degrees of section 1 across "applications" sharing the database
    (Fig. 7).
    """

    def __init__(self, db: "Database", isolation: Optional[IsolationLevel] = None):
        self.db = db
        self.isolation = isolation or db.isolation
        self._txn: Optional[Transaction] = None
        #: per-session statement timeout; None inherits the database default
        self.statement_timeout_s: Optional[float] = None
        #: wire-session id (stamped into statement stats / the slow log
        #: while this session is active); None for in-process sessions
        self.session_id: Optional[int] = None
        #: distributed-trace parent adopted for the duration of each
        #: activation: the wire server sets this per frame (FRESH_CONTEXT
        #: when the client sent no trace) before dispatching to the pool
        self.trace_context: Optional[TraceContext] = None

    def execute(self, sql: str) -> "Result":
        with self._activate():
            return self.db.execute(sql)

    def execute_ast(self, stmt: ast.Statement) -> "Result":
        with self._activate():
            return self.db.execute_ast(stmt)

    def begin(self, isolation: Optional[IsolationLevel] = None) -> None:
        with self._activate():
            self.db.begin(isolation or self.isolation)

    def commit(self) -> None:
        with self._activate():
            self.db.commit()

    def rollback(self) -> None:
        with self._activate():
            self.db.rollback()

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None and self._txn.active

    def run_retryable(self, fn, **kwargs) -> Any:
        """Session-scoped :meth:`Database.run_retryable`: retries run under
        this session's transaction state (one session per thread is the
        supported multi-threaded pattern)."""
        # The database-level retry loop cannot see this session's open
        # transaction (each Session call swaps it in and out of the
        # thread-local pointer), so roll it back here before a retry —
        # every attempt must start on a fresh snapshot.
        def attempt():
            try:
                return fn()
            except ReproError as err:
                if getattr(err, "retryable", False) and self.in_transaction:
                    try:
                        self.rollback()
                    except ReproError:
                        pass
                raise

        return self.db.run_retryable(attempt, **kwargs)

    def _activate(self):
        session = self

        class _Swap:
            def __enter__(self):
                db = session.db
                self.saved = (
                    db._txn, db.isolation, db._timeout_override, db._session_id
                )
                db._txn = session._txn
                db.isolation = session.isolation
                db._timeout_override = session.statement_timeout_s
                db._session_id = session.session_id
                # Adopt the handed-over trace context (if any) so the root
                # span this thread opens parents under the caller's trace.
                self.adopted = None
                if session.trace_context is not None:
                    self.adopted = db.tracer.adopt(session.trace_context)
                    self.adopted.__enter__()
                return session

            def __exit__(self, *exc_info):
                db = session.db
                if self.adopted is not None:
                    self.adopted.__exit__(*exc_info)
                session._txn = db._txn
                (
                    db._txn, db.isolation, db._timeout_override, db._session_id
                ) = self.saved
                return False

        return _Swap()


class Database:
    """An embedded relational database instance."""

    def __init__(
        self,
        page_size: int = 4096,
        buffer_capacity: int = 256,
        enable_rewrite: bool = True,
        plan_cache_capacity: int = 256,
        disk: Optional[DiskManager] = None,
        wal: Optional[WriteAheadLog] = None,
        statement_timeout_s: Optional[float] = None,
        io_retries: int = 3,
        io_retry_backoff_s: float = 0.001,
        tracing: bool = True,
        trace_sample_rate: Optional[float] = None,
        slow_query_threshold_s: Optional[float] = None,
        statement_stats: bool = True,
        optimizer_feedback: bool = False,
        executor: Optional[str] = None,
        mvcc: Optional[bool] = None,
        max_concurrent_txns: Optional[int] = None,
        shards: Optional[int] = None,
    ):
        # An existing disk/WAL pair may be passed in: that is how a crashed
        # instance is reopened over its surviving stable storage (see
        # Database.recover and tests/relational/test_crash_recovery.py).
        self.disk = disk if disk is not None else DiskManager(page_size)
        self.buffer_pool = BufferPool(self.disk, buffer_capacity)
        self.catalog = Catalog(self.buffer_pool)
        self.builder = QGMBuilder(self.catalog)
        self.txn_manager = TransactionManager(
            wal=wal, max_concurrent_txns=max_concurrent_txns
        )
        #: MVCC snapshot isolation: explicit ``mvcc=`` argument, then the
        #: REPRO_MVCC environment variable, default off.  When on, reads are
        #: served from snapshots (no S locks, writers never block readers)
        #: and write-write conflicts raise the retryable SerializationError.
        if mvcc is None:
            mvcc = os.environ.get("REPRO_MVCC", "") not in ("", "0", "false")
        self.mvcc: Optional[MVCCController] = MVCCController() if mvcc else None
        self.catalog.mvcc = self.mvcc
        self.txn_manager.mvcc = self.mvcc
        self.buffer_pool.pre_write_hook = self._wal_ahead_of
        #: database-wide default; wire sessions may override it per-thread
        #: through the ``statement_timeout_s`` property (Session swaps the
        #: override in and out alongside the transaction pointer).
        self._default_statement_timeout_s = statement_timeout_s
        self.io_retries = io_retries
        self.io_retry_backoff_s = io_retry_backoff_s
        self.enable_rewrite = enable_rewrite
        #: physical executor mode: "row" (tuple-at-a-time), "batch"
        #: (vectorized wherever possible), or "auto" (vectorize scans of
        #: tables past a small-row threshold).  Resolution order: explicit
        #: ``executor=`` argument, then the REPRO_EXECUTOR environment
        #: variable, then "auto".
        mode = executor or os.environ.get("REPRO_EXECUTOR") or "auto"
        if mode not in ("row", "auto", "batch"):
            raise ExecutionError(
                f"unknown executor mode {mode!r} (expected row, auto or batch)"
            )
        self.executor_mode = mode
        #: default shard count for CREATE TABLE: explicit ``shards=``
        #: argument, then the REPRO_SHARDS environment variable, else 0
        #: (unsharded).  Values < 2 mean unsharded.  Sharded heaps are not
        #: ARIES-durable yet, so persistence (disk/wal reopen) forces the
        #: default off; ``Database.repartition`` remains available for
        #: explicit per-table control.
        if shards is None:
            try:
                shards = int(os.environ.get("REPRO_SHARDS", "0"))
            except ValueError:
                shards = 0
        if disk is not None or wal is not None:
            shards = 0
        self.default_shards = shards if shards >= 2 else 0
        # Per-thread session state: the current transaction, the session
        # default isolation, and the last statement's fingerprint/cache-hit
        # flags all live in a thread-local, so one Database instance can be
        # shared by concurrent session threads (each thread runs its own
        # statements against its own transaction).
        self._tls = threading.local()
        self._default_isolation = IsolationLevel.REPEATABLE_READ
        self.last_timings: Dict[str, float] = {}
        self.statements_executed = 0
        self.plan_cache = PlanCache(plan_cache_capacity)
        #: span tracer: every statement leaves a tree in tracer.last_trace.
        #: Head-based sampling: explicit ``trace_sample_rate=`` argument,
        #: then the REPRO_TRACE_SAMPLE environment variable, default 1.0
        #: (trace everything); slow statements are always sampled once a
        #: slow-query threshold is configured.
        if trace_sample_rate is None:
            try:
                trace_sample_rate = float(
                    os.environ.get("REPRO_TRACE_SAMPLE", "1")
                )
            except ValueError:
                trace_sample_rate = 1.0
        self.tracer = Tracer(
            enabled=tracing,
            sample_rate=trace_sample_rate,
            slow_sample_s=slow_query_threshold_s,
        )
        #: process-wide named metrics (XNF fixpoint, statement latencies, …)
        self.metrics = MetricsRegistry()
        self.tracer.metrics = self.metrics
        #: statements slower than the threshold, span trees attached
        self.slow_query_log = SlowQueryLog(slow_query_threshold_s)
        #: EXPLAIN ANALYZE mode: queries compile uncached and instrumented,
        #: attaching per-operator row counts to their execute spans (the
        #: XNF explain_analyze path flips this around an instantiation)
        self.analyze_statements = False
        #: per-fingerprint statement statistics (behind SYS_STAT_STATEMENTS)
        self.statement_stats = StatementStatsRegistry(enabled=statement_stats)
        #: estimate-vs-actual cardinality feedback (behind SYS_STAT_ESTIMATES)
        self.feedback = FeedbackRegistry()
        #: when True, the planner consults ``feedback`` at (re)planning time
        #: and corrects selectivity guesses with observed cardinalities
        self.optimizer_feedback = optimizer_feedback
        #: per-CO instantiation statistics (behind SYS_CO_STATS), fed by the
        #: XNF semantic-rewrite layer
        self.co_stats = COStatsRegistry()
        self._last_fingerprint: Optional[str] = None
        self._last_cache_hit = False
        #: detached scratch worktables (name -> Table), parked here by the
        #: XNF layer between extractions; re-attaching skips version bumps
        #: so plans compiled against them stay cached.
        self.scratch_tables: Dict[str, Table] = {}
        #: serializes XNF CO extractions (their scratch worktables have
        #: stable names); see XNFCompiler.instantiate
        self.xnf_mutex = threading.RLock()
        #: wire-server frame/byte counters (behind SYS_STAT_NETWORK); zero
        #: forever unless a repro.server.XNFServer serves this database
        self.network = NetworkStats()
        #: live wire sessions (behind SYS_SESSIONS)
        self.wire_sessions = WireSessionRegistry()
        install_sys_tables(self)

    # -- per-thread session state --------------------------------------------

    @property
    def _txn(self) -> Optional[Transaction]:
        return getattr(self._tls, "txn", None)

    @_txn.setter
    def _txn(self, value: Optional[Transaction]) -> None:
        self._tls.txn = value

    @property
    def isolation(self) -> IsolationLevel:
        return getattr(self._tls, "isolation", None) or self._default_isolation

    @isolation.setter
    def isolation(self, value: Optional[IsolationLevel]) -> None:
        self._tls.isolation = value

    @property
    def statement_timeout_s(self) -> Optional[float]:
        """Effective statement timeout for the calling thread.

        A per-session override (installed by :class:`Session` /
        the wire server) wins over the database-wide default.
        """
        override = getattr(self._tls, "timeout_override", None)
        if override is not None:
            return override
        return self._default_statement_timeout_s

    @statement_timeout_s.setter
    def statement_timeout_s(self, value: Optional[float]) -> None:
        self._default_statement_timeout_s = value

    @property
    def _timeout_override(self) -> Optional[float]:
        return getattr(self._tls, "timeout_override", None)

    @_timeout_override.setter
    def _timeout_override(self, value: Optional[float]) -> None:
        self._tls.timeout_override = value

    @property
    def _session_id(self) -> Optional[int]:
        """Wire-session id of the active Session on this thread (if any)."""
        return getattr(self._tls, "session_id", None)

    @_session_id.setter
    def _session_id(self, value: Optional[int]) -> None:
        self._tls.session_id = value

    @property
    def _retry_wait_s(self) -> float:
        """Seconds this thread has slept in transparent retry backoff
        (statement IO retries + run_retryable serialization retries);
        monotonically growing, read as a delta around one statement."""
        return getattr(self._tls, "retry_wait", 0.0)

    def _note_retry_sleep(self, seconds: float) -> None:
        self._tls.retry_wait = getattr(self._tls, "retry_wait", 0.0) + seconds

    @property
    def _last_fingerprint(self) -> Optional[str]:
        return getattr(self._tls, "fingerprint", None)

    @_last_fingerprint.setter
    def _last_fingerprint(self, value: Optional[str]) -> None:
        self._tls.fingerprint = value

    @property
    def _last_cache_hit(self) -> bool:
        return getattr(self._tls, "cache_hit", False)

    @_last_cache_hit.setter
    def _last_cache_hit(self, value: bool) -> None:
        self._tls.cache_hit = value

    # -- public API ----------------------------------------------------------

    def execute(self, sql: str) -> Result:
        """Execute one statement; the last result is returned for batches."""
        with self.tracer.span("statement", sql=sql[:200]):
            start = time.perf_counter()
            with self.tracer.span("parse"):
                statements = parse_statements(sql)
            self.last_timings["parse"] = time.perf_counter() - start
            if not statements:
                raise SQLError("empty statement")
            result = Result()
            for stmt in statements:
                result = self.execute_ast(stmt)
            return result

    def execute_script(self, sql: str) -> List[Result]:
        return [self.execute_ast(stmt) for stmt in parse_statements(sql)]

    def query(self, sql: str) -> Result:
        return self.execute(sql)

    def connect(self, isolation: Optional[IsolationLevel] = None) -> Session:
        """Open an additional session (own transaction state, shared data)."""
        return Session(self, isolation)

    _SPAN_NAMES: Dict[type, str] = {}

    def _stmt_span_name(self, stmt: ast.Statement) -> str:
        name = self._SPAN_NAMES.get(type(stmt))
        if name is None:
            kind = type(stmt).__name__.replace("Stmt", "").lower()
            name = self._SPAN_NAMES[type(stmt)] = f"sql.{kind}"
        return name

    def execute_ast(self, stmt: ast.Statement) -> Result:
        self.statements_executed += 1
        self._last_fingerprint = None
        self._last_cache_hit = False
        start = time.perf_counter()
        with self.tracer.span(self._stmt_span_name(stmt)) as span:
            try:
                result = self._dispatch_ast(stmt)
            except BaseException:
                if self.statement_stats.enabled:
                    self.statement_stats.record(
                        self._fingerprint_of(stmt),
                        time.perf_counter() - start,
                        cache_hit=self._last_cache_hit,
                        error=True,
                        session_id=self._session_id,
                        trace_id=span.trace_id or None,
                    )
                raise
            if result.rowcount:
                span.annotate(rows=result.rowcount)
            if self.tracer.enabled and self.statement_stats.enabled:
                span.annotate(fingerprint=self._fingerprint_of(stmt))
        elapsed = time.perf_counter() - start
        self.metrics.observe("sql.statement_seconds", elapsed)
        if self.statement_stats.enabled:
            self.statement_stats.record(
                self._fingerprint_of(stmt),
                elapsed,
                rows=result.rowcount,
                cache_hit=self._last_cache_hit,
                session_id=self._session_id,
                trace_id=span.trace_id or None,
            )
        if self.slow_query_log.enabled:
            self._maybe_log_slow(stmt, elapsed, span)
        return result

    def _fingerprint_of(self, stmt: ast.Statement) -> str:
        """Normalized fingerprint of *stmt*, computed at most once per
        statement (the cached-plan path pre-fills it for free)."""
        if self._last_fingerprint is None:
            try:
                if isinstance(
                    stmt,
                    (
                        ast.SelectStmt,
                        ast.SetOpStmt,
                        ast.InsertStmt,
                        ast.UpdateStmt,
                        ast.DeleteStmt,
                    ),
                ):
                    self._last_fingerprint = normalize_statement(stmt).fingerprint
                else:
                    self._last_fingerprint = stmt.to_sql()
            except Exception:
                self._last_fingerprint = type(stmt).__name__
        return self._last_fingerprint

    def _maybe_log_slow(self, stmt: ast.Statement, elapsed: float, span) -> None:
        if (
            self.slow_query_log.threshold_s is None
            or elapsed < self.slow_query_log.threshold_s
        ):
            return
        try:
            sql = stmt.to_sql()
        except Exception:
            sql = repr(stmt)
        self.slow_query_log.maybe_record(
            sql,
            elapsed,
            trace=span.to_dict() if self.tracer.enabled else None,
            timings={k: round(v, 6) for k, v in self.last_timings.items()},
            session_id=self._session_id,
            trace_id=span.trace_id or None,
        )
        self.metrics.inc("sql.slow_statements")

    def _dispatch_ast(self, stmt: ast.Statement) -> Result:
        if isinstance(stmt, (ast.SelectStmt, ast.SetOpStmt)):
            return self._run_query(stmt)
        if isinstance(stmt, ast.InsertStmt):
            return self._run_insert(stmt)
        if isinstance(stmt, ast.UpdateStmt):
            return self._run_update(stmt)
        if isinstance(stmt, ast.DeleteStmt):
            return self._run_delete(stmt)
        if isinstance(stmt, ast.CreateTableStmt):
            return self._run_create_table(stmt)
        if isinstance(stmt, ast.CreateIndexStmt):
            return self._run_create_index(stmt)
        if isinstance(stmt, ast.CreateViewStmt):
            return self._run_create_view(stmt)
        if isinstance(stmt, ast.DropStmt):
            return self._run_drop(stmt)
        if isinstance(stmt, ast.AnalyzeStmt):
            return self._run_analyze(stmt)
        if isinstance(stmt, ast.ExplainStmt):
            text = (
                self._explain_analyze_text(stmt.query)
                if stmt.analyze
                else self._explain_text(stmt.query)
            )
            lines = text.splitlines()
            return Result(["plan"], [(line,) for line in lines], len(lines))
        if isinstance(stmt, ast.BeginStmt):
            self.begin()
            return Result()
        if isinstance(stmt, ast.CommitStmt):
            self.commit()
            return Result()
        if isinstance(stmt, ast.RollbackStmt):
            self.rollback()
            return Result()
        raise SQLError(f"unsupported statement {stmt!r}")

    def explain(self, sql: str) -> str:
        """Return the physical plan of a query, as an indented tree, plus the
        current plan-cache counters."""
        return self._explain_text(self._single_query(sql))

    def explain_analyze(self, sql: str) -> str:
        """Execute *sql* under operator instrumentation and return the plan
        annotated with actual row counts, loops and cumulative times, plus
        the pipeline's per-stage timings and the plan-cache counters.

        Equivalent to ``execute("EXPLAIN ANALYZE <sql>")``.
        """
        start = time.perf_counter()
        query = self._single_query(sql)
        self.last_timings["parse"] = time.perf_counter() - start
        return self._explain_analyze_text(query)

    def _single_query(self, sql: str) -> ast.Query:
        statements = parse_statements(sql)
        if len(statements) != 1 or not isinstance(
            statements[0], (ast.SelectStmt, ast.SetOpStmt)
        ):
            raise SQLError("EXPLAIN supports a single query")
        return statements[0]

    def _explain_text(self, query: ast.Query) -> str:
        # Compile outside the cache: EXPLAIN must not disturb the counters
        # it reports (the EXPLAIN statement and the explain() helper render
        # identical text for the same query).
        plan = self.compile_query(query, use_cache=False)
        lines = plan.op.explain().splitlines()
        lines.append(self._plan_cache_line())
        return "\n".join(lines)

    def _explain_analyze_text(self, query: ast.Query) -> str:
        """EXPLAIN ANALYZE: run the query instrumented, render actuals.

        The plan is compiled outside the cache so the shadowed (counting)
        ``rows`` methods can never leak into a cached, shared plan.
        """
        for table in self._tables_of(query):
            self._lock(table, LockMode.SHARED)
        plan = self._analyze_compile(query)
        op_stats = instrument_plan(plan.op)
        start = time.perf_counter()
        with self.tracer.span("execute") as span:
            rows = self._execute_plan(plan, None)
            span.annotate(rows=len(rows), executor=self.executor_mode)
            batches = sum(stat.batches for stat in op_stats.values())
            if batches:
                span.annotate(batches=batches)
        self.last_timings["execute"] = time.perf_counter() - start
        self._end_of_statement()
        self._record_estimates(op_stats)
        lines = render_analyzed(plan.op, op_stats).splitlines()
        lines.append(f"actual rows: {len(rows)}")
        lines.append(self._stage_timings_line())
        lines.append(self._plan_cache_line())
        return "\n".join(lines)

    def _analyze_compile(self, query: ast.Query) -> CompiledPlan:
        """Uncached, instrumentable compile over the *normalized* statement.

        Normalizing first makes the feedback keys recorded from this run
        (parameter markers where literals stood) line up with the keys that
        cached compiles of literal-differing statements produce, so EXPLAIN
        ANALYZE observations transfer to later re-planning.
        """
        normalized = normalize_statement(query)
        if normalized.n_explicit:
            return self._compile_statement(query)
        plan = self._compile_statement(normalized.statement)
        plan.context.params[:] = list(normalized.lifted_values)
        return plan

    def _record_estimates(self, op_stats) -> None:
        """Feed per-operator estimate-vs-actual pairs into the feedback
        registry (``SYS_STAT_ESTIMATES``); actuals are per-loop averages so
        inner sides of nested loops compare against their per-probe estimate."""
        for stat in op_stats.values():
            op = stat.op
            est = getattr(op, "est_rows", None)
            if est is None or not stat.loops:
                continue
            self.feedback.record(
                getattr(op, "feedback_source", None) or op.label,
                op.label,
                getattr(op, "feedback_predicate", ""),
                float(est),
                stat.rows_out / stat.loops,
            )

    def _stage_timings_line(self) -> str:
        stages = ("parse", "build_qgm", "rewrite", "optimize", "execute")
        parts = [
            f"{stage}={self.last_timings[stage] * 1e3:.3f}ms"
            for stage in stages
            if stage in self.last_timings
        ]
        return "stages: " + " ".join(parts)

    def _plan_cache_line(self) -> str:
        stats = self.plan_cache.stats()
        return (
            "plan cache: hits=%d misses=%d invalidations=%d entries=%d"
            % (
                stats["hits"],
                stats["misses"],
                stats["invalidations"],
                stats["entries"],
            )
        )

    # -- prepared statements -------------------------------------------------------

    def prepare(self, sql: str) -> "Prepared":
        """Compile a statement once; re-execute it with new parameters.

        ``?`` placeholders in the SQL text become positional parameters of
        :meth:`Prepared.execute`.
        """
        statements = parse_statements(sql)
        if len(statements) != 1:
            raise SQLError("prepare() expects exactly one statement")
        return Prepared(self, statements[0])

    # -- query compilation (shared with the XNF layer) ----------------------------

    def compile_query(self, query: ast.Query, use_cache: bool = True) -> CompiledPlan:
        """Full pipeline minus execution; records per-stage timings.

        With *use_cache* (the default) the statement is normalized — WHERE
        constants lifted into a parameter vector — and looked up in the plan
        cache; on a hit, build/rewrite/optimize are skipped entirely and the
        cached closures are rebound to the statement's constants.
        """
        if use_cache and self.plan_cache.capacity > 0:
            normalized = normalize_statement(query)
            if normalized.n_explicit:
                raise SQLError(
                    "query contains ? parameters; use Database.prepare()"
                )
            plan = self._cached_plan(normalized)
            plan.context.params[:] = normalized.lifted_values
            return plan
        return self._compile_statement(query)

    def _cached_plan(self, normalized: NormalizedStatement) -> CompiledPlan:
        """Look up (or compile and cache) the plan of a normalized query.

        The caller binds ``plan.context.params`` before executing.
        """
        fingerprint = normalized.fingerprint
        self._last_fingerprint = fingerprint
        key = (fingerprint, self.enable_rewrite)
        entry = self.plan_cache.lookup(key, self.catalog)
        if entry is None:
            plan = self._compile_statement(normalized.statement)
            deps = referenced_objects(normalized.statement, self.catalog)
            entry = CacheEntry(
                plan,
                list(normalized.lifted_values),
                normalized.n_explicit,
                {name: self.catalog.object_version(name) for name in deps},
                volatile=any(self.catalog.is_virtual(name) for name in deps),
            )
            self.plan_cache.store(key, entry)
            self.tracer.annotate(plan_cache="miss")
        else:
            self._last_cache_hit = True
            self.last_timings.update(
                {"build_qgm": 0.0, "rewrite": 0.0, "optimize": 0.0}
            )
            self.tracer.annotate(plan_cache="hit")
        return entry.plan

    def _compile_statement(self, query: ast.Query) -> CompiledPlan:
        timings: Dict[str, float] = {}
        start = time.perf_counter()
        with self.tracer.span("build_qgm"):
            box = self.builder.build_query(query)
        timings["build_qgm"] = time.perf_counter() - start
        start = time.perf_counter()
        with self.tracer.span("rewrite"):
            box = self._rewrite(box)
        timings["rewrite"] = time.perf_counter() - start
        start = time.perf_counter()
        with self.tracer.span("optimize"):
            plan = Planner(
                self.catalog,
                feedback=self._planner_feedback(),
                mode=self.executor_mode,
            ).plan_statement(box)
        timings["optimize"] = time.perf_counter() - start
        self.last_timings.update(timings)
        return plan

    def _planner_feedback(self):
        return self.feedback if self.optimizer_feedback else None

    def compile_box(self, box: Box) -> CompiledPlan:
        """Rewrite + optimize an externally-built QGM box (XNF path)."""
        box = self._rewrite(box)
        return Planner(
            self.catalog,
            feedback=self._planner_feedback(),
            mode=self.executor_mode,
        ).plan_statement(box)

    def _rewrite(self, box: Box) -> Box:
        if not self.enable_rewrite:
            return box
        return Rewriter().rewrite(box)

    def _run_query(self, query: ast.Query) -> Result:
        for table in self._tables_of(query):
            self._lock(table, LockMode.SHARED)
        op_stats = None
        values: Optional[List[Any]] = None
        if self.analyze_statements:
            # Analyze mode (XNF explain_analyze): bypass the cache so the
            # instrumented operators stay private to this execution.
            plan = self._analyze_compile(query)
            op_stats = instrument_plan(plan.op)
        elif self.plan_cache.capacity > 0:
            normalized = normalize_statement(query)
            if normalized.n_explicit:
                raise SQLError(
                    "query contains ? parameters; use Database.prepare()"
                )
            plan = self._cached_plan(normalized)
            values = list(normalized.lifted_values)
        else:
            plan = self._compile_statement(query)
        start = time.perf_counter()
        with self.tracer.span("execute") as span:
            rows = self._execute_plan(plan, values)
            span.annotate(rows=len(rows), executor=self.executor_mode)
            if op_stats is not None:
                batches = sum(stat.batches for stat in op_stats.values())
                if batches:
                    span.annotate(batches=batches)
                span.annotate(detail=render_analyzed(plan.op, op_stats))
        self.last_timings["execute"] = time.perf_counter() - start
        self._end_of_statement()
        if op_stats is not None:
            self._record_estimates(op_stats)
        return Result(plan.columns, rows, len(rows))

    def _execute_prepared_query(
        self, normalized: NormalizedStatement, values: List[Any]
    ) -> Result:
        """Run a prepared query: cached plan + (explicit ++ lifted) params."""
        for table in self._tables_of(normalized.statement):
            self._lock(table, LockMode.SHARED)
        plan = self._cached_plan(normalized)
        start = time.perf_counter()
        with self.tracer.span("execute") as span:
            rows = self._execute_plan(
                plan, values + list(normalized.lifted_values)
            )
            span.annotate(rows=len(rows), executor=self.executor_mode)
        self.last_timings["execute"] = time.perf_counter() - start
        self._end_of_statement()
        return Result(plan.columns, rows, len(rows))

    @contextlib.contextmanager
    def _snapshot_scope(self):
        """Install this statement's MVCC snapshot as the thread's ambient
        snapshot: the open transaction's, or a fresh ephemeral one for an
        autocommit read.  No-op when MVCC mode is off."""
        mv = self.mvcc
        if mv is None:
            yield None
            return
        txn = self._txn
        if txn is not None and txn.active and txn.snapshot is not None:
            snap, ephemeral = txn.snapshot, False
        else:
            snap, ephemeral = mv.snapshots.begin(), True
        prev = set_ambient_snapshot(snap)
        try:
            yield snap
        finally:
            set_ambient_snapshot(prev)
            if ephemeral:
                mv.release(snap)

    def _execute_plan(
        self, plan: CompiledPlan, values: Optional[List[Any]]
    ) -> List[Tuple[Any, ...]]:
        """Bind parameters (when *values* is given — cached, shared plans)
        and collect rows under the plan's bind lock and this thread's
        snapshot.  Holding the bind lock across bind + execution keeps two
        threads from re-binding one shared compiled plan mid-run."""
        with self._snapshot_scope():
            if values is None:
                return self._collect_rows(plan)
            with plan.bind_lock:
                plan.context.params[:] = values
                return self._collect_rows(plan)

    def _collect_rows(self, plan: CompiledPlan) -> List[Tuple[Any, ...]]:
        """Materialize a plan's rows under the execution guards.

        * the statement timeout is checked per produced row (per batch for
          vectorized plans), so a runaway query aborts with
          :class:`ResourceExhaustedError` instead of spinning;
        * a transient :class:`IOFaultError` (injected read error) restarts
          the whole collection after a short backoff, up to ``io_retries``
          times — queries have no side effects, so re-running the plan's
          operator tree from scratch is safe.
        """
        backoff = self.io_retry_backoff_s
        for attempt in range(self.io_retries + 1):
            deadline = (
                time.perf_counter() + self.statement_timeout_s
                if self.statement_timeout_s is not None
                else None
            )
            try:
                rows: List[Tuple[Any, ...]] = []
                if isinstance(plan.op, VecOp):
                    # Drain a vectorized root batch-at-a-time: one transpose
                    # per batch instead of one generator hop per row.
                    for batch in plan.batches():
                        if deadline is not None and time.perf_counter() > deadline:
                            raise ResourceExhaustedError(
                                "query exceeded statement timeout of "
                                f"{self.statement_timeout_s}s"
                            )
                        rows.extend(batch.to_rows())
                    if deadline is not None and time.perf_counter() > deadline:
                        raise ResourceExhaustedError(
                            "query exceeded statement timeout of "
                            f"{self.statement_timeout_s}s"
                        )
                    return rows
                for row in plan.rows():
                    if deadline is not None and time.perf_counter() > deadline:
                        raise ResourceExhaustedError(
                            "query exceeded statement timeout of "
                            f"{self.statement_timeout_s}s"
                        )
                    rows.append(row)
                if deadline is not None and time.perf_counter() > deadline:
                    raise ResourceExhaustedError(
                        "query exceeded statement timeout of "
                        f"{self.statement_timeout_s}s"
                    )
                return rows
            except IOFaultError as err:
                if err.transient and attempt < self.io_retries:
                    self.metrics.inc("sql.statement_retries")
                    if backoff > 0:
                        time.sleep(backoff)
                        self._note_retry_sleep(backoff)
                    backoff *= 2
                    continue
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    # -- DML ------------------------------------------------------------------

    def _run_guarded(self, fn) -> Result:
        """Run one DML statement with statement-level atomicity.

        Outside an explicit transaction, the statement runs in an implicit
        per-statement transaction that commits (force-WAL) on success — the
        replacement for unrecoverable "txn 0" autocommit logging.  On any
        failure the statement's own changes are undone via the WAL undo
        list (CLR-logged), so a half-applied multi-row statement never
        leaks: inside an explicit transaction the earlier statements
        survive, outside it the implicit transaction is rolled back.
        Transient I/O faults additionally get a bounded retry with
        exponential backoff.  A :class:`SimulatedCrash` passes through
        untouched — the "machine" is dead and recovery owns cleanup.
        """
        implicit = not self.in_transaction
        if implicit:
            self._txn = self.txn_manager.begin(self.isolation, implicit=True)
        txn = self._txn
        assert txn is not None
        try:
            backoff = self.io_retry_backoff_s
            for attempt in range(self.io_retries + 1):
                mark = len(txn.undo)
                try:
                    with self._snapshot_scope():
                        result = fn()
                    break
                except SimulatedCrash:
                    raise
                except IOFaultError as err:
                    self.txn_manager.rollback_statement(txn, mark)
                    if err.transient and attempt < self.io_retries:
                        self.metrics.inc("sql.statement_retries")
                        if backoff > 0:
                            time.sleep(backoff)
                            self._note_retry_sleep(backoff)
                        backoff *= 2
                        continue
                    raise
                except Exception:
                    self.txn_manager.rollback_statement(txn, mark)
                    raise
            if implicit:
                self.txn_manager.commit(txn)
                self._txn = None
            return result
        except SimulatedCrash:
            self._txn = None if implicit else self._txn
            raise
        except BaseException:
            if implicit:
                if txn.active:
                    self.txn_manager.rollback(txn)
                self._txn = None
            raise

    def _run_insert(
        self, stmt: ast.InsertStmt, params: Optional[List[Any]] = None
    ) -> Result:
        return self._run_guarded(lambda: self._do_insert(stmt, params))

    def _run_update(
        self, stmt: ast.UpdateStmt, params: Optional[List[Any]] = None
    ) -> Result:
        return self._run_guarded(lambda: self._do_update(stmt, params))

    def _run_delete(
        self, stmt: ast.DeleteStmt, params: Optional[List[Any]] = None
    ) -> Result:
        return self._run_guarded(lambda: self._do_delete(stmt, params))

    def _do_insert(
        self, stmt: ast.InsertStmt, params: Optional[List[Any]] = None
    ) -> Result:
        table = self.catalog.get_table(stmt.table)
        self._lock(table.name, LockMode.EXCLUSIVE)
        if stmt.columns is not None:
            positions = [table.position_of(col) for col in stmt.columns]
        else:
            positions = list(range(len(table.columns)))
        incoming: List[Tuple[Any, ...]] = []
        if stmt.select is not None:
            incoming = list(self._run_query(stmt.select).rows)
        else:
            planner = Planner(self.catalog, PlanContext(list(params or [])))
            compiler = planner.compiler({})
            for row_exprs in stmt.rows or []:
                resolved = [
                    self.builder.resolve_standalone_predicate(e, "__none__", [])
                    for e in row_exprs
                ]
                incoming.append(tuple(compiler.compile(e)((), []) for e in resolved))
        count = 0
        for values in incoming:
            if len(values) != len(positions):
                raise ExecutionError(
                    f"INSERT expects {len(positions)} values, got {len(values)}"
                )
            row: List[Any] = [None] * len(table.columns)
            for pos, value in zip(positions, values):
                row[pos] = value
            rid = self._mvcc_insert(table, tuple(row))
            self._record_insert(table, rid)
            count += 1
        self._end_of_statement()
        return Result(rowcount=count)

    def _do_update(
        self, stmt: ast.UpdateStmt, params: Optional[List[Any]] = None
    ) -> Result:
        table = self.catalog.get_table(stmt.table)
        self._lock(table.name, LockMode.EXCLUSIVE)
        columns = table.column_names()
        layout = {(table.name, col): pos + 1 for pos, col in enumerate(columns)}
        planner = Planner(self.catalog, PlanContext(list(params or [])))
        compiler = planner.compiler(layout)
        predicate = None
        if stmt.where is not None:
            resolved = self.builder.resolve_standalone_predicate(
                stmt.where, table.name, columns
            )
            predicate = compiler.compile_predicate(resolved)
        assignments = []
        for col_name, expr in stmt.assignments:
            pos = table.position_of(col_name)
            resolved = self.builder.resolve_standalone_predicate(
                expr, table.name, columns
            )
            assignments.append((pos, compiler.compile(resolved)))
        scan = SeqScan(table, emit_rid=True)
        pending: List[Tuple[Any, Tuple[Any, ...], Tuple[Any, ...]]] = []
        for tagged in scan.rows([]):
            rid, row = tagged[0], tagged[1:]
            if predicate is not None and predicate(tagged, []) is not True:
                continue
            new_row = list(row)
            for pos, fn in assignments:
                new_row[pos] = fn(tagged, [])
            pending.append((rid, row, tuple(new_row)))
        for rid, old_row, new_row in pending:
            self._mvcc_write_check(table, rid)
            self._mvcc_apply(
                table, rid, old_row, new_row,
                lambda: table.update(rid, new_row),
            )
            self._record_update(table, rid, old_row, new_row)
        self._end_of_statement()
        return Result(rowcount=len(pending))

    def _do_delete(
        self, stmt: ast.DeleteStmt, params: Optional[List[Any]] = None
    ) -> Result:
        table = self.catalog.get_table(stmt.table)
        self._lock(table.name, LockMode.EXCLUSIVE)
        columns = table.column_names()
        layout = {(table.name, col): pos + 1 for pos, col in enumerate(columns)}
        planner = Planner(self.catalog, PlanContext(list(params or [])))
        compiler = planner.compiler(layout)
        predicate = None
        if stmt.where is not None:
            resolved = self.builder.resolve_standalone_predicate(
                stmt.where, table.name, columns
            )
            predicate = compiler.compile_predicate(resolved)
        scan = SeqScan(table, emit_rid=True)
        pending: List[Tuple[Any, Tuple[Any, ...]]] = []
        for tagged in scan.rows([]):
            if predicate is not None and predicate(tagged, []) is not True:
                continue
            pending.append((tagged[0], tagged[1:]))
        for rid, row in pending:
            self._mvcc_write_check(table, rid)
            self._mvcc_apply(table, rid, row, None, lambda: table.delete(rid))
            self._record_delete(table, rid, row)
        self._end_of_statement()
        return Result(rowcount=len(pending))

    # -- DDL -------------------------------------------------------------------

    def _run_create_table(self, stmt: ast.CreateTableStmt) -> Result:
        if stmt.if_not_exists and self.catalog.has_table(stmt.name):
            return Result()
        columns = [
            Column(
                col.name,
                type_from_name(col.type_name, col.size),
                nullable=not col.not_null,
                primary_key=col.primary_key,
                references=col.references,
            )
            for col in stmt.columns
        ]
        partition = None
        if self.default_shards >= 2:
            # Auto-shard SQL DDL tables by hash on the primary key (first
            # column as fallback).  Scratch/internal tables bypass this path
            # by calling catalog.create_table directly.
            key_col = next(
                (col.name for col in columns if col.primary_key), columns[0].name
            )
            partition = PartitionSpec("hash", key_col, self.default_shards)
        self.catalog.create_table(stmt.name, columns, partition=partition)
        return Result()

    def _run_create_index(self, stmt: ast.CreateIndexStmt) -> Result:
        table = self.catalog.get_table(stmt.table)
        table.add_index(stmt.name, stmt.columns, unique=stmt.unique, kind=stmt.kind)
        return Result()

    def _run_create_view(self, stmt: ast.CreateViewStmt) -> Result:
        # Validate eagerly: building the QGM catches unknown names now.
        self.builder.build_query(stmt.query)
        self.catalog.create_view(stmt.name, stmt.sql_text, stmt.query)
        return Result()

    def _run_drop(self, stmt: ast.DropStmt) -> Result:
        if stmt.kind == "TABLE":
            self.catalog.drop_table(stmt.name, stmt.if_exists)
        elif stmt.kind == "VIEW":
            self.catalog.drop_view(stmt.name, stmt.if_exists)
        elif stmt.kind == "INDEX":
            dropped = False
            candidates = (
                [self.catalog.get_table(stmt.table)]
                if stmt.table
                else list(self.catalog.tables.values())
            )
            for table in candidates:
                if stmt.name in table.indexes:
                    table.drop_index(stmt.name)
                    dropped = True
                    break
            if not dropped and not stmt.if_exists:
                raise CatalogError(f"no index named {stmt.name}")
        return Result()

    def _run_analyze(self, stmt: ast.AnalyzeStmt) -> Result:
        tables = (
            [self.catalog.get_table(stmt.table)]
            if stmt.table
            else list(self.catalog.tables.values())
        )
        for table in tables:
            table.analyze()
        return Result(rowcount=len(tables))

    # -- transactions -------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None and self._txn.active

    def begin(self, isolation: Optional[IsolationLevel] = None) -> None:
        if self.in_transaction:
            raise TransactionError("transaction already in progress")
        self._txn = self.txn_manager.begin(isolation or self.isolation)

    def commit(self) -> None:
        if not self.in_transaction:
            raise TransactionError("no transaction in progress")
        self.txn_manager.commit(self._txn)  # type: ignore[arg-type]
        self._txn = None

    def rollback(self) -> None:
        if not self.in_transaction:
            raise TransactionError("no transaction in progress")
        self.txn_manager.rollback(self._txn)  # type: ignore[arg-type]
        self._txn = None

    def run_retryable(
        self,
        fn: Callable[[], Any],
        *,
        retries: int = 5,
        backoff_s: Optional[float] = None,
        max_backoff_s: float = 0.25,
        jitter: float = 0.5,
        rng: Optional[random.Random] = None,
    ) -> Any:
        """Run *fn* (typically a whole transaction) retrying retryable
        errors with exponential backoff and jitter.

        Retryable errors are the ones the taxonomy marks so: no-wait
        deadlock victims (:class:`DeadlockError`), snapshot write-write
        conflicts (:class:`SerializationError`), admission rejections
        (:class:`AdmissionError`) and transient :class:`IOFaultError`.
        Any transaction this thread left open is rolled back before each
        retry, so *fn* always starts on a fresh snapshot.  After *retries*
        failed re-runs the last error propagates.  Pass a seeded *rng* for
        deterministic backoff in tests.

        ``backoff_s=None`` (the default) seeds the first delay from the
        error's ``backoff_hint_s`` (falling back to 2 ms); explicit zero or
        negative values are treated the same — a zero seed would otherwise
        never grow (``0 * 2 == 0``) and busy-spin the retry budget.  The
        post-jitter sleep is clamped to ``max_backoff_s`` so jitter cannot
        overshoot the configured ceiling.  :meth:`WireClient.run_retryable`
        keeps the identical contract for remote callers.
        """
        rng = rng if rng is not None else random.Random()
        delay = backoff_s
        for attempt in range(retries + 1):
            try:
                return fn()
            except ReproError as err:
                if not getattr(err, "retryable", False):
                    raise
                if self.in_transaction:
                    try:
                        self.rollback()
                    except ReproError:
                        pass
                if attempt >= retries:
                    raise
                self.metrics.inc("txn.retries")
                if delay is None or delay <= 0:
                    delay = getattr(err, "backoff_hint_s", None) or 0.002
                sleep_s = min(delay, max_backoff_s) * (1.0 + jitter * rng.random())
                sleep_s = min(sleep_s, max_backoff_s)
                if sleep_s > 0:
                    time.sleep(sleep_s)
                    self._note_retry_sleep(sleep_s)
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def vacuum(self) -> Dict[str, int]:
        """Run one MVCC garbage-collection pass: drop row versions older
        than the oldest active snapshot.  No-op (zero counters) when MVCC
        mode is off."""
        if self.mvcc is None:
            return {"horizon": 0, "pruned": 0, "dropped": 0}
        return self.mvcc.store.vacuum()

    # -- sharding ------------------------------------------------------------------

    def repartition(
        self,
        name: str,
        shards: int,
        kind: str = "hash",
        column: Optional[str] = None,
        bounds: Optional[List[Any]] = None,
    ) -> Table:
        """Rebuild table *name* partitioned into *shards* shards
        (``shards < 2`` rebuilds it unsharded).

        The table is dropped and recreated with the same schema and
        secondary indexes, and its rows are re-inserted through partition
        routing.  *column* defaults to the primary key (first column as a
        fallback); range partitioning without explicit *bounds* derives
        equi-depth split points from the existing data.  Cheapest on an
        empty table right after DDL — then every later load routes live.
        """
        if self.in_transaction:
            raise TransactionError("cannot repartition inside a transaction")
        catalog = self.catalog
        table = catalog.get_table(name)
        if getattr(table, "is_virtual", False):
            raise CatalogError(f"cannot repartition system table {name}")
        if table.is_shard_view:
            raise CatalogError(
                f"{name} is a shard view; repartition its parent table"
            )
        if self.mvcc is not None and self.mvcc.store.dirty(table.name):
            raise TransactionError(
                f"cannot repartition {name} while row versions are in flight"
            )
        columns = list(table.columns)
        if column is None:
            column = next(
                (col.name for col in columns if col.primary_key), columns[0].name
            )
        rows = [row for _, row in table.heap.scan()]
        index_defs = [
            (
                idx.name,
                list(idx.column_names),
                idx.unique,
                "btree" if idx.supports_range else "hash",
            )
            for idx in table.indexes.values()
            if idx.name != f"pk_{table.name}"
        ]
        partition: Optional[PartitionSpec] = None
        if shards >= 2:
            if kind == "range" and bounds is None:
                key_pos = table.position_of(column)
                values = sorted(
                    (row[key_pos] for row in rows if row[key_pos] is not None),
                )
                if not values:
                    raise CatalogError(
                        f"range repartition of empty {name} needs explicit bounds"
                    )
                bounds = [
                    values[(i * len(values)) // shards] for i in range(1, shards)
                ]
            partition = PartitionSpec(kind, column, shards, bounds)
        catalog.drop_table(table.name)
        new_table = catalog.create_table(table.name, columns, partition=partition)
        if rows:
            new_table.insert_many(rows)
        for index_name, index_columns, unique, index_kind in index_defs:
            new_table.add_index(index_name, index_columns, unique=unique, kind=index_kind)
        if rows:
            new_table.analyze()
        return new_table

    def _mvcc_write_check(self, table: Table, rid) -> None:
        """First-committer-wins: before physically touching a row, verify
        its current version is not newer than this transaction's snapshot
        (raises the retryable SerializationError otherwise)."""
        mv = self.mvcc
        if mv is None:
            return
        txn = self._txn
        if txn is None or txn.snapshot is None:
            return
        mv.store.check_write(table.name, rid, txn.snapshot)

    def _mvcc_insert(self, table: Table, row: Tuple[Any, ...]):
        """Heap insert with the version note taken in the same store
        critical section, so snapshot scans that observe the new heap row
        always find the entry that hides it until commit."""
        mv = self.mvcc
        txn = self._txn
        if mv is None or txn is None or txn.snapshot is None:
            return table.insert(row)
        return mv.store.insert_with_note(txn.txn_id, table, row)

    def _mvcc_apply(self, table: Table, rid, before, after, apply_fn) -> None:
        """Run a physical update/delete with its version note registered
        *first*: lock-free readers read the heap row before the store, so
        a missing entry must mean the heap row was untouched at read time.
        If the physical change fails the note is retracted."""
        mv = self.mvcc
        txn = self._txn
        if mv is None or txn is None or txn.snapshot is None:
            apply_fn()
            return
        mv.store.note_write(txn.txn_id, table.name, rid, before, after)
        try:
            apply_fn()
        except BaseException:
            mv.store.pop_note(txn.txn_id)
            raise

    def _lock(self, table: str, mode: LockMode) -> None:
        txn = self._txn
        if txn is None or not txn.active:
            return
        if self.mvcc is not None:
            # MVCC mode: reads are served from snapshots and take no locks
            # at all (writers never block readers and vice versa).  Writers
            # — implicit per-statement transactions included, since other
            # threads can interleave mid-statement — take no-wait X locks
            # for writer-writer ordering.
            if mode is LockMode.SHARED:
                return
            self.txn_manager.locks.acquire(txn.txn_id, table, mode)
            return
        # Implicit (per-statement) transactions skip lock acquisition: the
        # statement completes before control returns to any other session,
        # so statement-scope locks would never be observed — and taking
        # them would make autocommit DML conflict with open transactions,
        # which the pre-transactional autocommit path never did.
        if not txn.implicit:
            self.txn_manager.locks.acquire(txn.txn_id, table, mode)

    def _end_of_statement(self) -> None:
        """Cursor stability releases read locks at statement end."""
        if (
            self._txn is not None
            and self._txn.active
            and self._txn.isolation is IsolationLevel.CURSOR_STABILITY
        ):
            self.txn_manager.locks.release_shared(self._txn.txn_id)

    def _record_insert(self, table: Table, rid) -> None:
        # DML always runs inside a transaction now: explicit, or the
        # implicit per-statement one _run_guarded opened (which replaces
        # the old unrecoverable "txn 0" autocommit logging).
        row = table.fetch(rid)
        self.txn_manager.record_insert(self._txn, table, rid, row)

    def _record_update(self, table: Table, rid, before, after) -> None:
        self.txn_manager.record_update(self._txn, table, rid, before, after)

    def _record_delete(self, table: Table, rid, row) -> None:
        self.txn_manager.record_delete(self._txn, table, rid, row)

    # -- durability ------------------------------------------------------------

    def _wal_ahead_of(self, page) -> None:
        """WAL rule: no page reaches disk before the log that describes it.

        Wired as the buffer pool's ``pre_write_hook``; raises
        :class:`IOFaultError` (and thereby blocks the page write) when the
        WAL cannot be made stable up to the page's LSN.
        """
        wal = self.txn_manager.wal
        if page.page_lsn <= wal.stable_lsn:
            return
        for _ in range(TransactionManager.FLUSH_ATTEMPTS):
            if wal.flush() >= page.page_lsn:
                return
        raise IOFaultError(
            f"WAL-ahead: cannot stabilize log up to LSN {page.page_lsn} "
            f"before writing page {page.page_id}"
        )

    def checkpoint(self) -> int:
        """Take a fuzzy checkpoint (bounds recovery's redo pass)."""
        return self.txn_manager.checkpoint(self.buffer_pool)

    def recover(self):
        """Run crash recovery over this instance's disk and stable WAL.

        Meant to be called on a *fresh* Database constructed over the disk
        and WAL of a crashed one (``Database(disk=old.disk, wal=old.wal)``)
        after re-creating the schema; returns
        :class:`~repro.relational.txn.recovery.RecoveryStats`.  Safe to run
        repeatedly — the second pass finds nothing to redo or undo.
        """
        return self.txn_manager.recover(self)

    # -- helpers ---------------------------------------------------------------------

    def _tables_of(self, query: ast.Query) -> List[str]:
        names: List[str] = []

        def visit_table_ref(ref: ast.TableRef) -> None:
            if isinstance(ref, ast.NamedTable):
                if self.catalog.has_table(ref.name):
                    names.append(ref.name.upper())
            elif isinstance(ref, ast.DerivedTable):
                visit_query(ref.subquery)
            elif isinstance(ref, ast.Join):
                visit_table_ref(ref.left)
                visit_table_ref(ref.right)

        def visit_query(q: ast.Query) -> None:
            if isinstance(q, ast.SetOpStmt):
                visit_query(q.left)
                visit_query(q.right)
                return
            for ref in q.from_tables:
                visit_table_ref(ref)

        visit_query(query)
        return names

    def io_stats(self) -> Dict[str, int]:
        """Storage counters used by the clustering/extraction benchmarks."""
        return {
            "disk_reads": self.disk.reads,
            "disk_writes": self.disk.writes,
            "buffer_hits": self.buffer_pool.hits,
            "buffer_misses": self.buffer_pool.misses,
            "evictions": self.buffer_pool.evictions,
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """One coherent snapshot of every subsystem's counters.

        Sections: ``buffer`` (hit rate, evictions, pins), ``disk``,
        ``wal`` (flushes, bytes, torn-flush repairs), ``locks``
        (acquisitions, no-wait conflicts), ``txn`` (commits/aborts/
        retries), ``fixpoint`` (XNF rounds, delta rows, guard trips),
        ``plan_cache``, and ``statements`` (count, latency histogram,
        slow-query log size).  Values are plain ints/floats/dicts — the
        whole snapshot is JSON-serializable.
        """
        registry = self.metrics.snapshot()
        fixpoint = {
            name[len("xnf.fixpoint."):]: value
            for name, value in registry.items()
            if name.startswith("xnf.fixpoint.")
        }
        fixpoint.setdefault("rounds", 0)
        fixpoint.setdefault("delta_rows", 0)
        fixpoint.setdefault("instantiations", 0)
        fixpoint.setdefault("guard_trips", 0)
        return {
            "buffer": self.buffer_pool.metrics(),
            "disk": {"reads": self.disk.reads, "writes": self.disk.writes},
            "wal": self.txn_manager.wal.metrics(),
            "locks": self.txn_manager.locks.metrics(),
            "txn": {
                **self.txn_manager.metrics(),
                "statement_retries": self.metrics.counter(
                    "sql.statement_retries"
                ).value,
                "retries": self.metrics.counter("txn.retries").value,
            },
            "mvcc": (
                {"enabled": True, **self.mvcc.metrics()}
                if self.mvcc is not None
                else {"enabled": False}
            ),
            "fixpoint": fixpoint,
            "plan_cache": self.plan_cache.stats(),
            "statements": {
                "executed": self.statements_executed,
                "latency": self.metrics.histogram(
                    "sql.statement_seconds"
                ).snapshot(),
                "slow_logged": self.slow_query_log.total_logged,
                "slow_evicted": self.slow_query_log.evicted,
                "tracked_fingerprints": len(self.statement_stats),
                "fingerprint_evictions": self.statement_stats.evicted,
            },
            "estimates": {
                "tracked": len(self.feedback),
                "evicted": self.feedback.evicted,
            },
            "trace": {
                "orphan_spans": self.tracer.orphans,
                "sampled_out": self.tracer.sampled_out,
                "export_failures": self.tracer.export_failures,
                "sample_rate": self.tracer.sample_rate,
            },
            "network": {
                **self.network.snapshot(),
                "live_sessions": len(self.wire_sessions),
            },
            "sharding": {
                "sharded_tables": sum(
                    1
                    for table in self.catalog.tables.values()
                    if isinstance(table, ShardedTable)
                ),
                "scatter_queries": self.metrics.counter(
                    "xnf.scatter.queries"
                ).value,
                "shards_pruned": self.metrics.counter("xnf.scatter.pruned").value,
                "delta_partitions_skipped": self.metrics.counter(
                    "xnf.scatter.delta_skipped"
                ).value,
            },
        }

    def reset_io_stats(self) -> None:
        self.disk.reset_stats()
        self.buffer_pool.reset_stats()


class Prepared:
    """A statement compiled once and re-executable with fresh parameters.

    Obtained from :meth:`Database.prepare`.  For queries, the plan lives in
    the database's plan cache: re-executions rebind the parameter vector into
    the compiled closures without re-running parse/QGM/rewrite/optimize (the
    cache hit counter proves it).  DDL and transaction-control statements are
    executed as-is on each call.
    """

    def __init__(self, db: Database, stmt: ast.Statement):
        self.db = db
        self.statement = stmt
        self._normalized: Optional[NormalizedStatement] = None
        if isinstance(
            stmt, (ast.SelectStmt, ast.SetOpStmt, ast.InsertStmt, ast.UpdateStmt, ast.DeleteStmt)
        ):
            self._normalized = normalize_statement(stmt)
            self.n_params = self._normalized.n_explicit
        else:
            self.n_params = 0
        # The fingerprint property re-renders SQL on each access: compute it
        # once here so re-executions record statement stats for free.
        self._fingerprint = (
            self._normalized.fingerprint if self._normalized is not None else None
        )
        # Compile queries eagerly so the first execute() is already a re-bind.
        if isinstance(stmt, (ast.SelectStmt, ast.SetOpStmt)):
            self.db._cached_plan(self._normalized)

    @property
    def sql(self) -> str:
        return self.statement.to_sql()

    def execute(self, params: Sequence[Any] = ()) -> Result:
        values = list(params)
        if len(values) != self.n_params:
            raise SQLError(
                f"prepared statement expects {self.n_params} parameters, "
                f"got {len(values)}"
            )
        stmt = self.statement
        self.db.statements_executed += 1
        if isinstance(stmt, (ast.SelectStmt, ast.SetOpStmt)):
            return self._timed(
                lambda: self.db._execute_prepared_query(self._normalized, values)
            )
        full = values + list(self._normalized.lifted_values) if self._normalized else values
        if isinstance(stmt, ast.InsertStmt):
            return self._timed(lambda: self.db._run_insert(stmt, params=full))
        if isinstance(stmt, ast.UpdateStmt):
            return self._timed(lambda: self.db._run_update(stmt, params=full))
        if isinstance(stmt, ast.DeleteStmt):
            return self._timed(lambda: self.db._run_delete(stmt, params=full))
        if self.n_params:
            raise SQLError("this statement kind does not accept parameters")
        return self.db.execute_ast(stmt)

    def _timed(self, fn) -> Result:
        """Run one prepared execution, recording per-fingerprint statement
        stats (this path bypasses ``execute_ast``, which records them for
        ordinary statements)."""
        db = self.db
        db._last_cache_hit = False
        start = time.perf_counter()
        result = fn()
        if db.statement_stats.enabled and self._fingerprint is not None:
            current = db.tracer.current()
            db.statement_stats.record(
                self._fingerprint,
                time.perf_counter() - start,
                rows=result.rowcount,
                cache_hit=db._last_cache_hit,
                session_id=db._session_id,
                trace_id=(current.trace_id or None) if current else None,
            )
        return result
