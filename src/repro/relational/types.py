"""SQL value domain and three-valued logic.

SQL values are represented by plain Python objects: ``int``, ``float``,
``str``, ``bool`` and ``None`` for the SQL NULL.  This module centralises

* the type objects used by the catalog (:data:`INTEGER`, :data:`FLOAT`,
  :data:`VARCHAR`, :data:`BOOLEAN`),
* coercion/validation of Python values against a declared type, and
* the three-valued logic (3VL) combinators ``tv_and``/``tv_or``/``tv_not``
  plus NULL-propagating comparison and arithmetic helpers used by the
  expression evaluator.

The paper stresses that XNF "preserves semantics of SQL, including null
values and duplicates" (section 5); keeping 3VL in one audited module is what
makes that guarantee testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import TypeCheckError

#: Sentinel documented alias for the SQL NULL (we use ``None`` internally).
Null = None


@dataclass(frozen=True)
class SQLType:
    """A SQL data type as recorded in the catalog.

    ``name`` is the canonical upper-case type name.  ``size`` is only
    meaningful for VARCHAR and is advisory (we do not truncate, matching the
    permissive behaviour of SQLite, which our tests cross-check against).
    """

    name: str
    size: Optional[int] = None

    def __str__(self) -> str:
        if self.size is not None:
            return f"{self.name}({self.size})"
        return self.name

    def validate(self, value: Any) -> Any:
        """Coerce *value* to this type, raising :class:`TypeCheckError`.

        NULL is accepted by every type; nullability is enforced separately by
        column constraints.
        """
        if value is None:
            return None
        if self.name == "INTEGER":
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            raise TypeCheckError(f"value {value!r} is not an INTEGER")
        if self.name == "FLOAT":
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            raise TypeCheckError(f"value {value!r} is not a FLOAT")
        if self.name == "VARCHAR":
            if isinstance(value, str):
                return value
            raise TypeCheckError(f"value {value!r} is not a VARCHAR")
        if self.name == "BOOLEAN":
            if isinstance(value, bool):
                return value
            if isinstance(value, int) and value in (0, 1):
                return bool(value)
            raise TypeCheckError(f"value {value!r} is not a BOOLEAN")
        raise TypeCheckError(f"unknown SQL type {self.name}")


INTEGER = SQLType("INTEGER")
FLOAT = SQLType("FLOAT")
BOOLEAN = SQLType("BOOLEAN")


def VARCHAR(size: Optional[int] = None) -> SQLType:
    """Build a VARCHAR type, optionally with an advisory size."""
    return SQLType("VARCHAR", size)


_TYPE_NAMES = {
    "INT": INTEGER,
    "INTEGER": INTEGER,
    "BIGINT": INTEGER,
    "SMALLINT": INTEGER,
    "FLOAT": FLOAT,
    "REAL": FLOAT,
    "DOUBLE": FLOAT,
    "DECIMAL": FLOAT,
    "NUMERIC": FLOAT,
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
    "VARCHAR": SQLType("VARCHAR"),
    "CHAR": SQLType("VARCHAR"),
    "TEXT": SQLType("VARCHAR"),
    "STRING": SQLType("VARCHAR"),
}


def type_from_name(name: str, size: Optional[int] = None) -> SQLType:
    """Resolve a type name from SQL source text to a :class:`SQLType`."""
    base = _TYPE_NAMES.get(name.upper())
    if base is None:
        raise TypeCheckError(f"unknown SQL type {name!r}")
    if base.name == "VARCHAR" and size is not None:
        return SQLType("VARCHAR", size)
    return base


# --------------------------------------------------------------------------
# Three-valued logic.  Truth values are True, False, and None (unknown).
# --------------------------------------------------------------------------


def tv_and(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    """SQL AND: false dominates, otherwise unknown propagates."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def tv_or(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    """SQL OR: true dominates, otherwise unknown propagates."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def tv_not(a: Optional[bool]) -> Optional[bool]:
    """SQL NOT: unknown stays unknown."""
    if a is None:
        return None
    return not a


def sql_compare(op: str, left: Any, right: Any) -> Optional[bool]:
    """Evaluate a SQL comparison with NULL propagation.

    Returns ``None`` (unknown) when either operand is NULL.  Mixed
    numeric/string comparisons raise :class:`TypeCheckError` rather than
    silently ordering across domains.
    """
    if left is None or right is None:
        return None
    _check_comparable(left, right)
    if op == "=":
        return left == right
    if op in ("<>", "!="):
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise TypeCheckError(f"unknown comparison operator {op!r}")


def _check_comparable(left: Any, right: Any) -> None:
    numeric = (int, float, bool)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return
    if isinstance(left, str) and isinstance(right, str):
        return
    raise TypeCheckError(
        f"cannot compare {type(left).__name__} with {type(right).__name__}"
    )


def sql_arith(op: str, left: Any, right: Any) -> Any:
    """Evaluate SQL arithmetic with NULL propagation.

    ``+`` doubles as string concatenation when both operands are strings
    (handy for expressions in tests; standard SQL uses ``||``, which the
    parser maps here too).
    """
    if left is None or right is None:
        return None
    if op == "||":
        return _as_str(left) + _as_str(right)
    if isinstance(left, str) or isinstance(right, str):
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        raise TypeCheckError(f"cannot apply {op!r} to strings")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if isinstance(left, int) and isinstance(right, int):
            if right == 0:
                raise_div_by_zero()
            # SQL integer division truncates toward zero.
            quotient = abs(left) // abs(right)
            if (left < 0) != (right < 0):
                quotient = -quotient
            return quotient
        if right == 0:
            raise_div_by_zero()
        return left / right
    if op == "%":
        if right == 0:
            raise_div_by_zero()
        return math.fmod(left, right) if isinstance(left, float) or isinstance(right, float) else int(math.fmod(left, right))
    raise TypeCheckError(f"unknown arithmetic operator {op!r}")


def raise_div_by_zero() -> None:
    from repro.errors import ExecutionError

    raise ExecutionError("division by zero")


def _as_str(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return str(value)


def sql_like(value: Any, pattern: Any) -> Optional[bool]:
    """SQL LIKE with ``%`` and ``_`` wildcards, NULL-propagating."""
    if value is None or pattern is None:
        return None
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise TypeCheckError("LIKE requires string operands")
    import re

    regex = ""
    for ch in pattern:
        if ch == "%":
            regex += ".*"
        elif ch == "_":
            regex += "."
        else:
            regex += re.escape(ch)
    return re.fullmatch(regex, value, flags=re.DOTALL) is not None


#: Ordering key for ORDER BY: SQL NULLs sort first (ascending), and values
#: sort within their own domain.  Mixed-domain columns raise at compare time
#: in sql_compare; for sorting we build a total order with a domain tag.
def sort_key(value: Any):
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, value)
